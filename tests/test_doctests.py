"""Run every doctest-style snippet embedded in library docstrings.

Keeps the examples in docstrings honest: if an API drifts, the snippet
fails here rather than silently rotting.  Modules without ``>>>``
snippets are skipped automatically (doctest finds nothing to run).
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules() -> list[str]:
    names: list[str] = ["repro"]
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        # __main__ modules run their CLI at import time
        if not module.name.endswith("__main__"):
            names.append(module.name)
    return names


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name: str):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module_name}: {results.failed} doctest failures"
