"""Tracer mechanics: nesting, parenting, ring buffers, Chrome export."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import Tracer


def test_spans_nest_under_the_enclosing_span():
    tracer = Tracer()
    with tracer.span("query") as outer:
        with tracer.span("optimize") as inner:
            pass
    spans = tracer.spans()
    assert [s.name for s in spans] == ["query", "optimize"]
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None


def test_span_timestamps_are_monotonic_and_duration_consistent():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    outer, inner = tracer.spans()
    assert outer.start <= inner.start <= inner.end <= outer.end
    assert outer.duration == pytest.approx(outer.end - outer.start)
    assert outer.thread_id == threading.get_ident()


def test_explicit_parent_links_across_threads():
    tracer = Tracer()
    recorded = {}

    with tracer.span("dispatch") as dispatch:
        parent = tracer.current_span_id()

        def worker():
            with tracer.span("morsel", parent=parent) as span:
                recorded["span"] = span

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()

    assert recorded["span"].parent_id == dispatch.span_id
    assert recorded["span"].thread_id != dispatch.thread_id
    # Each thread records into its own buffer; spans() merges them.
    assert {s.name for s in tracer.spans()} == {"dispatch", "morsel"}


def test_attributes_set_and_open_span_duration():
    tracer = Tracer()
    span = tracer.span("work", rows_in=10)
    assert span.duration == 0.0  # still open
    span.set(rows_out=7)
    with span:
        pass
    assert span.attributes == {"rows_in": 10, "rows_out": 7}
    assert span.duration > 0.0


def test_exception_stamps_error_attribute_and_closes():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("doomed"):
            raise ValueError("boom")
    (span,) = tracer.spans()
    assert span.attributes["error"] == "ValueError: boom"
    assert span.end is not None


def test_events_are_zero_duration_points():
    tracer = Tracer()
    with tracer.span("query") as outer:
        event = tracer.event("plan_cache", hit=True)
    assert event.is_event
    assert event.duration == 0.0
    assert event.parent_id == outer.span_id
    assert event.attributes == {"hit": True}


def test_ring_buffer_caps_memory_and_counts_drops():
    tracer = Tracer(max_spans_per_thread=8)
    for index in range(20):
        with tracer.span("s", index=index):
            pass
    spans = tracer.spans()
    assert len(spans) == 8
    assert tracer.dropped == 12
    # The newest spans survive; the oldest were overwritten.
    assert {s.attributes["index"] for s in spans} == set(range(12, 20))


def test_spans_filter_by_name_and_reset_clears():
    tracer = Tracer()
    with tracer.span("a"):
        pass
    with tracer.span("b"):
        pass
    assert [s.name for s in tracer.spans("b")] == ["b"]
    tracer.reset()
    assert tracer.spans() == []
    assert tracer.dropped == 0


def test_export_chrome_is_valid_trace_event_json(tmp_path):
    tracer = Tracer()
    with tracer.span("query", query="q1"):
        with tracer.span("node", node_id=3):
            pass
        tracer.event("zone.prune", morsels_pruned=2)
    payload = json.loads(tracer.export_chrome())
    events = payload["traceEvents"]
    assert [e["name"] for e in events] == ["query", "node", "zone.prune"]
    complete = {e["name"]: e for e in events if e["ph"] == "X"}
    assert set(complete) == {"query", "node"}
    for entry in complete.values():
        assert entry["dur"] >= 0.0
        assert entry["pid"] == 1
    instant = next(e for e in events if e["ph"] == "i")
    assert instant["s"] == "t"
    assert instant["args"]["morsels_pruned"] == 2
    # Parent linkage travels in args; timestamps are microseconds.
    assert complete["node"]["args"]["parent_span"] == complete["query"]["args"]["span_id"]
    assert complete["node"]["ts"] >= complete["query"]["ts"]

    out = tmp_path / "trace.json"
    tracer.write_chrome(out)
    assert json.loads(out.read_text())["traceEvents"] == events


def test_attribute_keys_name_and_parent_are_reserved():
    tracer = Tracer()
    with pytest.raises(TypeError):
        tracer.span("query", name="collides")
