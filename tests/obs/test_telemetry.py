"""LogHistogram and ServiceTelemetry: quantiles, merging, thread safety."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.obs import LogHistogram, ServiceTelemetry, Tracer


def test_snapshot_counts_totals_and_extremes():
    histogram = LogHistogram(resolution=1e-6)
    for value in (0.001, 0.002, 0.004, 0.1):
        histogram.record(value)
    snap = histogram.snapshot()
    assert snap["count"] == 4
    assert snap["total"] == pytest.approx(0.107)
    assert snap["mean"] == pytest.approx(0.107 / 4)
    assert snap["min"] == pytest.approx(0.001)
    assert snap["max"] == pytest.approx(0.1)
    assert snap["p50"] <= snap["p95"] <= snap["p99"]


def test_quantiles_are_within_bucket_error_on_a_known_distribution():
    rng = np.random.default_rng(7)
    samples = rng.lognormal(mean=-6.0, sigma=1.0, size=10_000)
    histogram = LogHistogram(resolution=1e-6)
    for value in samples:
        histogram.record(float(value))
    for q in (0.50, 0.95, 0.99):
        exact = float(np.quantile(samples, q))
        estimate = histogram.quantile(q)
        # Power-of-two buckets bound the error to the bucket width.
        assert exact / 2 <= estimate <= exact * 2


def test_small_sample_quantiles_stay_within_observed_range():
    histogram = LogHistogram(resolution=1e-6)
    histogram.record(0.003)
    assert histogram.quantile(0.5) == pytest.approx(0.003)
    assert histogram.quantile(0.99) == pytest.approx(0.003)
    assert LogHistogram().quantile(0.5) == 0.0


def test_negative_and_zero_values_clamp_to_the_first_bucket():
    histogram = LogHistogram(resolution=1e-6)
    histogram.record(0.0)
    histogram.record(-1.0)
    assert histogram.count == 2
    assert histogram.quantile(0.5) <= 0.0  # clamped to observed max


def test_merge_is_bucketwise_and_checks_resolution():
    left = LogHistogram(resolution=1e-6)
    right = LogHistogram(resolution=1e-6)
    for value in (0.001, 0.002):
        left.record(value)
    for value in (0.004, 0.008, 0.016):
        right.record(value)
    left.merge(right)
    snap = left.snapshot()
    assert snap["count"] == 5
    assert snap["total"] == pytest.approx(0.031)
    assert snap["min"] == pytest.approx(0.001)
    assert snap["max"] == pytest.approx(0.016)
    with pytest.raises(ValueError):
        left.merge(LogHistogram(resolution=1.0))
    with pytest.raises(ValueError):
        LogHistogram(resolution=0.0)


def test_concurrent_records_lose_nothing():
    histogram = LogHistogram(resolution=1e-6)
    per_thread, threads = 5_000, 8

    def record_many(value: float) -> None:
        for _ in range(per_thread):
            histogram.record(value)

    workers = [
        threading.Thread(target=record_many, args=(0.001 * (i + 1),))
        for i in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    snap = histogram.snapshot()
    assert snap["count"] == per_thread * threads
    expected_total = per_thread * sum(0.001 * (i + 1) for i in range(threads))
    assert snap["total"] == pytest.approx(expected_total)


def test_registry_has_the_standing_histograms():
    telemetry = ServiceTelemetry()
    snap = telemetry.snapshot()
    assert set(snap) == {
        "execute_seconds",
        "optimize_seconds",
        "filter_build_seconds",
        "morsel_task_seconds",
        "output_rows",
        "admission_wait_seconds",
        "queue_depth",
    }
    telemetry.record("execute_seconds", 0.25)
    assert telemetry.snapshot()["execute_seconds"]["count"] == 1
    with pytest.raises(KeyError):
        telemetry.record("unknown_histogram", 1.0)


def test_observe_span_feeds_only_recognised_span_names():
    telemetry = ServiceTelemetry()
    tracer = Tracer(telemetry=telemetry)
    with tracer.span("morsel", rows_in=100):
        pass
    with tracer.span("node", node_id=1):
        pass
    snap = telemetry.snapshot()
    assert snap["morsel_task_seconds"]["count"] == 1
    assert snap["execute_seconds"]["count"] == 0


def test_registry_merge_folds_every_histogram():
    left, right = ServiceTelemetry(), ServiceTelemetry()
    left.record("execute_seconds", 0.1)
    right.record("execute_seconds", 0.2)
    right.record("output_rows", 42.0)
    left.merge(right)
    snap = left.snapshot()
    assert snap["execute_seconds"]["count"] == 2
    assert snap["output_rows"]["count"] == 1
    assert snap["output_rows"]["max"] == pytest.approx(42.0)
