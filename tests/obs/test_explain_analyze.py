"""Service observability surfaces: explain_analyze, tracing, telemetry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryTimeout
from repro.obs import Tracer
from repro.service import QueryService

_JOIN_SQL = (
    "SELECT COUNT(*) AS cnt, SUM(f.m) AS total FROM fact f, dim1 d1, dim2 d2 "
    "WHERE f.fk1 = d1.id AND f.fk2 = d2.id AND d1.v < 5 AND d2.w < 8"
)


@pytest.fixture()
def service(star_db) -> QueryService:
    return QueryService(star_db)


def test_results_identical_with_tracing_on_and_off(service):
    off = service.execute(_JOIN_SQL, name="q_off")
    on = service.execute(_JOIN_SQL, name="q_on", tracer=Tracer())
    assert off.result.aggregates.keys() == on.result.aggregates.keys()
    for label, values in off.result.aggregates.items():
        np.testing.assert_array_equal(values, on.result.aggregates[label])


def test_traced_execute_records_the_lifecycle_spans(service):
    tracer = Tracer()
    outcome = service.execute(_JOIN_SQL, name="traced", tracer=tracer)
    assert outcome.ok
    names = {span.name for span in tracer.spans()}
    # Cold query: parse/bind + optimize + execution tree + finalize.
    assert {"execute", "parse_bind", "optimize", "plan_cache",
            "node", "aggregate"} <= names
    (execute,) = tracer.spans("execute")
    assert execute.attributes["rows"] == outcome.num_rows
    assert execute.attributes["plan_cache_hit"] is False
    (cache_event,) = tracer.spans("plan_cache")
    assert cache_event.attributes["hit"] is False
    # Spans nest: every non-root span's parent exists in the trace.
    by_id = {span.span_id: span for span in tracer.spans()}
    for span in tracer.spans():
        if span.parent_id is not None:
            assert span.parent_id in by_id

    warm_tracer = Tracer()
    service.execute(_JOIN_SQL, name="traced_warm", tracer=warm_tracer)
    warm_names = {span.name for span in warm_tracer.spans()}
    assert "parse_bind" not in warm_names  # plan-cache hit skips binding
    (warm_event,) = warm_tracer.spans("plan_cache")
    assert warm_event.attributes["hit"] is True


def test_explain_analyze_annotates_actuals_beside_estimates(service):
    rendered = service.explain_analyze(_JOIN_SQL)
    assert "EXPLAIN ANALYZE" in rendered
    assert "wall " in rendered and "optimize " in rendered
    # Every executed plan node line carries actual rows/time + estimate.
    actual_lines = [line for line in rendered.splitlines() if "actual" in line]
    assert len(actual_lines) >= 4  # 2 scans + 2 joins at minimum
    for line in actual_lines:
        assert "rows in" in line and "ms" in line and "est " in line
    assert "spans:" in rendered


def test_explain_analyze_on_tpcds_join(tpcds_tiny):
    database, _specs = tpcds_tiny
    service = QueryService(database)
    rendered = service.explain_analyze(
        "SELECT COUNT(*) AS cnt, SUM(ss.ss_net_paid) AS total "
        "FROM store_sales ss, date_dim d, store s "
        "WHERE ss.ss_sold_date_sk = d.d_date_sk "
        "AND ss.ss_store_sk = s.s_store_sk AND d.d_year = 2001"
    )
    assert "EXPLAIN ANALYZE" in rendered
    assert "store_sales" in rendered
    assert any(
        "actual" in line and "est " in line
        for line in rendered.splitlines()
    )


def test_telemetry_snapshot_tracks_execute_latency(service):
    before = service.telemetry_snapshot()["execute_seconds"]["count"]
    service.execute(_JOIN_SQL, name="t1")
    service.execute(_JOIN_SQL, name="t2")
    snap = service.telemetry_snapshot()
    assert snap["execute_seconds"]["count"] == before + 2
    assert snap["output_rows"]["count"] >= 2
    assert snap["execute_seconds"]["p95"] >= snap["execute_seconds"]["p50"] > 0
    assert service.stats().telemetry == snap


def test_service_wide_tracer_arms_every_execute(star_db):
    tracer = Tracer()
    service = QueryService(star_db, tracer=tracer)
    service.execute(_JOIN_SQL)
    assert tracer.spans("execute")
    # The service wires its telemetry into the tracer it was given.
    assert tracer.telemetry is service.telemetry
    assert service.telemetry_snapshot()["execute_seconds"]["count"] == 1


def test_wall_seconds_covers_optimize_and_execute(service):
    outcome = service.execute(_JOIN_SQL, name="walled")
    metrics = outcome.metrics
    assert metrics.wall_seconds > 0.0
    assert metrics.wall_seconds >= metrics.execute_seconds
    assert service.stats().total_wall_seconds >= metrics.wall_seconds


def test_run_many_slots_carry_wall_seconds_even_on_error(service):
    results = service.run_many([
        _JOIN_SQL,
        "SELECT COUNT(*) AS cnt FROM no_such_table t",
    ])
    assert results[0].ok and not results[1].ok
    for result in results:
        assert result.metrics.wall_seconds > 0.0
    assert results[1].metrics.error is not None


def test_aborted_query_emits_resilience_event(service):
    service.execute(_JOIN_SQL, name="warm")  # plan cache warm: abort in execution
    tracer = Tracer()
    with pytest.raises(QueryTimeout):
        service.execute(
            _JOIN_SQL, name="doomed", deadline_seconds=1e-9, tracer=tracer
        )
    (abort,) = tracer.spans("resilience.abort")
    assert abort.attributes["cause"] == "QueryTimeout"
    (execute,) = tracer.spans("execute")
    assert execute.attributes["error"].startswith("QueryTimeout")
