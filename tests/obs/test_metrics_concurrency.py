"""Metrics under concurrency: merges lose nothing, snapshots never tear."""

from __future__ import annotations

import threading

import pytest

from repro.engine.metrics import ExecutionMetrics
from repro.service import QueryService

_SQL = (
    "SELECT COUNT(*) AS cnt FROM fact f, dim1 d1 "
    "WHERE f.fk1 = d1.id AND d1.v < {threshold}"
)


def test_merge_counters_is_exact_over_many_workers():
    main = ExecutionMetrics()
    workers = []
    for index in range(1, 33):
        worker = ExecutionMetrics()
        worker.rows_copied = index
        worker.bytes_gathered = 8 * index
        worker.morsels_pruned = 1
        worker.rows_skipped = 100
        worker.filter_build_seconds = 0.25
        workers.append(worker)
    for worker in workers:
        main.merge_counters(worker)
    assert main.rows_copied == sum(range(1, 33))
    assert main.bytes_gathered == 8 * sum(range(1, 33))
    assert main.morsels_pruned == 32
    assert main.rows_skipped == 3200
    assert main.filter_build_seconds == pytest.approx(8.0)


def test_merge_counters_from_parallel_threads_loses_nothing():
    """Workers merged sequentially after a barrier — the executor's
    contract — even when the worker metrics were *filled* in parallel."""
    per_worker = 1000
    workers = [ExecutionMetrics() for _ in range(8)]

    def fill(worker: ExecutionMetrics) -> None:
        for _ in range(per_worker):
            worker.rows_copied += 1
            worker.dictionary_hits += 2

    threads = [
        threading.Thread(target=fill, args=(worker,)) for worker in workers
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    main = ExecutionMetrics()
    for worker in workers:
        main.merge_counters(worker)
    assert main.rows_copied == 8 * per_worker
    assert main.dictionary_hits == 16 * per_worker


def test_add_wall_accumulates_only_on_known_nodes():
    metrics = ExecutionMetrics()
    record = metrics.node(7, "HashJoin", "join")
    metrics.add_wall(7, 0.5)
    metrics.add_wall(7, 0.25)
    metrics.add_wall(99, 1.0)  # unknown node: silently ignored
    assert record.wall_seconds == pytest.approx(0.75)


def test_concurrent_executes_never_tear_service_stats(star_db):
    """stats() snapshots taken *during* a concurrent burst must be
    internally consistent and monotonic — no torn or backwards counters."""
    service = QueryService(star_db, parallelism=2)
    executes, observers = 6, 2
    threshold_counts = 4
    done = threading.Event()
    failures: list[str] = []

    def run_queries(worker: int) -> None:
        for round_index in range(threshold_counts):
            service.execute(
                _SQL.format(threshold=1 + (worker + round_index) % 9),
                name=f"w{worker}_{round_index}",
            )

    def watch() -> None:
        last_queries = 0
        while not done.is_set():
            stats = service.stats()
            if stats.queries < last_queries:
                failures.append("queries went backwards")
            last_queries = stats.queries
            if stats.plan_cache_hits + stats.plan_cache_misses != stats.queries:
                failures.append(
                    f"torn snapshot: {stats.plan_cache_hits}+"
                    f"{stats.plan_cache_misses} != {stats.queries}"
                )
            # Telemetry records before the fold, so its count may run
            # at most one in-flight query ahead per executor thread —
            # but never behind what the folded stats already claim.
            if stats.telemetry["execute_seconds"]["count"] < stats.queries:
                failures.append("telemetry behind folded stats")

    runners = [
        threading.Thread(target=run_queries, args=(worker,))
        for worker in range(executes)
    ]
    watchers = [threading.Thread(target=watch) for _ in range(observers)]
    for thread in watchers + runners:
        thread.start()
    for thread in runners:
        thread.join()
    done.set()
    for thread in watchers:
        thread.join()

    assert not failures
    final = service.stats()
    assert final.queries == executes * threshold_counts
    assert final.plan_cache_hits + final.plan_cache_misses == final.queries
    assert final.telemetry["execute_seconds"]["count"] == final.queries
    assert final.total_wall_seconds >= final.total_execute_seconds > 0


def test_run_many_folds_every_slot_exactly_once(star_db):
    service = QueryService(star_db, parallelism=2)
    sqls = [_SQL.format(threshold=1 + i % 7) for i in range(12)]
    results = service.run_many(sqls, max_workers=4)
    assert all(result.ok for result in results)
    stats = service.stats()
    assert stats.queries == len(sqls)
    assert stats.telemetry["execute_seconds"]["count"] == len(sqls)
    assert stats.total_wall_seconds == pytest.approx(
        sum(result.metrics.wall_seconds for result in results), rel=0.25
    )
