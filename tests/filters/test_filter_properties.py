"""Property-based tests: the filter contracts the paper's theory needs.

Lemma 1 (absorption) and Property 4 (associativity) hold *exactly* only
for filters without false positives; every implementation must still be
free of false negatives (Property 2's reduction never drops a matching
tuple).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters import BlockedBloomFilter, BloomFilter, ExactFilter

_key_lists = st.lists(st.integers(-10**6, 10**6), min_size=0, max_size=200)


def int_col(values):
    return np.array(values, dtype=np.int64)


class TestNoFalseNegativesProperty:
    @given(keys=_key_lists)
    @settings(max_examples=60, deadline=None)
    def test_exact(self, keys):
        f = ExactFilter.build([int_col(keys)])
        if keys:
            assert f.contains([int_col(keys)]).all()

    @given(keys=_key_lists)
    @settings(max_examples=60, deadline=None)
    def test_bloom(self, keys):
        f = BloomFilter.build([int_col(keys)])
        if keys:
            assert f.contains([int_col(keys)]).all()

    @given(keys=_key_lists)
    @settings(max_examples=60, deadline=None)
    def test_blocked_bloom(self, keys):
        f = BlockedBloomFilter.build([int_col(keys)])
        if keys:
            assert f.contains([int_col(keys)]).all()


class TestExactSetSemanticsProperty:
    @given(keys=_key_lists, probes=_key_lists)
    @settings(max_examples=60, deadline=None)
    def test_exact_equals_python_set(self, keys, probes):
        f = ExactFilter.build([int_col(keys)])
        if not probes:
            return
        expected = [value in set(keys) for value in probes]
        assert f.contains([int_col(probes)]).tolist() == expected

    @given(
        keys=st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)),
            min_size=0, max_size=100,
        ),
        probes=st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)),
            min_size=1, max_size=100,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_multicolumn_equals_tuple_set(self, keys, probes):
        f = ExactFilter.build(
            [int_col([k[0] for k in keys]), int_col([k[1] for k in keys])]
        )
        result = f.contains(
            [int_col([p[0] for p in probes]), int_col([p[1] for p in probes])]
        )
        expected = [p in set(keys) for p in probes]
        assert result.tolist() == expected


class TestAbsorptionRuleProperty:
    """Lemma 1: for R1 -> R2 (key join), |R1 / R2| == |R1 join R2| when
    the filter has no false positives."""

    @given(
        fk=st.lists(st.integers(0, 49), min_size=1, max_size=300),
        present=st.sets(st.integers(0, 49), min_size=1, max_size=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_semijoin_count_equals_key_join_count(self, fk, present):
        r2_keys = int_col(sorted(present))          # unique key column
        r1_fk = int_col(fk)
        semi = ExactFilter.build([r2_keys]).contains([r1_fk]).sum()
        join = np.isin(r1_fk, r2_keys).sum()        # key join multiplicity 1
        assert semi == join
