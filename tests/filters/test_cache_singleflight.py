"""Single-flight construction in the bitvector filter cache.

Before this PR, racing threads each ran the builder and the second
build won the slot — bounded waste, but a herd of ``run_many`` workers
hitting one cold dimension filter built it N times.  The cache now
coordinates like the dictionary / zone-map builds: one builder, the
rest wait and reuse, ``builds_deduped`` counts the spared builds.
"""

import threading

import numpy as np
import pytest

from repro.filters.cache import BitvectorFilterCache
from repro.filters.exact import ExactFilter


def _make_filter():
    return ExactFilter.build([np.arange(64)])


def _herd(cache, key, builder, num_threads):
    barrier = threading.Barrier(num_threads)
    results = []
    lock = threading.Lock()

    def worker():
        barrier.wait()
        outcome = cache.get_or_build(key, builder)
        with lock:
            results.append(outcome)

    threads = [threading.Thread(target=worker) for _ in range(num_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


def test_herd_builds_exactly_once():
    cache = BitvectorFilterCache(8)
    builds = []
    gate = threading.Event()

    def builder():
        builds.append(threading.get_ident())
        gate.wait(timeout=5)  # hold the herd on the pending event
        return _make_filter()

    timer = threading.Timer(0.05, gate.set)
    timer.start()
    try:
        results = _herd(cache, ("dim", ("id",)), builder, 8)
    finally:
        timer.cancel()

    assert len(builds) == 1
    assert sum(1 for _, was_cached in results if not was_cached) == 1
    assert cache.builds_deduped == 7
    # Every thread got the same published object.
    instances = {id(filter_) for filter_, _ in results}
    assert len(instances) == 1


def test_waiters_rebuild_after_builder_failure():
    cache = BitvectorFilterCache(8)
    attempts = []

    def builder():
        attempts.append(1)
        if len(attempts) == 1:
            raise RuntimeError("first build dies")
        return _make_filter()

    with pytest.raises(RuntimeError):
        cache.get_or_build(("k",), builder)
    # The pending slot was released: the next caller becomes the
    # builder instead of deadlocking on a dead event.
    filter_, was_cached = cache.get_or_build(("k",), builder)
    assert not was_cached
    assert len(attempts) == 2
    assert filter_.num_keys == 64


def test_clear_during_build_is_not_republished():
    cache = BitvectorFilterCache(8)

    def builder():
        cache.clear()  # invalidation lands mid-build
        return _make_filter()

    built, was_cached = cache.get_or_build(("k",), builder)
    assert not was_cached
    assert built.num_keys == 64
    # The generation guard dropped the publish.
    assert ("k",) not in cache


def test_plain_hits_do_not_count_as_deduped():
    cache = BitvectorFilterCache(8)
    cache.get_or_build(("k",), _make_filter)
    _, was_cached = cache.get_or_build(("k",), _make_filter)
    assert was_cached
    assert cache.builds_deduped == 0
