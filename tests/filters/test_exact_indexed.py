"""The indexed ExactFilter: no factorization at probe time.

Acceptance test for the zero-copy execution core: the seed
``ExactFilter.contains`` re-ran ``np.unique`` joint factorization over
the build keys on every probe; the indexed filter factorizes once at
construction and probes via dictionary lookups.
"""

import numpy as np

from repro.filters.exact import ExactFilter
from repro.util import keycodes


def int_col(values):
    return np.array(values, dtype=np.int64)


class TestNoProbeTimeFactorization:
    def test_contains_runs_zero_factorizations(self):
        f = ExactFilter.build([int_col([1, 5, 9]), int_col([2, 4, 6])])
        probes = [int_col([1, 5, 7, 9]), int_col([2, 4, 0, 6])]
        before = keycodes.factorization_count()
        for _ in range(5):
            result = f.contains(probes)
        after = keycodes.factorization_count()
        assert after == before, (
            f"{after - before} factorizations during probes; probes must "
            "use the construction-time dictionaries"
        )
        assert result.tolist() == [True, True, False, True]

    def test_construction_factorizes_each_column_once(self):
        before = keycodes.factorization_count()
        ExactFilter.build([int_col([1, 2]), int_col([3, 4])])
        after = keycodes.factorization_count()
        assert after - before == 2

    def test_legacy_probe_refactorizes(self):
        """The seed baseline path still factorizes per probe (that is
        the behaviour the benchmark measures against)."""
        f = ExactFilter.build([int_col([1, 5, 9])])
        before = keycodes.factorization_count()
        f.contains_legacy([int_col([1, 2, 3])])
        f.contains_legacy([int_col([1, 2, 3])])
        assert keycodes.factorization_count() - before == 2

    def test_legacy_and_indexed_agree(self):
        rng = np.random.default_rng(11)
        build = [int_col(rng.integers(0, 50, 200)),
                 int_col(rng.integers(0, 7, 200))]
        probes = [int_col(rng.integers(-5, 60, 500)),
                  int_col(rng.integers(-2, 9, 500))]
        f = ExactFilter.build(build)
        assert np.array_equal(f.contains(probes), f.contains_legacy(probes))


class TestIndexedEdgeCases:
    def test_string_keys_indexed(self):
        f = ExactFilter.build([np.array(["a", "b", "c"], dtype=object)])
        before = keycodes.factorization_count()
        result = f.contains([np.array(["b", "z", "a"], dtype=object)])
        assert keycodes.factorization_count() == before
        assert result.tolist() == [True, False, True]

    def test_probe_values_outside_build_domain(self):
        f = ExactFilter.build([int_col([10, 20, 30])])
        result = f.contains([int_col([-1000, 10, 25, 10**9])])
        assert result.tolist() == [False, True, False, False]

    def test_packed_member_table_used_for_compact_domains(self):
        f = ExactFilter.build([int_col(range(100))])
        assert f._member_table is not None
        assert f._member_table.count() == 100
        # 1 bit per domain slot, not the bool table's 8.
        assert f._member_table.nbytes <= 100 // 8 + 8

    def test_describe_reports_geometry_in_every_mode(self):
        indexed = ExactFilter.build([int_col(range(100))])
        info = indexed.describe()
        assert info["mode"] == "indexed"
        assert info["member_table_bits"] == 100
        assert info["resident_bytes"] > 0

        floats = ExactFilter.build([np.array([1.0, np.nan])])
        info = floats.describe()
        assert info["mode"] == "float-fallback"
        assert info["resident_bytes"] >= 16  # the retained raw column

        wide = [int_col(np.arange(2**21)) for _ in range(3)]
        overflow = ExactFilter.build(wide)
        info = overflow.describe()
        assert info["mode"] == "overflow-fallback"
        assert info["resident_bytes"] >= sum(c.nbytes for c in wide)

    def test_mixed_dtype_probe(self):
        f = ExactFilter.build([int_col([1, 2, 3])])
        result = f.contains([np.array([1, 4], dtype=np.int32)])
        assert result.tolist() == [True, False]

    def test_empty_build_side(self):
        f = ExactFilter.build([int_col([])])
        assert not f.contains([int_col([1, 2])]).any()
        assert not f.contains_legacy([int_col([1, 2])]).any()


class TestFloatAndExtremeDomains:
    def test_nan_keys_match_legacy_semantics(self):
        """np.unique treats NaN == NaN; float keys must take the joint
        factorization path so indexed and legacy probes agree."""
        build = [np.array([1.0, np.nan, 3.0])]
        probes = [np.array([np.nan, 3.0, 2.0])]
        f = ExactFilter.build(build)
        indexed = f.contains(probes)
        legacy = f.contains_legacy(probes)
        assert np.array_equal(indexed, legacy)
        assert indexed.tolist() == [True, True, False]

    def test_uint64_beyond_int64_does_not_crash(self):
        big = np.array([2**63 + 5, 2**63 + 7], dtype=np.uint64)
        f = ExactFilter.build([big])
        assert f.contains([big]).all()
        probe = np.array([2**63 + 6], dtype=np.uint64)
        assert not f.contains([probe]).any()

    def test_indexed_mode_does_not_retain_raw_columns(self):
        f = ExactFilter.build([int_col([1, 2, 3])])
        assert f._key_columns is None
        assert f._code_set is not None
        # legacy probes still work via dictionary reconstruction
        assert f.contains_legacy([int_col([2, 9])]).tolist() == [True, False]
