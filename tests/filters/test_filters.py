"""Tests for the bitvector filter family."""

import numpy as np
import pytest

from repro.filters import (
    BlockedBloomFilter,
    BloomFilter,
    ExactFilter,
    create_filter,
    FILTER_KINDS,
)


def int_col(values):
    return np.array(values, dtype=np.int64)


class TestExactFilter:
    def test_membership(self):
        f = ExactFilter.build([int_col([1, 2, 3])])
        assert f.contains([int_col([0, 1, 2, 3, 4])]).tolist() == [
            False, True, True, True, False,
        ]

    def test_no_false_positives_guarantee(self):
        f = ExactFilter.build([int_col(range(100))])
        probes = int_col(range(100, 200))
        assert not f.contains([probes]).any()
        assert not f.may_have_false_positives
        assert f.false_positive_rate() == 0.0

    def test_multi_column_tuples(self):
        f = ExactFilter.build([int_col([1, 2]), int_col([10, 20])])
        # (1,20) is not a member even though 1 and 20 each appear
        result = f.contains([int_col([1, 1, 2]), int_col([10, 20, 20])])
        assert result.tolist() == [True, False, True]

    def test_string_keys(self):
        f = ExactFilter.build([np.array(["a", "b"], dtype=object)])
        assert f.contains([np.array(["b", "z"], dtype=object)]).tolist() == [True, False]

    def test_empty_build_side(self):
        f = ExactFilter.build([int_col([])])
        assert not f.contains([int_col([1, 2])]).any()

    def test_num_keys_and_size(self):
        f = ExactFilter.build([int_col([5, 6, 7])])
        assert f.num_keys == 3
        assert f.size_bits == 3 * 64


class TestBloomFilter:
    def test_no_false_negatives(self):
        keys = int_col(np.random.default_rng(0).integers(0, 10**9, 5000))
        f = BloomFilter.build([keys])
        assert f.contains([keys]).all()

    def test_false_positive_rate_reasonable(self):
        rng = np.random.default_rng(1)
        keys = int_col(rng.integers(0, 10**12, 10_000))
        f = BloomFilter.build([keys], bits_per_key=10)
        probes = int_col(rng.integers(10**12, 2 * 10**12, 20_000))
        fp = f.contains([probes]).mean()
        # theoretical ~0.8% at 10 bits/key; allow generous slack
        assert fp < 0.05

    def test_more_bits_fewer_false_positives(self):
        rng = np.random.default_rng(2)
        keys = int_col(rng.integers(0, 10**12, 5000))
        probes = int_col(rng.integers(10**12, 2 * 10**12, 20_000))
        small = BloomFilter.build([keys], bits_per_key=4).contains([probes]).mean()
        large = BloomFilter.build([keys], bits_per_key=16).contains([probes]).mean()
        assert large < small

    def test_fp_estimate_tracks_fill(self):
        keys = int_col(range(1000))
        f = BloomFilter.build([keys], bits_per_key=10)
        assert 0.0 < f.fill_fraction() < 1.0
        assert 0.0 <= f.false_positive_rate() <= 1.0

    def test_empty_filter_rejects_all(self):
        f = BloomFilter.build([int_col([])])
        assert not f.contains([int_col([1])]).any()

    def test_multi_column(self):
        f = BloomFilter.build([int_col([1, 2]), int_col([5, 6])])
        assert f.contains([int_col([1, 2]), int_col([5, 6])]).all()


class TestBlockedBloomFilter:
    def test_no_false_negatives(self):
        keys = int_col(np.random.default_rng(3).integers(0, 10**9, 5000))
        f = BlockedBloomFilter.build([keys])
        assert f.contains([keys]).all()

    def test_false_positive_rate_bounded(self):
        rng = np.random.default_rng(4)
        keys = int_col(rng.integers(0, 10**12, 10_000))
        f = BlockedBloomFilter.build([keys], bits_per_key=12)
        probes = int_col(rng.integers(10**12, 2 * 10**12, 20_000))
        assert f.contains([probes]).mean() < 0.10

    def test_size_reported(self):
        f = BlockedBloomFilter.build([int_col(range(100))], bits_per_key=12)
        assert f.size_bits >= 100 * 12 - 64


class TestRegistry:
    def test_known_kinds(self):
        assert set(FILTER_KINDS) == {"exact", "bloom", "blocked_bloom"}

    @pytest.mark.parametrize("kind", sorted(FILTER_KINDS))
    def test_create_each_kind(self, kind):
        f = create_filter(kind, [int_col([1, 2, 3])])
        assert f.contains([int_col([1])]).all()

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown filter kind"):
            create_filter("cuckoo", [int_col([1])])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            create_filter("exact", [int_col([1, 2]), int_col([1])])


class TestBloomWordPacking:
    def test_bits_packed_into_uint64_words(self):
        f = BloomFilter.build([int_col(range(1000))], bits_per_key=10)
        assert f._words.dtype == np.uint64
        # 8x denser than the seed's bool array: one bit per bit.
        assert f._words.nbytes * 8 < f.size_bits + 64
        assert f.size_bits >= 1000 * 10

    def test_probe_positions_not_copied_to_int64(self):
        # uint64 hash positions index the word array directly; the
        # filter still has no false negatives after the repack.
        rng = np.random.default_rng(9)
        keys = int_col(rng.integers(0, 10**12, 4000))
        f = BloomFilter.build([keys])
        assert f.contains([keys]).all()

    def test_blocked_filter_blocks_stay_uint64(self):
        f = BlockedBloomFilter.build([int_col(range(500))])
        assert f._blocks.dtype == np.uint64
        assert f.contains([int_col(range(500))]).all()
