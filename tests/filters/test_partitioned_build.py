"""Partition-build-then-merge equivalence for every filter kind.

The contract (see :class:`repro.filters.base.BitvectorFilter`): a
filter assembled from per-partition partials under a shared geometry
must be indistinguishable from a serial build over the concatenated
partitions — identical membership answers for the exact filter (plus
identical sorted domains, code set, and dense membership table), and
*bit-identical* word arrays for the hashed kinds.  The parallel
executor's build pipeline rests entirely on this property.
"""

import numpy as np
import pytest

from repro.filters import FILTER_KINDS
from repro.filters.base import BitvectorFilter, merge_key_bounds
from repro.filters.blocked import BlockedBloomFilter
from repro.filters.bloom import BloomFilter
from repro.filters.exact import ExactFilter


def _partition(columns, num_partitions):
    bounds = np.linspace(0, len(columns[0]), num_partitions + 1).astype(int)
    return [
        [column[start:stop] for column in columns]
        for start, stop in zip(bounds[:-1], bounds[1:])
    ]


def _layout_columns(layout: str, rng):
    if layout == "clustered":
        return [np.sort(rng.integers(0, 4000, 30_000))]
    if layout == "shuffled":
        return [rng.integers(0, 4000, 30_000)]
    if layout == "primary_key":
        keys = np.arange(25_000)
        rng.shuffle(keys)
        return [keys]
    if layout == "strings":
        return [
            np.array(
                [f"k{int(v) % 701}" for v in rng.integers(0, 4000, 20_000)],
                dtype=object,
            )
        ]
    if layout == "multi_column":
        keys = rng.integers(0, 500, 25_000)
        return [
            keys,
            np.array([f"s{int(v) % 97}" for v in keys], dtype=object),
        ]
    raise AssertionError(layout)


_LAYOUTS = ("clustered", "shuffled", "primary_key", "strings", "multi_column")


def _probe_for(columns, rng):
    probe_keys = rng.integers(-100, 6000, 8_000)
    probe = [probe_keys]
    for column in columns[1:]:
        probe.append(
            np.array([f"s{int(v) % 101}" for v in probe_keys], dtype=object)
        )
    if columns[0].dtype.kind in "OUS":
        probe = [
            np.array([f"k{int(v) % 719}" for v in probe_keys], dtype=object)
        ]
    return probe


@pytest.mark.parametrize("num_partitions", [1, 4])
@pytest.mark.parametrize("layout", _LAYOUTS)
@pytest.mark.parametrize("kind", sorted(FILTER_KINDS))
def test_partitioned_build_matches_serial(kind, layout, num_partitions):
    rng = np.random.default_rng(hash((kind, layout)) % (2**32))
    columns = _layout_columns(layout, rng)
    probe = _probe_for(columns, rng)
    filter_class = FILTER_KINDS[kind]
    serial = filter_class.build(columns)
    merged = filter_class.build_partitioned(
        _partition(columns, num_partitions)
    )

    assert merged.num_keys == serial.num_keys
    assert merged.size_bits == serial.size_bits
    assert merged.key_bounds() == serial.key_bounds()
    # Identical membership answers, byte for byte — including hash
    # collisions for the approximate kinds (same geometry => same
    # bits => same false positives).
    assert np.array_equal(serial.contains(probe), merged.contains(probe))
    assert serial.false_positive_rate() == merged.false_positive_rate()


@pytest.mark.parametrize("num_partitions", [1, 4])
@pytest.mark.parametrize("layout", _LAYOUTS)
def test_bloom_variants_merge_bit_identical(layout, num_partitions):
    rng = np.random.default_rng(hash(layout) % (2**32))
    columns = _layout_columns(layout, rng)
    parts = _partition(columns, num_partitions)
    serial_bloom = BloomFilter.build(columns)
    merged_bloom = BloomFilter.build_partitioned(parts)
    assert np.array_equal(serial_bloom._words, merged_bloom._words)
    serial_blocked = BlockedBloomFilter.build(columns)
    merged_blocked = BlockedBloomFilter.build_partitioned(parts)
    assert np.array_equal(serial_blocked._blocks, merged_blocked._blocks)


@pytest.mark.parametrize("num_partitions", [1, 4])
def test_exact_merge_internals_match_serial(num_partitions):
    rng = np.random.default_rng(9)
    columns = _layout_columns("shuffled", rng)
    serial = ExactFilter.build(columns)
    merged = ExactFilter.build_partitioned(
        _partition(columns, num_partitions)
    )
    assert np.array_equal(serial._code_set, merged._code_set)
    for serial_dict, merged_dict in zip(
        serial._dictionaries, merged._dictionaries
    ):
        assert np.array_equal(serial_dict.values, merged_dict.values)
    assert (serial._member_table is None) == (merged._member_table is None)
    if serial._member_table is not None:
        # The merge OR-combines per-partition packed bitmaps; the words
        # must come out bit-identical to the serial build's scatter.
        assert serial._member_table.num_bits == merged._member_table.num_bits
        assert np.array_equal(
            serial._member_table.words, merged._member_table.words
        )


@pytest.mark.parametrize("num_partitions", [2, 4])
def test_exact_multi_column_or_merge_is_word_identical(num_partitions):
    """Multi-column merge takes the packed OR path: each partial's
    translated codes scatter into a per-partition bitvector and the
    words OR together — no sorted-union pass.  The dense two-column
    geometry here (256 x 256 domain, ~30k distinct tuples) is required:
    the sparse layouts of the parametrized suite never build a packed
    member table, so this is the only coverage of ``ior_words`` inside
    the exact merge."""
    rng = np.random.default_rng(17)
    columns = [
        rng.integers(0, 256, 40_000),
        rng.integers(0, 256, 40_000),
    ]
    serial = ExactFilter.build(columns)
    assert serial._member_table is not None, (
        "geometry no longer builds a packed member table; "
        "the OR-merge path is untested"
    )
    merged = ExactFilter.build_partitioned(
        _partition(columns, num_partitions)
    )
    assert merged._member_table is not None
    assert np.array_equal(
        serial._member_table.words, merged._member_table.words
    )
    # The merged sorted code set falls out of the OR'd words via
    # select: it must be both internally consistent and serial-equal.
    assert np.array_equal(
        merged._code_set, merged._member_table.positions()
    )
    assert np.array_equal(serial._code_set, merged._code_set)
    probe = [rng.integers(-10, 300, 8_000) for _ in range(2)]
    assert np.array_equal(serial.contains(probe), merged.contains(probe))


def test_exact_float_nan_fallback_matches_serial():
    """Float keys (NaN parity mode) merge by raw-column concatenation —
    the serial build's exact input."""
    rng = np.random.default_rng(3)
    keys = rng.integers(0, 900, 12_000).astype(float)
    keys[::37] = np.nan
    probe = [rng.integers(-5, 1000, 5_000).astype(float)]
    probe[0][::17] = np.nan
    serial = ExactFilter.build([keys])
    merged = ExactFilter.build_partitioned(_partition([keys], 4))
    assert np.array_equal(serial.contains(probe), merged.contains(probe))
    assert serial.key_bounds() is None and merged.key_bounds() is None


def test_bloom_geometry_is_total_key_count():
    """Partials must share the geometry of the *total* build, not their
    own partition sizes — otherwise the OR-merge would be meaningless."""
    rng = np.random.default_rng(5)
    columns = [rng.integers(0, 1000, 10_000)]
    geometry = BloomFilter.build_geometry(len(columns[0]))
    partial = BloomFilter.build_partial(
        [columns[0][:100]], geometry
    )
    assert partial.size_bits == geometry["num_bits"]
    own = BloomFilter.build([columns[0][:100]])
    assert own.size_bits != partial.size_bits


def test_merge_rejects_geometry_mismatch():
    rng = np.random.default_rng(6)
    small = BloomFilter.build([rng.integers(0, 10, 50)])
    large = BloomFilter.build([rng.integers(0, 10, 5_000)])
    with pytest.raises(ValueError):
        BloomFilter.merge([small, large], 5_050)


def test_unsupported_kind_raises():
    class Opaque(BitvectorFilter):
        @classmethod
        def build(cls, key_columns, **options):
            return cls()

        def contains(self, key_columns):  # pragma: no cover - stub
            return np.ones(len(key_columns[0]), dtype=bool)

        @property
        def size_bits(self):
            return 0

        @property
        def num_keys(self):
            return 0

    assert not Opaque.supports_partitioned_build
    with pytest.raises(NotImplementedError):
        Opaque.build_partitioned([[np.arange(4)]])


def test_merge_key_bounds_discipline():
    assert merge_key_bounds([[(1, 5)], [(0, 9)]]) == [(0, 9)]
    # A column unavailable in any partition stays unavailable.
    assert merge_key_bounds([[(1, 5)], [None]]) == [None]
    assert merge_key_bounds([[(1, 5)], None]) is None
    # Cross-partition mixed types: no total order, no bounds — the
    # same answer a whole-column min/max (TypeError) would give.
    assert merge_key_bounds([[(1, 5)], [("a", "b")]]) == [None]
