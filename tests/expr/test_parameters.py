"""Parameter substitution and structural keys (service-layer hooks)."""

from __future__ import annotations

from repro.expr.expressions import (
    And,
    Between,
    Comparison,
    InList,
    Like,
    Literal,
    Not,
    Or,
    Parameter,
    col,
    lit,
    structural_key,
    substitute_parameters,
)


def _template():
    return And(
        (
            Comparison("=", col("c", "region"), Literal(Parameter(0))),
            Between(col("c", "age"), Literal(Parameter(1)), Literal(Parameter(2))),
            InList(col("c", "segment"), (Parameter(3), Parameter(4))),
            Or((Like(col("c", "name"), "A%"), Not(Comparison("<", col("c", "age"), lit(0))))),
        )
    )


def test_substitute_fills_every_placeholder():
    filled = substitute_parameters(_template(), ("ASIA", 18, 65, "AUTO", "HOME"))
    assert "?" not in str(filled)
    assert "'ASIA'" in str(filled)
    assert "18" in str(filled) and "65" in str(filled)
    assert "'AUTO'" in str(filled) and "'HOME'" in str(filled)


def test_substitute_does_not_mutate_template():
    template = _template()
    before = str(template)
    substitute_parameters(template, ("x", 1, 2, "a", "b"))
    assert str(template) == before


def test_substitute_passes_plain_values_through():
    plain = Comparison(">", col("t", "x"), lit(5))
    assert substitute_parameters(plain, ()) == plain


def test_structural_key_distinguishes_values_and_structure():
    a = Comparison("=", col("c", "region"), lit("ASIA"))
    b = Comparison("=", col("c", "region"), lit("EUROPE"))
    c = Comparison("<>", col("c", "region"), lit("ASIA"))
    keys = {structural_key(a), structural_key(b), structural_key(c)}
    assert len(keys) == 3


def test_structural_key_alias_free_mode_merges_aliases():
    a = Comparison("=", col("c", "region"), lit("ASIA"))
    b = Comparison("=", col("cust", "region"), lit("ASIA"))
    assert structural_key(a) != structural_key(b)
    assert structural_key(a, include_aliases=False) == structural_key(
        b, include_aliases=False
    )


def test_structural_key_none_predicate():
    assert structural_key(None) is None


def test_structural_key_is_hashable():
    hash(structural_key(_template()))
