"""Tests for vectorized predicate evaluation."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.expr.eval import evaluate_predicate, like_to_regex
from repro.expr.expressions import (
    And,
    Between,
    Comparison,
    InList,
    Like,
    Not,
    Or,
    col,
    lit,
)

_COLUMNS = {
    ("t", "x"): np.array([1, 5, 10, 15]),
    ("t", "y"): np.array([1, 4, 10, 20]),
    ("t", "s"): np.array(["apple", "grape", "ripe", "plum"], dtype=object),
}


def provider(alias, name):
    return _COLUMNS[(alias, name)]


def evaluate(expr):
    return evaluate_predicate(expr, provider, 4).tolist()


class TestComparisons:
    def test_less_than(self):
        assert evaluate(Comparison("<", col("t", "x"), lit(10))) == [True, True, False, False]

    def test_column_vs_column(self):
        assert evaluate(Comparison("=", col("t", "x"), col("t", "y"))) == [True, False, True, False]

    def test_all_operators(self):
        assert evaluate(Comparison("<=", col("t", "x"), lit(5))) == [True, True, False, False]
        assert evaluate(Comparison(">", col("t", "x"), lit(5))) == [False, False, True, True]
        assert evaluate(Comparison(">=", col("t", "x"), lit(5))) == [False, True, True, True]
        assert evaluate(Comparison("<>", col("t", "x"), lit(5))) == [True, False, True, True]

    def test_scalar_comparison_broadcasts(self):
        assert evaluate(Comparison("=", lit(1), lit(1))) == [True] * 4


class TestCompound:
    def test_between_inclusive(self):
        assert evaluate(Between(col("t", "x"), lit(5), lit(10))) == [False, True, True, False]

    def test_in_list(self):
        assert evaluate(InList(col("t", "x"), (1, 15))) == [True, False, False, True]

    def test_empty_in_list(self):
        assert evaluate(InList(col("t", "x"), ())) == [False] * 4

    def test_and_or_not(self):
        a = Comparison(">", col("t", "x"), lit(1))
        b = Comparison("<", col("t", "x"), lit(15))
        assert evaluate(And((a, b))) == [False, True, True, False]
        assert evaluate(Or((Not(a), Not(b)))) == [True, False, False, True]


class TestLike:
    def test_contains(self):
        assert evaluate(Like(col("t", "s"), "%pe%")) == [False, True, True, False]

    def test_prefix(self):
        assert evaluate(Like(col("t", "s"), "p%")) == [False, False, False, True]

    def test_underscore(self):
        assert evaluate(Like(col("t", "s"), "ri_e")) == [False, False, True, False]

    def test_regex_chars_escaped(self):
        assert like_to_regex("a.c").match("a.c")
        assert not like_to_regex("a.c").match("abc")

    def test_like_on_literal_rejected(self):
        with pytest.raises(ExecutionError):
            evaluate(Like(lit("x"), "%"))

    def test_anchored(self):
        # no % => exact match only
        assert evaluate(Like(col("t", "s"), "apple")) == [True, False, False, False]


class TestInListPromotionGuard:
    def test_huge_literal_does_not_match_via_float_rounding(self):
        """int64 2**63-1 vs an IN list containing 2**63: float64
        promotion would make them equal; the exact loop must win."""
        import numpy as np
        from repro.expr.eval import evaluate_predicate
        from repro.expr.expressions import InList, col

        column = np.array([2**63 - 1, 5], dtype=np.int64)
        predicate = InList(col("t", "x"), (0, 2**63))
        result = evaluate_predicate(
            predicate, lambda a, c: column, len(column)
        )
        assert result.tolist() == [False, False]

    def test_float_column_in_list_fast_path(self):
        import numpy as np
        from repro.expr.eval import evaluate_predicate
        from repro.expr.expressions import InList, col

        column = np.array([1.5, 2.0, 3.0])
        predicate = InList(col("t", "x"), (2, 3))
        result = evaluate_predicate(
            predicate, lambda a, c: column, len(column)
        )
        assert result.tolist() == [False, True, True]
