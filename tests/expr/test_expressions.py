"""Tests for predicate expression trees."""

import pytest

from repro.expr.expressions import (
    And,
    Between,
    Comparison,
    InList,
    Like,
    Not,
    Or,
    col,
    combine_and,
    conjuncts,
    lit,
    referenced_aliases,
    referenced_columns,
)


class TestConstruction:
    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison("=~", col("a", "x"), lit(1))

    def test_str_rendering(self):
        expr = Comparison("<", col("a", "x"), lit(5))
        assert str(expr) == "a.x < 5"
        assert str(Like(col("a", "s"), "%ge%")) == "a.s LIKE '%ge%'"
        assert "BETWEEN" in str(Between(col("a", "x"), lit(1), lit(2)))
        assert "IN" in str(InList(col("a", "x"), (1, 2)))

    def test_string_literal_quoted(self):
        assert str(lit("hi")) == "'hi'"


class TestAnalysis:
    def test_referenced_columns(self):
        expr = And(
            (
                Comparison("=", col("a", "x"), col("b", "y")),
                Like(col("a", "s"), "z%"),
            )
        )
        assert referenced_columns(expr) == {("a", "x"), ("b", "y"), ("a", "s")}
        assert referenced_aliases(expr) == {"a", "b"}

    def test_conjuncts_flattens_nested_ands(self):
        inner = And((Comparison("<", col("a", "x"), lit(1)),
                     Comparison(">", col("a", "x"), lit(0))))
        outer = And((inner, Like(col("a", "s"), "q%")))
        assert len(conjuncts(outer)) == 3

    def test_conjuncts_of_none(self):
        assert conjuncts(None) == []

    def test_conjuncts_of_or_is_opaque(self):
        expr = Or((Comparison("<", col("a", "x"), lit(1)),
                   Comparison(">", col("a", "x"), lit(5))))
        assert conjuncts(expr) == [expr]

    def test_combine_and(self):
        a = Comparison("<", col("a", "x"), lit(1))
        b = Comparison(">", col("a", "x"), lit(0))
        assert combine_and([]) is None
        assert combine_and([a]) is a
        combined = combine_and([a, b])
        assert isinstance(combined, And)
        assert len(combined.operands) == 2

    def test_walk_visits_all(self):
        expr = Not(And((Comparison("=", col("a", "x"), lit(1)),)))
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds == ["Not", "And", "Comparison", "ColumnRef", "Literal"]
