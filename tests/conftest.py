"""Shared fixtures: small databases and query specs used across suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro.expr.expressions import Comparison, col, lit
from repro.query.spec import Aggregate, JoinPredicate, QuerySpec, RelationRef
from repro.storage.database import Database
from repro.storage.schema import ForeignKey
from repro.storage.table import Table


@pytest.fixture(scope="session")
def star_db() -> Database:
    """A small 2-dimension star database with skew-free FKs."""
    rng = np.random.default_rng(42)
    n_dim, n_fact = 100, 5000
    database = Database("star_test")
    database.add_table(
        Table.from_arrays(
            "dim1",
            {"id": np.arange(n_dim), "v": rng.integers(0, 10, n_dim)},
            key=("id",),
        )
    )
    database.add_table(
        Table.from_arrays(
            "dim2",
            {"id": np.arange(n_dim), "w": rng.integers(0, 10, n_dim)},
            key=("id",),
        )
    )
    database.add_table(
        Table.from_arrays(
            "fact",
            {
                "fk1": rng.integers(0, n_dim, n_fact),
                "fk2": rng.integers(0, n_dim, n_fact),
                "m": rng.normal(size=n_fact),
            },
        )
    )
    database.add_foreign_key(ForeignKey("fact", ("fk1",), "dim1", ("id",)))
    database.add_foreign_key(ForeignKey("fact", ("fk2",), "dim2", ("id",)))
    return database


@pytest.fixture(scope="session")
def star_spec() -> QuerySpec:
    """COUNT(*) star query over ``star_db`` with one dim predicate."""
    return QuerySpec(
        name="star_q",
        relations=(
            RelationRef("f", "fact"),
            RelationRef("d1", "dim1"),
            RelationRef("d2", "dim2"),
        ),
        join_predicates=(
            JoinPredicate("f", ("fk1",), "d1", ("id",)),
            JoinPredicate("f", ("fk2",), "d2", ("id",)),
        ),
        local_predicates={"d1": Comparison("<", col("d1", "v"), lit(3))},
        aggregates=(Aggregate("count", label="cnt"),),
    )


@pytest.fixture(scope="session")
def star_expected_count(star_db: Database) -> int:
    """Reference answer for ``star_spec`` computed without the engine."""
    dim1 = star_db.table("dim1")
    fact = star_db.table("fact")
    selected = dim1.column("id")[dim1.column("v") < 3]
    return int(np.isin(fact.column("fk1"), selected).sum())


@pytest.fixture(scope="session")
def tpcds_tiny():
    from repro.workloads import tpcds_lite

    return tpcds_lite.build(scale=0.02)


@pytest.fixture(scope="session")
def job_tiny():
    from repro.workloads import job_lite

    return job_lite.build(scale=0.02)


@pytest.fixture(scope="session")
def customer_tiny():
    from repro.workloads import customer_lite

    return customer_lite.build(scale=0.05)
