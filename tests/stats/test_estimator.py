"""Tests for the cardinality estimator."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.expr.expressions import (
    And,
    Between,
    Comparison,
    InList,
    Like,
    Not,
    Or,
    col,
    lit,
)
from repro.stats.estimator import CardinalityEstimator
from repro.storage.database import Database
from repro.storage.table import Table


@pytest.fixture(scope="module")
def db() -> Database:
    rng = np.random.default_rng(3)
    database = Database("est")
    database.add_table(
        Table.from_arrays(
            "t",
            {
                "id": np.arange(10_000),
                "bucket": rng.integers(0, 100, 10_000),
                "price": rng.uniform(0, 1000, 10_000),
                "label": np.array(
                    [f"{'red' if i % 4 == 0 else 'blue'}_{i % 7}" for i in range(10_000)],
                    dtype=object,
                ),
            },
            key=("id",),
        )
    )
    return database


@pytest.fixture(scope="module")
def estimator(db) -> CardinalityEstimator:
    return CardinalityEstimator(db, {"a": "t", "b": "t"})


class TestPredicateSelectivity:
    def test_equality_uses_distinct_count(self, estimator):
        sel = estimator.predicate_selectivity(Comparison("=", col("a", "bucket"), lit(5)))
        assert sel == pytest.approx(0.01, rel=0.6)

    def test_range_uses_histogram(self, estimator):
        sel = estimator.predicate_selectivity(Comparison("<", col("a", "price"), lit(250.0)))
        assert sel == pytest.approx(0.25, abs=0.05)

    def test_reversed_comparison(self, estimator):
        # literal < column  is  column > literal
        sel = estimator.predicate_selectivity(Comparison("<", lit(750.0), col("a", "price")))
        assert sel == pytest.approx(0.25, abs=0.05)

    def test_between(self, estimator):
        sel = estimator.predicate_selectivity(
            Between(col("a", "price"), lit(100.0), lit(300.0))
        )
        assert sel == pytest.approx(0.2, abs=0.05)

    def test_in_list_additive(self, estimator):
        one = estimator.predicate_selectivity(Comparison("=", col("a", "bucket"), lit(1)))
        three = estimator.predicate_selectivity(
            InList(col("a", "bucket"), (1, 2, 3))
        )
        assert three == pytest.approx(3 * one, rel=0.5)

    def test_like_sample_based(self, estimator):
        sel = estimator.predicate_selectivity(Like(col("a", "label"), "red%"))
        assert sel == pytest.approx(0.25, abs=0.07)

    def test_and_independence(self, estimator):
        a = Comparison("<", col("a", "price"), lit(500.0))
        b = Comparison("=", col("a", "bucket"), lit(5))
        combined = estimator.predicate_selectivity(And((a, b)))
        product = estimator.predicate_selectivity(a) * estimator.predicate_selectivity(b)
        assert combined == pytest.approx(product)

    def test_or_and_not(self, estimator):
        a = Comparison("<", col("a", "price"), lit(500.0))
        sel_not = estimator.predicate_selectivity(Not(a))
        assert sel_not == pytest.approx(1 - estimator.predicate_selectivity(a))
        sel_or = estimator.predicate_selectivity(Or((a, Not(a))))
        assert 0.7 <= sel_or <= 1.0

    def test_neq(self, estimator):
        sel = estimator.predicate_selectivity(Comparison("<>", col("a", "bucket"), lit(5)))
        assert sel == pytest.approx(0.99, abs=0.02)

    def test_unknown_alias_raises(self, estimator):
        with pytest.raises(QueryError):
            estimator.base_cardinality("zz", None)


class TestJoinEstimates:
    def test_base_cardinality_no_predicate(self, estimator):
        assert estimator.base_cardinality("a", None) == 10_000

    def test_join_selectivity_key_join(self, estimator):
        sel = estimator.join_selectivity("a", ("id",), "b", ("id",))
        assert sel == pytest.approx(1e-4)

    def test_join_cardinality_self_key_join(self, estimator):
        card = estimator.join_cardinality(
            10_000, 10_000, "a", ("id",), "b", ("id",)
        )
        assert card == pytest.approx(10_000)

    def test_semijoin_full_containment(self, estimator):
        sel = estimator.semijoin_selectivity("a", ("bucket",), "b", ("bucket",), 1.0)
        assert sel == pytest.approx(1.0)

    def test_semijoin_reduced_build(self, estimator):
        sel = estimator.semijoin_selectivity("a", ("id",), "b", ("id",), 0.1)
        assert sel == pytest.approx(0.1, rel=0.1)

    def test_multi_column_join_selectivity(self, estimator):
        single = estimator.join_selectivity("a", ("bucket",), "b", ("bucket",))
        double = estimator.join_selectivity(
            "a", ("bucket", "bucket"), "b", ("bucket", "bucket")
        )
        assert double == pytest.approx(single * single)


@pytest.fixture(scope="module")
def nan_db() -> Database:
    """Columns with degenerate statistics: all-NaN, part-NaN, constant."""
    database = Database("est_nan")
    half = np.arange(1000, dtype=np.float64)
    half[::2] = np.nan
    database.add_table(
        Table.from_arrays(
            "n",
            {
                "all_nan": np.full(1000, np.nan),
                "half_nan": half,
                "constant": np.zeros(1000, dtype=np.int64),
                "id": np.arange(1000),
            },
            key=("id",),
        )
    )
    return database


@pytest.fixture(scope="module")
def nan_estimator(nan_db) -> CardinalityEstimator:
    return CardinalityEstimator(nan_db, {"n": "n"})


class TestEdgeCases:
    def test_all_nan_column_comparison_stays_bounded(self, nan_estimator):
        for op in ("<", "<=", ">", ">=", "=", "<>"):
            sel = nan_estimator.predicate_selectivity(
                Comparison(op, col("n", "all_nan"), lit(5.0))
            )
            assert 0.0 <= sel <= 1.0, op

    def test_half_nan_column_comparison_stays_bounded(self, nan_estimator):
        sel = nan_estimator.predicate_selectivity(
            Comparison("<", col("n", "half_nan"), lit(500.0))
        )
        assert 0.0 <= sel <= 1.0

    def test_all_nan_base_cardinality_floor(self, nan_estimator):
        rows = nan_estimator.base_cardinality(
            "n", Comparison("=", col("n", "all_nan"), lit(1.0))
        )
        assert rows >= 1.0

    def test_constant_column_equality(self, nan_estimator):
        sel = nan_estimator.predicate_selectivity(
            Comparison("=", col("n", "constant"), lit(0))
        )
        assert sel == pytest.approx(1.0, abs=0.01)

    def test_empty_in_list_is_zero(self, estimator):
        sel = estimator.predicate_selectivity(InList(col("a", "bucket"), ()))
        assert sel == 0.0

    def test_single_element_in_matches_equality(self, estimator):
        eq = estimator.predicate_selectivity(
            Comparison("=", col("a", "bucket"), lit(7))
        )
        one = estimator.predicate_selectivity(InList(col("a", "bucket"), (7,)))
        assert one == pytest.approx(eq)

    def test_like_without_wildcards_acts_like_equality(self, estimator):
        # 'red_0' hits rows where i % 4 == 0 and i % 7 == 0, i.e. ~1/28.
        sel = estimator.predicate_selectivity(Like(col("a", "label"), "red_0"))
        assert sel == pytest.approx(1 / 28, abs=0.05)
        prefix = estimator.predicate_selectivity(Like(col("a", "label"), "red%"))
        assert sel < prefix

    def test_column_on_right_ge_le(self, estimator):
        # 750 >= price  is  price <= 750; 250 <= price  is  price >= 250.
        ge = estimator.predicate_selectivity(
            Comparison(">=", lit(750.0), col("a", "price"))
        )
        assert ge == pytest.approx(0.75, abs=0.05)
        le = estimator.predicate_selectivity(
            Comparison("<=", lit(250.0), col("a", "price"))
        )
        assert le == pytest.approx(0.75, abs=0.05)

    def test_zone_map_skip_fraction_without_resident_maps(self, estimator):
        # Nothing has executed against this database, so no synopsis is
        # resident and the estimate must be exactly the cold-path 0.0.
        predicate = Comparison("<", col("a", "id"), lit(10))
        assert estimator.zone_map_skip_fraction("a", predicate) == 0.0

    def test_zone_map_skip_fraction_unknown_alias(self, estimator):
        predicate = Comparison("<", col("zz", "id"), lit(10))
        assert estimator.zone_map_skip_fraction("zz", predicate) == 0.0

    def test_bitvector_zone_skip_without_resident_maps(self, estimator):
        sel = estimator.bitvector_zone_skip_fraction(
            "a", ("id",), "b", ("id",)
        )
        assert sel == 0.0
