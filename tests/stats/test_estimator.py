"""Tests for the cardinality estimator."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.expr.expressions import (
    And,
    Between,
    Comparison,
    InList,
    Like,
    Not,
    Or,
    col,
    lit,
)
from repro.stats.estimator import CardinalityEstimator
from repro.storage.database import Database
from repro.storage.table import Table


@pytest.fixture(scope="module")
def db() -> Database:
    rng = np.random.default_rng(3)
    database = Database("est")
    database.add_table(
        Table.from_arrays(
            "t",
            {
                "id": np.arange(10_000),
                "bucket": rng.integers(0, 100, 10_000),
                "price": rng.uniform(0, 1000, 10_000),
                "label": np.array(
                    [f"{'red' if i % 4 == 0 else 'blue'}_{i % 7}" for i in range(10_000)],
                    dtype=object,
                ),
            },
            key=("id",),
        )
    )
    return database


@pytest.fixture(scope="module")
def estimator(db) -> CardinalityEstimator:
    return CardinalityEstimator(db, {"a": "t", "b": "t"})


class TestPredicateSelectivity:
    def test_equality_uses_distinct_count(self, estimator):
        sel = estimator.predicate_selectivity(Comparison("=", col("a", "bucket"), lit(5)))
        assert sel == pytest.approx(0.01, rel=0.6)

    def test_range_uses_histogram(self, estimator):
        sel = estimator.predicate_selectivity(Comparison("<", col("a", "price"), lit(250.0)))
        assert sel == pytest.approx(0.25, abs=0.05)

    def test_reversed_comparison(self, estimator):
        # literal < column  is  column > literal
        sel = estimator.predicate_selectivity(Comparison("<", lit(750.0), col("a", "price")))
        assert sel == pytest.approx(0.25, abs=0.05)

    def test_between(self, estimator):
        sel = estimator.predicate_selectivity(
            Between(col("a", "price"), lit(100.0), lit(300.0))
        )
        assert sel == pytest.approx(0.2, abs=0.05)

    def test_in_list_additive(self, estimator):
        one = estimator.predicate_selectivity(Comparison("=", col("a", "bucket"), lit(1)))
        three = estimator.predicate_selectivity(
            InList(col("a", "bucket"), (1, 2, 3))
        )
        assert three == pytest.approx(3 * one, rel=0.5)

    def test_like_sample_based(self, estimator):
        sel = estimator.predicate_selectivity(Like(col("a", "label"), "red%"))
        assert sel == pytest.approx(0.25, abs=0.07)

    def test_and_independence(self, estimator):
        a = Comparison("<", col("a", "price"), lit(500.0))
        b = Comparison("=", col("a", "bucket"), lit(5))
        combined = estimator.predicate_selectivity(And((a, b)))
        product = estimator.predicate_selectivity(a) * estimator.predicate_selectivity(b)
        assert combined == pytest.approx(product)

    def test_or_and_not(self, estimator):
        a = Comparison("<", col("a", "price"), lit(500.0))
        sel_not = estimator.predicate_selectivity(Not(a))
        assert sel_not == pytest.approx(1 - estimator.predicate_selectivity(a))
        sel_or = estimator.predicate_selectivity(Or((a, Not(a))))
        assert 0.7 <= sel_or <= 1.0

    def test_neq(self, estimator):
        sel = estimator.predicate_selectivity(Comparison("<>", col("a", "bucket"), lit(5)))
        assert sel == pytest.approx(0.99, abs=0.02)

    def test_unknown_alias_raises(self, estimator):
        with pytest.raises(QueryError):
            estimator.base_cardinality("zz", None)


class TestJoinEstimates:
    def test_base_cardinality_no_predicate(self, estimator):
        assert estimator.base_cardinality("a", None) == 10_000

    def test_join_selectivity_key_join(self, estimator):
        sel = estimator.join_selectivity("a", ("id",), "b", ("id",))
        assert sel == pytest.approx(1e-4)

    def test_join_cardinality_self_key_join(self, estimator):
        card = estimator.join_cardinality(
            10_000, 10_000, "a", ("id",), "b", ("id",)
        )
        assert card == pytest.approx(10_000)

    def test_semijoin_full_containment(self, estimator):
        sel = estimator.semijoin_selectivity("a", ("bucket",), "b", ("bucket",), 1.0)
        assert sel == pytest.approx(1.0)

    def test_semijoin_reduced_build(self, estimator):
        sel = estimator.semijoin_selectivity("a", ("id",), "b", ("id",), 0.1)
        assert sel == pytest.approx(0.1, rel=0.1)

    def test_multi_column_join_selectivity(self, estimator):
        single = estimator.join_selectivity("a", ("bucket",), "b", ("bucket",))
        double = estimator.join_selectivity(
            "a", ("bucket", "bucket"), "b", ("bucket", "bucket")
        )
        assert double == pytest.approx(single * single)
