"""Tests for equi-depth histograms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.histogram import EquiDepthHistogram


class TestBuild:
    def test_counts_sum_to_total(self):
        values = np.random.default_rng(0).normal(size=1000)
        hist = EquiDepthHistogram.build(values, num_buckets=16)
        assert hist.counts.sum() == 1000

    def test_empty_input(self):
        hist = EquiDepthHistogram.build(np.array([]))
        assert hist.total_rows == 0
        assert hist.selectivity_le(5.0) == 0.5  # uninformed default

    def test_constant_column(self):
        hist = EquiDepthHistogram.build(np.full(100, 7.0))
        assert hist.selectivity_eq(7.0) == pytest.approx(1.0)
        assert hist.selectivity_le(7.0) == pytest.approx(1.0)
        assert hist.selectivity_le(6.0) == 0.0


class TestRangeSelectivity:
    def test_uniform_midpoint(self):
        values = np.arange(10_000, dtype=np.float64)
        hist = EquiDepthHistogram.build(values, num_buckets=32)
        assert hist.selectivity_le(4999.5) == pytest.approx(0.5, abs=0.02)

    def test_bounds(self):
        values = np.arange(100, dtype=np.float64)
        hist = EquiDepthHistogram.build(values)
        assert hist.selectivity_le(-1) == 0.0
        assert hist.selectivity_le(1000) == 1.0

    def test_range_selectivity_monotone(self):
        values = np.random.default_rng(1).uniform(0, 100, 5000)
        hist = EquiDepthHistogram.build(values)
        narrow = hist.selectivity_range(40, 50)
        wide = hist.selectivity_range(20, 70)
        assert 0 <= narrow <= wide <= 1

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_property_le_monotone_and_bounded(self, values):
        hist = EquiDepthHistogram.build(np.array(values))
        points = sorted([min(values), max(values), 0.0])
        sels = [hist.selectivity_le(p) for p in points]
        assert all(0.0 <= s <= 1.0 for s in sels)
        assert sels == sorted(sels)


class TestEqSelectivity:
    def test_frequent_value(self):
        values = np.concatenate([np.full(900, 5.0), np.arange(100)])
        hist = EquiDepthHistogram.build(values)
        assert hist.selectivity_eq(5.0) > 0.1

    def test_absent_value_out_of_range(self):
        hist = EquiDepthHistogram.build(np.arange(100, dtype=np.float64))
        assert hist.selectivity_eq(1e9) == 0.0
