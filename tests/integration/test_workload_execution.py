"""End-to-end execution of every workload query under every pipeline.

The strongest integration guarantee in the suite: for each workload, a
sample of queries (and all of tpcds) is optimized by each pipeline and
executed; all pipelines must return identical answers.  With exact
filters any divergence is a planner or executor bug.
"""

import numpy as np
import pytest

from repro.engine.executor import Executor
from repro.optimizer.pipelines import optimize_query

_PIPELINES = ("original", "bqo", "dp", "original_nobv", "bqo_allfilters")


def _checksum(result) -> float:
    from repro.bench.harness import _checksum as harness_checksum

    return harness_checksum(result)


class TestCrossPipelineConsistency:
    def test_tpcds_all_queries(self, tpcds_tiny):
        db, queries = tpcds_tiny
        executor = Executor(db)
        for spec in queries:
            values = set()
            for pipeline in _PIPELINES:
                optimized = optimize_query(db, spec, pipeline)
                result = executor.execute(optimized.plan)
                values.add(round(_checksum(result), 6))
            assert len(values) == 1, f"{spec.name}: pipelines disagree"

    def test_job_sample(self, job_tiny):
        db, queries = job_tiny
        executor = Executor(db)
        for spec in queries[::3]:
            values = set()
            for pipeline in ("original", "bqo", "dp"):
                optimized = optimize_query(db, spec, pipeline)
                values.add(round(_checksum(executor.execute(optimized.plan)), 6))
            assert len(values) == 1, f"{spec.name}: pipelines disagree"

    def test_customer_sample(self, customer_tiny):
        db, queries = customer_tiny
        executor = Executor(db)
        for spec in queries[::4]:
            values = set()
            for pipeline in ("original", "bqo"):
                optimized = optimize_query(db, spec, pipeline)
                values.add(round(_checksum(executor.execute(optimized.plan)), 6))
            assert len(values) == 1, f"{spec.name}: pipelines disagree"


class TestFilterKindConsistency:
    @pytest.mark.parametrize("filter_kind", ("exact", "bloom", "blocked_bloom"))
    def test_answers_independent_of_filter_kind(self, tpcds_tiny, filter_kind):
        db, queries = tpcds_tiny
        executor = Executor(db, filter_kind=filter_kind)
        reference = Executor(db)
        for spec in queries[:6]:
            optimized = optimize_query(db, spec, "bqo")
            got = _checksum(executor.execute(optimized.plan))
            expected = _checksum(reference.execute(optimized.plan))
            assert np.isclose(got, expected)


class TestAnswerAgainstBruteForce:
    def test_count_star_queries_match_numpy_reference(self, tpcds_tiny):
        """Independently recompute two known queries with raw numpy."""
        db, queries = tpcds_tiny
        executor = Executor(db)

        # ds_q01: store_sales x date_dim, d_year = 2000
        spec = next(q for q in queries if q.name == "ds_q01")
        result = executor.execute(optimize_query(db, spec, "bqo").plan)
        ss = db.table("store_sales")
        dd = db.table("date_dim")
        keys_2000 = dd.column("d_date_sk")[dd.column("d_year") == 2000]
        expected = int(np.isin(ss.column("ss_sold_date_sk"), keys_2000).sum())
        assert result.scalar("cnt") == expected

        # ds_q09: ss x customer x address, state in (CA, TX, NY)
        spec = next(q for q in queries if q.name == "ds_q09")
        result = executor.execute(optimize_query(db, spec, "bqo").plan)
        ca = db.table("customer_address")
        cust = db.table("customer")
        ok_addr = ca.column("ca_address_sk")[
            np.isin(ca.column("ca_state"), np.array(["CA", "TX", "NY"], dtype=object))
        ]
        ok_cust = cust.column("c_customer_sk")[
            np.isin(cust.column("c_current_addr_sk"), ok_addr)
        ]
        expected = int(np.isin(ss.column("ss_customer_sk"), ok_cust).sum())
        assert result.scalar("cnt") == expected
