"""Randomized differential testing across executor configurations.

A seeded generator produces TPC-DS-shaped queries — star joins with
random predicates, aggregates, GROUP BY / HAVING, ORDER BY ... LIMIT,
and single-table projection top-k scans — and each query executes under
every combination of {eager, lazy} x {parallelism 1, 4} x {zone maps
on, off} x {adaptive morsels on, off}.  All sixteen configurations must
return byte-identical answers: every one of these features is an
execution strategy, never a semantics change, so any divergence is an
executor bug.  The runs' metrics must also be sane (a configuration
without zone maps can never report pruning).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.engine.executor import Executor
from repro.optimizer.pipelines import optimize_query
from repro.sql.binder import parse_query

_SEEDS = range(12)

_CONFIGS = [
    {
        "eager_materialization": eager,
        "parallelism": parallelism,
        "zone_maps": zone_maps,
        "adaptive_morsels": adaptive,
    }
    for eager, parallelism, zone_maps, adaptive in itertools.product(
        (False, True), (1, 4), (True, False), (True, False)
    )
]

_DIMENSIONS = {
    "date_dim": ("d", "ss_sold_date_sk", "d_date_sk"),
    "item": ("i", "ss_item_sk", "i_item_sk"),
    "store": ("s", "ss_store_sk", "s_store_sk"),
    "promotion": ("p", "ss_promo_sk", "p_promo_sk"),
    "time_dim": ("t", "ss_sold_time_sk", "t_time_sk"),
}

_GROUP_COLUMNS = {
    "date_dim": "d.d_year",
    "item": "i.i_category",
    "store": "s.s_state",
    "promotion": "p.p_channel_email",
    "time_dim": "t.t_meal_time",
}

_AGGREGATES = (
    "COUNT(*) AS cnt",
    "SUM(ss.ss_net_paid) AS paid",
    "AVG(ss.ss_sales_price) AS avg_price",
    "MIN(ss.ss_quantity) AS min_qty",
    "MAX(ss.ss_net_profit) AS max_profit",
)


def _random_predicate(rng: np.random.Generator, table: str) -> str | None:
    """One local predicate for ``table``, or None (rng-driven)."""
    if table == "date_dim":
        choice = rng.integers(0, 3)
        if choice == 0:
            return f"d.d_year = {1998 + int(rng.integers(0, 5))}"
        if choice == 1:
            low = 1 + int(rng.integers(0, 9))
            return f"d.d_moy BETWEEN {low} AND {low + 3}"
        return None
    if table == "item":
        choice = rng.integers(0, 3)
        if choice == 0:
            category = ["Books", "Music", "Shoes", "Sports"][int(rng.integers(0, 4))]
            return f"i.i_category = '{category}'"
        if choice == 1:
            return f"i.i_current_price > {int(rng.integers(50, 250))}"
        return None
    if table == "store":
        if rng.integers(0, 2) == 0:
            state = ["AL", "CA", "CO", "FL"][int(rng.integers(0, 4))]
            return f"s.s_state IN ('{state}', 'GA')"
        return None
    if table == "promotion":
        if rng.integers(0, 2) == 0:
            return f"p.p_channel_email = '{'Y' if rng.integers(0, 2) else 'N'}'"
        return None
    if table == "time_dim":
        if rng.integers(0, 2) == 0:
            low = int(rng.integers(0, 18))
            return f"t.t_hour BETWEEN {low} AND {low + 6}"
        return None
    return None


def _generate_star_query(rng: np.random.Generator) -> str:
    """Aggregate star query with optional GROUP BY/HAVING/ORDER/LIMIT."""
    tables = list(_DIMENSIONS)
    rng.shuffle(tables)
    picked = tables[: int(rng.integers(1, 4))]
    froms = ["store_sales ss"]
    joins, locals_ = [], []
    for table in picked:
        alias, fact_col, dim_col = _DIMENSIONS[table]
        froms.append(f"{table} {alias}")
        joins.append(f"ss.{fact_col} = {alias}.{dim_col}")
        predicate = _random_predicate(rng, table)
        if predicate:
            locals_.append(predicate)

    n_aggs = int(rng.integers(1, 4))
    order = rng.permutation(len(_AGGREGATES))[:n_aggs]
    aggregates = [_AGGREGATES[i] for i in sorted(order)]
    select = list(aggregates)

    group_by = ""
    having = ""
    order_limit = ""
    if rng.integers(0, 2) == 0:
        group_col = _GROUP_COLUMNS[picked[0]]
        select.insert(0, group_col)
        group_by = f" GROUP BY {group_col}"
        if rng.integers(0, 2) == 0:
            having = f" HAVING COUNT(*) > {int(rng.integers(0, 30))}"
        if rng.integers(0, 2) == 0:
            alias = aggregates[0].split(" AS ")[1]
            direction = "DESC" if rng.integers(0, 2) else "ASC"
            order_limit = (
                f" ORDER BY {alias} {direction}, {group_col} ASC"
                f" LIMIT {int(rng.integers(1, 8))}"
            )
    where = " AND ".join(joins + locals_)
    return (
        f"SELECT {', '.join(select)} FROM {', '.join(froms)}"
        f" WHERE {where}{group_by}{having}{order_limit}"
    )


def _generate_projection_query(rng: np.random.Generator) -> str:
    """Single-table projection top-k (exercises the TopK relation path)."""
    if rng.integers(0, 2) == 0:
        columns = ["d.d_date_sk", "d.d_year", "d.d_moy"]
        key = "d.d_date_sk"
        table = "date_dim d"
    else:
        columns = ["ss.ss_quantity", "ss.ss_sales_price"]
        key = "ss.ss_sales_price"
        table = "store_sales ss"
    direction = "DESC" if rng.integers(0, 2) else "ASC"
    return (
        f"SELECT {', '.join(columns)} FROM {table}"
        f" ORDER BY {key} {direction} LIMIT {int(rng.integers(1, 25))}"
    )


def _result_bytes(result, spec) -> tuple:
    """A hashable byte-exact rendering of an execution result."""
    if result.aggregates is not None:
        parts = []
        for label in sorted(result.aggregates):
            values = np.asarray(result.aggregates[label])
            if values.dtype.kind == "O":
                parts.append((label, tuple(values.tolist())))
            else:
                parts.append((label, values.dtype.str, values.tobytes()))
        return tuple(parts)
    parts = []
    for ref in spec.select_columns:
        values = np.asarray(result.relation.column(ref.alias, ref.column))
        if values.dtype.kind == "O":
            parts.append((str(ref), tuple(values.tolist())))
        else:
            parts.append((str(ref), values.dtype.str, values.tobytes()))
    return tuple(parts)


@pytest.fixture(scope="module")
def tpcds_db(tpcds_tiny):
    return tpcds_tiny[0]


class TestDifferentialOracle:
    @pytest.mark.parametrize("seed", _SEEDS)
    def test_star_queries_identical_across_configs(self, tpcds_db, seed):
        rng = np.random.default_rng(1000 + seed)
        sql = _generate_star_query(rng)
        spec = parse_query(tpcds_db, sql, f"diff_star_{seed}")
        plan = optimize_query(tpcds_db, spec, "bqo").plan
        outputs = {}
        for config in _CONFIGS:
            result = Executor(tpcds_db, **config).execute(plan)
            outputs[tuple(sorted(config.items()))] = _result_bytes(result, spec)
            if not config["zone_maps"] or config["eager_materialization"]:
                assert result.metrics.morsels_pruned == 0, sql
                assert result.metrics.rows_skipped == 0, sql
        distinct = set(outputs.values())
        assert len(distinct) == 1, f"configs disagree on: {sql}"

    @pytest.mark.parametrize("seed", _SEEDS)
    def test_projection_topk_identical_across_configs(self, tpcds_db, seed):
        rng = np.random.default_rng(2000 + seed)
        sql = _generate_projection_query(rng)
        spec = parse_query(tpcds_db, sql, f"diff_proj_{seed}")
        plan = optimize_query(tpcds_db, spec, "bqo").plan
        outputs = set()
        for config in _CONFIGS:
            result = Executor(tpcds_db, **config).execute(plan)
            assert result.relation.num_rows <= spec.limit
            outputs.add(_result_bytes(result, spec))
            if not config["zone_maps"] or config["eager_materialization"]:
                assert result.metrics.morsels_pruned == 0, sql
        assert len(outputs) == 1, f"configs disagree on: {sql}"

    def test_generator_is_deterministic(self):
        first = _generate_star_query(np.random.default_rng(7))
        second = _generate_star_query(np.random.default_rng(7))
        assert first == second
