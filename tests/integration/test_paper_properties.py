"""Integration tests for the paper's algebraic properties (Section 3.2)
verified on real engine executions.

Property 1 (commutativity), Property 2 (reduction), Property 3
(redundancy), Property 4 (associativity), and Lemma 1/3 (absorption)
are stated for semi-joins via bitvector filters; here they are checked
against actual data rather than in the abstract.
"""

import numpy as np
import pytest

from repro.filters.exact import ExactFilter
from repro.util.rng import derive_rng


@pytest.fixture(scope="module")
def relations():
    rng = derive_rng(0, "props")
    r = rng.integers(0, 200, 5000)          # fact FK column
    r1 = np.unique(rng.integers(0, 200, 120))   # dimension keys (unique)
    r2 = np.unique(rng.integers(0, 200, 90))
    return r, r1, r2


def semijoin(values: np.ndarray, *key_sets: np.ndarray) -> np.ndarray:
    """R / (B1, B2, ...) via exact bitvector filters."""
    result = values
    for keys in key_sets:
        mask = ExactFilter.build([keys]).contains([result])
        result = result[mask]
    return result


class TestProperty1Commutativity:
    def test_filter_order_irrelevant(self, relations):
        r, r1, r2 = relations
        forward = semijoin(r, r1, r2)
        backward = semijoin(r, r2, r1)
        assert np.array_equal(np.sort(forward), np.sort(backward))


class TestProperty2Reduction:
    def test_semijoin_never_grows(self, relations):
        r, r1, r2 = relations
        assert len(semijoin(r, r1)) <= len(r)
        assert len(semijoin(r, r1, r2)) <= len(semijoin(r, r1))


class TestProperty3Redundancy:
    def test_filter_after_join_is_noop(self, relations):
        r, r1, _ = relations
        joined = r[np.isin(r, r1)]  # R join R1 projected to R's columns
        refiltered = semijoin(joined, r1)
        assert np.array_equal(joined, refiltered)


class TestProperty4Associativity:
    def test_combined_equals_sequential(self, relations):
        r, r1, r2 = relations
        sequential = semijoin(r, r1, r2)
        combined_keys = np.intersect1d(r1, r2)
        combined = semijoin(r, combined_keys)
        # R / (R1, R2) == (R / R1) / R2 for exact filters
        assert np.array_equal(np.sort(sequential), np.sort(combined))


class TestLemma1Absorption:
    def test_semijoin_size_equals_key_join_size(self, relations):
        r, r1, _ = relations
        semi = semijoin(r, r1)
        # r1 is a unique key set: each surviving r row matches exactly one
        join_size = int(np.isin(r, r1).sum())
        assert len(semi) == join_size


class TestLemma3StarAbsorption:
    def test_multiway(self, relations):
        r, r1, r2 = relations
        semi = semijoin(r, r1, r2)
        join_size = int((np.isin(r, r1) & np.isin(r, r2)).sum())
        assert len(semi) == join_size
