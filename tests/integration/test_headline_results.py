"""Regression tests pinning the paper's headline result shapes.

The benchmarks print the full tables; these tests keep the key
directional claims under ordinary ``pytest tests/`` so a planner change
that silently inverts a result fails fast.
"""

import pytest

from repro.bench.harness import run_workload
from repro.bench.reporting import figure8_rows, selectivity_groups, table4_rows


@pytest.fixture(scope="module")
def tpcds_runs(tpcds_tiny):
    db, queries = tpcds_tiny
    return run_workload(
        "tpcds", db, queries, pipelines=("original", "bqo", "original_nobv")
    )


@pytest.fixture(scope="module")
def customer_runs(customer_tiny):
    db, queries = customer_tiny
    return run_workload("customer", db, queries, pipelines=("original", "bqo"))


class TestFigure8Shape:
    def test_bqo_does_not_regress_workload_cpu(self, tpcds_runs):
        assert tpcds_runs.total_cpu("bqo") <= tpcds_runs.total_cpu("original") * 1.001

    def test_bqo_wins_on_customer(self, customer_runs):
        assert (
            customer_runs.total_cpu("bqo")
            < customer_runs.total_cpu("original")
        )

    def test_selectivity_groups_stable(self, tpcds_runs):
        groups = selectivity_groups(tpcds_runs)
        assert len(groups) == 32
        rows = figure8_rows(tpcds_runs)
        total = next(r for r in rows if r["group"] == "total")
        assert total["original"] == pytest.approx(1.0)


class TestTable4Shape:
    def test_filters_help_and_never_hurt_badly(self, tpcds_runs):
        row = table4_rows(tpcds_runs)[0]
        assert row["cpu_ratio"] < 1.0
        assert row["regressed"] == 0.0
        assert row["queries_with_filters"] > 0.8


class TestOptimizerNeverBreaksAnswers:
    def test_workload_consistency_was_enforced(self, tpcds_runs):
        # run_workload raises on any cross-pipeline answer divergence;
        # reaching this point with all runs recorded is the assertion.
        assert len(tpcds_runs.runs) == 32 * 3
