"""Randomized property tests for the succinct bitvector core.

Every operation is checked against a plain-numpy oracle: ``rank1``
against ``cumsum`` over the unpacked bool mask, ``select1`` and
``positions`` against ``flatnonzero``, combination against bool ``&``,
``|``, ``~``.  Densities cover empty / sparse / dense / all-ones and
lengths deliberately straddle word and block boundaries (63/64/65,
511/512/513, 65535/65536/65537).
"""

import numpy as np
import pytest

from repro.succinct import Bitvector, popcount

LENGTHS = [0, 1, 2, 63, 64, 65, 127, 128, 129, 511, 512, 513, 1000,
           4095, 4096, 4097, 65535, 65536, 65537]
DENSITIES = [0.0, 0.01, 0.33, 0.5, 0.97, 1.0]


def random_mask(rng, length, density):
    if density == 0.0:
        return np.zeros(length, dtype=bool)
    if density == 1.0:
        return np.ones(length, dtype=bool)
    return rng.random(length) < density


@pytest.mark.parametrize("length", LENGTHS)
@pytest.mark.parametrize("density", DENSITIES)
def test_rank_select_against_numpy_oracles(length, density):
    rng = np.random.default_rng(length * 1000 + int(density * 100))
    mask = random_mask(rng, length, density)
    vector = Bitvector.from_mask(mask)

    expected_positions = np.flatnonzero(mask)
    assert vector.count() == len(expected_positions)
    assert np.array_equal(vector.positions(), expected_positions)
    assert np.array_equal(vector.to_mask(), mask)

    # rank1 at every boundary 0..length equals the exclusive cumsum.
    queries = np.arange(length + 1, dtype=np.int64)
    oracle_rank = np.concatenate(
        [[0], np.cumsum(mask.astype(np.int64))]
    )
    assert np.array_equal(vector.rank1(queries), oracle_rank)

    # select1 over every rank recovers flatnonzero exactly.
    ranks = np.arange(len(expected_positions), dtype=np.int64)
    assert np.array_equal(vector.select1(ranks), expected_positions)

    # get() agrees with the mask everywhere.
    if length:
        probes = rng.integers(0, length, size=min(length, 512))
        assert np.array_equal(vector.get(probes), mask[probes])


@pytest.mark.parametrize("length", [0, 1, 63, 64, 65, 129, 1000, 65537])
def test_word_level_combination(length):
    rng = np.random.default_rng(length + 7)
    left_mask = random_mask(rng, length, 0.4)
    right_mask = random_mask(rng, length, 0.6)
    left = Bitvector.from_mask(left_mask)
    right = Bitvector.from_mask(right_mask)

    assert np.array_equal((left & right).to_mask(), left_mask & right_mask)
    assert np.array_equal((left | right).to_mask(), left_mask | right_mask)
    assert np.array_equal(left.invert().to_mask(), ~left_mask)
    # invert must not leak tail bits past num_bits into the count.
    assert left.invert().count() == int((~left_mask).sum())

    merged = Bitvector.from_mask(left_mask)
    merged.ior_words(right)
    assert np.array_equal(merged.to_mask(), left_mask | right_mask)
    assert merged.count() == int((left_mask | right_mask).sum())


def test_from_positions_roundtrip():
    rng = np.random.default_rng(42)
    for length in [1, 64, 65, 1000, 70000]:
        count = rng.integers(0, length + 1)
        positions = np.sort(
            rng.choice(length, size=count, replace=False)
        ).astype(np.int64)
        vector = Bitvector.from_positions(positions, length)
        assert np.array_equal(vector.positions(), positions)
        assert vector.count() == len(positions)
        if len(positions):
            ranks = np.arange(len(positions), dtype=np.int64)
            assert np.array_equal(vector.select1(ranks), positions)


def test_rank_select_inverse_property():
    rng = np.random.default_rng(11)
    mask = rng.random(200_000) < 0.2
    vector = Bitvector.from_mask(mask)
    ones = vector.count()
    ranks = rng.integers(0, ones, size=5000)
    selected = vector.select1(ranks)
    # rank1(select1(k)) == k and the selected position holds a one.
    assert np.array_equal(vector.rank1(selected), ranks)
    assert vector.get(selected).all()


def test_zeros_ones_constructors():
    for length in [0, 1, 63, 64, 65, 513]:
        zeros = Bitvector.zeros(length)
        ones = Bitvector.ones(length)
        assert zeros.count() == 0
        assert ones.count() == length
        assert np.array_equal(ones.positions(), np.arange(length))
        if length:
            assert ones.rank1(np.array([length]))[0] == length


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        Bitvector.zeros(64) & Bitvector.zeros(65)
    with pytest.raises(ValueError):
        Bitvector(np.zeros(2, dtype=np.uint64), 64)


def test_popcount_matches_python():
    rng = np.random.default_rng(3)
    words = rng.integers(0, 1 << 63, size=257, dtype=np.uint64)
    expected = np.array([bin(int(w)).count("1") for w in words])
    assert np.array_equal(popcount(words), expected)


def test_footprint_accounting_is_lazy():
    vector = Bitvector.from_mask(np.ones(1 << 16, dtype=bool))
    words_bytes = (1 << 16) // 8
    assert vector.nbytes == words_bytes
    assert vector.directory_nbytes == 0  # no rank/select issued yet
    vector.rank1(np.array([123]))
    assert vector.directory_nbytes > 0
    # flat directory overhead stays ~3.2% of the words
    assert vector.directory_nbytes <= words_bytes * 0.04 + 64
    assert vector.resident_bytes == vector.nbytes + vector.directory_nbytes
