"""Tests for plan cloning and rendering."""

import pytest

from repro.errors import PlanError
from repro.plan.builder import attach_aggregate, build_right_deep
from repro.plan.clone import clone_plan
from repro.plan.display import format_plan
from repro.plan.nodes import FilterNode, HashJoinNode
from repro.plan.properties import plan_signature
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph


@pytest.fixture()
def star_plan(star_db, star_spec):
    graph = JoinGraph(star_spec, star_db.catalog)
    return build_right_deep(graph, ["f", "d1", "d2"])


class TestClone:
    def test_clone_is_structurally_identical(self, star_plan):
        copy, _ = clone_plan(star_plan)
        assert plan_signature(copy) == plan_signature(star_plan)

    def test_clone_has_fresh_nodes(self, star_plan):
        copy, mapping = clone_plan(star_plan)
        original_ids = {n.node_id for n in star_plan.walk()}
        copy_ids = {n.node_id for n in copy.walk()}
        assert not original_ids & copy_ids
        assert set(mapping) == original_ids

    def test_clone_preserves_flags(self, star_plan):
        for node in star_plan.walk():
            if isinstance(node, HashJoinNode):
                node.creates_bitvector = False
        copy, _ = clone_plan(star_plan)
        assert all(
            not n.creates_bitvector for n in copy.walk()
            if isinstance(n, HashJoinNode)
        )

    def test_pushdown_on_clone_leaves_original_untouched(self, star_plan):
        copy, _ = clone_plan(star_plan)
        push_down_bitvectors(copy)
        assert all(not n.applied_bitvectors for n in star_plan.walk())

    def test_clone_with_aggregate(self, star_plan, star_spec):
        plan = attach_aggregate(star_plan, star_spec)
        copy, _ = clone_plan(plan)
        assert plan_signature(copy) == plan_signature(plan)

    def test_clone_rejects_pushed_down_plan_with_residuals(self, star_plan):
        wrapped = FilterNode(star_plan)
        with pytest.raises(PlanError):
            clone_plan(wrapped)


class TestDisplay:
    def test_format_mentions_all_relations(self, star_plan):
        rendered = format_plan(push_down_bitvectors(star_plan))
        for alias in ("f", "d1", "d2"):
            assert alias in rendered

    def test_format_shows_created_and_applied_filters(self, star_plan):
        rendered = format_plan(push_down_bitvectors(star_plan))
        assert "creates BV#" in rendered
        assert "[BV#" in rendered

    def test_annotations_appended(self, star_plan):
        annotations = {star_plan.node_id: "42 rows"}
        rendered = format_plan(star_plan, annotations)
        assert "42 rows" in rendered

    def test_indentation_reflects_depth(self, star_plan):
        lines = format_plan(star_plan).splitlines()
        assert lines[0].startswith("HashJoin")
        assert lines[1].startswith("  ")
