"""Plan shape property tests: right-deep detection, order recovery."""

import pytest

from repro.optimizer.baseline import optimize_baseline
from repro.plan.builder import attach_aggregate, build_right_deep, join_nodes, scan_for
from repro.plan.properties import is_right_deep, right_deep_order
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.stats.estimator import CardinalityEstimator
from repro.workloads.synthetic import random_snowflake


class TestIsRightDeep:
    def test_right_deep_detected(self, star_db, star_spec):
        graph = JoinGraph(star_spec, star_db.catalog)
        plan = build_right_deep(graph, ["f", "d1", "d2"])
        assert is_right_deep(plan)

    def test_bushy_rejected(self):
        db, spec = random_snowflake(2, branch_lengths=(2, 1))
        graph = JoinGraph(spec, db.catalog)
        # build a bushy tree: (b0_1 x b0_0) as build of the fact join
        chain = join_nodes(
            graph, scan_for(spec, "b0_1"), scan_for(spec, "b0_0")
        )
        bushy = join_nodes(graph, chain, scan_for(spec, "f"))
        bushy = join_nodes(graph, scan_for(spec, "b1_0"), bushy)
        assert not is_right_deep(bushy)

    def test_wrappers_are_transparent(self, star_db, star_spec):
        graph = JoinGraph(star_spec, star_db.catalog)
        plan = push_down_bitvectors(build_right_deep(graph, ["f", "d1", "d2"]))
        plan = attach_aggregate(plan, star_spec)
        assert is_right_deep(plan)

    def test_single_scan_is_right_deep(self, star_spec):
        assert is_right_deep(scan_for(star_spec, "f"))


class TestRightDeepOrder:
    def test_round_trip(self, star_db, star_spec):
        graph = JoinGraph(star_spec, star_db.catalog)
        for order in (["f", "d1", "d2"], ["d2", "f", "d1"]):
            plan = build_right_deep(graph, order)
            assert right_deep_order(plan) == order

    def test_rejects_bushy(self, star_db, star_spec):
        graph = JoinGraph(star_spec, star_db.catalog)
        estimator = CardinalityEstimator(star_db, star_spec.alias_tables)
        plan = optimize_baseline(graph, estimator)
        if not is_right_deep(plan):
            with pytest.raises(ValueError):
                right_deep_order(plan)
