"""Tests for plan construction and Algorithm 1 (bitvector push-down)."""

import pytest

from repro.errors import OptimizerError, PlanError
from repro.plan.builder import build_right_deep, join_nodes, scan_for
from repro.plan.nodes import FilterNode, HashJoinNode, ScanNode
from repro.plan.properties import (
    is_right_deep,
    join_count,
    plan_signature,
    right_deep_order,
)
from repro.plan.pushdown import push_down_bitvectors, strip_bitvectors
from repro.query.joingraph import JoinGraph
from repro.query.spec import JoinPredicate, QuerySpec, RelationRef
from repro.workloads.synthetic import random_snowflake


@pytest.fixture(scope="module")
def star_graph(star_db, star_spec):
    return JoinGraph(star_spec, star_db.catalog)


class TestBuilder:
    def test_right_deep_shape(self, star_graph):
        plan = build_right_deep(star_graph, ["f", "d1", "d2"])
        assert is_right_deep(plan)
        assert join_count(plan) == 2
        assert right_deep_order(plan) == ["f", "d1", "d2"]

    def test_cross_product_prefix_rejected(self, star_graph):
        with pytest.raises(OptimizerError, match="cross product"):
            build_right_deep(star_graph, ["d1", "d2", "f"])

    def test_dim_leading_order_allowed(self, star_graph):
        plan = build_right_deep(star_graph, ["d1", "f", "d2"])
        assert right_deep_order(plan) == ["d1", "f", "d2"]

    def test_empty_order_rejected(self, star_graph):
        with pytest.raises(OptimizerError):
            build_right_deep(star_graph, [])

    def test_join_nodes_collects_all_edges(self, star_db):
        spec = QuerySpec(
            name="q",
            relations=(RelationRef("a", "fact"), RelationRef("b", "fact")),
            join_predicates=(
                JoinPredicate("a", ("fk1",), "b", ("fk1",)),
                JoinPredicate("a", ("fk2",), "b", ("fk2",)),
            ),
        )
        graph = JoinGraph(spec, star_db.catalog)
        join = join_nodes(graph, scan_for(spec, "a"), scan_for(spec, "b"))
        assert len(join.build_keys) == 2

    def test_join_children_must_not_overlap(self, star_graph, star_spec):
        scan = scan_for(star_spec, "f")
        with pytest.raises(PlanError):
            HashJoinNode(scan, scan, (("f", "fk1"),), (("f", "fk1"),))


class TestPushdown:
    def test_star_filters_land_on_fact_scan(self, star_graph):
        plan = push_down_bitvectors(build_right_deep(star_graph, ["f", "d1", "d2"]))
        fact_scan = next(
            node for node in plan.walk()
            if isinstance(node, ScanNode) and node.alias == "f"
        )
        assert len(fact_scan.applied_bitvectors) == 2
        assert not any(isinstance(node, FilterNode) for node in plan.walk())

    def test_every_join_creates_one_filter(self, star_graph):
        plan = push_down_bitvectors(build_right_deep(star_graph, ["f", "d1", "d2"]))
        joins = [n for n in plan.walk() if isinstance(n, HashJoinNode)]
        assert all(join.created_bitvector is not None for join in joins)

    def test_disabled_joins_create_nothing(self, star_graph):
        plan = build_right_deep(star_graph, ["f", "d1", "d2"])
        for node in plan.walk():
            if isinstance(node, HashJoinNode):
                node.creates_bitvector = False
        plan = push_down_bitvectors(plan)
        assert all(
            not node.applied_bitvectors for node in plan.walk()
        )

    def test_snowflake_filters_follow_chain(self):
        db, spec = random_snowflake(1, branch_lengths=(2,))
        graph = JoinGraph(spec, db.catalog)
        # T(f, b0_0, b0_1): filter from b0_1 must land on b0_0's scan,
        # filter from b0_0 on the fact scan (paper Lemma 7).
        plan = push_down_bitvectors(build_right_deep(graph, ["f", "b0_0", "b0_1"]))
        scans = {n.alias: n for n in plan.walk() if isinstance(n, ScanNode)}
        fact_filters = scans["f"].applied_bitvectors
        chain_filters = scans["b0_0"].applied_bitvectors
        assert len(fact_filters) == 1
        assert fact_filters[0].probe_keys[0][0] == "f"
        assert len(chain_filters) == 1
        assert chain_filters[0].probe_keys[0][0] == "b0_0"

    def test_residual_filter_for_multi_alias_keys(self, star_db):
        # build side joins BOTH probe relations => its filter references
        # two aliases and cannot descend past the join that combines them
        spec = QuerySpec(
            name="q",
            relations=(
                RelationRef("a", "fact"),
                RelationRef("b", "dim1"),
                RelationRef("c", "fact"),
            ),
            join_predicates=(
                JoinPredicate("a", ("fk1",), "b", ("id",)),
                JoinPredicate("c", ("fk1",), "a", ("fk2",)),
                JoinPredicate("c", ("fk2",), "b", ("id",)),
            ),
        )
        graph = JoinGraph(spec, star_db.catalog)
        plan = push_down_bitvectors(build_right_deep(graph, ["a", "b", "c"]))
        assert any(isinstance(node, FilterNode) for node in plan.walk())

    def test_pushdown_rejects_existing_filters(self, star_graph):
        plan = push_down_bitvectors(build_right_deep(star_graph, ["f", "d1", "d2"]))
        # wrap with a residual filter manually and re-run: must fail
        wrapped = FilterNode(plan)
        with pytest.raises(PlanError):
            push_down_bitvectors(wrapped)

    def test_strip_bitvectors(self, star_graph):
        plan = push_down_bitvectors(build_right_deep(star_graph, ["f", "d1", "d2"]))
        stripped = strip_bitvectors(plan)
        assert all(not node.applied_bitvectors for node in stripped.walk())
        assert all(
            node.created_bitvector is None
            for node in stripped.walk()
            if isinstance(node, HashJoinNode)
        )

    def test_signature_distinguishes_orders(self, star_graph):
        a = plan_signature(build_right_deep(star_graph, ["f", "d1", "d2"]))
        b = plan_signature(build_right_deep(star_graph, ["f", "d2", "d1"]))
        assert a != b
