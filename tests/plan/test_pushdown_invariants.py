"""Property-based invariants of Algorithm 1 over randomized plans.

For any cross-product-free right-deep order of a random snowflake:

* every enabled hash join creates exactly one bitvector filter;
* every created filter is applied at exactly one node;
* the application site lies strictly inside the creating join's probe
  subtree (so execution order build-before-probe always finds the
  filter populated);
* the application site's output carries every column the filter needs;
* filters applied at a scan reference only that scan's alias.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plan.builder import build_right_deep
from repro.plan.nodes import HashJoinNode, ScanNode
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.optimizer.enumerate import right_deep_orders
from repro.workloads.synthetic import random_snowflake


def _random_plan(seed: int, order_index: int):
    db, spec = random_snowflake(
        seed % 50, branch_lengths=(1, 2), fact_rows=60, dim_rows=12
    )
    graph = JoinGraph(spec, db.catalog)
    orders = list(right_deep_orders(graph))
    order = orders[order_index % len(orders)]
    return push_down_bitvectors(build_right_deep(graph, order))


@given(seed=st.integers(0, 10_000), order_index=st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_every_join_creates_exactly_one_applied_filter(seed, order_index):
    plan = _random_plan(seed, order_index)
    created = [
        node.created_bitvector
        for node in plan.walk()
        if isinstance(node, HashJoinNode)
    ]
    assert all(bv is not None for bv in created)

    applications: dict[int, int] = {}
    for node in plan.walk():
        for bv in node.applied_bitvectors:
            applications[bv.filter_id] = applications.get(bv.filter_id, 0) + 1
    assert applications == {bv.filter_id: 1 for bv in created}


@given(seed=st.integers(0, 10_000), order_index=st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_filters_apply_inside_probe_subtree_with_columns_present(
    seed, order_index
):
    plan = _random_plan(seed, order_index)
    site_of = {}
    for node in plan.walk():
        for bv in node.applied_bitvectors:
            site_of[bv.filter_id] = node
    for join in plan.walk():
        if not isinstance(join, HashJoinNode):
            continue
        bv = join.created_bitvector
        site = site_of[bv.filter_id]
        probe_nodes = {id(n) for n in join.probe.walk()}
        assert id(site) in probe_nodes, "filter escaped its probe subtree"
        assert bv.probe_aliases <= site.output_aliases


@given(seed=st.integers(0, 10_000), order_index=st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_scan_filters_reference_only_that_scan(seed, order_index):
    plan = _random_plan(seed, order_index)
    for node in plan.walk():
        if isinstance(node, ScanNode):
            for bv in node.applied_bitvectors:
                assert bv.probe_aliases == {node.alias}
