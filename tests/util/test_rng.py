"""Tests for deterministic RNG derivation."""

import numpy as np

from repro.util.rng import derive_rng, spawn_seeds


class TestDeriveRng:
    def test_same_seed_label_same_stream(self):
        a = derive_rng(7, "x").integers(0, 1_000_000, 10)
        b = derive_rng(7, "x").integers(0, 1_000_000, 10)
        assert np.array_equal(a, b)

    def test_different_labels_differ(self):
        a = derive_rng(7, "x").integers(0, 1_000_000, 10)
        b = derive_rng(7, "y").integers(0, 1_000_000, 10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(7, "x").integers(0, 1_000_000, 10)
        b = derive_rng(8, "x").integers(0, 1_000_000, 10)
        assert not np.array_equal(a, b)


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(1, ["a", "b"]) == spawn_seeds(1, ["a", "b"])

    def test_distinct_per_label(self):
        seeds = spawn_seeds(1, ["a", "b", "c"])
        assert len(set(seeds.values())) == 3
