"""Tests for stable vectorized hashing."""

import numpy as np
import pytest

from repro.util.hashing import (
    hash_column,
    hash_columns,
    hash_int64,
    stable_text_hash,
)


class TestHashInt64:
    def test_deterministic(self):
        values = np.arange(100, dtype=np.int64)
        assert np.array_equal(hash_int64(values), hash_int64(values))

    def test_avalanche_consecutive_keys_spread(self):
        hashed = hash_int64(np.arange(1000, dtype=np.int64))
        # top byte should take many distinct values for sequential input
        top_bytes = (hashed >> np.uint64(56)).astype(np.int64)
        assert len(np.unique(top_bytes)) > 100

    def test_no_collisions_on_small_domain(self):
        hashed = hash_int64(np.arange(100_000, dtype=np.int64))
        assert len(np.unique(hashed)) == 100_000

    def test_negative_values_supported(self):
        values = np.array([-5, -1, 0, 1, 5], dtype=np.int64)
        assert len(np.unique(hash_int64(values))) == 5


class TestStableTextHash:
    def test_deterministic_across_calls(self):
        values = np.array(["alpha", "beta", "gamma"], dtype=object)
        assert np.array_equal(stable_text_hash(values), stable_text_hash(values))

    def test_distinct_strings_distinct_hashes(self):
        values = np.array([f"key_{i}" for i in range(5000)], dtype=object)
        assert len(np.unique(stable_text_hash(values))) == 5000

    def test_known_fnv_value(self):
        # FNV-1a of empty string is the offset basis.
        out = stable_text_hash(np.array([""], dtype=object))
        assert out[0] == np.uint64(0xCBF29CE484222325)


class TestHashColumns:
    def test_order_sensitive(self):
        a = np.array([1, 2], dtype=np.int64)
        b = np.array([3, 4], dtype=np.int64)
        assert not np.array_equal(hash_columns([a, b]), hash_columns([b, a]))

    def test_multi_column_consistency(self):
        a = np.array([1, 1, 2], dtype=np.int64)
        b = np.array([9, 9, 9], dtype=np.int64)
        hashed = hash_columns([a, b])
        assert hashed[0] == hashed[1]
        assert hashed[0] != hashed[2]

    def test_requires_columns(self):
        with pytest.raises(ValueError):
            hash_columns([])

    def test_float_column(self):
        values = np.array([1.5, 2.5, 1.5])
        hashed = hash_column(values)
        assert hashed[0] == hashed[2]
        assert hashed[0] != hashed[1]
