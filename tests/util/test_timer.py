"""Tests for the CPU timer."""

from repro.util.timer import CpuTimer


class TestCpuTimer:
    def test_accumulates_across_uses(self):
        timer = CpuTimer()
        with timer:
            sum(range(10_000))
        first = timer.seconds
        with timer:
            sum(range(10_000))
        assert timer.seconds >= first

    def test_reset(self):
        timer = CpuTimer()
        with timer:
            sum(range(1000))
        timer.reset()
        assert timer.seconds == 0.0

    def test_exception_still_records(self):
        timer = CpuTimer()
        try:
            with timer:
                raise ValueError("boom")
        except ValueError:
            pass
        assert timer.seconds >= 0.0
