"""Tests for exact joint key encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.keycodes import joint_codes, single_table_codes


class TestJointCodes:
    def test_single_column_equality(self):
        left = np.array([1, 2, 3, 7])
        right = np.array([3, 3, 9])
        codes_l, codes_r = joint_codes([left], [right])
        assert codes_l[2] == codes_r[0] == codes_r[1]
        assert codes_r[2] not in codes_l

    def test_multi_column_no_cross_collisions(self):
        # (1, 2) vs (2, 1) must differ even though the value sets match
        left = [np.array([1]), np.array([2])]
        right = [np.array([2]), np.array([1])]
        codes_l, codes_r = joint_codes(left, right)
        assert codes_l[0] != codes_r[0]

    def test_string_keys(self):
        left = np.array(["a", "b"], dtype=object)
        right = np.array(["b", "c"], dtype=object)
        codes_l, codes_r = joint_codes([left], [right])
        assert codes_l[1] == codes_r[0]
        assert codes_l[0] != codes_r[1]

    def test_column_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            joint_codes([np.array([1])], [np.array([1]), np.array([2])])

    def test_empty_columns_raises(self):
        with pytest.raises(ValueError):
            joint_codes([], [])

    @given(
        left=st.lists(st.integers(-50, 50), min_size=1, max_size=40),
        right=st.lists(st.integers(-50, 50), min_size=1, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_codes_match_iff_values_match(self, left, right):
        left_arr = np.array(left, dtype=np.int64)
        right_arr = np.array(right, dtype=np.int64)
        codes_l, codes_r = joint_codes([left_arr], [right_arr])
        for i, lv in enumerate(left):
            for j, rv in enumerate(right):
                assert (codes_l[i] == codes_r[j]) == (lv == rv)

    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_multicolumn_exactness(self, pairs):
        a = np.array([p[0] for p in pairs], dtype=np.int64)
        b = np.array([p[1] for p in pairs], dtype=np.int64)
        codes_l, codes_r = joint_codes([a, b], [a, b])
        # identical sides: code i == code j iff tuple i == tuple j
        for i in range(len(pairs)):
            for j in range(len(pairs)):
                assert (codes_l[i] == codes_r[j]) == (pairs[i] == pairs[j])


class TestSingleTableCodes:
    def test_groups_equal_tuples(self):
        a = np.array([1, 1, 2])
        b = np.array([5, 5, 5])
        codes = single_table_codes([a, b])
        assert codes[0] == codes[1] != codes[2]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            single_table_codes([])
