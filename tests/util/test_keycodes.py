"""Tests for exact joint key encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.keycodes import (
    combine_codes,
    encode_into_domain,
    joint_codes,
    single_table_codes,
)


class TestJointCodes:
    def test_single_column_equality(self):
        left = np.array([1, 2, 3, 7])
        right = np.array([3, 3, 9])
        codes_l, codes_r = joint_codes([left], [right])
        assert codes_l[2] == codes_r[0] == codes_r[1]
        assert codes_r[2] not in codes_l

    def test_multi_column_no_cross_collisions(self):
        # (1, 2) vs (2, 1) must differ even though the value sets match
        left = [np.array([1]), np.array([2])]
        right = [np.array([2]), np.array([1])]
        codes_l, codes_r = joint_codes(left, right)
        assert codes_l[0] != codes_r[0]

    def test_string_keys(self):
        left = np.array(["a", "b"], dtype=object)
        right = np.array(["b", "c"], dtype=object)
        codes_l, codes_r = joint_codes([left], [right])
        assert codes_l[1] == codes_r[0]
        assert codes_l[0] != codes_r[1]

    def test_column_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            joint_codes([np.array([1])], [np.array([1]), np.array([2])])

    def test_empty_columns_raises(self):
        with pytest.raises(ValueError):
            joint_codes([], [])

    @given(
        left=st.lists(st.integers(-50, 50), min_size=1, max_size=40),
        right=st.lists(st.integers(-50, 50), min_size=1, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_codes_match_iff_values_match(self, left, right):
        left_arr = np.array(left, dtype=np.int64)
        right_arr = np.array(right, dtype=np.int64)
        codes_l, codes_r = joint_codes([left_arr], [right_arr])
        for i, lv in enumerate(left):
            for j, rv in enumerate(right):
                assert (codes_l[i] == codes_r[j]) == (lv == rv)

    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_multicolumn_exactness(self, pairs):
        a = np.array([p[0] for p in pairs], dtype=np.int64)
        b = np.array([p[1] for p in pairs], dtype=np.int64)
        codes_l, codes_r = joint_codes([a, b], [a, b])
        # identical sides: code i == code j iff tuple i == tuple j
        for i in range(len(pairs)):
            for j in range(len(pairs)):
                assert (codes_l[i] == codes_r[j]) == (pairs[i] == pairs[j])


class TestSingleTableCodes:
    def test_groups_equal_tuples(self):
        a = np.array([1, 1, 2])
        b = np.array([5, 5, 5])
        codes = single_table_codes([a, b])
        assert codes[0] == codes[1] != codes[2]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            single_table_codes([])

    def test_wide_key_does_not_overflow(self):
        # 40 columns of 2-value domains would naively need 2**40 radix
        # steps; with >32 columns of larger domains the naive product
        # wraps int64.  The guard re-densifies instead of wrapping.
        rng = np.random.default_rng(0)
        columns = [rng.integers(0, 1000, 64) for _ in range(40)]
        codes = single_table_codes(columns)
        tuples = list(zip(*(c.tolist() for c in columns)))
        for i in range(len(codes)):
            for j in range(len(codes)):
                assert (codes[i] == codes[j]) == (tuples[i] == tuples[j])

    def test_matches_seed_semantics_on_narrow_keys(self):
        a = np.array([0, 1, 0, 1])
        b = np.array([0, 0, 1, 1])
        codes = single_table_codes([a, b])
        assert len(np.unique(codes)) == 4


class TestEncodeIntoDomain:
    def test_codes_and_absences(self):
        domain = np.array([2, 5, 9])
        codes = encode_into_domain(np.array([5, 1, 9, 12, 2]), domain)
        assert codes.tolist() == [1, -1, 2, -1, 0]

    def test_empty_domain(self):
        codes = encode_into_domain(np.array([1, 2]), np.array([], dtype=np.int64))
        assert codes.tolist() == [-1, -1]

    def test_string_domain(self):
        domain = np.array(["a", "c"], dtype=object)
        codes = encode_into_domain(np.array(["c", "b"], dtype=object), domain)
        assert codes.tolist() == [1, -1]


class TestCombineCodes:
    def test_single_column_passthrough(self):
        codes = np.array([0, 2, -1])
        assert combine_codes([codes], [3]) is codes

    def test_mixed_radix_combination(self):
        combined = combine_codes(
            [np.array([0, 1, 1]), np.array([2, 0, 2])], [2, 3]
        )
        assert combined.tolist() == [2, 3, 5]

    def test_invalid_code_poisons_row(self):
        combined = combine_codes(
            [np.array([0, -1]), np.array([-1, 1])], [2, 3]
        )
        assert combined.tolist() == [-1, -1]

    def test_overflow_returns_none(self):
        columns = [np.array([0])] * 3
        assert combine_codes(columns, [2**31, 2**31, 2**31]) is None
