"""Documentation health: required files exist, relative links resolve."""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_doc_links import broken_links, doc_files  # noqa: E402


def test_required_docs_exist():
    assert (REPO_ROOT / "README.md").exists()
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").exists()
    assert (REPO_ROOT / "docs" / "BENCHMARKS.md").exists()


def test_no_broken_relative_links():
    assert broken_links(REPO_ROOT) == []


def test_every_benchmark_file_is_documented():
    """docs/BENCHMARKS.md must describe each benchmarks/test_* file."""
    text = (REPO_ROOT / "docs" / "BENCHMARKS.md").read_text(encoding="utf-8")
    for path in sorted((REPO_ROOT / "benchmarks").glob("test_*.py")):
        assert path.name in text, f"{path.name} missing from docs/BENCHMARKS.md"


def test_readme_covers_quickstart_and_tier1():
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "examples/quickstart.py" in text
    assert "python -m pytest" in text
    assert "QueryService" in text


def test_doc_files_found():
    assert len(doc_files(REPO_ROOT)) >= 3
