"""Tests for Cout, the estimated cardinality model, and the CPU model."""

import pytest

from repro.cost.constants import CostConstants, DEFAULT_COSTS
from repro.cost.cout import EstimatedCardModel, cout
from repro.cost.physical import estimated_cpu
from repro.cost.truecard import TrueCardModel, true_cout
from repro.engine.executor import Executor
from repro.plan.builder import build_right_deep
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.stats.estimator import CardinalityEstimator


@pytest.fixture(scope="module")
def star_setup(star_db, star_spec):
    graph = JoinGraph(star_spec, star_db.catalog)
    estimator = CardinalityEstimator(star_db, star_spec.alias_tables)
    return graph, estimator


class TestCoutDefinition:
    def test_cout_is_sum_of_node_sizes(self, star_db, star_setup):
        graph, _ = star_setup
        plan = push_down_bitvectors(build_right_deep(graph, ["f", "d1", "d2"]))
        executor = Executor(star_db)
        result = executor.execute(plan)
        model = TrueCardModel(result.metrics)
        total = cout(plan, model)
        by_hand = sum(m.rows_out for m in result.metrics.nodes)
        assert total == by_hand  # no residual filters in a star plan

    def test_bitvectors_reduce_true_cout(self, star_db, star_setup):
        graph, _ = star_setup
        with_bv = push_down_bitvectors(build_right_deep(graph, ["f", "d1", "d2"]))
        without = build_right_deep(graph, ["f", "d1", "d2"])
        for node in without.walk():
            if hasattr(node, "creates_bitvector"):
                node.creates_bitvector = False
        without = push_down_bitvectors(without)
        assert true_cout(with_bv, star_db) < true_cout(without, star_db)


class TestEstimatedModel:
    def test_estimate_within_factor_of_truth(self, star_db, star_setup):
        graph, estimator = star_setup
        plan = push_down_bitvectors(build_right_deep(graph, ["f", "d1", "d2"]))
        estimate = cout(plan, EstimatedCardModel(estimator))
        plan2 = push_down_bitvectors(build_right_deep(graph, ["f", "d1", "d2"]))
        truth = true_cout(plan2, star_db)
        assert estimate == pytest.approx(truth, rel=0.5)

    def test_estimates_are_cached_per_node(self, star_setup):
        graph, estimator = star_setup
        plan = push_down_bitvectors(build_right_deep(graph, ["f", "d1", "d2"]))
        model = EstimatedCardModel(estimator)
        first = model.rows_out(plan)
        assert model.rows_out(plan) == first

    def test_key_join_output_equals_probe_rows(self, star_setup):
        # with this join's own bitvector applied, a PKFK join passes
        # through exactly the surviving probe rows
        graph, estimator = star_setup
        plan = push_down_bitvectors(build_right_deep(graph, ["f", "d1", "d2"]))
        model = EstimatedCardModel(estimator)
        join = plan  # top join
        assert model.rows_out(join) == pytest.approx(
            model.rows_out(join.probe), rel=1e-6
        )


class TestPhysicalCpu:
    def test_estimated_cpu_positive_and_ordered(self, star_db, star_setup):
        graph, estimator = star_setup
        with_bv = push_down_bitvectors(build_right_deep(graph, ["f", "d1", "d2"]))
        no_bv = build_right_deep(graph, ["f", "d1", "d2"])
        for node in no_bv.walk():
            if hasattr(node, "creates_bitvector"):
                node.creates_bitvector = False
        no_bv = push_down_bitvectors(no_bv)
        cpu_with = estimated_cpu(with_bv, EstimatedCardModel(estimator), estimator)
        cpu_without = estimated_cpu(no_bv, EstimatedCardModel(estimator), estimator)
        assert 0 < cpu_with < cpu_without

    def test_metered_cpu_matches_model_semantics(self, star_db, star_setup):
        graph, estimator = star_setup
        plan = push_down_bitvectors(build_right_deep(graph, ["f", "d1", "d2"]))
        result = Executor(star_db).execute(plan)
        # Recompute by hand from component totals.
        totals = result.metrics.component_totals()
        c = DEFAULT_COSTS
        expected = (
            totals["scan"] * c.scan
            + totals["build"] * c.build
            + totals["probe"] * c.probe
            + totals["output"] * c.output
            + totals["filter_check"] * c.filter_check
            + totals["filter_insert"] * c.filter_insert
            + totals["aggregate"] * c.aggregate
        )
        assert result.metrics.metered_cpu() == pytest.approx(expected)

    def test_constants_break_even_near_ten_percent(self):
        assert CostConstants().break_even_elimination == pytest.approx(0.09, abs=0.03)

    def test_custom_constants_change_cpu(self, star_db, star_setup):
        graph, _ = star_setup
        plan = push_down_bitvectors(build_right_deep(graph, ["f", "d1", "d2"]))
        result = Executor(star_db).execute(plan)
        doubled = CostConstants(probe=2.0)
        assert result.metrics.metered_cpu(doubled) > result.metrics.metered_cpu()
