"""PlanCache / BitvectorFilterCache bookkeeping: LRU bound, counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.filters.cache import BitvectorFilterCache, filter_cache_key
from repro.filters.exact import ExactFilter
from repro.service.plan_cache import CachedPlan, PlanCache


def _entry(i: int) -> CachedPlan:
    from repro.plan.nodes import ScanNode

    return CachedPlan(
        fingerprint=f"fp{i}",
        pipeline="bqo",
        plan=ScanNode("t", "table"),
        template_predicates={},
        num_parameters=0,
        estimated_cout=float(i),
        signature=f"sig{i}",
        optimize_seconds=0.0,
    )


def test_lru_bound_holds_under_churn():
    cache = PlanCache(capacity=4)
    for i in range(100):
        cache.put((f"q{i}", "bqo"), _entry(i))
        assert len(cache) <= 4
    assert cache.evictions == 96
    # the four most recent survive
    for i in range(96, 100):
        assert (f"q{i}", "bqo") in cache


def test_lru_recency_not_insertion_order():
    cache = PlanCache(capacity=2)
    cache.put(("a", "bqo"), _entry(0))
    cache.put(("b", "bqo"), _entry(1))
    assert cache.get(("a", "bqo")) is not None  # refresh a
    cache.put(("c", "bqo"), _entry(2))          # evicts b, not a
    assert ("a", "bqo") in cache
    assert ("b", "bqo") not in cache


def test_hit_miss_counters_and_entry_hits():
    cache = PlanCache(capacity=2)
    assert cache.get(("a", "bqo")) is None
    cache.put(("a", "bqo"), _entry(0))
    entry = cache.get(("a", "bqo"))
    cache.get(("a", "bqo"))
    assert cache.hits == 2
    assert cache.misses == 1
    assert entry.hits == 2


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)
    with pytest.raises(ValueError):
        BitvectorFilterCache(capacity=0)


def test_filter_cache_builds_once_per_key():
    cache = BitvectorFilterCache(capacity=8)
    builds = []

    def builder():
        builds.append(1)
        return ExactFilter.build([np.array([1, 2, 3])])

    key = filter_cache_key("dim", ("id",), ("cmp", "=", 1), "exact")
    f1, cached1 = cache.get_or_build(key, builder)
    f2, cached2 = cache.get_or_build(key, builder)
    assert (cached1, cached2) == (False, True)
    assert f1 is f2
    assert len(builds) == 1
    assert cache.hits == 1 and cache.misses == 1
    assert cache.size_bits() > 0


def test_filter_cache_lru_eviction():
    cache = BitvectorFilterCache(capacity=2)

    def builder():
        return ExactFilter.build([np.array([1])])

    keys = [filter_cache_key("dim", ("id",), i, "exact") for i in range(5)]
    for key in keys:
        cache.get_or_build(key, builder)
    assert len(cache) == 2
    assert cache.evictions == 3


def test_put_with_stale_generation_is_dropped():
    """A build that raced a clear() must not republish a stale entry."""
    cache = PlanCache(capacity=4)
    generation = cache.generation
    cache.clear()  # invalidation lands while the entry is being "built"
    assert not cache.put(("a", "bqo"), _entry(0), generation=generation)
    assert ("a", "bqo") not in cache
    # with the current generation the put goes through
    assert cache.put(("a", "bqo"), _entry(0), generation=cache.generation)
    assert ("a", "bqo") in cache


def test_filter_build_racing_clear_is_not_published():
    cache = BitvectorFilterCache(capacity=4)
    key = filter_cache_key("dim", ("id",), None, "exact")

    def builder():
        # invalidation arrives mid-build
        cache.clear()
        return ExactFilter.build([np.array([1, 2])])

    built, was_cached = cache.get_or_build(key, builder)
    assert not was_cached
    assert built.num_keys == 2  # caller still gets its filter
    assert len(cache) == 0      # but it was not published


def test_filter_cache_key_separates_kinds_and_options():
    a = filter_cache_key("dim", ("id",), None, "exact")
    b = filter_cache_key("dim", ("id",), None, "bloom")
    c = filter_cache_key("dim", ("id",), None, "bloom", {"bits_per_key": 4})
    assert len({a, b, c}) == 3
