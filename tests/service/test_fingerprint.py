"""Query fingerprinting: normalization rules and parameter extraction."""

from __future__ import annotations

import pytest

from repro.errors import SqlError
from repro.sql.parameterize import fingerprint_sql, parameterize_statement
from repro.sql.parser import parse_select


def test_constants_do_not_change_fingerprint():
    a = fingerprint_sql(
        "SELECT COUNT(*) FROM t WHERE t.x = 5 AND t.name = 'foo'"
    )
    b = fingerprint_sql(
        "SELECT COUNT(*) FROM t WHERE t.x = 99 AND t.name = 'bar'"
    )
    assert a.text == b.text
    assert a.digest == b.digest
    assert a.parameters == (5, "foo")
    assert b.parameters == (99, "bar")


def test_whitespace_case_and_comments_do_not_change_fingerprint():
    a = fingerprint_sql("SELECT COUNT(*) FROM t WHERE t.x = 1")
    b = fingerprint_sql(
        "select  count(*)\n  from t -- a comment\n where t.x   = 2"
    )
    assert a.text == b.text


def test_structure_changes_fingerprint():
    base = fingerprint_sql("SELECT COUNT(*) FROM t WHERE t.x = 1")
    other_column = fingerprint_sql("SELECT COUNT(*) FROM t WHERE t.y = 1")
    other_op = fingerprint_sql("SELECT COUNT(*) FROM t WHERE t.x < 1")
    other_table = fingerprint_sql("SELECT COUNT(*) FROM u WHERE u.x = 1")
    texts = {base.text, other_column.text, other_op.text, other_table.text}
    assert len(texts) == 4


def test_in_list_arity_is_part_of_the_shape():
    two = fingerprint_sql("SELECT COUNT(*) FROM t WHERE t.x IN (1, 2)")
    three = fingerprint_sql("SELECT COUNT(*) FROM t WHERE t.x IN (1, 2, 3)")
    assert two.text != three.text
    assert two.parameters == (1, 2)
    assert three.parameters == (1, 2, 3)


def test_like_patterns_stay_literal():
    a = fingerprint_sql("SELECT COUNT(*) FROM t WHERE t.name LIKE 'A%'")
    b = fingerprint_sql("SELECT COUNT(*) FROM t WHERE t.name LIKE 'B%'")
    assert a.text != b.text
    assert a.parameters == ()


def test_between_and_floats_extract_in_source_order():
    fp = fingerprint_sql(
        "SELECT COUNT(*) FROM t WHERE t.a BETWEEN 1 AND 2 AND t.b = 3.5"
    )
    assert fp.parameters == (1, 2, 3.5)


def test_empty_query_rejected():
    with pytest.raises(SqlError):
        fingerprint_sql("   -- nothing here\n")


def test_ast_extraction_agrees_with_token_extraction():
    sql = (
        "SELECT COUNT(*) FROM t WHERE t.x = 5 AND t.y BETWEEN 2 AND 9 "
        "AND t.z IN (1, 2, 3) AND t.name LIKE 'A%' AND NOT (t.w <> 0)"
    )
    fp = fingerprint_sql(sql)
    _template, parameters = parameterize_statement(parse_select(sql))
    assert parameters == fp.parameters


def test_template_statement_has_no_remaining_literals():
    sql = "SELECT COUNT(*) FROM t WHERE t.x = 5 AND t.y IN (1, 2)"
    template, parameters = parameterize_statement(parse_select(sql))
    assert len(parameters) == 3
    # every literal in the template is now a Parameter marker
    from repro.expr.expressions import Parameter
    from repro.sql.parser import RawComparison, RawIn, RawAnd, RawLiteral

    def literals(raw):
        if isinstance(raw, RawLiteral):
            yield raw.value
        elif isinstance(raw, RawAnd):
            for operand in raw.operands:
                yield from literals(operand)
        elif isinstance(raw, RawComparison):
            yield from literals(raw.left)
            yield from literals(raw.right)
        elif isinstance(raw, RawIn):
            yield from raw.values

    values = list(literals(template.where))
    assert values and all(isinstance(v, Parameter) for v in values)
