"""QueryService end-to-end: caching correctness, invalidation, concurrency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServiceClosed
from repro.service import QueryService
from repro.storage.database import Database
from repro.storage.schema import ForeignKey
from repro.storage.table import Table


def _count_sql(threshold: int) -> str:
    return (
        "SELECT COUNT(*) AS cnt FROM fact f, dim1 d1 "
        f"WHERE f.fk1 = d1.id AND d1.v < {threshold}"
    )


def _expected_count(db: Database, threshold: int) -> int:
    dim1 = db.table("dim1")
    fact = db.table("fact")
    selected = dim1.column("id")[dim1.column("v") < threshold]
    return int(np.isin(fact.column("fk1"), selected).sum())


@pytest.fixture()
def service(star_db) -> QueryService:
    return QueryService(star_db)


def test_same_fingerprint_different_constants_correct_results(service, star_db):
    first = service.execute(_count_sql(3))
    second = service.execute(_count_sql(7))
    assert not first.metrics.plan_cache_hit
    assert second.metrics.plan_cache_hit
    assert first.metrics.fingerprint == second.metrics.fingerprint
    assert first.scalar("cnt") == _expected_count(star_db, 3)
    assert second.scalar("cnt") == _expected_count(star_db, 7)
    assert first.scalar("cnt") != second.scalar("cnt")


def test_hit_skips_optimization_and_is_faster(service):
    cold = service.execute(_count_sql(3))
    warm = service.execute(_count_sql(4))
    assert warm.metrics.plan_cache_hit
    assert warm.metrics.optimize_seconds < cold.metrics.optimize_seconds


def test_stats_expose_cache_counters(service):
    service.execute(_count_sql(3))
    service.execute(_count_sql(5))
    service.execute(_count_sql(5))  # identical text: still one fingerprint
    stats = service.stats()
    assert stats.queries == 3
    assert stats.plan_cache_misses == 1
    assert stats.plan_cache_hits == 2
    assert 0 < stats.plan_cache_hit_rate < 1
    assert service.plan_cache.hits == 2
    assert service.plan_cache.misses == 1


def test_lru_eviction_bound_under_churn(star_db):
    service = QueryService(star_db, plan_cache_size=2)
    statements = [
        _count_sql(3),
        "SELECT COUNT(*) AS cnt FROM fact f, dim2 d2 "
        "WHERE f.fk2 = d2.id AND d2.w < 3",
        "SELECT SUM(f.m) AS total FROM fact f, dim1 d1 "
        "WHERE f.fk1 = d1.id AND d1.v < 3",
        "SELECT COUNT(*) AS cnt FROM fact f, dim1 d1, dim2 d2 "
        "WHERE f.fk1 = d1.id AND f.fk2 = d2.id AND d1.v < 3",
    ]
    for sql in statements:
        service.execute(sql)
        assert len(service.plan_cache) <= 2
    assert service.plan_cache.evictions == 2
    # evicted query re-optimizes and still answers correctly
    result = service.execute(statements[0])
    assert not result.metrics.plan_cache_hit
    assert result.scalar("cnt") == _expected_count(star_db, 3)


def _fresh_db() -> Database:
    rng = np.random.default_rng(7)
    db = Database("inval_test")
    db.add_table(
        Table.from_arrays(
            "dim1",
            {"id": np.arange(50), "v": rng.integers(0, 10, 50)},
            key=("id",),
        )
    )
    db.add_table(
        Table.from_arrays(
            "fact",
            {"fk1": rng.integers(0, 50, 1000), "m": rng.normal(size=1000)},
        )
    )
    db.add_foreign_key(ForeignKey("fact", ("fk1",), "dim1", ("id",)))
    return db


def test_schema_change_invalidates_caches():
    db = _fresh_db()
    service = QueryService(db)
    service.execute(_count_sql(3))
    assert len(service.plan_cache) == 1

    db.add_table(
        Table.from_arrays("extra", {"id": np.arange(3)}, key=("id",))
    )
    result = service.execute(_count_sql(3))
    # the cached plan was dropped: this is a miss against a fresh cache
    assert not result.metrics.plan_cache_hit
    assert service.stats().invalidations == 1
    assert result.scalar("cnt") == _expected_count(db, 3)


def test_manual_invalidate_clears_both_caches():
    db = _fresh_db()
    service = QueryService(db)
    service.execute(_count_sql(3))
    assert len(service.plan_cache) == 1
    service.invalidate()
    assert len(service.plan_cache) == 0
    assert len(service.filter_cache) == 0
    assert service.stats().invalidations == 1


def test_filter_cache_shared_across_fingerprints(service):
    count_sql = _count_sql(3)
    sum_sql = (
        "SELECT SUM(f.m) AS total FROM fact f, dim1 d1 "
        "WHERE f.fk1 = d1.id AND d1.v < 3"
    )
    first = service.execute(count_sql)
    second = service.execute(sum_sql)
    assert first.metrics.fingerprint != second.metrics.fingerprint
    if first.metrics.filter_cache_misses:
        # the dim1(v < 3) filter built for the first query is reused
        assert second.metrics.filter_cache_hits >= 1


def test_run_many_matches_sequential(star_db):
    sqls = [_count_sql(t) for t in (2, 3, 4, 5, 6, 2, 3, 4)]
    sequential = [
        QueryService(star_db).execute(sql).scalar("cnt") for sql in sqls
    ]
    service = QueryService(star_db)
    concurrent = [r.scalar("cnt") for r in service.run_many(sqls, max_workers=4)]
    assert concurrent == sequential
    stats = service.stats()
    assert stats.queries == len(sqls)
    # one unique fingerprint: only the first wave of workers can miss
    # before the entry is published, so misses <= max_workers
    assert stats.plan_cache_hits >= len(sqls) - 4


def test_explain_reports_cache_state_and_plan(service):
    miss = service.explain(_count_sql(3))
    hit = service.explain(_count_sql(9))
    assert "MISS" in miss and "HIT" in hit
    assert "fingerprint" in miss
    assert "Scan(d1:dim1)" in miss
    assert "?0=9" in hit
    # explain warmed the cache for execute
    result = service.execute(_count_sql(5))
    assert result.metrics.plan_cache_hit


def test_unknown_pipeline_rejected(star_db):
    from repro.errors import ServiceError

    with pytest.raises(ServiceError):
        QueryService(star_db, pipeline="nonsense")


def test_pipeline_override_is_part_of_cache_key(service):
    service.execute(_count_sql(3), pipeline="bqo")
    other = service.execute(_count_sql(3), pipeline="dp")
    assert not other.metrics.plan_cache_hit
    assert len(service.plan_cache) == 2


def test_service_metrics_expose_zero_copy_counters(service, star_db):
    first = service.execute(_count_sql(3))
    second = service.execute(_count_sql(6))
    for result in (first, second):
        assert result.metrics.dictionary_hits >= 1  # fk1 = id join
        assert result.metrics.dictionary_misses == 0
        assert result.metrics.rows_copied > 0
        assert result.metrics.bytes_gathered > 0
    stats = service.stats()
    assert stats.dictionary_hits >= 2
    assert stats.total_rows_copied > 0
    assert stats.total_bytes_gathered > 0
    # both executions share one resident dictionary per join column
    info = star_db.dictionary_cache_info()
    assert info["builds"] <= info["lookups"]


def test_explain_reports_filter_and_dictionary_caches(service):
    service.execute(_count_sql(3))
    rendered = service.explain(_count_sql(3))
    assert "filter cache:" in rendered
    assert "dictionary indexes:" in rendered


def test_run_many_concurrent_dictionary_builds(star_db):
    """Many threads racing on a cold dictionary cache agree on answers."""
    service = QueryService(star_db)
    sqls = [_count_sql(t) for t in range(2, 10)] * 3
    results = service.run_many(sqls, max_workers=8)
    expected = [_expected_count(star_db, t) for t in range(2, 10)] * 3
    assert [r.scalar("cnt") for r in results] == expected
    # Single-flight construction: exactly one build per resident column
    # despite 8 threads racing on a cold cache.
    info = star_db.dictionary_cache_info()
    assert info["builds"] == info["entries"]


def test_run_many_reuses_persistent_pool(star_db):
    """Batches share one lazily created pool until close()."""
    service = QueryService(star_db)
    assert service._batch_pool is None  # lazy: no batch yet
    sqls = [_count_sql(t) for t in (2, 3, 4, 5)]
    service.run_many(sqls, max_workers=2)
    pool = service._batch_pool
    assert pool is not None
    service.run_many(sqls, max_workers=2)
    assert service._batch_pool is pool  # reused, not rebuilt
    # A wider batch grows the pool once; later narrow batches keep it.
    service.run_many(sqls, max_workers=4)
    wider = service._batch_pool
    assert wider is not pool
    service.run_many(sqls, max_workers=2)
    assert service._batch_pool is wider
    service.close()
    assert service._batch_pool is None
    service.close()  # idempotent
    # Close is terminal: later submissions get the typed refusal, not
    # an opaque dead-pool RuntimeError.
    with pytest.raises(ServiceClosed):
        service.run_many(sqls, max_workers=2)
    with pytest.raises(ServiceClosed):
        service.execute(sqls[0])


def test_close_racing_a_batch_yields_typed_slots_never_runtime_error(star_db):
    """A close() landing mid-batch must resolve every slot to either a
    real answer or a typed ServiceClosed error record — never the
    pool's opaque 'cannot schedule new futures' RuntimeError."""
    import threading

    sqls = [_count_sql(t) for t in (2, 3, 4, 5, 6, 7, 8, 9)] * 4
    for _ in range(5):  # several races: the interleaving is timing-dependent
        service = QueryService(star_db)
        service.run_many(sqls[:2], max_workers=2)  # warm the pool
        outcome = {}

        def batch(svc=service, box=outcome):
            try:
                box["results"] = svc.run_many(sqls, max_workers=2)
            except ServiceClosed:
                pass  # the whole batch arrived after close: typed raise

        runner = threading.Thread(target=batch)
        runner.start()
        service.close()
        runner.join(timeout=30.0)
        assert not runner.is_alive()
        if "results" not in outcome:
            continue  # run_many itself saw the closed service: typed raise
        for result in outcome["results"]:
            assert result.ok or isinstance(result.error, ServiceClosed), (
                f"slot resolved to {type(result.error).__name__}: "
                f"{result.error}"
            )


def test_service_context_manager_closes_pool(star_db):
    with QueryService(star_db) as service:
        service.run_many([_count_sql(t) for t in (2, 3)], max_workers=2)
        assert service._batch_pool is not None
    assert service._batch_pool is None


def test_serial_batches_skip_pool(star_db):
    service = QueryService(star_db)
    service.run_many([_count_sql(2)], max_workers=4)  # single statement
    service.run_many([_count_sql(2), _count_sql(3)], max_workers=1)
    assert service._batch_pool is None


def test_parallel_service_matches_serial(star_db):
    """Intra-query parallelism changes nothing about the answers."""
    sqls = [_count_sql(t) for t in (2, 3, 4, 5, 6)]
    serial = QueryService(star_db)
    parallel = QueryService(star_db, parallelism=4, morsel_rows=512)
    expected = [serial.execute(sql).scalar("cnt") for sql in sqls]
    observed = [parallel.execute(sql).scalar("cnt") for sql in sqls]
    assert observed == expected


def test_explain_reports_parallel_configuration(star_db):
    serial = QueryService(star_db)
    rendered = serial.explain(_count_sql(3))
    assert "parallelism=1" in rendered and "(serial)" in rendered
    parallel = QueryService(star_db, parallelism=4, morsel_rows=8192)
    rendered = parallel.explain(_count_sql(3))
    assert "parallelism=4" in rendered
    assert "morsel_rows=8192" in rendered
    assert "(serial)" not in rendered
