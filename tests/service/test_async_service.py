"""AsyncQueryService: awaitable execution, bounded concurrency, shedding.

Two kinds of tests: answer-correctness against a real database (the
async path must be a pure concurrency wrapper — byte-identical
answers), and overload behavior against a controllable fake service
whose executions block on events, so queue states are reached
deterministically instead of by racing real queries.

No pytest-asyncio in the toolchain: each test drives its own loop
with ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.errors import QueryShed, ServiceClosed, ServiceError
from repro.service import AdmissionConfig, AsyncQueryService, QueryService

COUNT_SQL = (
    "SELECT COUNT(*) AS cnt FROM fact f, dim1 d1 "
    "WHERE f.fk1 = d1.id AND d1.v < {threshold}"
)
OTHER_SQL = (
    "SELECT COUNT(*) AS cnt FROM fact f, dim2 d2 "
    "WHERE f.fk2 = d2.id AND d2.w < 4"
)


class RecordingTracer:
    def __init__(self) -> None:
        self.events = []

    def event(self, name, **fields) -> None:
        self.events.append((name, fields))


class FakeService:
    """Stands in for QueryService: blocks, fails, and records on demand.

    ``block`` holds every execution until released, so tests park a
    known number of queries in the executor and the admission queue.
    """

    def __init__(self, tracer=None) -> None:
        self.telemetry = None
        self.tracer = tracer
        self.deadline_seconds = None
        self.block = threading.Event()
        self.block.set()  # unblocked by default
        self.started = []
        self.finished = []
        self.fail_names: set[str] = set()
        self.closed = False
        self._lock = threading.Lock()

    def execute(self, sql, name=None, pipeline=None, deadline_seconds=None):
        with self._lock:
            self.started.append(name)
        self.block.wait(timeout=10.0)
        if name in self.fail_names:
            raise ValueError(f"{name} was told to fail")
        with self._lock:
            self.finished.append(name)
        return name

    def close(self) -> None:
        self.closed = True


def _async_svc(fake, **kwargs):
    kwargs.setdefault("max_concurrency", 1)
    return AsyncQueryService(service=fake, **kwargs)


# ----------------------------------------------------------------------
# Correctness on a real database
# ----------------------------------------------------------------------


def test_concurrent_async_answers_match_the_sync_service(star_db):
    sqls = [COUNT_SQL.format(threshold=t) for t in (2, 4, 6, 8)] * 3
    sync = QueryService(star_db)
    expected = [sync.execute(sql).scalar("cnt") for sql in sqls]
    sync.close()

    async def run():
        async with AsyncQueryService(star_db, max_concurrency=3) as svc:
            results = await asyncio.gather(
                *(svc.execute(sql) for sql in sqls)
            )
            snapshot = svc.telemetry_snapshot()
            stats = svc.admission_stats()
        return results, snapshot, stats

    results, snapshot, stats = asyncio.run(run())
    assert [r.scalar("cnt") for r in results] == expected
    assert stats.admitted == len(sqls)
    assert stats.sheds == 0
    assert snapshot["queue_depth"]["count"] == len(sqls)
    assert snapshot["admission_wait_seconds"]["count"] == len(sqls)


def test_constructor_requires_exactly_one_source(star_db):
    with pytest.raises(ServiceError):
        AsyncQueryService()
    with pytest.raises(ServiceError):
        AsyncQueryService(star_db, service=FakeService())
    with pytest.raises(ServiceError):
        AsyncQueryService(service=FakeService(), parallelism=2)


# ----------------------------------------------------------------------
# Overload behavior against the fake service
# ----------------------------------------------------------------------


def test_queue_full_sheds_typed_with_retry_hint():
    fake = FakeService()
    fake.block.clear()

    async def run():
        svc = _async_svc(
            fake, admission=AdmissionConfig(queue_capacity=1)
        )
        running = asyncio.ensure_future(svc.execute(OTHER_SQL, "running"))
        await asyncio.sleep(0.05)  # let it occupy the one slot
        queued = asyncio.ensure_future(svc.execute(OTHER_SQL, "queued"))
        await asyncio.sleep(0.05)
        with pytest.raises(QueryShed) as excinfo:
            await svc.execute(OTHER_SQL, "refused")
        assert excinfo.value.reason == "queue"
        assert excinfo.value.retry_after is not None
        fake.block.set()
        assert await running == "running"
        assert await queued == "queued"
        stats = svc.admission_stats()
        await svc.close()
        return stats

    stats = asyncio.run(run())
    assert stats.shed_queue == 1
    assert stats.completed == 2


def test_interactive_dispatches_before_earlier_batch():
    fake = FakeService()
    fake.block.clear()

    async def run():
        svc = _async_svc(fake)
        head = asyncio.ensure_future(svc.execute(OTHER_SQL, "head"))
        await asyncio.sleep(0.05)
        batch = asyncio.ensure_future(
            svc.execute(OTHER_SQL, "bg", priority="batch")
        )
        await asyncio.sleep(0.02)
        urgent = asyncio.ensure_future(
            svc.execute(OTHER_SQL, "urgent", priority="interactive")
        )
        await asyncio.sleep(0.02)
        fake.block.set()
        await asyncio.gather(head, batch, urgent)
        await svc.close()

    asyncio.run(run())
    assert fake.started[0] == "head"
    assert fake.started.index("urgent") < fake.started.index("bg")


def test_quota_exhaustion_sheds_and_traces():
    tracer = RecordingTracer()
    fake = FakeService(tracer=tracer)

    async def run():
        svc = _async_svc(
            fake,
            admission=AdmissionConfig(quota_rate=0.001, quota_burst=1.0),
        )
        await svc.execute(OTHER_SQL, "first", client="greedy")
        with pytest.raises(QueryShed) as excinfo:
            await svc.execute(OTHER_SQL, "second", client="greedy")
        await svc.close()
        return excinfo.value

    shed = asyncio.run(run())
    assert shed.reason == "quota"
    assert shed.retry_after > 0
    assert ("resilience.shed", {
        "query": "second", "reason": "quota", "retry_after": shed.retry_after,
    }) in tracer.events


def test_deadline_expired_while_queued_sheds_at_dispatch():
    fake = FakeService()
    fake.block.clear()

    async def run():
        svc = _async_svc(fake)
        head = asyncio.ensure_future(svc.execute(OTHER_SQL, "head"))
        await asyncio.sleep(0.05)
        doomed = asyncio.ensure_future(
            svc.execute(OTHER_SQL, "doomed", deadline_seconds=0.05)
        )
        await asyncio.sleep(0.2)  # the queued deadline expires
        fake.block.set()
        await head
        with pytest.raises(QueryShed) as excinfo:
            await doomed
        stats = svc.admission_stats()
        await svc.close()
        return excinfo.value, stats

    shed, stats = asyncio.run(run())
    assert shed.reason == "deadline"
    assert stats.shed_deadline == 1
    assert "doomed" not in fake.started  # never burned an executor slot


def test_failing_fingerprint_trips_the_breaker_and_recovers():
    fake = FakeService()

    async def run():
        svc = _async_svc(
            fake,
            admission=AdmissionConfig(
                breaker_window=4,
                breaker_min_samples=4,
                breaker_failure_threshold=0.5,
                breaker_cooldown_seconds=0.1,
            ),
        )
        for i in range(4):
            name = f"fail_{i}"
            fake.fail_names.add(name)
            with pytest.raises(ValueError):
                await svc.execute(OTHER_SQL, name)
        with pytest.raises(QueryShed) as excinfo:
            await svc.execute(OTHER_SQL, "blocked")
        assert excinfo.value.reason == "breaker"
        # A different statement shape is not collateral damage.
        await svc.execute(COUNT_SQL.format(threshold=3), "other_shape")
        await asyncio.sleep(0.15)  # cooldown elapses
        result = await svc.execute(OTHER_SQL, "probe")
        stats = svc.admission_stats()
        await svc.close()
        return result, stats

    result, stats = asyncio.run(run())
    assert result == "probe"
    assert stats.breaker_trips == 1
    assert stats.shed_breaker == 1


def test_close_cancels_queued_typed_and_drains_inflight():
    fake = FakeService()
    fake.block.clear()

    async def run():
        svc = _async_svc(fake)
        inflight = asyncio.ensure_future(svc.execute(OTHER_SQL, "inflight"))
        await asyncio.sleep(0.05)
        queued = asyncio.ensure_future(svc.execute(OTHER_SQL, "queued"))
        await asyncio.sleep(0.05)
        closer = asyncio.ensure_future(svc.close())
        with pytest.raises(ServiceClosed):
            await queued
        fake.block.set()
        assert await inflight == "inflight"  # drained, not killed
        await closer
        with pytest.raises(ServiceClosed):
            await svc.execute(OTHER_SQL, "late")
        await svc.close()  # idempotent
        return svc.admission_stats()

    stats = asyncio.run(run())
    assert stats.cancelled_on_close == 1
    assert stats.completed == 1
    assert not fake.closed  # adopted service stays with its owner


def test_owned_service_is_closed_with_the_facade(star_db):
    async def run():
        svc = AsyncQueryService(star_db, max_concurrency=1)
        await svc.execute(COUNT_SQL.format(threshold=3))
        await svc.close()
        return svc.service

    inner = asyncio.run(run())
    assert inner.closed
    with pytest.raises(ServiceClosed):
        inner.execute(COUNT_SQL.format(threshold=3))
