"""Admission-control units: buckets, breakers, and the controller.

Everything runs on injected fake clocks — no sleeps, no event loop —
so the policies are exercised at exact boundaries: the token that
accrues precisely at the refill instant, the breaker cooldown edge,
the deadline that cannot cover the estimated wait.
"""

from __future__ import annotations

import pytest

from repro.engine.context import Deadline
from repro.errors import QueryShed, ServiceClosed, ServiceError
from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionRequest,
    FailureRateBreaker,
    TokenBucket,
)
from repro.testing import FaultPlan, InjectedFault, inject


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------


def test_bucket_serves_burst_then_returns_retry_after():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
    assert bucket.try_acquire() is None
    assert bucket.try_acquire() is None
    hint = bucket.try_acquire()
    assert hint == pytest.approx(0.1)  # one token at 10/s


def test_bucket_refills_at_rate_and_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
    bucket.try_acquire()
    bucket.try_acquire()
    clock.advance(0.1)  # exactly one token accrues
    assert bucket.try_acquire() is None
    assert bucket.try_acquire() is not None
    clock.advance(100.0)  # refill far beyond burst: capped at 2
    assert bucket.try_acquire() is None
    assert bucket.try_acquire() is None
    assert bucket.try_acquire() is not None


def test_bucket_rejects_non_positive_parameters():
    with pytest.raises(ServiceError):
        TokenBucket(rate=0.0, burst=1.0)
    with pytest.raises(ServiceError):
        TokenBucket(rate=1.0, burst=0.0)


# ----------------------------------------------------------------------
# FailureRateBreaker
# ----------------------------------------------------------------------


def _breaker(clock, **overrides):
    params = dict(
        window=8, min_samples=4, failure_threshold=0.5,
        cooldown_seconds=1.0, clock=clock,
    )
    params.update(overrides)
    return FailureRateBreaker(**params)


def test_breaker_stays_closed_below_min_samples():
    breaker = _breaker(FakeClock())
    for _ in range(3):
        breaker.record(False)  # 100% failures, too few samples
    assert breaker.state == "closed"
    assert breaker.allow() is None


def test_breaker_trips_at_failure_threshold_and_sheds_with_hint():
    clock = FakeClock()
    breaker = _breaker(clock)
    for ok in (True, True, False, False):  # 50% of 4 >= threshold
        breaker.record(ok)
    assert breaker.state == "open"
    assert breaker.trips == 1
    hint = breaker.allow()
    assert hint == pytest.approx(1.0)
    clock.advance(0.4)
    assert breaker.allow() == pytest.approx(0.6)


def test_breaker_half_open_admits_exactly_one_probe():
    clock = FakeClock()
    breaker = _breaker(clock)
    for ok in (False, False, False, False):
        breaker.record(ok)
    clock.advance(1.0)  # cooldown elapsed
    assert breaker.allow() is None  # the probe
    assert breaker.state == "half_open"
    assert breaker.allow() is not None  # concurrent admission sheds
    breaker.record(True)  # probe succeeded
    assert breaker.state == "closed"
    assert breaker.allow() is None


def test_breaker_failed_probe_reopens_with_fresh_cooldown():
    clock = FakeClock()
    breaker = _breaker(clock)
    for ok in (False, False, False, False):
        breaker.record(ok)
    clock.advance(1.0)
    assert breaker.allow() is None
    breaker.record(False)  # probe failed
    assert breaker.state == "open"
    assert breaker.trips == 2
    assert breaker.allow() == pytest.approx(1.0)


def test_breaker_window_slides_old_outcomes_out():
    breaker = _breaker(FakeClock(), window=4, min_samples=4)
    for ok in (False, False, True, True):
        breaker.record(ok)  # exactly at threshold boundary
    assert breaker.state == "open"  # 2/4 = 0.5 >= 0.5


# ----------------------------------------------------------------------
# AdmissionController
# ----------------------------------------------------------------------


def _controller(clock, max_concurrency=2, **config_overrides):
    config = AdmissionConfig(**config_overrides) if config_overrides else None
    return AdmissionController(
        max_concurrency, config=config, clock=clock
    )


def _request(name="q", **overrides):
    return AdmissionRequest(name=name, **overrides)


def test_admit_dispatch_release_round_trip_counts():
    clock = FakeClock()
    controller = _controller(clock)
    ticket = controller.admit(_request())
    assert controller.queued == 1
    ready = controller.next_ready()
    assert ready is ticket
    assert controller.running == 1
    clock.advance(0.25)
    controller.release(ticket, "ok")
    assert controller.running == 0
    stats = controller.stats()
    assert (stats.submitted, stats.admitted, stats.completed) == (1, 1, 1)
    assert controller.estimated_service_seconds == pytest.approx(0.25)


def test_dispatch_order_is_priority_then_arrival():
    controller = _controller(FakeClock(), max_concurrency=1)
    batch = controller.admit(_request("b", priority="batch"))
    normal = controller.admit(_request("n1"))
    normal2 = controller.admit(_request("n2"))
    interactive = controller.admit(_request("i", priority="interactive"))
    first = controller.next_ready()
    assert first is interactive
    assert controller.next_ready() is None  # one slot, occupied
    controller.release(first, "ok")
    assert controller.next_ready() is normal
    controller.release(normal, "ok")
    assert controller.next_ready() is normal2
    controller.release(normal2, "ok")
    assert controller.next_ready() is batch


def test_batch_sheds_at_watermark_while_interactive_keeps_headroom():
    controller = _controller(
        FakeClock(), max_concurrency=1, queue_capacity=4
    )
    running = controller.admit(_request("r"))
    assert controller.next_ready() is running  # slot saturated
    controller.admit(_request("b1", priority="batch"))
    controller.admit(_request("b2", priority="batch"))
    with pytest.raises(QueryShed) as excinfo:
        controller.admit(_request("b3", priority="batch"))  # 2 >= 0.5*4
    assert excinfo.value.reason == "queue"
    assert excinfo.value.retry_after is not None
    # Interactive traffic still has the full queue.
    controller.admit(_request("i1", priority="interactive"))
    controller.admit(_request("i2", priority="interactive"))
    assert controller.queued == 4
    with pytest.raises(QueryShed):
        controller.admit(_request("i3", priority="interactive"))  # full


def test_watermarks_only_bind_when_slots_are_saturated():
    controller = _controller(
        FakeClock(), max_concurrency=4, queue_capacity=4
    )
    # No query is running: batch may use the whole queue.
    for i in range(4):
        controller.admit(_request(f"b{i}", priority="batch"))
    assert controller.queued == 4


def test_quota_sheds_one_client_without_touching_others():
    clock = FakeClock()
    controller = _controller(
        clock, quota_rate=10.0, quota_burst=1.0
    )
    controller.admit(_request("a1", client="alice"))
    with pytest.raises(QueryShed) as excinfo:
        controller.admit(_request("a2", client="alice"))
    assert excinfo.value.reason == "quota"
    assert excinfo.value.retry_after == pytest.approx(0.1)
    controller.admit(_request("b1", client="bob"))  # separate bucket
    clock.advance(0.1)
    controller.admit(_request("a3", client="alice"))  # token accrued


def test_client_quotas_override_the_default_rate():
    controller = _controller(
        FakeClock(),
        quota_rate=1000.0,
        client_quotas={"slow": (1.0, 1.0)},
    )
    controller.admit(_request("s1", client="slow"))
    with pytest.raises(QueryShed) as excinfo:
        controller.admit(_request("s2", client="slow"))
    assert excinfo.value.reason == "quota"
    controller.admit(_request("f1", client="fast"))  # default rate applies


def test_queue_refusal_does_not_charge_the_client_quota():
    clock = FakeClock()
    controller = _controller(
        clock, max_concurrency=1, queue_capacity=1,
        quota_rate=10.0, quota_burst=1.0,
    )
    running = controller.admit(_request("r", client="alice"))
    controller.next_ready()
    controller.admit(_request("q", client="bob"))
    with pytest.raises(QueryShed) as excinfo:
        controller.admit(_request("a2", client="alice"))  # queue full
    assert excinfo.value.reason == "queue"
    controller.release(running, "ok")
    controller.next_ready()
    # alice's bucket was burst-emptied by "r" only; one token accrues
    # and the queue shed above must not have taken another.
    clock.advance(0.1)
    controller.admit(_request("a3", client="alice"))


def test_deadline_shed_on_arrival_uses_the_service_time_estimate():
    clock = FakeClock()
    controller = _controller(clock, max_concurrency=1)
    ticket = controller.admit(_request("warm"))
    controller.next_ready()
    clock.advance(2.0)  # observed service time: 2s
    controller.release(ticket, "ok")
    with pytest.raises(QueryShed) as excinfo:
        controller.admit(_request("doomed", deadline=Deadline.after(0.5)))
    assert excinfo.value.reason == "deadline"
    assert excinfo.value.retry_after is not None
    # A deadline that covers the estimate is admitted.
    controller.admit(_request("fine", deadline=Deadline.after(30.0)))


def test_expired_deadline_is_shed_at_dispatch_not_executed():
    controller = _controller(FakeClock())
    expired = Deadline(0.001, start=-10.0)  # long past expiry
    ticket = controller.admit(_request("stale", deadline=expired))
    ready = controller.next_ready()
    assert ready is ticket
    assert isinstance(ready.dequeue_error, QueryShed)
    assert ready.dequeue_error.reason == "deadline"
    controller.release(ready, "shed")
    assert controller.stats().shed_deadline == 1


def test_breaker_opens_after_repeated_failures_and_probes_after_cooldown():
    clock = FakeClock()
    controller = _controller(
        clock,
        breaker_window=4,
        breaker_min_samples=4,
        breaker_failure_threshold=0.5,
        breaker_cooldown_seconds=1.0,
    )
    for i in range(4):
        ticket = controller.admit(_request(f"f{i}", fingerprint="fp"))
        controller.next_ready()
        controller.release(ticket, "error")
    assert controller.breaker_state("fp") == "open"
    assert controller.stats().breaker_trips == 1
    with pytest.raises(QueryShed) as excinfo:
        controller.admit(_request("blocked", fingerprint="fp"))
    assert excinfo.value.reason == "breaker"
    controller.admit(_request("other", fingerprint="other"))  # unaffected
    clock.advance(1.0)
    probe = controller.admit(_request("probe", fingerprint="fp"))
    controller.next_ready()
    controller.release(probe, "ok")
    assert controller.breaker_state("fp") == "closed"
    controller.admit(_request("recovered", fingerprint="fp"))


def test_shed_release_feeds_neither_breaker_nor_estimate():
    clock = FakeClock()
    controller = _controller(
        clock, breaker_window=4, breaker_min_samples=4
    )
    ticket = controller.admit(_request("t", fingerprint="fp"))
    controller.next_ready()
    clock.advance(5.0)
    controller.release(ticket, "shed")
    assert controller.estimated_service_seconds is None
    assert controller.breaker_state("fp") == "closed"
    assert controller.stats().failures == 0


def test_close_cancels_queued_tickets_and_refuses_new_admissions():
    controller = _controller(FakeClock(), max_concurrency=1)
    running = controller.admit(_request("r"))
    controller.next_ready()
    queued = controller.admit(_request("q"))
    cancelled = controller.close()
    assert cancelled == [queued]
    assert queued.state == "cancelled"
    assert controller.queued == 0
    with pytest.raises(ServiceClosed):
        controller.admit(_request("late"))
    assert controller.close() == []  # idempotent
    controller.release(running, "ok")  # in-flight work still releases
    assert controller.running == 0
    assert controller.stats().cancelled_on_close == 1


def test_unknown_priority_is_a_service_error_not_a_shed():
    controller = _controller(FakeClock())
    with pytest.raises(ServiceError):
        controller.admit(_request("bad", priority="urgent"))


def test_config_validation_rejects_bad_values():
    with pytest.raises(ServiceError):
        AdmissionConfig(queue_capacity=0)
    with pytest.raises(ServiceError):
        AdmissionConfig(watermarks={"urgent": 0.5})
    with pytest.raises(ServiceError):
        AdmissionConfig(watermarks={"batch": 0.0})
    with pytest.raises(ServiceError):
        AdmissionConfig(breaker_failure_threshold=0.0)
    with pytest.raises(ServiceError):
        AdmissionConfig(breaker_window=2, breaker_min_samples=4)


def test_admit_fault_site_fires_typed():
    controller = _controller(FakeClock())
    with inject(FaultPlan(seed=1).raise_at("service.admit", invocation=0)):
        with pytest.raises(InjectedFault):
            controller.admit(_request("chaos"))


def test_dequeue_fault_lands_in_dequeue_error_not_lost():
    controller = _controller(FakeClock())
    ticket = controller.admit(_request("chaos"))
    with inject(FaultPlan(seed=1).raise_at("service.dequeue", invocation=0)):
        ready = controller.next_ready()
    assert ready is ticket
    assert isinstance(ready.dequeue_error, InjectedFault)
    controller.release(ready, "shed")
    assert controller.running == 0
