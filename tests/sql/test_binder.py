"""Tests for SQL binding against a catalog."""

import pytest

from repro.errors import SqlError
from repro.sql.binder import parse_query


class TestBinding:
    def test_joins_separated_from_locals(self, star_db):
        spec = parse_query(
            star_db,
            """
            SELECT COUNT(*) AS cnt
            FROM fact f, dim1 d1, dim2 d2
            WHERE f.fk1 = d1.id AND f.fk2 = d2.id AND d1.v < 3
            """,
        )
        assert len(spec.join_predicates) == 2
        assert set(spec.local_predicates) == {"d1"}

    def test_unqualified_column_resolved_uniquely(self, star_db):
        spec = parse_query(
            star_db,
            "SELECT COUNT(*) AS c FROM fact f, dim1 d WHERE f.fk1 = d.id AND v < 3",
        )
        predicate = spec.local_predicates["d"]
        assert "d.v" in str(predicate)

    def test_ambiguous_column_rejected(self, star_db):
        with pytest.raises(SqlError, match="ambiguous"):
            parse_query(
                star_db,
                "SELECT COUNT(*) AS c FROM dim1 a, dim1 b WHERE a.id = b.id AND id < 5",
            )

    def test_unknown_table_rejected(self, star_db):
        with pytest.raises(SqlError, match="unknown table"):
            parse_query(star_db, "SELECT COUNT(*) AS c FROM nope n")

    def test_unknown_column_rejected(self, star_db):
        with pytest.raises(SqlError, match="unknown column"):
            parse_query(star_db, "SELECT COUNT(*) AS c FROM fact f WHERE f.zzz = 1")

    def test_duplicate_alias_rejected(self, star_db):
        with pytest.raises(SqlError, match="duplicate alias"):
            parse_query(star_db, "SELECT COUNT(*) AS c FROM fact a, dim1 a")

    def test_bare_column_requires_group_by_with_aggregates(self, star_db):
        with pytest.raises(SqlError, match="GROUP BY"):
            parse_query(star_db, "SELECT f.fk1, COUNT(*) AS c FROM fact f")

    def test_bare_column_without_aggregates_is_projection(self, star_db):
        spec = parse_query(star_db, "SELECT f.fk1 FROM fact f")
        assert not spec.aggregates
        assert [str(ref) for ref in spec.select_columns] == ["f.fk1"]

    def test_group_by_select_allowed(self, star_db):
        spec = parse_query(
            star_db,
            "SELECT d.v, COUNT(*) AS c FROM fact f, dim1 d "
            "WHERE f.fk1 = d.id GROUP BY d.v",
        )
        assert len(spec.group_by) == 1

    def test_or_predicate_single_table_allowed(self, star_db):
        spec = parse_query(
            star_db,
            "SELECT COUNT(*) AS c FROM dim1 d WHERE (d.v = 1 OR d.v = 2)",
        )
        assert "d" in spec.local_predicates

    def test_cross_relation_or_rejected(self, star_db):
        with pytest.raises(SqlError, match="multiple relations"):
            parse_query(
                star_db,
                """
                SELECT COUNT(*) AS c FROM fact f, dim1 d
                WHERE f.fk1 = d.id AND (f.fk2 = 1 OR d.v = 2)
                """,
            )

    def test_self_join_aliases(self, star_db):
        spec = parse_query(
            star_db,
            "SELECT COUNT(*) AS c FROM dim1 a, dim1 b WHERE a.id = b.id",
        )
        assert spec.alias_tables == {"a": "dim1", "b": "dim1"}

    def test_column_equality_same_alias_is_local(self, star_db):
        spec = parse_query(
            star_db,
            "SELECT COUNT(*) AS c FROM fact f, dim1 d "
            "WHERE f.fk1 = d.id AND f.fk1 = f.fk2",
        )
        assert len(spec.join_predicates) == 1
        assert "f" in spec.local_predicates

    def test_workload_queries_all_bind(self, tpcds_tiny, job_tiny):
        db_ds, queries_ds = tpcds_tiny
        db_job, queries_job = job_tiny
        assert len(queries_ds) == 32
        assert len(queries_job) == 30
        for spec in queries_ds:
            spec.validate_against(db_ds)
        for spec in queries_job:
            spec.validate_against(db_job)
