"""Tests for the SQL lexer and parser."""

import pytest

from repro.errors import SqlError
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_select


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.kind == "keyword" and t.text == "select" for t in tokens)

    def test_identifiers_preserve_case(self):
        tokens = tokenize("MyTable")
        assert tokens[0].kind == "identifier"
        assert tokens[0].text == "MyTable"

    def test_numbers(self):
        tokens = tokenize("1 2.5")
        assert [t.text for t in tokens] == ["1", "2.5"]
        assert all(t.kind == "number" for t in tokens)

    def test_negative_number_after_operator(self):
        tokens = tokenize("x < -3")
        assert [t.text for t in tokens] == ["x", "<", "-3"]
        assert tokens[2].kind == "number"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == "string"
        assert tokens[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlError, match="unterminated"):
            tokenize("'oops")

    def test_operators(self):
        tokens = tokenize("< <= > >= = <> !=")
        assert [t.text for t in tokens] == ["<", "<=", ">", ">=", "=", "<>", "<>"]

    def test_comments_skipped(self):
        tokens = tokenize("select -- a comment\n x")
        assert [t.text for t in tokens] == ["select", "x"]

    def test_qualified_name_tokens(self):
        tokens = tokenize("a.b")
        assert [t.kind for t in tokens] == ["identifier", "dot", "identifier"]

    def test_unexpected_character(self):
        with pytest.raises(SqlError):
            tokenize("select @x")


class TestParser:
    def test_minimal_select(self):
        stmt = parse_select("SELECT COUNT(*) FROM t")
        assert stmt.items[0].function == "count"
        assert stmt.tables[0].table == "t"
        assert stmt.tables[0].alias == "t"
        assert stmt.where is None

    def test_aliases(self):
        stmt = parse_select("SELECT COUNT(*) FROM tbl x, tbl AS y")
        assert [t.alias for t in stmt.tables] == ["x", "y"]

    def test_aggregates_with_labels(self):
        stmt = parse_select("SELECT SUM(a.x) AS total, AVG(a.y) m FROM t a")
        assert stmt.items[0].alias == "total"
        assert stmt.items[1].function == "avg"
        assert stmt.items[1].alias == "m"

    def test_where_conjunction(self):
        stmt = parse_select(
            "SELECT COUNT(*) FROM t a, u b "
            "WHERE a.x = b.y AND a.z < 5 AND b.s LIKE 'q%'"
        )
        assert stmt.where is not None

    def test_between_and_in(self):
        stmt = parse_select(
            "SELECT COUNT(*) FROM t a WHERE a.x BETWEEN 1 AND 5 AND a.y IN (1, 2, 3)"
        )
        assert stmt.where is not None

    def test_not_variants(self):
        parse_select("SELECT COUNT(*) FROM t a WHERE a.x NOT IN (1)")
        parse_select("SELECT COUNT(*) FROM t a WHERE a.s NOT LIKE 'x%'")
        parse_select("SELECT COUNT(*) FROM t a WHERE NOT (a.x = 1)")

    def test_or_parentheses(self):
        stmt = parse_select(
            "SELECT COUNT(*) FROM t a WHERE (a.x = 1 OR a.x = 2) AND a.y > 0"
        )
        assert stmt.where is not None

    def test_group_by(self):
        stmt = parse_select(
            "SELECT a.g, COUNT(*) FROM t a GROUP BY a.g"
        )
        assert len(stmt.group_by) == 1

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlError, match="trailing"):
            parse_select("SELECT COUNT(*) FROM t a LIMIT 5 extra")

    def test_missing_from_rejected(self):
        with pytest.raises(SqlError):
            parse_select("SELECT COUNT(*)")

    def test_bad_predicate_rejected(self):
        with pytest.raises(SqlError):
            parse_select("SELECT COUNT(*) FROM t a WHERE a.x LIKE 5")


class TestTopKClauses:
    def test_order_by_limit(self):
        stmt = parse_select(
            "SELECT a.g, COUNT(*) AS c FROM t a GROUP BY a.g "
            "ORDER BY c DESC, a.g ASC LIMIT 5"
        )
        assert stmt.limit == 5
        assert len(stmt.order_by) == 2
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True

    def test_order_by_defaults_ascending(self):
        stmt = parse_select("SELECT a.x FROM t a ORDER BY a.x")
        assert stmt.order_by[0].ascending is True
        assert stmt.limit is None

    def test_order_by_aggregate_call(self):
        stmt = parse_select(
            "SELECT a.g, COUNT(*) AS c FROM t a GROUP BY a.g "
            "ORDER BY SUM(a.x) DESC LIMIT 3"
        )
        key = stmt.order_by[0]
        assert key.target.function == "sum"
        assert key.ascending is False

    def test_limit_without_order_by(self):
        stmt = parse_select("SELECT a.x FROM t a LIMIT 10")
        assert stmt.limit == 10
        assert stmt.order_by == ()

    def test_having_requires_group_context_at_bind_not_parse(self):
        stmt = parse_select(
            "SELECT a.g, COUNT(*) AS c FROM t a GROUP BY a.g "
            "HAVING COUNT(*) > 2 AND SUM(a.x) < 100"
        )
        assert stmt.having is not None

    def test_negative_limit_rejected(self):
        with pytest.raises(SqlError, match="LIMIT"):
            parse_select("SELECT a.x FROM t a LIMIT -1")

    def test_fractional_limit_rejected(self):
        with pytest.raises(SqlError, match="LIMIT"):
            parse_select("SELECT a.x FROM t a LIMIT 2.5")


class TestErrorPositions:
    """Syntax errors carry the token offset and the offending lexeme."""

    def test_unexpected_token_position_and_lexeme(self):
        sql = "SELECT COUNT(*) FROM t a WHERE a.x BETWEEN 1 OR 2"
        with pytest.raises(SqlError) as exc:
            parse_select(sql)
        assert exc.value.position == sql.index("OR")
        assert "'OR'" in str(exc.value) or "'or'" in str(exc.value).lower()
        assert f"(at offset {sql.index('OR')})" in str(exc.value)

    def test_trailing_garbage_reports_position(self):
        sql = "SELECT COUNT(*) FROM t a extra"
        with pytest.raises(SqlError) as exc:
            parse_select(sql)
        assert exc.value.position == sql.index("extra")
        assert "extra" in str(exc.value)

    def test_truncated_query_reports_end_position(self):
        sql = "SELECT COUNT(*) FROM"
        with pytest.raises(SqlError) as exc:
            parse_select(sql)
        assert exc.value.position is not None
        assert exc.value.position >= sql.index("FROM")

    def test_bad_limit_reports_lexeme(self):
        sql = "SELECT a.x FROM t a LIMIT abc"
        with pytest.raises(SqlError) as exc:
            parse_select(sql)
        assert exc.value.position == sql.index("abc")
        assert "abc" in str(exc.value)

    def test_non_column_like_reports_operand(self):
        sql = "SELECT COUNT(*) FROM t a WHERE 5 LIKE 'x%'"
        with pytest.raises(SqlError) as exc:
            parse_select(sql)
        assert exc.value.position == sql.index("5 LIKE")
        assert "'5'" in str(exc.value)
