"""Tests for the SQL lexer and parser."""

import pytest

from repro.errors import SqlError
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_select


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.kind == "keyword" and t.text == "select" for t in tokens)

    def test_identifiers_preserve_case(self):
        tokens = tokenize("MyTable")
        assert tokens[0].kind == "identifier"
        assert tokens[0].text == "MyTable"

    def test_numbers(self):
        tokens = tokenize("1 2.5")
        assert [t.text for t in tokens] == ["1", "2.5"]
        assert all(t.kind == "number" for t in tokens)

    def test_negative_number_after_operator(self):
        tokens = tokenize("x < -3")
        assert [t.text for t in tokens] == ["x", "<", "-3"]
        assert tokens[2].kind == "number"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == "string"
        assert tokens[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlError, match="unterminated"):
            tokenize("'oops")

    def test_operators(self):
        tokens = tokenize("< <= > >= = <> !=")
        assert [t.text for t in tokens] == ["<", "<=", ">", ">=", "=", "<>", "<>"]

    def test_comments_skipped(self):
        tokens = tokenize("select -- a comment\n x")
        assert [t.text for t in tokens] == ["select", "x"]

    def test_qualified_name_tokens(self):
        tokens = tokenize("a.b")
        assert [t.kind for t in tokens] == ["identifier", "dot", "identifier"]

    def test_unexpected_character(self):
        with pytest.raises(SqlError):
            tokenize("select @x")


class TestParser:
    def test_minimal_select(self):
        stmt = parse_select("SELECT COUNT(*) FROM t")
        assert stmt.items[0].function == "count"
        assert stmt.tables[0].table == "t"
        assert stmt.tables[0].alias == "t"
        assert stmt.where is None

    def test_aliases(self):
        stmt = parse_select("SELECT COUNT(*) FROM tbl x, tbl AS y")
        assert [t.alias for t in stmt.tables] == ["x", "y"]

    def test_aggregates_with_labels(self):
        stmt = parse_select("SELECT SUM(a.x) AS total, AVG(a.y) m FROM t a")
        assert stmt.items[0].alias == "total"
        assert stmt.items[1].function == "avg"
        assert stmt.items[1].alias == "m"

    def test_where_conjunction(self):
        stmt = parse_select(
            "SELECT COUNT(*) FROM t a, u b "
            "WHERE a.x = b.y AND a.z < 5 AND b.s LIKE 'q%'"
        )
        assert stmt.where is not None

    def test_between_and_in(self):
        stmt = parse_select(
            "SELECT COUNT(*) FROM t a WHERE a.x BETWEEN 1 AND 5 AND a.y IN (1, 2, 3)"
        )
        assert stmt.where is not None

    def test_not_variants(self):
        parse_select("SELECT COUNT(*) FROM t a WHERE a.x NOT IN (1)")
        parse_select("SELECT COUNT(*) FROM t a WHERE a.s NOT LIKE 'x%'")
        parse_select("SELECT COUNT(*) FROM t a WHERE NOT (a.x = 1)")

    def test_or_parentheses(self):
        stmt = parse_select(
            "SELECT COUNT(*) FROM t a WHERE (a.x = 1 OR a.x = 2) AND a.y > 0"
        )
        assert stmt.where is not None

    def test_group_by(self):
        stmt = parse_select(
            "SELECT a.g, COUNT(*) FROM t a GROUP BY a.g"
        )
        assert len(stmt.group_by) == 1

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlError, match="trailing"):
            parse_select("SELECT COUNT(*) FROM t a LIMIT 5")

    def test_missing_from_rejected(self):
        with pytest.raises(SqlError):
            parse_select("SELECT COUNT(*)")

    def test_bad_predicate_rejected(self):
        with pytest.raises(SqlError):
            parse_select("SELECT COUNT(*) FROM t a WHERE a.x LIKE 5")
