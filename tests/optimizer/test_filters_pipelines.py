"""Tests for cost-based filter selection (Section 6.3) and the
end-to-end pipelines."""

import numpy as np
import pytest

from repro.engine.executor import Executor
from repro.errors import OptimizerError
from repro.optimizer.filter_selection import apply_cost_based_filters
from repro.optimizer.pipelines import PIPELINES, optimize_query
from repro.plan.builder import build_right_deep
from repro.plan.nodes import HashJoinNode
from repro.query.joingraph import JoinGraph
from repro.query.spec import JoinPredicate, QuerySpec, RelationRef
from repro.stats.estimator import CardinalityEstimator
from repro.storage.database import Database
from repro.storage.schema import ForeignKey
from repro.storage.table import Table


@pytest.fixture(scope="module")
def unselective_db():
    """Fact whose FK domain exactly covers the dimension: a bitvector
    from the (unfiltered) dimension eliminates nothing."""
    rng = np.random.default_rng(0)
    db = Database("u")
    db.add_table(
        Table.from_arrays("dim", {"id": np.arange(50)}, key=("id",))
    )
    db.add_table(
        Table.from_arrays("fact", {"fk": rng.integers(0, 50, 5000)})
    )
    db.add_foreign_key(ForeignKey("fact", ("fk",), "dim", ("id",)))
    return db


class TestCostBasedSelection:
    def test_useless_filter_disabled(self, unselective_db):
        spec = QuerySpec(
            name="q",
            relations=(RelationRef("f", "fact"), RelationRef("d", "dim")),
            join_predicates=(JoinPredicate("f", ("fk",), "d", ("id",)),),
        )
        graph = JoinGraph(spec, unselective_db.catalog)
        estimator = CardinalityEstimator(unselective_db, spec.alias_tables)
        plan = build_right_deep(graph, ["f", "d"])
        apply_cost_based_filters(plan, estimator, lambda_thresh=0.05)
        joins = [n for n in plan.walk() if isinstance(n, HashJoinNode)]
        assert all(not j.creates_bitvector for j in joins)

    def test_selective_filter_kept(self, star_db, star_spec):
        graph = JoinGraph(star_spec, star_db.catalog)
        estimator = CardinalityEstimator(star_db, star_spec.alias_tables)
        plan = build_right_deep(graph, ["f", "d1", "d2"])
        apply_cost_based_filters(plan, estimator, lambda_thresh=0.05)
        joins = {n.build_keys[0][0]: n for n in plan.walk()
                 if isinstance(n, HashJoinNode)}
        # d1 has a 30%-selectivity predicate: its filter survives;
        # d2 is unfiltered and covers the domain: its filter is dropped.
        assert joins["d1"].creates_bitvector
        assert not joins["d2"].creates_bitvector

    def test_zero_threshold_keeps_everything(self, star_db, star_spec):
        graph = JoinGraph(star_spec, star_db.catalog)
        estimator = CardinalityEstimator(star_db, star_spec.alias_tables)
        plan = build_right_deep(graph, ["f", "d1", "d2"])
        apply_cost_based_filters(plan, estimator, lambda_thresh=0.0)
        assert all(
            n.creates_bitvector for n in plan.walk()
            if isinstance(n, HashJoinNode)
        )


class TestPipelines:
    def test_all_pipelines_registered(self):
        assert set(PIPELINES) == {
            "original", "original_nobv", "original_allfilters",
            "bqo", "bqo_allfilters", "dp", "dp_nobv",
        }

    def test_unknown_pipeline_rejected(self, star_db, star_spec):
        with pytest.raises(OptimizerError, match="unknown pipeline"):
            optimize_query(star_db, star_spec, "nope")

    @pytest.mark.parametrize("pipeline", sorted(PIPELINES))
    def test_each_pipeline_produces_correct_answer(
        self, pipeline, star_db, star_spec, star_expected_count
    ):
        optimized = optimize_query(star_db, star_spec, pipeline)
        result = Executor(star_db).execute(optimized.plan)
        assert result.scalar("cnt") == star_expected_count

    def test_nobv_pipeline_has_no_filters(self, star_db, star_spec):
        optimized = optimize_query(star_db, star_spec, "original_nobv")
        assert all(
            node.created_bitvector is None
            for node in optimized.plan.walk()
            if isinstance(node, HashJoinNode)
        )

    def test_allfilters_pipeline_filters_every_join(self, star_db, star_spec):
        optimized = optimize_query(star_db, star_spec, "bqo_allfilters")
        joins = [
            n for n in optimized.plan.walk() if isinstance(n, HashJoinNode)
        ]
        assert all(j.created_bitvector is not None for j in joins)

    def test_estimated_cout_recorded(self, star_db, star_spec):
        optimized = optimize_query(star_db, star_spec, "bqo")
        assert optimized.estimated_cout > 0
        assert optimized.signature
        assert optimized.name == "star_q/bqo"

    def test_bqo_not_worse_than_original_on_star(self, star_db, star_spec):
        executor = Executor(star_db)
        cpu = {}
        for pipeline in ("original", "bqo"):
            optimized = optimize_query(star_db, star_spec, pipeline)
            cpu[pipeline] = executor.execute(optimized.plan).metrics.metered_cpu()
        assert cpu["bqo"] <= cpu["original"] * 1.25
