"""Tests for Algorithm 2 (OptimizeSnowflake) and Algorithm 3
(OptimizeJoinGraph)."""

from repro.cost.truecard import true_cout
from repro.optimizer.enumerate import right_deep_orders
from repro.optimizer.multifact import optimize_join_graph
from repro.optimizer.snowflake import optimize_snowflake
from repro.optimizer.units import UnitGraph
from repro.plan.builder import build_right_deep
from repro.plan.properties import base_aliases, join_count
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.stats.estimator import CardinalityEstimator
from repro.workloads.synthetic import random_snowflake


def setup(db, spec):
    graph = JoinGraph(spec, db.catalog)
    estimator = CardinalityEstimator(db, spec.alias_tables)
    return graph, estimator


class TestUnitGraph:
    def test_base_units(self, star_db, star_spec):
        graph, estimator = setup(star_db, star_spec)
        ugraph = UnitGraph(graph, estimator)
        assert set(ugraph.unit_ids) == set(star_spec.aliases)
        assert ugraph.is_fact_unit("f")
        assert not ugraph.is_fact_unit("d1")

    def test_key_join_direction(self, star_db, star_spec):
        graph, estimator = setup(star_db, star_spec)
        ugraph = UnitGraph(graph, estimator)
        assert ugraph.is_key_join_into("f", "d1")
        assert not ugraph.is_key_join_into("d1", "f")

    def test_expand_snowflake_includes_chains(self):
        db, spec = random_snowflake(0, branch_lengths=(2, 1))
        graph, estimator = setup(db, spec)
        ugraph = UnitGraph(graph, estimator)
        assert ugraph.expand_snowflake("f") == set(spec.aliases)

    def test_collapse_merges_members(self, star_db, star_spec):
        graph, estimator = setup(star_db, star_spec)
        ugraph = UnitGraph(graph, estimator)
        plan = optimize_snowflake(ugraph, "f", {"f", "d1"})
        ugraph.collapse({"f", "d1"}, plan, rows=100.0, fact_id="f")
        assert len(ugraph) == 2
        composite = ugraph.unit("f")
        assert composite.optimized
        assert composite.members == frozenset({"f", "d1"})

    def test_neighbors_after_collapse(self, star_db, star_spec):
        graph, estimator = setup(star_db, star_spec)
        ugraph = UnitGraph(graph, estimator)
        plan = optimize_snowflake(ugraph, "f", {"f", "d1"})
        ugraph.collapse({"f", "d1"}, plan, rows=100.0, fact_id="f")
        assert ugraph.neighbors("f") == {"d2"}


class TestOptimizeSnowflake:
    def test_star_plan_covers_all(self, star_db, star_spec):
        graph, estimator = setup(star_db, star_spec)
        ugraph = UnitGraph(graph, estimator)
        plan = optimize_snowflake(ugraph, "f")
        assert base_aliases(plan) == frozenset(star_spec.aliases)

    def test_snowflake_matches_exhaustive_minimum(self):
        """Algorithm 2 should land on (or very near) the true optimum
        for a pure PKFK snowflake — its candidate set provably contains
        it; estimation noise is the only slack."""
        for seed in (0, 1, 2):
            db, spec = random_snowflake(
                seed, branch_lengths=(1, 2), fact_rows=600, dim_rows=50
            )
            graph, estimator = setup(db, spec)
            ugraph = UnitGraph(graph, estimator)
            plan = push_down_bitvectors(optimize_snowflake(ugraph, "f"))
            algo_cost = true_cout(plan, db)
            best = min(
                true_cout(
                    push_down_bitvectors(build_right_deep(graph, order)), db
                )
                for order in right_deep_orders(graph)
            )
            assert algo_cost <= best * 1.35

    def test_single_unit_scope(self, star_db, star_spec):
        graph, estimator = setup(star_db, star_spec)
        ugraph = UnitGraph(graph, estimator)
        plan = optimize_snowflake(ugraph, "f", scope={"f"})
        assert base_aliases(plan) == frozenset({"f"})


class TestOptimizeJoinGraph:
    def test_star_handled(self, star_db, star_spec):
        graph, estimator = setup(star_db, star_spec)
        plan = optimize_join_graph(graph, estimator)
        assert base_aliases(plan) == frozenset(star_spec.aliases)
        assert join_count(plan) == 2

    def test_multifact_query_covered(self, tpcds_tiny):
        db, queries = tpcds_tiny
        multi = next(q for q in queries if q.name == "ds_q17")
        graph, estimator = setup(db, multi)
        plan = optimize_join_graph(graph, estimator)
        assert base_aliases(plan) == frozenset(multi.aliases)
        assert join_count(plan) == len(multi.relations) - 1

    def test_every_tpcds_query_planable(self, tpcds_tiny):
        db, queries = tpcds_tiny
        for spec in queries:
            graph, estimator = setup(db, spec)
            plan = optimize_join_graph(graph, estimator)
            assert base_aliases(plan) == frozenset(spec.aliases)

    def test_every_job_query_planable(self, job_tiny):
        db, queries = job_tiny
        for spec in queries:
            graph, estimator = setup(db, spec)
            plan = optimize_join_graph(graph, estimator)
            assert base_aliases(plan) == frozenset(spec.aliases)

    def test_every_customer_query_planable(self, customer_tiny):
        db, queries = customer_tiny
        for spec in queries:
            graph, estimator = setup(db, spec)
            plan = optimize_join_graph(graph, estimator)
            assert base_aliases(plan) == frozenset(spec.aliases)

    def test_high_join_counts_supported(self, customer_tiny):
        db, queries = customer_tiny
        big = max(queries, key=lambda q: len(q.relations))
        graph, estimator = setup(db, big)
        plan = optimize_join_graph(graph, estimator)
        assert join_count(plan) == len(big.relations) - 1
