"""Zone-aware cost-based filter selection and estimator skip fractions.

The optimizer side of morsel skipping: the estimator *peeks* at zone
maps the executor has already built (never triggering construction)
and quantifies rows the engine will skip for free; with
``zone_aware=True``, ``apply_cost_based_filters`` credits a bitvector
only with the elimination it adds on top of that skipping.
"""

import numpy as np

from repro.cost.constants import DEFAULT_LAMBDA_THRESH
from repro.engine.executor import Executor
from repro.expr.expressions import Between, col, lit
from repro.optimizer.filter_selection import apply_cost_based_filters
from repro.optimizer.pipelines import optimize_query
from repro.plan.nodes import HashJoinNode
from repro.sql.binder import parse_query
from repro.stats.estimator import CardinalityEstimator
from repro.storage.database import Database
from repro.storage.table import Table

_ROWS = 40_000
_MORSEL_ROWS = 2_048


def _clustered_database() -> Database:
    database = Database("zaf")
    database.add_table(
        Table.from_arrays(
            "fact",
            {"k": np.sort(np.arange(_ROWS) % 1000), "v": np.ones(_ROWS)},
        ),
        validate_key=False,
    )
    database.add_table(
        Table.from_arrays("dim", {"d": np.arange(1000)}, key=("d",))
    )
    return database


def _estimator(database) -> CardinalityEstimator:
    return CardinalityEstimator(database, {"f": "fact", "d": "dim"})


class TestEstimatorSkipFractions:
    def test_zero_without_resident_zone_maps(self):
        estimator = _estimator(_clustered_database())
        band = Between(col("f", "k"), lit(100), lit(149))
        assert estimator.zone_map_skip_fraction("f", band) == 0.0
        assert estimator.bitvector_zone_skip_fraction(
            "f", ("k",), "d", ("d",)
        ) == 0.0

    def test_predicate_skip_fraction_after_warmup(self):
        database = _clustered_database()
        database.zone_map("fact", "k", _MORSEL_ROWS, 1)
        estimator = _estimator(database)
        band = Between(col("f", "k"), lit(100), lit(149))
        fraction = estimator.zone_map_skip_fraction("f", band)
        # A 5% band over a clustered key leaves only the boundary
        # morsels unprunable.
        assert 0.5 < fraction < 1.0
        impossible = Between(col("f", "k"), lit(5000), lit(6000))
        assert estimator.zone_map_skip_fraction("f", impossible) == 1.0

    def test_bitvector_skip_uses_build_stats_bounds(self):
        database = _clustered_database()
        database.zone_map("fact", "k", _MORSEL_ROWS, 1)
        estimator = _estimator(database)
        # The dim key spans the full fact domain: nothing is disjoint.
        assert estimator.bitvector_zone_skip_fraction(
            "f", ("k",), "d", ("d",)
        ) == 0.0

    def test_bitvector_skip_with_narrow_build_domain(self):
        database = _clustered_database()
        database.add_table(
            Table.from_arrays(
                "band_dim", {"b": np.arange(100, 150)}, key=("b",)
            )
        )
        database.zone_map("fact", "k", _MORSEL_ROWS, 1)
        estimator = CardinalityEstimator(
            database, {"f": "fact", "b": "band_dim"}
        )
        fraction = estimator.bitvector_zone_skip_fraction(
            "f", ("k",), "b", ("b",)
        )
        assert 0.5 < fraction < 1.0


class TestZoneAwareFilterSelection:
    def _optimized_plan(self, database, sql):
        spec = parse_query(database, sql, "q")
        return optimize_query(database, spec, "bqo").plan

    def _joins(self, plan):
        return [
            node for node in plan.walk() if isinstance(node, HashJoinNode)
        ]

    def test_default_behavior_unchanged(self):
        database = _clustered_database()
        database.zone_map("fact", "k", _MORSEL_ROWS, 1)
        sql = "SELECT COUNT(*) AS c FROM fact f, dim d WHERE f.k = d.d"
        plan = self._optimized_plan(database, sql)
        estimator = _estimator(database)
        before = [j.creates_bitvector for j in self._joins(plan)]
        apply_cost_based_filters(plan, estimator, DEFAULT_LAMBDA_THRESH)
        assert [j.creates_bitvector for j in self._joins(plan)] == before

    def test_zone_aware_drops_filter_when_skipping_covers_it(self):
        # A dimension covering exactly the band zone maps already skip:
        # the filter's residual elimination is ~0, so zone-aware
        # selection refuses to build it, while the default keeps it.
        database = _clustered_database()
        database.add_table(
            Table.from_arrays(
                "band_dim", {"b": np.arange(100, 150)}, key=("b",)
            )
        )
        sql = "SELECT COUNT(*) AS c FROM fact f, band_dim b WHERE f.k = b.b"
        estimator = CardinalityEstimator(
            database, {"f": "fact", "b": "band_dim"}
        )
        plan = self._optimized_plan(database, sql)
        apply_cost_based_filters(plan, estimator, DEFAULT_LAMBDA_THRESH)
        assert any(j.creates_bitvector for j in self._joins(plan))

        # Warm the synopsis the way the executor would, then re-select.
        database.zone_map("fact", "k", _MORSEL_ROWS, 1)
        plan = self._optimized_plan(database, sql)
        apply_cost_based_filters(
            plan, estimator, DEFAULT_LAMBDA_THRESH, zone_aware=True
        )
        assert not any(j.creates_bitvector for j in self._joins(plan))

        # And the zone-aware decision without a resident synopsis is
        # identical to the default (peeking never builds).
        database.invalidate_zone_maps()
        plan = self._optimized_plan(database, sql)
        apply_cost_based_filters(
            plan, estimator, DEFAULT_LAMBDA_THRESH, zone_aware=True
        )
        assert any(j.creates_bitvector for j in self._joins(plan))

    def test_zone_aware_is_the_default(self):
        """The ROADMAP follow-up landed: ``zone_aware`` defaults to True,
        so a warm synopsis changes the default decision while
        ``zone_aware=False`` restores the paper's unadjusted rule."""
        database = _clustered_database()
        database.add_table(
            Table.from_arrays(
                "band_dim", {"b": np.arange(100, 150)}, key=("b",)
            )
        )
        database.zone_map("fact", "k", _MORSEL_ROWS, 1)
        sql = "SELECT COUNT(*) AS c FROM fact f, band_dim b WHERE f.k = b.b"
        estimator = CardinalityEstimator(
            database, {"f": "fact", "b": "band_dim"}
        )
        plan = self._optimized_plan(database, sql)
        apply_cost_based_filters(plan, estimator, DEFAULT_LAMBDA_THRESH)
        assert not any(j.creates_bitvector for j in self._joins(plan))
        plan = self._optimized_plan(database, sql)
        apply_cost_based_filters(
            plan, estimator, DEFAULT_LAMBDA_THRESH, zone_aware=False
        )
        assert any(j.creates_bitvector for j in self._joins(plan))

    def test_executor_results_agree_either_way(self):
        database = _clustered_database()
        database.add_table(
            Table.from_arrays(
                "band_dim", {"b": np.arange(100, 150)}, key=("b",)
            )
        )
        database.zone_map("fact", "k", _MORSEL_ROWS, 1)
        sql = "SELECT COUNT(*) AS c FROM fact f, band_dim b WHERE f.k = b.b"
        estimator = CardinalityEstimator(
            database, {"f": "fact", "b": "band_dim"}
        )
        executor = Executor(database, morsel_rows=_MORSEL_ROWS)
        answers = []
        for zone_aware in (False, True):
            plan = self._optimized_plan(database, sql)
            apply_cost_based_filters(
                plan, estimator, DEFAULT_LAMBDA_THRESH, zone_aware=zone_aware
            )
            from repro.plan.pushdown import push_down_bitvectors

            push_down_bitvectors(plan)
            answers.append(executor.execute(plan).scalar("c"))
        assert answers[0] == answers[1]
