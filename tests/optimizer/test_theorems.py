"""Empirical validation of the paper's theorems (Sections 4 and 5).

For random star/snowflake instances with PKFK joins and exact
(no-false-positive) bitvector filters, the *true* ``Cout`` minimum over
ALL right-deep trees without cross products must be attained inside the
linear candidate set — Theorems 4.1/4.2 (star), 5.1/5.2 (snowflake),
5.3/5.4 (branch).  The equal-cost lemmas (4, 5, 8) are checked directly
on permutations.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.truecard import true_cout
from repro.optimizer.candidates import (
    branch_candidate_orders,
    snowflake_candidate_orders,
    star_candidate_orders,
)
from repro.optimizer.enumerate import right_deep_orders
from repro.plan.builder import build_right_deep
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.workloads.synthetic import random_snowflake, random_star


def cout_of_order(db, graph, order) -> float:
    plan = push_down_bitvectors(build_right_deep(graph, list(order)))
    return true_cout(plan, db)


def min_cout(db, graph, orders) -> float:
    return min(cout_of_order(db, graph, order) for order in orders)


class TestTheorem41Star:
    """Star: min over all right-deep orders == min over n+1 candidates."""

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_candidates_contain_minimum(self, seed):
        db, spec = random_star(seed, num_dimensions=3, fact_rows=800, dim_rows=60)
        graph = JoinGraph(spec, db.catalog)
        full = min_cout(db, graph, right_deep_orders(graph))
        candidates = min_cout(db, graph, star_candidate_orders(graph, "f"))
        assert candidates == pytest.approx(full, rel=1e-9)

    def test_larger_star(self):
        db, spec = random_star(77, num_dimensions=5, fact_rows=600, dim_rows=40)
        graph = JoinGraph(spec, db.catalog)
        full = min_cout(db, graph, right_deep_orders(graph))
        candidates = min_cout(db, graph, star_candidate_orders(graph, "f"))
        assert candidates == pytest.approx(full, rel=1e-9)


class TestLemma4EqualCostFactFirst:
    """All dimension permutations behind the fact cost the same."""

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_permutation_invariance(self, seed):
        db, spec = random_star(seed, num_dimensions=3, fact_rows=500, dim_rows=50)
        graph = JoinGraph(spec, db.catalog)
        dims = [a for a in spec.aliases if a != "f"]
        costs = {
            cout_of_order(db, graph, ["f"] + list(perm))
            for perm in itertools.permutations(dims)
        }
        assert len(costs) == 1


class TestLemma5EqualCostDimLeading:
    """With Rk leading, remaining dimension permutations cost the same."""

    def test_permutation_invariance(self):
        db, spec = random_star(5, num_dimensions=4, fact_rows=500, dim_rows=50)
        graph = JoinGraph(spec, db.catalog)
        dims = [a for a in spec.aliases if a != "f"]
        leader = dims[0]
        rest = dims[1:]
        costs = {
            round(cout_of_order(db, graph, [leader, "f"] + list(perm)), 6)
            for perm in itertools.permutations(rest)
        }
        assert len(costs) == 1


class TestTheorem51Snowflake:
    """Snowflake: min over all orders == min over n+1 candidates."""

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_candidates_contain_minimum(self, seed):
        db, spec = random_snowflake(
            seed, branch_lengths=(1, 2), fact_rows=600, dim_rows=50
        )
        graph = JoinGraph(spec, db.catalog)
        full = min_cout(db, graph, right_deep_orders(graph))
        candidates = min_cout(db, graph, snowflake_candidate_orders(graph, "f"))
        assert candidates == pytest.approx(full, rel=1e-9)

    def test_three_branch_snowflake(self):
        db, spec = random_snowflake(
            11, branch_lengths=(1, 2, 2), fact_rows=600, dim_rows=50
        )
        graph = JoinGraph(spec, db.catalog)
        full = min_cout(db, graph, right_deep_orders(graph))
        candidates = min_cout(db, graph, snowflake_candidate_orders(graph, "f"))
        assert candidates == pytest.approx(full, rel=1e-9)


class TestLemma8EqualCostPartialOrders:
    """All partially-ordered fact-first snowflake plans cost the same."""

    def test_branch_interleavings_equal(self):
        db, spec = random_snowflake(3, branch_lengths=(2, 2), fact_rows=500)
        graph = JoinGraph(spec, db.catalog)
        costs = set()
        for order in right_deep_orders(graph):
            if order[0] != "f":
                continue
            costs.add(round(cout_of_order(db, graph, order), 6))
        assert len(costs) == 1


class TestTheorem53Branch:
    """Chain: min over all orders == min over the n+1 chain candidates."""

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_candidates_contain_minimum(self, seed):
        db, spec = random_snowflake(
            seed, branch_lengths=(3,), fact_rows=600, dim_rows=60
        )
        graph = JoinGraph(spec, db.catalog)
        chain = ["f"] + graph.chain_order("f", graph.branch_components("f")[0])
        full = min_cout(db, graph, right_deep_orders(graph))
        candidates = min_cout(db, graph, branch_candidate_orders(chain))
        assert candidates == pytest.approx(full, rel=1e-9)


class TestComplexityCounts:
    """Table 2: full space grows super-linearly, candidates stay n+1."""

    def test_star_growth(self):
        from repro.optimizer.enumerate import count_right_deep_orders

        counts = []
        for n in (2, 3, 4, 5):
            db, spec = random_star(0, num_dimensions=n, fact_rows=50, dim_rows=10)
            graph = JoinGraph(spec, db.catalog)
            full = count_right_deep_orders(graph)
            candidates = len(list(star_candidate_orders(graph, "f")))
            counts.append((full, candidates))
            assert candidates == n + 1
        fulls = [c[0] for c in counts]
        assert fulls == sorted(fulls)
        assert fulls[-1] / fulls[0] > 10  # exponential-style growth
