"""Tests for the bitvector-blind baseline optimizer (DP + GOO)."""

import pytest

from repro.errors import OptimizerError
from repro.optimizer.baseline import optimize_baseline
from repro.optimizer.blindcard import BlindCardModel
from repro.plan.properties import base_aliases, join_count
from repro.query.joingraph import JoinGraph
from repro.query.spec import QuerySpec, RelationRef
from repro.stats.estimator import CardinalityEstimator
from repro.workloads.synthetic import random_snowflake, random_star


def setup(db, spec):
    graph = JoinGraph(spec, db.catalog)
    estimator = CardinalityEstimator(db, spec.alias_tables)
    return graph, estimator


class TestDp:
    def test_covers_all_relations(self, star_db, star_spec):
        graph, estimator = setup(star_db, star_spec)
        plan = optimize_baseline(graph, estimator)
        assert base_aliases(plan) == frozenset(star_spec.aliases)
        assert join_count(plan) == 2

    def test_snowflake_plan_valid(self):
        db, spec = random_snowflake(0, branch_lengths=(2, 2))
        graph, estimator = setup(db, spec)
        plan = optimize_baseline(graph, estimator)
        assert base_aliases(plan) == frozenset(spec.aliases)

    def test_dp_beats_or_ties_any_right_deep_order(self):
        """The DP optimum cannot be worse than an arbitrary order under
        its own (blind) cost model."""
        from repro.optimizer.enumerate import right_deep_orders
        from repro.plan.builder import build_right_deep

        db, spec = random_star(9, num_dimensions=3, fact_rows=400, dim_rows=40)
        graph, estimator = setup(db, spec)
        model = BlindCardModel(graph, estimator)

        def blind_cost(plan):
            from repro.plan.nodes import HashJoinNode, ScanNode

            total = 0.0
            for node in plan.walk():
                if isinstance(node, ScanNode):
                    total += model.base_rows(node.alias)
                elif isinstance(node, HashJoinNode):
                    total += model.subset_rows(frozenset(node.output_aliases))
            return total

        best = blind_cost(optimize_baseline(graph, estimator))
        for order in right_deep_orders(graph, limit=20):
            assert best <= blind_cost(build_right_deep(graph, order)) + 1e-6

    def test_single_relation(self, star_db):
        spec = QuerySpec(
            name="q", relations=(RelationRef("f", "fact"),), join_predicates=()
        )
        graph, estimator = setup(star_db, spec)
        plan = optimize_baseline(graph, estimator)
        assert base_aliases(plan) == frozenset({"f"})

    def test_disconnected_graph_rejected(self, star_db):
        spec = QuerySpec(
            name="q",
            relations=(RelationRef("a", "dim1"), RelationRef("b", "dim2")),
            join_predicates=(),
        )
        graph, estimator = setup(star_db, spec)
        with pytest.raises(OptimizerError, match="disconnected"):
            optimize_baseline(graph, estimator)


class TestGoo:
    def test_goo_used_beyond_dp_limit(self, customer_tiny):
        db, queries = customer_tiny
        big = max(queries, key=lambda q: len(q.relations))
        assert len(big.relations) > 10
        graph, estimator = setup(db, big)
        plan = optimize_baseline(graph, estimator, dp_relation_limit=10)
        assert base_aliases(plan) == frozenset(big.aliases)
        assert join_count(plan) == len(big.relations) - 1

    def test_goo_matches_dp_relation_coverage_small(self, star_db, star_spec):
        graph, estimator = setup(star_db, star_spec)
        goo_plan = optimize_baseline(graph, estimator, dp_relation_limit=0)
        assert base_aliases(goo_plan) == frozenset(star_spec.aliases)


class TestBlindCardModel:
    def test_subset_rows_order_independent(self, star_db, star_spec):
        graph, estimator = setup(star_db, star_spec)
        model = BlindCardModel(graph, estimator)
        assert model.subset_rows(frozenset({"f", "d1"})) == model.subset_rows(
            frozenset({"d1", "f"})
        )

    def test_joined_rows_uses_cross_edges(self, star_db, star_spec):
        graph, estimator = setup(star_db, star_spec)
        model = BlindCardModel(graph, estimator)
        joined = model.joined_rows(frozenset({"f"}), frozenset({"d1"}))
        assert joined == pytest.approx(model.subset_rows(frozenset({"f", "d1"})))

    def test_base_rows_reflect_predicates(self, star_db, star_spec):
        graph, estimator = setup(star_db, star_spec)
        model = BlindCardModel(graph, estimator)
        assert model.base_rows("d1") < model.base_rows("d2")
