"""Build-parallelism discounting in cost-based filter selection.

The paper's Section 6.3 threshold polices a *serial* pass over the
build side; with partitioned builds the estimator discounts that cost
by the effective parallelism, so large-dimension filters the flat
threshold rejected become worth creating.  ``build_parallelism=1``
must reproduce the old rule exactly.
"""

import numpy as np

from repro.cost.constants import DEFAULT_LAMBDA_THRESH
from repro.optimizer.filter_selection import apply_cost_based_filters
from repro.optimizer.pipelines import optimize_query
from repro.plan.nodes import HashJoinNode
from repro.sql.binder import parse_query
from repro.stats.estimator import CardinalityEstimator
from repro.storage.database import Database
from repro.storage.schema import ForeignKey
from repro.storage.table import Table

# The fact side draws ~7.5 rows per dimension key, so its distinct keys
# cover essentially the whole domain; a dimension predicate keeping
# cut% of the rows then yields elimination ~ (100 - cut)% — landing the
# borderline cuts between the halved threshold and the full 5% one,
# which is exactly the regime the discount flips.
_DIM_ROWS = 40_000
_FACT_ROWS = 300_000


def _database() -> Database:
    rng = np.random.default_rng(21)
    database = Database("bpt")
    database.add_table(
        Table.from_arrays(
            "dim",
            {
                "id": np.arange(_DIM_ROWS),
                "attr": (np.arange(_DIM_ROWS) * 7919) % 100,
            },
            key=("id",),
        )
    )
    database.add_table(
        Table.from_arrays(
            "fact",
            {"fk": rng.integers(0, _DIM_ROWS, _FACT_ROWS)},
        ),
        validate_key=False,
    )
    database.add_foreign_key(ForeignKey("fact", ("fk",), "dim", ("id",)))
    return database


def _joins(plan):
    return [node for node in plan.walk() if isinstance(node, HashJoinNode)]


def _plan_for(database, cut):
    sql = (
        "SELECT COUNT(*) AS c FROM fact f, dim d "
        f"WHERE f.fk = d.id AND d.attr < {cut}"
    )
    spec = parse_query(database, sql, "q")
    plan = optimize_query(database, spec, "bqo_allfilters").plan
    # bqo_allfilters skips cost-based selection, giving a plan whose
    # flags the tests then set explicitly.
    estimator = CardinalityEstimator(database, spec.alias_tables)
    return plan, estimator


class TestEstimatorDiscount:
    def test_serial_and_small_builds_get_no_discount(self):
        estimator = CardinalityEstimator(_database(), {"d": "dim"})
        assert estimator.filter_build_discount(1_000_000, 1) == 1.0
        # Below the executor's parallel-dispatch threshold the build
        # stays serial no matter the pool width.
        assert estimator.filter_build_discount(100, 8) == 1.0

    def test_discount_tracks_parallelism_and_build_size(self):
        estimator = CardinalityEstimator(_database(), {"d": "dim"})
        assert estimator.filter_build_discount(1_000_000, 4) == 4.0
        # A build that cannot feed every worker a MIN_MORSEL_ROWS
        # partition is credited with fewer effective workers.
        assert 1.0 < estimator.filter_build_discount(8192, 16) < 16.0


class TestThresholdDiscount:
    def test_serial_default_is_unchanged(self):
        database = _database()
        plan, estimator = _plan_for(database, 90)
        apply_cost_based_filters(
            plan, estimator, DEFAULT_LAMBDA_THRESH, zone_aware=False
        )
        serial_flags = [j.creates_bitvector for j in _joins(plan)]
        plan2, estimator2 = _plan_for(database, 90)
        apply_cost_based_filters(
            plan2, estimator2, DEFAULT_LAMBDA_THRESH, zone_aware=False,
            build_parallelism=1,
        )
        assert [j.creates_bitvector for j in _joins(plan2)] == serial_flags

    def test_parallel_build_admits_borderline_filter(self):
        """A filter whose elimination sits between lambda/2 and lambda
        is rejected serially but admitted once the build is partitioned
        across 4 workers (the build side is a large dimension, so the
        saved build cost dominates the threshold)."""
        database = _database()
        for cut in range(99, 90, -1):
            plan, estimator = _plan_for(database, cut)
            apply_cost_based_filters(
                plan, estimator, DEFAULT_LAMBDA_THRESH, zone_aware=False
            )
            serial_creates = any(j.creates_bitvector for j in _joins(plan))
            if serial_creates:
                continue
            plan, estimator = _plan_for(database, cut)
            apply_cost_based_filters(
                plan, estimator, DEFAULT_LAMBDA_THRESH, zone_aware=False,
                build_parallelism=4,
            )
            if any(j.creates_bitvector for j in _joins(plan)):
                return  # found the borderline: rejected serial, admitted parallel
        raise AssertionError(
            "no cut produced a filter rejected serially but admitted "
            "under build_parallelism=4"
        )

    def test_floor_keeps_worthless_filters_out(self):
        """Even infinite build parallelism cannot push the threshold
        below half the deployed lambda: a filter that eliminates
        (almost) nothing stays rejected."""
        database = _database()
        # cut=100 keeps every dimension row: elimination ~ 0.
        plan, estimator = _plan_for(database, 100)
        apply_cost_based_filters(
            plan, estimator, DEFAULT_LAMBDA_THRESH, zone_aware=False,
            build_parallelism=64,
        )
        assert not any(j.creates_bitvector for j in _joins(plan))
