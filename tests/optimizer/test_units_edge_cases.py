"""Unit-graph edge cases: composites, non-key joins, Algorithm 3 loops."""

import pytest

from repro.errors import OptimizerError
from repro.optimizer.multifact import _extract_snowflake, optimize_join_graph
from repro.optimizer.snowflake import optimize_snowflake
from repro.optimizer.units import UnitGraph
from repro.plan.properties import base_aliases
from repro.query.joingraph import JoinGraph
from repro.stats.estimator import CardinalityEstimator
from repro.workloads.synthetic import random_snowflake


def setup(db, spec):
    graph = JoinGraph(spec, db.catalog)
    estimator = CardinalityEstimator(db, spec.alias_tables)
    return graph, estimator


class TestCompositeKeySemantics:
    def test_composite_preserves_fact_key_member(self):
        db, spec = random_snowflake(5, branch_lengths=(1, 1))
        graph, estimator = setup(db, spec)
        ugraph = UnitGraph(graph, estimator)
        # collapse fact + one dimension around the *dimension* as fact —
        # key member must follow the declared fact of the collapse
        scope = {"b0_0", "b1_0", "f"}
        plan = optimize_snowflake(ugraph, "f", scope)
        ugraph.collapse(scope, plan, rows=42.0, fact_id="f")
        unit = ugraph.unit("f")
        assert unit.key_member == "f"
        assert unit.rows == 42.0

    def test_collapse_requires_fact_in_set(self):
        db, spec = random_snowflake(5, branch_lengths=(1, 1))
        graph, estimator = setup(db, spec)
        ugraph = UnitGraph(graph, estimator)
        with pytest.raises(OptimizerError):
            ugraph.collapse({"b0_0"}, ugraph.unit_plan("b0_0"), 1.0, "f")

    def test_unknown_unit_rejected(self):
        db, spec = random_snowflake(5, branch_lengths=(1,))
        graph, estimator = setup(db, spec)
        ugraph = UnitGraph(graph, estimator)
        with pytest.raises(OptimizerError):
            ugraph.unit("nope")


class TestExtractSnowflake:
    def test_single_fact_takes_whole_graph(self, tpcds_tiny):
        db, queries = tpcds_tiny
        spec = next(q for q in queries if q.name == "ds_q11")
        graph, estimator = setup(db, spec)
        ugraph = UnitGraph(graph, estimator)
        fact, scope = _extract_snowflake(ugraph, set(ugraph.unit_ids))
        assert fact == "ss"
        assert scope == set(ugraph.unit_ids)

    def test_two_facts_extracts_smaller_first(self, tpcds_tiny):
        db, queries = tpcds_tiny
        spec = next(q for q in queries if q.name == "ds_q17")
        graph, estimator = setup(db, spec)
        ugraph = UnitGraph(graph, estimator)
        fact, scope = _extract_snowflake(ugraph, set(ugraph.unit_ids))
        # cs (catalog_sales) is smaller than ss (store_sales)
        assert fact == "cs"
        assert scope != set(ugraph.unit_ids)
        assert "ss" not in scope  # the other fact is not a dimension

    def test_fact_with_no_dimensions_falls_back_to_whole_graph(self, star_db):
        from repro.query.spec import JoinPredicate, QuerySpec, RelationRef

        # two facts joined by a non-key edge: neither expands
        spec = QuerySpec(
            name="q",
            relations=(RelationRef("p", "fact"), RelationRef("q", "fact")),
            join_predicates=(JoinPredicate("p", ("fk1",), "q", ("fk1",)),),
        )
        graph, estimator = setup(star_db, spec)
        ugraph = UnitGraph(graph, estimator)
        fact, scope = _extract_snowflake(ugraph, set(ugraph.unit_ids))
        assert scope == {"p", "q"}
        plan = optimize_join_graph(graph, estimator)
        assert base_aliases(plan) == frozenset({"p", "q"})


class TestBlindMode:
    def test_blind_and_aware_cover_same_relations(self, tpcds_tiny):
        db, queries = tpcds_tiny
        for spec in queries[:8]:
            graph, estimator = setup(db, spec)
            blind = optimize_join_graph(graph, estimator, bitvector_aware=False)
            aware = optimize_join_graph(graph, estimator, bitvector_aware=True)
            assert base_aliases(blind) == base_aliases(aware) == frozenset(spec.aliases)

    def test_blind_mode_ignores_spine_reduction(self):
        # With an extremely selective branch, aware mode may flip
        # build/probe sides; blind mode must keep raw-size decisions.
        db, spec = random_snowflake(
            9, branch_lengths=(1, 1), fact_rows=3000, dim_rows=100,
            predicate_rate=1.0,
        )
        graph, estimator = setup(db, spec)
        blind = optimize_join_graph(graph, estimator, bitvector_aware=False)
        # every dimension is smaller than the raw fact: pure right-deep
        from repro.plan.properties import is_right_deep

        assert is_right_deep(blind)
