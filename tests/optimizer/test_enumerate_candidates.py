"""Tests for exhaustive enumeration and linear candidate generation."""

import math

import pytest

from repro.optimizer.candidates import (
    branch_candidate_orders,
    branch_leading_order,
    snowflake_candidate_orders,
    star_candidate_orders,
)
from repro.optimizer.enumerate import count_right_deep_orders, right_deep_orders
from repro.query.joingraph import JoinGraph
from repro.workloads.synthetic import random_snowflake, random_star


def graph_for(db_spec):
    db, spec = db_spec
    return db, spec, JoinGraph(spec, db.catalog)


class TestEnumeration:
    def test_star_order_count_matches_lemma2(self):
        # Lemma 2: fact first (n! orders) or second (n * (n-1)! = n!).
        for n in (2, 3, 4):
            _, _, graph = graph_for(random_star(0, num_dimensions=n,
                                                fact_rows=50, dim_rows=10))
            assert count_right_deep_orders(graph) == 2 * math.factorial(n)

    def test_all_orders_are_prefix_connected(self):
        _, _, graph = graph_for(random_snowflake(0, branch_lengths=(2, 1)))
        for order in right_deep_orders(graph):
            placed = {order[0]}
            for alias in order[1:]:
                assert graph.neighbors(alias) & placed
                placed.add(alias)

    def test_limit_respected(self):
        _, _, graph = graph_for(random_star(1, num_dimensions=4,
                                            fact_rows=50, dim_rows=10))
        assert len(list(right_deep_orders(graph, limit=5))) == 5


class TestStarCandidates:
    def test_count_is_n_plus_one(self):
        for n in (2, 3, 5):
            _, _, graph = graph_for(random_star(0, num_dimensions=n,
                                                fact_rows=50, dim_rows=10))
            candidates = list(star_candidate_orders(graph, "f"))
            assert len(candidates) == n + 1

    def test_shapes_match_theorem_41(self):
        _, _, graph = graph_for(random_star(0, num_dimensions=3,
                                            fact_rows=50, dim_rows=10))
        candidates = list(star_candidate_orders(graph, "f"))
        assert candidates[0][0] == "f"
        for candidate in candidates[1:]:
            assert candidate[1] == "f"  # dim leads, fact second

    def test_candidates_are_valid_orders(self):
        _, _, graph = graph_for(random_star(2, num_dimensions=4,
                                            fact_rows=50, dim_rows=10))
        valid = {tuple(o) for o in right_deep_orders(graph)}
        for candidate in star_candidate_orders(graph, "f"):
            assert tuple(candidate) in valid


class TestBranchCandidates:
    def test_count_and_shapes(self):
        chain = ["r0", "r1", "r2", "r3"]
        candidates = list(branch_candidate_orders(chain))
        assert len(candidates) == 4
        assert candidates[0] == ["r3", "r2", "r1", "r0"]
        assert candidates[1] == ["r0", "r1", "r2", "r3"]
        assert candidates[2] == ["r1", "r2", "r3", "r0"]
        assert candidates[3] == ["r2", "r3", "r1", "r0"]

    def test_single_relation_chain(self):
        assert list(branch_candidate_orders(["only"])) == [["only"]]


class TestSnowflakeCandidates:
    def test_count_is_n_plus_one(self):
        db, spec = random_snowflake(0, branch_lengths=(1, 2, 3))
        graph = JoinGraph(spec, db.catalog)
        candidates = list(snowflake_candidate_orders(graph, "f"))
        assert len(candidates) == 1 + 2 + 3 + 1  # n + 1 with n = 6

    def test_candidates_are_valid_orders(self):
        db, spec = random_snowflake(1, branch_lengths=(2, 2))
        graph = JoinGraph(spec, db.catalog)
        valid = {tuple(o) for o in right_deep_orders(graph)}
        for candidate in snowflake_candidate_orders(graph, "f"):
            assert tuple(candidate) in valid

    def test_non_snowflake_rejected(self, star_db, star_spec):
        graph = JoinGraph(star_spec, star_db.catalog)
        # a star IS a snowflake; break it by asking for a dim as fact
        from repro.errors import OptimizerError

        with pytest.raises(OptimizerError):
            list(snowflake_candidate_orders(graph, "d1"))


class TestLeadingOrder:
    def test_chain_leading_order_matches_theorem(self):
        db, spec = random_snowflake(0, branch_lengths=(3,))
        graph = JoinGraph(spec, db.catalog)
        component = graph.branch_components("f")[0]
        chain = graph.chain_order("f", component)  # [root, mid, tip]
        order = branch_leading_order(graph, "f", component, chain[1])
        # start mid: outward to tip, then back toward root
        assert order == [chain[1], chain[2], chain[0]]

    def test_start_at_tip(self):
        db, spec = random_snowflake(0, branch_lengths=(3,))
        graph = JoinGraph(spec, db.catalog)
        component = graph.branch_components("f")[0]
        chain = graph.chain_order("f", component)
        order = branch_leading_order(graph, "f", component, chain[2])
        assert order == [chain[2], chain[1], chain[0]]

    def test_prefix_connected(self):
        db, spec = random_snowflake(3, branch_lengths=(4,))
        graph = JoinGraph(spec, db.catalog)
        component = graph.branch_components("f")[0]
        for start in sorted(component):
            order = branch_leading_order(graph, "f", component, start)
            placed = {order[0]}
            for alias in order[1:]:
                assert graph.neighbors(alias) & placed
                placed.add(alias)
