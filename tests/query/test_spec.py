"""Tests for query specifications."""

import pytest

from repro.errors import QueryError
from repro.expr.expressions import Comparison, col, lit
from repro.query.spec import Aggregate, JoinPredicate, QuerySpec, RelationRef


def two_table_spec(**overrides) -> QuerySpec:
    base = dict(
        name="q",
        relations=(RelationRef("a", "fact"), RelationRef("b", "dim1")),
        join_predicates=(JoinPredicate("a", ("fk1",), "b", ("id",)),),
    )
    base.update(overrides)
    return QuerySpec(**base)


class TestValidation:
    def test_duplicate_aliases_rejected(self):
        with pytest.raises(QueryError, match="duplicate"):
            two_table_spec(
                relations=(RelationRef("a", "fact"), RelationRef("a", "dim1"))
            )

    def test_join_on_unknown_alias_rejected(self):
        with pytest.raises(QueryError, match="unknown alias"):
            two_table_spec(
                join_predicates=(JoinPredicate("a", ("fk1",), "z", ("id",)),)
            )

    def test_local_predicate_alias_must_match(self):
        with pytest.raises(QueryError):
            two_table_spec(
                local_predicates={"b": Comparison("<", col("a", "m"), lit(1))}
            )

    def test_join_predicate_column_mismatch(self):
        with pytest.raises(QueryError):
            JoinPredicate("a", ("x", "y"), "b", ("z",))

    def test_self_join_predicate_rejected(self):
        with pytest.raises(QueryError):
            JoinPredicate("a", ("x",), "a", ("y",))

    def test_aggregate_requires_argument(self):
        with pytest.raises(QueryError):
            Aggregate("sum")

    def test_count_star_allowed(self):
        assert Aggregate("count").argument is None

    def test_unknown_aggregate(self):
        with pytest.raises(QueryError):
            Aggregate("median", col("a", "x"))


class TestAgainstDatabase:
    def test_validate_against_catalog(self, star_db):
        spec = two_table_spec()
        spec.validate_against(star_db)

    def test_unknown_table_rejected(self, star_db):
        spec = two_table_spec(relations=(RelationRef("a", "nope"), RelationRef("b", "dim1")))
        with pytest.raises(QueryError, match="unknown table"):
            spec.validate_against(star_db)

    def test_unknown_join_column_rejected(self, star_db):
        spec = two_table_spec(
            join_predicates=(JoinPredicate("a", ("missing",), "b", ("id",)),)
        )
        with pytest.raises(QueryError, match="unknown column"):
            spec.validate_against(star_db)


class TestAccessors:
    def test_alias_tables(self):
        spec = two_table_spec()
        assert spec.alias_tables == {"a": "fact", "b": "dim1"}

    def test_table_of(self):
        assert two_table_spec().table_of("b") == "dim1"
        with pytest.raises(QueryError):
            two_table_spec().table_of("zz")

    def test_str_contains_tables(self):
        rendered = str(two_table_spec())
        assert "fact" in rendered and "dim1" in rendered

    def test_reversed_join(self):
        join = JoinPredicate("a", ("x",), "b", ("y",))
        rev = join.reversed()
        assert rev.left_alias == "b" and rev.right_columns == ("x",)
