"""Tests for join graph topology and classification."""

import pytest

from repro.errors import QueryError
from repro.query.joingraph import JoinGraph
from repro.query.spec import JoinPredicate, QuerySpec, RelationRef
from repro.workloads.synthetic import random_snowflake


class TestStarGraph:
    @pytest.fixture(scope="class")
    def graph(self, star_db, star_spec):
        return JoinGraph(star_spec, star_db.catalog)

    def test_neighbors(self, graph):
        assert graph.neighbors("f") == {"d1", "d2"}
        assert graph.neighbors("d1") == {"f"}

    def test_connected(self, graph):
        assert graph.is_connected()
        assert graph.is_connected(("f", "d1"))
        assert not graph.is_connected(("d1", "d2"))

    def test_fact_detection(self, graph):
        assert graph.fact_tables() == ["f"]
        assert graph.is_fact_table("f")
        assert not graph.is_fact_table("d1")

    def test_key_join_direction(self, graph):
        edge = graph.edge_between("f", "d1")
        assert graph.is_key_join_into(edge, "d1")
        assert not graph.is_key_join_into(edge, "f")
        assert graph.is_pkfk_edge(edge)

    def test_is_star(self, graph):
        assert graph.is_star("f")
        assert not graph.is_star("d1")

    def test_star_is_also_snowflake(self, graph):
        assert graph.is_snowflake("f")

    def test_branch_components(self, graph):
        components = graph.branch_components("f")
        assert sorted(sorted(c) for c in components) == [["d1"], ["d2"]]

    def test_connected_components_helper(self, graph):
        assert graph.connected_components({"d1", "d2"}) == [{"d1"}, {"d2"}]


class TestSnowflakeGraph:
    @pytest.fixture(scope="class")
    def snowflake(self):
        db, spec = random_snowflake(0, branch_lengths=(2, 3))
        return JoinGraph(spec, db.catalog)

    def test_is_snowflake_not_star(self, snowflake):
        assert snowflake.is_snowflake("f")
        assert not snowflake.is_star("f")

    def test_chain_order(self, snowflake):
        components = snowflake.branch_components("f")
        lengths = sorted(len(c) for c in components)
        assert lengths == [2, 3]
        for component in components:
            chain = snowflake.chain_order("f", component)
            assert len(chain) == len(component)
            # chain starts at the fact's neighbor
            assert "f" in snowflake.neighbors(chain[0])

    def test_branch_roots(self, snowflake):
        for component in snowflake.branch_components("f"):
            assert len(snowflake.branch_roots("f", component)) == 1

    def test_induced_spec(self, snowflake):
        component = snowflake.branch_components("f")[0]
        subset = set(component) | {"f"}
        sub = snowflake.induced_spec(subset, "sub")
        assert set(sub.aliases) == subset
        for join in sub.join_predicates:
            assert join.left_alias in subset and join.right_alias in subset


class TestEdgeMerging:
    def test_multiple_predicates_merge_into_one_edge(self, star_db):
        spec = QuerySpec(
            name="q",
            relations=(RelationRef("a", "fact"), RelationRef("b", "fact")),
            join_predicates=(
                JoinPredicate("a", ("fk1",), "b", ("fk1",)),
                JoinPredicate("a", ("fk2",), "b", ("fk2",)),
            ),
        )
        graph = JoinGraph(spec, star_db.catalog)
        edge = graph.edge_between("a", "b")
        assert edge is not None
        assert len(edge.left_columns) == 2

    def test_edge_between_absent(self, star_db, star_spec):
        graph = JoinGraph(star_spec, star_db.catalog)
        assert graph.edge_between("d1", "d2") is None

    def test_edge_accessors(self, star_db, star_spec):
        graph = JoinGraph(star_spec, star_db.catalog)
        edge = graph.edge_between("f", "d1")
        assert edge.other("f") == "d1"
        assert edge.columns_of("d1") == ("id",)
        with pytest.raises(QueryError):
            edge.other("zz")


class TestNonPkfkFact:
    def test_two_facts_detected(self, tpcds_tiny):
        db, queries = tpcds_tiny
        multi = next(q for q in queries if q.name == "ds_q15")
        graph = JoinGraph(multi, db.catalog)
        facts = graph.fact_tables()
        assert set(facts) == {"ss", "cs"}

    def test_star_shape_detected_in_workload(self, tpcds_tiny):
        db, queries = tpcds_tiny
        simple = next(q for q in queries if q.name == "ds_q02")
        graph = JoinGraph(simple, db.catalog)
        assert graph.is_star("ss")
