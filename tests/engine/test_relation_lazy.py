"""Unit tests for the lazy selection-vector Relation."""

import numpy as np
import pytest

from repro.engine.metrics import ExecutionMetrics
from repro.engine.relation import Relation
from repro.errors import ExecutionError


def make_relation(counters=None):
    columns = {
        ("t", "a"): np.arange(10, dtype=np.int64),
        ("t", "b"): np.arange(10, dtype=np.float64) * 2.0,
    }
    sources = {("t", "a"): ("base", "a"), ("t", "b"): ("base", "b")}
    return Relation(columns, 10, sources=sources, counters=counters)


class TestLaziness:
    def test_identity_view_returns_base_array_without_copy(self):
        metrics = ExecutionMetrics()
        relation = make_relation(metrics)
        base = relation.column("t", "a")
        assert base is relation.column("t", "a")
        assert metrics.rows_copied == 0
        assert metrics.bytes_gathered == 0

    def test_mask_copies_nothing_until_column_read(self):
        metrics = ExecutionMetrics()
        relation = make_relation(metrics).mask(np.arange(10) % 2 == 0)
        assert relation.num_rows == 5
        assert metrics.rows_copied == 0  # nothing materialized yet

    def test_reading_one_column_copies_only_that_column(self):
        metrics = ExecutionMetrics()
        relation = make_relation(metrics).mask(np.arange(10) % 2 == 0)
        values = relation.column("t", "a")
        assert values.tolist() == [0, 2, 4, 6, 8]
        assert metrics.rows_copied == 5
        assert metrics.bytes_gathered == values.nbytes
        # cached: a second read does not copy again
        assert relation.column("t", "a") is values
        assert metrics.rows_copied == 5

    def test_gather_composes_selections(self):
        relation = make_relation().mask(np.arange(10) >= 4)  # rows 4..9
        nested = relation.gather(np.array([5, 0, 0]))
        assert nested.column("t", "a").tolist() == [9, 4, 4]

    def test_column_head_gathers_only_sample(self):
        metrics = ExecutionMetrics()
        relation = make_relation(metrics).mask(np.arange(10) % 2 == 1)
        head = relation.column_head("t", "a", 2)
        assert head.tolist() == [1, 3]
        assert metrics.rows_copied == 0  # samples are not counted copies

    def test_missing_column_raises(self):
        with pytest.raises(ExecutionError, match="not present"):
            make_relation().column("t", "zzz")


class TestProvenance:
    def test_identity_scan_has_whole_column_provenance(self):
        source = make_relation().base_source("t", "a")
        assert source == ("base", "a", None)

    def test_provenance_survives_mask_and_gather(self):
        relation = make_relation().mask(np.arange(10) < 3).gather(
            np.array([2, 0])
        )
        table, column, selection = relation.base_source("t", "a")
        assert (table, column) == ("base", "a")
        assert selection.tolist() == [2, 0]

    def test_provenance_survives_merge(self):
        left = make_relation()
        right = Relation(
            {("u", "c"): np.arange(100, 104)},
            4,
            sources={("u", "c"): ("other", "c")},
        )
        merged = left.merged_with(
            right, np.array([1, 2]), np.array([0, 3])
        )
        table, column, selection = merged.base_source("u", "c")
        assert (table, column) == ("other", "c")
        assert selection.tolist() == [0, 3]
        assert merged.column("u", "c").tolist() == [100, 103]

    def test_no_provenance_returns_none(self):
        relation = Relation({("t", "a"): np.arange(3)}, 3)
        assert relation.base_source("t", "a") is None


class TestMerge:
    def test_duplicate_column_rejected(self):
        with pytest.raises(ExecutionError, match="duplicate column"):
            make_relation().merged_with(
                make_relation(), np.array([0]), np.array([0])
            )

    def test_merge_keeps_both_sides_lazy(self):
        metrics = ExecutionMetrics()
        left = make_relation(metrics)
        right = Relation(
            {("u", "c"): np.arange(50, 60)}, 10, counters=metrics
        )
        merged = left.merged_with(
            right, np.array([0, 1, 2]), np.array([9, 8, 7])
        )
        assert metrics.rows_copied == 0
        assert merged.column("u", "c").tolist() == [59, 58, 57]
        assert metrics.rows_copied == 3


class TestMaterialized:
    def test_materialized_copies_every_column(self):
        metrics = ExecutionMetrics()
        relation = make_relation(metrics).mask(np.arange(10) < 4)
        eager = relation.materialized()
        assert metrics.rows_copied == 8  # 2 columns x 4 rows
        assert eager.column("t", "b").tolist() == [0.0, 2.0, 4.0, 6.0]

    def test_columns_property_matches_seed_shape(self):
        relation = make_relation().mask(np.arange(10) < 2)
        columns = relation.columns
        assert set(columns) == {("t", "a"), ("t", "b")}
        assert columns[("t", "a")].tolist() == [0, 1]
