"""Bitmap selection representation inside :class:`Relation`.

Above ``_BITMAP_MIN_ROWS`` candidate rows, ``mask``/``select_sorted``
hold the surviving row set as a packed :class:`Bitvector` (1 bit per
candidate row) instead of an int64 position vector; below the floor the
classic position vector is kept.  These tests pin the invariants the
executor relies on:

* the chosen representation never changes decoded positions or column
  values — small-path and bitmap-path views are byte-identical;
* selection-state accounting (``selection_bytes`` vs. the dense
  ``selection_bytes_dense`` counterfactual) reflects the packing win;
* materialization boundaries (``column``, ``narrow``, ``column_head``,
  ``base_source``) behave lazily: sampling a head never forces the full
  position decode, and ``settle_selections`` forces it exactly once.
"""

import numpy as np

from repro.engine.metrics import ExecutionMetrics
from repro.engine.relation import (
    _BITMAP_MIN_ROWS,
    BitmapSelection,
    Relation,
)

_ROWS = _BITMAP_MIN_ROWS + 1000  # just above the packing floor


def big_relation(counters=None, rows=_ROWS):
    columns = {
        ("t", "a"): np.arange(rows, dtype=np.int64),
        ("t", "b"): np.arange(rows, dtype=np.float64) * 0.5,
    }
    sources = {("t", "a"): ("base", "a"), ("t", "b"): ("base", "b")}
    return Relation(columns, rows, sources=sources, counters=counters)


def selection_of(relation):
    return relation._groups[0].selection


class TestRepresentationChoice:
    def test_mask_above_floor_packs_a_bitmap(self):
        view = big_relation().mask(np.arange(_ROWS) % 3 == 0)
        assert isinstance(selection_of(view), BitmapSelection)

    def test_mask_below_floor_keeps_positions(self):
        relation = big_relation(rows=_BITMAP_MIN_ROWS - 1)
        view = relation.mask(np.arange(_BITMAP_MIN_ROWS - 1) % 3 == 0)
        assert isinstance(selection_of(view), np.ndarray)

    def test_select_sorted_above_floor_packs_a_bitmap(self):
        positions = np.arange(0, _ROWS, 7, dtype=np.int64)
        view = big_relation().select_sorted(positions)
        selection = selection_of(view)
        assert isinstance(selection, BitmapSelection)
        # The vector was already in hand: the decode cache is seeded,
        # no select1 pass needed later.
        assert selection._base_positions is positions

    def test_small_and_bitmap_paths_read_identically(self):
        mask = np.random.default_rng(3).random(_ROWS) < 0.25
        packed = big_relation().mask(mask)
        small = big_relation()
        small.num_rows = _BITMAP_MIN_ROWS - 1  # force the small path
        unpacked = small.mask(mask)
        assert isinstance(selection_of(packed), BitmapSelection)
        assert isinstance(selection_of(unpacked), np.ndarray)
        np.testing.assert_array_equal(
            packed.column("t", "a"), unpacked.column("t", "a")
        )
        assert packed.num_rows == unpacked.num_rows == mask.sum()


class TestComposition:
    def test_stacked_masks_refine_in_bitmap_form(self):
        first = big_relation().mask(np.arange(_ROWS) % 2 == 0)
        second = first.mask(first.column("t", "a") % 3 == 0)
        assert isinstance(selection_of(second), BitmapSelection)
        assert second.column("t", "a").tolist() == list(
            range(0, _ROWS, 6)
        )

    def test_select_sorted_of_bitmap_subsets(self):
        view = big_relation().mask(np.arange(_ROWS) % 2 == 0)
        narrowed = view.select_sorted(
            np.arange(0, view.num_rows, 5, dtype=np.int64)
        )
        assert isinstance(selection_of(narrowed), BitmapSelection)
        assert narrowed.column("t", "a").tolist() == list(
            range(0, _ROWS, 10)
        )

    def test_gather_exits_to_positions(self):
        view = big_relation().mask(np.arange(_ROWS) % 2 == 0)
        taken = view.gather(np.array([5, 0, 0]))
        assert taken.column("t", "a").tolist() == [10, 0, 0]

    def test_slice_view_offset_rebases_into_base(self):
        morsel = big_relation().range_view(1000, 1000 + _ROWS - 1000)
        mask = np.zeros(morsel.num_rows, dtype=bool)
        mask[:4] = True
        view = morsel.mask(mask)
        selection = selection_of(view)
        assert isinstance(selection, BitmapSelection)
        assert selection.offset == 1000
        assert view.column("t", "a").tolist() == [1000, 1001, 1002, 1003]

    def test_narrow_slices_the_decoded_positions_without_copying(self):
        view = big_relation().mask(np.arange(_ROWS) % 2 == 0)
        band = view.narrow(10, 14)
        assert band.column("t", "a").tolist() == [20, 22, 24, 26]
        # The band's selection is a numpy view of the decoded cache.
        cache = selection_of(view)._base_positions
        assert selection_of(band).base is cache.base or np.shares_memory(
            selection_of(band), cache
        )


class TestLazyDecode:
    def test_column_head_samples_via_select1_without_full_decode(self):
        view = big_relation().mask(np.arange(_ROWS) % 2 == 1)
        head = view.column_head("t", "a", 3)
        assert head.tolist() == [1, 3, 5]
        assert selection_of(view)._base_positions is None

    def test_settle_selections_decodes_once(self):
        view = big_relation().mask(np.arange(_ROWS) % 2 == 1)
        assert selection_of(view)._base_positions is None
        view.settle_selections()
        decoded = selection_of(view)._base_positions
        assert decoded is not None
        view.settle_selections()
        assert selection_of(view)._base_positions is decoded

    def test_base_source_hands_consumers_decoded_positions(self):
        view = big_relation().mask(np.arange(_ROWS) % 2 == 0)
        table, column, selection = view.base_source("t", "a")
        assert (table, column) == ("base", "a")
        assert isinstance(selection, np.ndarray)
        assert selection[:3].tolist() == [0, 2, 4]


class TestAccounting:
    def test_bitmap_selection_counts_fewer_resident_bytes(self):
        metrics = ExecutionMetrics()
        big_relation(metrics).mask(np.arange(_ROWS) % 2 == 0)
        assert 0 < metrics.selection_bytes
        assert metrics.selection_bytes < metrics.selection_bytes_dense
        # ~1 bit/candidate vs 8 bytes/survivor at 50% selectivity: the
        # packed state is two orders of magnitude smaller.
        assert metrics.selection_bytes * 8 <= metrics.selection_bytes_dense

    def test_small_path_counts_dense_bytes_as_resident(self):
        metrics = ExecutionMetrics()
        rows = _BITMAP_MIN_ROWS - 1
        big_relation(metrics, rows=rows).mask(np.arange(rows) % 2 == 0)
        assert metrics.selection_bytes == metrics.selection_bytes_dense > 0
