"""Tests for the vectorized executor against brute-force references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.executor import Executor, _match_keys
from repro.expr.expressions import Comparison, col, lit
from repro.plan.builder import attach_aggregate, build_right_deep
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.query.spec import Aggregate, JoinPredicate, QuerySpec, RelationRef
from repro.storage.database import Database
from repro.storage.table import Table


class TestMatchKeys:
    def test_matches_nested_loop_reference(self):
        rng = np.random.default_rng(0)
        build = rng.integers(0, 20, 50)
        probe = rng.integers(0, 20, 80)
        build_idx, probe_idx = _match_keys([build], [probe])
        got = sorted(zip(build_idx.tolist(), probe_idx.tolist()))
        expected = sorted(
            (i, j)
            for j, pv in enumerate(probe)
            for i, bv in enumerate(build)
            if bv == pv
        )
        assert got == expected

    def test_empty_sides(self):
        empty = np.array([], dtype=np.int64)
        some = np.array([1, 2], dtype=np.int64)
        assert _match_keys([empty], [some])[0].size == 0
        assert _match_keys([some], [empty])[1].size == 0

    def test_duplicates_expand(self):
        build = np.array([7, 7, 7])
        probe = np.array([7, 7])
        build_idx, probe_idx = _match_keys([build], [probe])
        assert len(build_idx) == 6

    @given(
        build=st.lists(st.integers(0, 10), min_size=0, max_size=60),
        probe=st.lists(st.integers(0, 10), min_size=0, max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_match_count(self, build, probe):
        build_arr = np.array(build, dtype=np.int64)
        probe_arr = np.array(probe, dtype=np.int64)
        build_idx, _ = _match_keys([build_arr], [probe_arr])
        expected = sum(build.count(v) for v in probe)
        assert len(build_idx) == expected


class TestStarExecution:
    @pytest.fixture(scope="class")
    def executed(self, star_db, star_spec):
        graph = JoinGraph(star_spec, star_db.catalog)
        plan = attach_aggregate(
            push_down_bitvectors(build_right_deep(graph, ["f", "d1", "d2"])),
            star_spec,
        )
        return Executor(star_db).execute(plan)

    def test_count_matches_reference(self, executed, star_expected_count):
        assert executed.scalar("cnt") == star_expected_count

    def test_metrics_recorded_for_all_operators(self, executed):
        kinds = {m.kind for m in executed.metrics.nodes}
        assert kinds == {"leaf", "join", "other"}

    def test_metered_cpu_positive(self, executed):
        assert executed.metrics.metered_cpu() > 0

    def test_filter_checks_counted(self, executed):
        totals = executed.metrics.component_totals()
        assert totals["filter_check"] > 0
        assert totals["filter_insert"] > 0

    def test_same_result_without_bitvectors(self, star_db, star_spec, star_expected_count):
        graph = JoinGraph(star_spec, star_db.catalog)
        plan = build_right_deep(graph, ["f", "d1", "d2"])
        for node in plan.walk():
            if hasattr(node, "creates_bitvector"):
                node.creates_bitvector = False
        plan = attach_aggregate(push_down_bitvectors(plan), star_spec)
        result = Executor(star_db).execute(plan)
        assert result.scalar("cnt") == star_expected_count

    def test_bloom_filter_execution_preserves_results(self, star_db, star_spec, star_expected_count):
        graph = JoinGraph(star_spec, star_db.catalog)
        plan = attach_aggregate(
            push_down_bitvectors(build_right_deep(graph, ["f", "d1", "d2"])),
            star_spec,
        )
        result = Executor(star_db, filter_kind="bloom").execute(plan)
        # Bloom filters have no false negatives and join re-checks keys,
        # so the final answer is identical.
        assert result.scalar("cnt") == star_expected_count

    def test_join_order_does_not_change_result(self, star_db, star_spec, star_expected_count):
        graph = JoinGraph(star_spec, star_db.catalog)
        for order in (["f", "d2", "d1"], ["d1", "f", "d2"], ["d2", "f", "d1"]):
            plan = attach_aggregate(
                push_down_bitvectors(build_right_deep(graph, order)), star_spec
            )
            assert Executor(star_db).execute(plan).scalar("cnt") == star_expected_count


class TestAggregates:
    @pytest.fixture(scope="class")
    def groupby_db(self):
        db = Database("g")
        db.add_table(
            Table.from_arrays(
                "dim",
                {"id": np.arange(4), "grp": np.array(["a", "a", "b", "b"], dtype=object)},
                key=("id",),
            )
        )
        db.add_table(
            Table.from_arrays(
                "fact",
                {
                    "fk": np.array([0, 1, 2, 3, 0, 2]),
                    "val": np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
                },
            )
        )
        return db

    def groupby_spec(self, aggregates):
        return QuerySpec(
            name="g",
            relations=(RelationRef("f", "fact"), RelationRef("d", "dim")),
            join_predicates=(JoinPredicate("f", ("fk",), "d", ("id",)),),
            aggregates=aggregates,
            group_by=(col("d", "grp"),),
        )

    def run(self, db, spec):
        graph = JoinGraph(spec, db.catalog)
        plan = attach_aggregate(
            push_down_bitvectors(build_right_deep(graph, ["f", "d"])), spec
        )
        return Executor(db).execute(plan)

    def test_group_by_count_and_sum(self, groupby_db):
        spec = self.groupby_spec(
            (Aggregate("count", label="cnt"), Aggregate("sum", col("f", "val"), label="s"))
        )
        result = self.run(groupby_db, spec)
        groups = dict(zip(result.aggregates["d.grp"], result.aggregates["cnt"]))
        sums = dict(zip(result.aggregates["d.grp"], result.aggregates["s"]))
        assert groups == {"a": 3, "b": 3}
        assert sums == {"a": 8.0, "b": 13.0}

    def test_min_max_avg(self, groupby_db):
        spec = self.groupby_spec(
            (
                Aggregate("min", col("f", "val"), label="lo"),
                Aggregate("max", col("f", "val"), label="hi"),
                Aggregate("avg", col("f", "val"), label="mean"),
            )
        )
        result = self.run(groupby_db, spec)
        by_group = {
            g: (lo, hi, mean)
            for g, lo, hi, mean in zip(
                result.aggregates["d.grp"],
                result.aggregates["lo"],
                result.aggregates["hi"],
                result.aggregates["mean"],
            )
        }
        assert by_group["a"] == (1.0, 5.0, pytest.approx(8 / 3))
        assert by_group["b"] == (3.0, 6.0, pytest.approx(13 / 3))

    def test_scalar_count_on_empty_result(self, groupby_db):
        spec = QuerySpec(
            name="g",
            relations=(RelationRef("f", "fact"), RelationRef("d", "dim")),
            join_predicates=(JoinPredicate("f", ("fk",), "d", ("id",)),),
            local_predicates={
                "d": Comparison("=", col("d", "grp"), lit("zzz"))
            },
            aggregates=(Aggregate("count", label="cnt"),),
        )
        result = self.run(groupby_db, spec)
        assert result.scalar("cnt") == 0
