"""Parallel-vs-serial equivalence: morsel-driven execution must be
byte-identical to the serial engine for every filter kind (exact,
bloom, blocked bloom) and for LIP-style adaptive filter ordering.

Morsel decomposition is order-preserving by construction — per-morsel
``flatnonzero`` offsets concatenate to the serial selection, and join
match pairs concatenate in probe order — so the assertion is exact
byte equality, not approximate agreement.  The parallel threshold is
monkeypatched down so the randomized workloads (small on purpose) still
split into many morsels per operator.
"""

import numpy as np
import pytest

import repro.engine.executor as executor_module
from repro.bench.harness import _checksum
from repro.engine.executor import Executor
from repro.expr.expressions import Comparison, col, lit
from repro.filters import FILTER_KINDS
from repro.plan.builder import attach_aggregate, build_right_deep
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.query.spec import Aggregate, JoinPredicate, QuerySpec, RelationRef
from repro.storage.database import Database
from repro.storage.schema import ForeignKey
from repro.storage.table import Table


@pytest.fixture(autouse=True)
def _tiny_parallel_threshold(monkeypatch):
    """Force morsel splits on test-sized relations."""
    monkeypatch.setattr(executor_module, "_MIN_PARALLEL_ROWS", 64)
    monkeypatch.setattr("repro.storage.partition.MIN_MORSEL_ROWS", 16)


def _random_star(seed: int) -> tuple[Database, QuerySpec, list[list[str]]]:
    rng = np.random.default_rng(seed)
    n_dim1 = int(rng.integers(30, 150))
    n_dim2 = int(rng.integers(30, 150))
    n_fact = int(rng.integers(2000, 8000))

    database = Database(f"par_{seed}")
    database.add_table(
        Table.from_arrays(
            "dim1",
            {
                "id": np.arange(n_dim1),
                "v": rng.integers(0, 10, n_dim1),
                "tag": rng.choice(
                    np.array(["x", "y", "z"], dtype=object), n_dim1
                ),
            },
            key=("id",),
        )
    )
    database.add_table(
        Table.from_arrays(
            "dim2",
            {"id": np.arange(n_dim2), "w": rng.integers(0, 8, n_dim2)},
            key=("id",),
        )
    )
    database.add_table(
        Table.from_arrays(
            "fact",
            {
                "fk1": rng.integers(0, n_dim1, n_fact),
                "fk2": rng.integers(0, n_dim2, n_fact),
                "m": np.round(rng.normal(size=n_fact), 6),
            },
        )
    )
    database.add_foreign_key(ForeignKey("fact", ("fk1",), "dim1", ("id",)))
    database.add_foreign_key(ForeignKey("fact", ("fk2",), "dim2", ("id",)))

    spec = QuerySpec(
        name=f"q_{seed}",
        relations=(
            RelationRef("f", "fact"),
            RelationRef("a", "dim1"),
            RelationRef("b", "dim2"),
        ),
        join_predicates=(
            JoinPredicate("f", ("fk1",), "a", ("id",)),
            JoinPredicate("f", ("fk2",), "b", ("id",)),
        ),
        local_predicates={
            "a": Comparison("<", col("a", "v"), lit(int(rng.integers(2, 9)))),
            "b": Comparison("<", col("b", "w"), lit(int(rng.integers(2, 7)))),
        },
        aggregates=(
            Aggregate("count", label="cnt"),
            Aggregate("sum", col("f", "m"), label="total"),
            Aggregate("min", col("f", "m"), label="lo"),
        ),
        group_by=(col("a", "tag"),),
    )
    orders = [["f", "a", "b"], ["a", "f", "b"], ["b", "f", "a"]]
    return database, spec, orders


def _relation_plans(database, spec, orders):
    graph = JoinGraph(spec, database.catalog)
    return [
        push_down_bitvectors(build_right_deep(graph, order))
        for order in orders
    ]


def _aggregate_plans(database, spec, orders):
    return [
        attach_aggregate(plan, spec)
        for plan in _relation_plans(database, spec, orders)
    ]


@pytest.mark.parametrize("filter_kind", sorted(FILTER_KINDS))
@pytest.mark.parametrize("seed", range(5))
def test_parallel_matches_serial_byte_identical(filter_kind, seed):
    database, spec, orders = _random_star(seed)
    serial = Executor(database, filter_kind=filter_kind)
    parallel = Executor(
        database, filter_kind=filter_kind, parallelism=4, morsel_rows=512
    )
    for plan in _aggregate_plans(database, spec, orders):
        serial_result = serial.execute(plan)
        parallel_result = parallel.execute(plan)
        keys = serial_result.aggregates.keys()
        assert keys == parallel_result.aggregates.keys()
        for label in keys:
            expected = serial_result.aggregates[label]
            actual = parallel_result.aggregates[label]
            assert actual.dtype == expected.dtype
            assert actual.tobytes() == expected.tobytes(), (
                f"{label} diverged for filter={filter_kind} seed={seed}"
            )
        assert _checksum(parallel_result) == _checksum(serial_result)


@pytest.mark.parametrize("filter_kind", sorted(FILTER_KINDS))
def test_parallel_relation_output_identical(filter_kind):
    """Non-aggregate plans: every output column, row order included."""
    database, spec, orders = _random_star(11)
    serial = Executor(database, filter_kind=filter_kind)
    parallel = Executor(
        database, filter_kind=filter_kind, parallelism=3, morsel_rows=700
    )
    for plan in _relation_plans(database, spec, orders):
        serial_columns = serial.execute(plan).relation.columns
        parallel_columns = parallel.execute(plan).relation.columns
        assert serial_columns.keys() == parallel_columns.keys()
        for key, expected in serial_columns.items():
            actual = parallel_columns[key]
            assert actual.dtype == expected.dtype
            assert np.array_equal(actual, expected), f"{key} diverged"


@pytest.mark.parametrize("seed", range(3))
def test_parallel_matches_serial_with_lip_ordering(seed):
    """LIP adaptive filter ordering is decided once on the main thread
    and shared by every morsel — results stay byte-identical."""
    database, spec, orders = _random_star(seed + 50)
    serial = Executor(database, adaptive_filter_order=True)
    parallel = Executor(
        database, adaptive_filter_order=True, parallelism=4, morsel_rows=512
    )
    for plan in _aggregate_plans(database, spec, orders):
        serial_result = serial.execute(plan)
        parallel_result = parallel.execute(plan)
        for label in serial_result.aggregates:
            assert (
                parallel_result.aggregates[label].tobytes()
                == serial_result.aggregates[label].tobytes()
            )


def test_parallel_metrics_counters_merged():
    """Worker counters land in the main metrics after the barrier."""
    database, spec, orders = _random_star(5)
    plan = _aggregate_plans(database, spec, orders)[0]
    serial_metrics = Executor(database).execute(plan).metrics
    parallel_metrics = (
        Executor(database, parallelism=4, morsel_rows=512)
        .execute(plan)
        .metrics
    )
    # Metered tuple counts are recorded on the main thread and must be
    # mode-independent.
    assert parallel_metrics.metered_cpu() == serial_metrics.metered_cpu()
    # Copy accounting flows back from the per-worker metrics; the
    # parallel engine still gathers *something* (join keys, aggregate
    # inputs), so merged counters must be non-zero.
    assert parallel_metrics.rows_copied > 0
    assert parallel_metrics.bytes_gathered > 0
    assert parallel_metrics.dictionary_hits == serial_metrics.dictionary_hits


def test_parallelism_one_is_serial_engine():
    """parallelism=1 must take the exact serial code path."""
    database, spec, orders = _random_star(17)
    plan = _aggregate_plans(database, spec, orders)[0]
    default_result = Executor(database).execute(plan)
    configured = Executor(database, parallelism=1, morsel_rows=512)
    configured_result = configured.execute(plan)
    for label in default_result.aggregates:
        assert (
            configured_result.aggregates[label].tobytes()
            == default_result.aggregates[label].tobytes()
        )
    assert (
        configured_result.metrics.rows_copied
        == default_result.metrics.rows_copied
    )
