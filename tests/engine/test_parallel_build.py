"""Executor-level parallel build sides: partitioned filter construction.

The executor fans each join's filter build out per-morsel and merges on
a deterministic barrier; ``parallelism=1`` must never touch the new
path, and at any parallelism the results must match the serial engine
byte for byte — for every filter kind, including build sides that are
filtered relations (index-array selections, where the per-morsel key
gathers happen on the workers).
"""

import numpy as np
import pytest

import repro.engine.executor as executor_module
from repro.engine.executor import Executor
from repro.expr.expressions import Comparison, col, lit
from repro.filters import FILTER_KINDS
from repro.filters.cache import BitvectorFilterCache
from repro.plan.builder import attach_aggregate, build_right_deep
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.query.spec import Aggregate, JoinPredicate, QuerySpec, RelationRef
from repro.storage.database import Database
from repro.storage.schema import ForeignKey
from repro.storage.table import Table


@pytest.fixture(autouse=True)
def _tiny_parallel_threshold(monkeypatch):
    """Force morsel splits (and partitioned builds) on test-sized data."""
    monkeypatch.setattr(executor_module, "_MIN_PARALLEL_ROWS", 64)
    monkeypatch.setattr("repro.storage.partition.MIN_MORSEL_ROWS", 16)


def _database(seed: int) -> Database:
    rng = np.random.default_rng(seed)
    n_dim, n_fact = 6_000, 3_000  # dimension bigger than fact: build-bound
    database = Database(f"pbuild_{seed}")
    database.add_table(
        Table.from_arrays(
            "dim",
            {
                "id": np.arange(n_dim),
                "attr": rng.integers(0, 50, n_dim),
                "tag": rng.choice(
                    np.array(["x", "y", "z"], dtype=object), n_dim
                ),
            },
            key=("id",),
        )
    )
    database.add_table(
        Table.from_arrays(
            "fact",
            {
                "fk": rng.integers(0, n_dim, n_fact),
                "m": np.round(rng.normal(size=n_fact), 6),
            },
        )
    )
    database.add_foreign_key(ForeignKey("fact", ("fk",), "dim", ("id",)))
    return database


def _plan(database, predicate=True):
    spec = QuerySpec(
        name="q",
        relations=(RelationRef("f", "fact"), RelationRef("d", "dim")),
        join_predicates=(JoinPredicate("f", ("fk",), "d", ("id",)),),
        local_predicates=(
            {"d": Comparison("<", col("d", "attr"), lit(35))}
            if predicate
            else {}
        ),
        aggregates=(
            Aggregate("count", label="cnt"),
            Aggregate("sum", col("f", "m"), label="total"),
        ),
    )
    graph = JoinGraph(spec, database.catalog)
    plan = push_down_bitvectors(build_right_deep(graph, ["f", "d"]))
    return attach_aggregate(plan, spec)


@pytest.mark.parametrize("filter_kind", sorted(FILTER_KINDS))
@pytest.mark.parametrize("with_predicate", [True, False])
def test_partitioned_build_matches_serial(filter_kind, with_predicate):
    """Identity and filtered build sides, every kind, byte-identical."""
    database = _database(1)
    plan = _plan(database, predicate=with_predicate)
    serial = Executor(database, filter_kind=filter_kind)
    parallel = Executor(
        database, filter_kind=filter_kind, parallelism=4, morsel_rows=256
    )
    serial_result = serial.execute(plan)
    parallel_result = parallel.execute(plan)
    for label in serial_result.aggregates:
        assert (
            parallel_result.aggregates[label].tobytes()
            == serial_result.aggregates[label].tobytes()
        ), (filter_kind, with_predicate, label)
    # The partitioned path actually ran (and was merged from several
    # per-morsel partials), while the serial engine never saw it.
    assert parallel_result.metrics.filter_builds_parallel == 1
    assert parallel_result.metrics.filter_partials_built >= 2
    assert serial_result.metrics.filter_builds_parallel == 0
    assert serial_result.metrics.filter_partials_built == 0


def test_parallelism_one_never_partitions():
    database = _database(2)
    plan = _plan(database)
    executor = Executor(database, parallelism=1, morsel_rows=256)
    metrics = executor.execute(plan).metrics
    assert metrics.filter_builds_parallel == 0
    assert metrics.filter_partials_built == 0


def test_build_phase_is_metered():
    database = _database(3)
    plan = _plan(database)
    executor = Executor(database, parallelism=4, morsel_rows=256)
    first = executor.execute(plan).metrics
    assert first.filter_build_seconds > 0.0


def test_cached_filter_skips_the_build_phase():
    """A filter-cache hit pays no build: the metered build phase stays
    zero and no partials are constructed."""
    database = _database(4)
    plan = _plan(database)
    cache = BitvectorFilterCache(8)
    executor = Executor(
        database, filter_cache=cache, parallelism=4, morsel_rows=256
    )
    cold = executor.execute(plan).metrics
    warm = executor.execute(plan).metrics
    assert cold.filter_builds_parallel == 1
    assert cold.filter_build_seconds > 0.0
    assert warm.filter_cache_hits == 1
    assert warm.filter_builds_parallel == 0
    assert warm.filter_build_seconds == 0.0


def test_partitioned_and_serial_builds_share_cache_entries():
    """A filter built partitioned must be reusable by a serial executor
    (and vice versa): the cache key ignores how the filter was built
    because the artifacts are equivalent."""
    database = _database(5)
    plan = _plan(database)
    cache = BitvectorFilterCache(8)
    parallel = Executor(
        database, filter_cache=cache, parallelism=4, morsel_rows=256
    )
    serial = Executor(database, filter_cache=cache)
    parallel_result = parallel.execute(plan)
    serial_result = serial.execute(plan)
    assert serial_result.metrics.filter_cache_hits == 1
    for label in serial_result.aggregates:
        assert (
            parallel_result.aggregates[label].tobytes()
            == serial_result.aggregates[label].tobytes()
        )
