"""Adaptive morsel sizing: equivalence and the sizing policy itself.

Sizing only moves where ranges are cut, never which rows a region
covers, so adaptive execution must be byte-identical to statically
sized execution (and to the serial engine).  The policy tests pin the
:class:`~repro.storage.partition.AdaptiveMorselSizer` contract: sizes
come from observed throughput, selective pipelines shrink their
morsels, and the existing ``MIN_MORSEL_ROWS`` / ``min_morsels``
precedence stays in force.
"""

import numpy as np
import pytest

import repro.engine.executor as executor_module
from repro.engine.executor import Executor
from repro.expr.expressions import Comparison, col, lit
from repro.plan.builder import attach_aggregate, build_right_deep
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.query.spec import Aggregate, JoinPredicate, QuerySpec, RelationRef
import repro.storage.partition as partition_module
from repro.storage.partition import (
    MAX_ADAPT_FACTOR,
    TARGET_MORSEL_SECONDS,
    AdaptiveMorselSizer,
    morsel_ranges,
)
from repro.storage.database import Database
from repro.storage.schema import ForeignKey
from repro.storage.table import Table


class TestSizerPolicy:
    def test_uncalibrated_returns_base(self):
        sizer = AdaptiveMorselSizer(8192, sample_morsels=2)
        assert not sizer.calibrated
        assert sizer.morsel_rows() == 8192
        sizer.observe(8192, 0.001, 8192)
        assert not sizer.calibrated  # one observation < sample_morsels
        assert sizer.morsel_rows() == 8192

    def test_size_targets_observed_throughput(self):
        sizer = AdaptiveMorselSizer(8192, sample_morsels=2)
        # 1M rows/second at full selectivity => target seconds' worth
        # of rows per morsel.
        for _ in range(2):
            sizer.observe(10_000, 0.01, 10_000)
        assert sizer.calibrated
        expected = int(1_000_000 * TARGET_MORSEL_SECONDS)
        assert sizer.morsel_rows() == expected

    def test_selective_pipelines_get_smaller_morsels(self):
        scan = AdaptiveMorselSizer(8192, sample_morsels=1)
        scan.observe(10_000, 0.01, 10_000)
        selective = AdaptiveMorselSizer(8192, sample_morsels=1)
        selective.observe(10_000, 0.01, 0)
        assert selective.morsel_rows() < scan.morsel_rows()
        # The scaling is the documented 0.5 + 0.5 * selectivity.
        assert selective.morsel_rows() == scan.morsel_rows() // 2

    def test_clamped_to_floor_and_ceiling(self):
        slow = AdaptiveMorselSizer(4096, sample_morsels=1)
        slow.observe(1000, 10.0, 1000)  # 100 rows/s: wants tiny morsels
        assert slow.morsel_rows() == partition_module.MIN_MORSEL_ROWS
        fast = AdaptiveMorselSizer(4096, sample_morsels=1)
        fast.observe(1_000_000, 1e-9, 1_000_000)  # too fast to measure
        assert fast.morsel_rows() == 4096 * MAX_ADAPT_FACTOR

    def test_join_fanout_cannot_inflate_selectivity(self):
        sizer = AdaptiveMorselSizer(4096, sample_morsels=1)
        sizer.observe(1000, 0.001, 5000)  # join emitted 5x its input
        assert sizer.selectivity() == 1.0

    def test_min_morsels_precedence_survives_adaptation(self):
        """The sizer proposes a target; morsel_ranges still honors the
        explicit worker demand over it, exactly as for static sizes."""
        sizer = AdaptiveMorselSizer(4096, sample_morsels=1)
        sizer.observe(1_000_000, 1e-9, 1_000_000)
        proposal = sizer.morsel_rows()
        ranges = morsel_ranges(proposal, proposal, min_morsels=8)
        assert len(ranges) == 8


def _database(seed: int) -> Database:
    rng = np.random.default_rng(seed)
    n_dim, n_fact = 400, 20_000
    database = Database(f"adaptive_{seed}")
    database.add_table(
        Table.from_arrays(
            "dim",
            {"id": np.arange(n_dim), "v": rng.integers(0, 10, n_dim)},
            key=("id",),
        )
    )
    database.add_table(
        Table.from_arrays(
            "fact",
            {
                "fk": rng.integers(0, n_dim, n_fact),
                "m": np.round(rng.normal(size=n_fact), 6),
            },
        )
    )
    database.add_foreign_key(ForeignKey("fact", ("fk",), "dim", ("id",)))
    return database


def _plan(database):
    spec = QuerySpec(
        name="q",
        relations=(RelationRef("f", "fact"), RelationRef("d", "dim")),
        join_predicates=(JoinPredicate("f", ("fk",), "d", ("id",)),),
        local_predicates={"d": Comparison("<", col("d", "v"), lit(4))},
        aggregates=(
            Aggregate("count", label="cnt"),
            Aggregate("sum", col("f", "m"), label="total"),
        ),
    )
    graph = JoinGraph(spec, database.catalog)
    plan = push_down_bitvectors(build_right_deep(graph, ["f", "d"]))
    return attach_aggregate(plan, spec)


@pytest.fixture(autouse=True)
def _tiny_parallel_threshold(monkeypatch):
    monkeypatch.setattr(executor_module, "_MIN_PARALLEL_ROWS", 64)
    monkeypatch.setattr("repro.storage.partition.MIN_MORSEL_ROWS", 16)


@pytest.mark.parametrize("seed", range(3))
def test_adaptive_equals_static_equals_serial(seed):
    database = _database(seed)
    plan = _plan(database)
    serial = Executor(database)
    static = Executor(
        database, parallelism=4, morsel_rows=512, adaptive_morsels=False
    )
    adaptive = Executor(database, parallelism=4, morsel_rows=512)
    reference = serial.execute(plan)
    for executor in (static, adaptive):
        result = executor.execute(plan)
        for label in reference.aggregates:
            assert (
                result.aggregates[label].tobytes()
                == reference.aggregates[label].tobytes()
            ), (seed, label)


def test_sizes_actually_adapt():
    database = _database(7)
    plan = _plan(database)
    adaptive = Executor(database, parallelism=4, morsel_rows=512)
    result = adaptive.execute(plan)
    sizer = result.metrics.morsel_sizer
    assert sizer is not None
    assert sizer.calibrated
    assert sizer.observed_morsels > 0
    # The proposal reflects observations, not just the configured size
    # (throughput on test-sized morsels differs wildly from 512-row
    # targets; equality would mean the sizer never engaged).
    assert sizer.morsel_rows() != 0
    assert sizer.base_morsel_rows == 512


def test_static_and_serial_carry_no_sizer():
    database = _database(8)
    plan = _plan(database)
    static = Executor(
        database, parallelism=4, morsel_rows=512, adaptive_morsels=False
    )
    serial = Executor(database)
    assert static.execute(plan).metrics.morsel_sizer is None
    assert serial.execute(plan).metrics.morsel_sizer is None
    assert not serial.adaptive_morsels
    assert not static.adaptive_morsels
