"""Tests for LIP-style adaptive filter ordering."""

import numpy as np
import pytest

from repro.engine.executor import Executor
from repro.engine.lip import order_filters_adaptively
from repro.expr.expressions import Comparison, col, lit
from repro.filters.exact import ExactFilter
from repro.plan.builder import attach_aggregate, build_right_deep
from repro.plan.nodes import BitvectorDef
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.query.spec import Aggregate, JoinPredicate, QuerySpec, RelationRef
from repro.storage.database import Database
from repro.storage.schema import ForeignKey
from repro.storage.table import Table


class _FakeJoin:
    """Stands in for the source join a BitvectorDef references."""

    def __init__(self):
        self.build_keys = (("d", "id"),)
        self.probe_keys = (("f", "fk"),)


def make_definition(probe_keys):
    definition = BitvectorDef.__new__(BitvectorDef)
    definition.filter_id = id(definition) % 10_000_000
    definition.source_join = _FakeJoin()
    definition.build_keys = (("d", "id"),)
    definition.probe_keys = probe_keys
    return definition


class TestOrdering:
    def test_most_selective_first(self):
        values = np.arange(100)
        selective = ExactFilter.build([np.array([1, 2])])        # ~2% pass
        loose = ExactFilter.build([np.arange(90)])               # ~90% pass
        def_a = make_definition((("f", "x"),))
        def_b = make_definition((("f", "x"),))
        filters = {def_a.filter_id: loose, def_b.filter_id: selective}

        ordered = order_filters_adaptively(
            [def_a, def_b], filters, lambda a, c, n: values[:n], 100
        )
        assert ordered[0] is def_b  # selective filter first

    def test_zone_skip_renormalizes_pass_rates(self):
        # Filter A: 10% whole-relation pass rate, but zone maps already
        # skip 90% of rows for it — among the kept rows it passes
        # ~everything (0.1 / 0.1 = 1.0) and must rank LAST.  Filter B:
        # 50% pass rate, no skipping, ranks first.
        values = np.arange(100)
        layout_covered = ExactFilter.build([np.arange(10)])      # 10% pass
        moderate = ExactFilter.build([np.arange(50)])            # 50% pass
        def_a = make_definition((("f", "x"),))
        def_b = make_definition((("f", "x"),))
        filters = {
            def_a.filter_id: layout_covered,
            def_b.filter_id: moderate,
        }
        head = lambda a, c, n: values[:n]  # noqa: E731

        # Without skip information the 10% filter wins...
        assert order_filters_adaptively(
            [def_a, def_b], filters, head, 100
        )[0] is def_a
        # ... with it, its kept-row pass rate renormalizes to ~1.0.
        ordered = order_filters_adaptively(
            [def_a, def_b], filters, head, 100,
            zone_skip={def_a.filter_id: 0.9, def_b.filter_id: 0.0},
        )
        assert ordered[0] is def_b
        # Full skipping means the filter sees nothing it could fail.
        ordered = order_filters_adaptively(
            [def_a, def_b], filters, head, 100,
            zone_skip={def_a.filter_id: 1.0},
        )
        assert ordered[0] is def_b

    def test_single_filter_untouched(self):
        definition = make_definition((("f", "x"),))
        out = order_filters_adaptively(
            [definition], {}, lambda a, c, n: np.arange(5)[:n], 5
        )
        assert out == [definition]

    def test_empty_relation_untouched(self):
        defs = [make_definition((("f", "x"),)) for _ in range(2)]
        out = order_filters_adaptively(
            defs, {}, lambda a, c, n: np.array([]), 0
        )
        assert out == defs


class TestExecutorIntegration:
    @pytest.fixture(scope="class")
    def db(self):
        rng = np.random.default_rng(5)
        database = Database("lip")
        database.add_table(
            Table.from_arrays(
                "d1", {"id": np.arange(100), "v": np.arange(100)}, key=("id",)
            )
        )
        database.add_table(
            Table.from_arrays(
                "d2", {"id": np.arange(100), "w": np.arange(100)}, key=("id",)
            )
        )
        database.add_table(
            Table.from_arrays(
                "fact",
                {
                    "fk1": rng.integers(0, 100, 20_000),
                    "fk2": rng.integers(0, 100, 20_000),
                },
            )
        )
        database.add_foreign_key(ForeignKey("fact", ("fk1",), "d1", ("id",)))
        database.add_foreign_key(ForeignKey("fact", ("fk2",), "d2", ("id",)))
        return database

    def make_plan(self, db):
        spec = QuerySpec(
            name="q",
            relations=(
                RelationRef("f", "fact"),
                RelationRef("a", "d1"),
                RelationRef("b", "d2"),
            ),
            join_predicates=(
                JoinPredicate("f", ("fk1",), "a", ("id",)),
                JoinPredicate("f", ("fk2",), "b", ("id",)),
            ),
            local_predicates={
                # a is very selective, b barely filters
                "a": Comparison("<", col("a", "v"), lit(3)),
                "b": Comparison("<", col("b", "w"), lit(95)),
            },
            aggregates=(Aggregate("count", label="cnt"),),
        )
        graph = JoinGraph(spec, db.catalog)
        # order b before a so the default filter order is the BAD one
        plan = push_down_bitvectors(build_right_deep(graph, ["f", "b", "a"]))
        return attach_aggregate(plan, spec)

    def test_answers_identical(self, db):
        default = Executor(db).execute(self.make_plan(db)).scalar("cnt")
        adaptive = Executor(db, adaptive_filter_order=True).execute(
            self.make_plan(db)
        ).scalar("cnt")
        assert default == adaptive

    def test_adaptive_reduces_filter_checks(self, db):
        default = Executor(db).execute(self.make_plan(db))
        adaptive = Executor(db, adaptive_filter_order=True).execute(
            self.make_plan(db)
        )
        checks_default = default.metrics.component_totals()["filter_check"]
        checks_adaptive = adaptive.metrics.component_totals()["filter_check"]
        # selective-first ordering strictly reduces checked tuples
        assert checks_adaptive < checks_default
