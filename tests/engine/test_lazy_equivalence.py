"""Engine equivalence: the lazy selection-vector path must produce
byte-identical results to the seed-style eager path across all filter
kinds on randomized star and snowflake workloads."""

import numpy as np
import pytest

from repro.engine.executor import Executor
from repro.expr.expressions import Comparison, col, lit
from repro.filters import FILTER_KINDS
from repro.plan.builder import attach_aggregate, build_right_deep
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.query.spec import Aggregate, JoinPredicate, QuerySpec, RelationRef
from repro.storage.database import Database
from repro.storage.schema import ForeignKey
from repro.storage.table import Table


def _random_star(seed: int, snowflake: bool) -> tuple[Database, QuerySpec, list[list[str]]]:
    """A randomized star (or snowflake: dim2 -> subdim chain) workload."""
    rng = np.random.default_rng(seed)
    n_dim1 = int(rng.integers(20, 120))
    n_dim2 = int(rng.integers(20, 120))
    n_sub = int(rng.integers(5, 30))
    n_fact = int(rng.integers(500, 4000))

    database = Database(f"rand_{seed}")
    database.add_table(
        Table.from_arrays(
            "dim1",
            {
                "id": np.arange(n_dim1),
                "v": rng.integers(0, 10, n_dim1),
                "tag": rng.choice(
                    np.array(["x", "y", "z"], dtype=object), n_dim1
                ),
            },
            key=("id",),
        )
    )
    dim2_columns = {
        "id": np.arange(n_dim2),
        "w": rng.integers(0, 8, n_dim2),
    }
    if snowflake:
        dim2_columns["sub_fk"] = rng.integers(0, n_sub, n_dim2)
    database.add_table(Table.from_arrays("dim2", dim2_columns, key=("id",)))
    if snowflake:
        database.add_table(
            Table.from_arrays(
                "subdim",
                {"id": np.arange(n_sub), "u": rng.integers(0, 5, n_sub)},
                key=("id",),
            )
        )
    database.add_table(
        Table.from_arrays(
            "fact",
            {
                "fk1": rng.integers(0, n_dim1, n_fact),
                "fk2": rng.integers(0, n_dim2, n_fact),
                "m": np.round(rng.normal(size=n_fact), 6),
            },
        )
    )
    database.add_foreign_key(ForeignKey("fact", ("fk1",), "dim1", ("id",)))
    database.add_foreign_key(ForeignKey("fact", ("fk2",), "dim2", ("id",)))
    if snowflake:
        database.add_foreign_key(ForeignKey("dim2", ("sub_fk",), "subdim", ("id",)))

    relations = [
        RelationRef("f", "fact"),
        RelationRef("a", "dim1"),
        RelationRef("b", "dim2"),
    ]
    joins = [
        JoinPredicate("f", ("fk1",), "a", ("id",)),
        JoinPredicate("f", ("fk2",), "b", ("id",)),
    ]
    orders = [["f", "a", "b"], ["a", "f", "b"], ["b", "f", "a"]]
    if snowflake:
        relations.append(RelationRef("sd", "subdim"))
        joins.append(JoinPredicate("b", ("sub_fk",), "sd", ("id",)))
        orders = [["f", "a", "b", "sd"], ["sd", "b", "f", "a"]]

    spec = QuerySpec(
        name=f"q_{seed}",
        relations=tuple(relations),
        join_predicates=tuple(joins),
        local_predicates={
            "a": Comparison("<", col("a", "v"), lit(int(rng.integers(2, 9)))),
            "b": Comparison("<", col("b", "w"), lit(int(rng.integers(2, 7)))),
        },
        aggregates=(
            Aggregate("count", label="cnt"),
            Aggregate("sum", col("f", "m"), label="total"),
            Aggregate("min", col("f", "m"), label="lo"),
        ),
        group_by=(col("a", "tag"),),
    )
    return database, spec, orders


def _plans(database: Database, spec: QuerySpec, orders):
    graph = JoinGraph(spec, database.catalog)
    return [
        attach_aggregate(
            push_down_bitvectors(build_right_deep(graph, order)), spec
        )
        for order in orders
    ]


@pytest.mark.parametrize("filter_kind", sorted(FILTER_KINDS))
@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("snowflake", [False, True])
def test_lazy_matches_eager_byte_identical(filter_kind, seed, snowflake):
    database, spec, orders = _random_star(seed, snowflake)
    lazy = Executor(database, filter_kind=filter_kind)
    eager = Executor(
        database, filter_kind=filter_kind, eager_materialization=True
    )
    for plan in _plans(database, spec, orders):
        lazy_result = lazy.execute(plan)
        eager_result = eager.execute(plan)
        assert lazy_result.aggregates.keys() == eager_result.aggregates.keys()
        for label in lazy_result.aggregates:
            lazy_values = lazy_result.aggregates[label]
            eager_values = eager_result.aggregates[label]
            assert lazy_values.dtype == eager_values.dtype
            assert lazy_values.tobytes() == eager_values.tobytes(), (
                f"{label} diverged for filter={filter_kind} seed={seed}"
            )


@pytest.mark.parametrize("filter_kind", sorted(FILTER_KINDS))
def test_lazy_matches_eager_metered_cpu(filter_kind):
    """The cost-model metering (tuple counts) is mode-independent."""
    database, spec, orders = _random_star(99, snowflake=False)
    lazy = Executor(database, filter_kind=filter_kind)
    eager = Executor(
        database, filter_kind=filter_kind, eager_materialization=True
    )
    for plan in _plans(database, spec, orders):
        assert (
            lazy.execute(plan).metrics.metered_cpu()
            == eager.execute(plan).metrics.metered_cpu()
        )


def test_lazy_copies_strictly_less():
    database, spec, orders = _random_star(7, snowflake=True)
    plan = _plans(database, spec, orders)[0]
    lazy_metrics = Executor(database).execute(plan).metrics
    eager_metrics = (
        Executor(database, eager_materialization=True).execute(plan).metrics
    )
    assert lazy_metrics.rows_copied < eager_metrics.rows_copied
    assert lazy_metrics.bytes_gathered < eager_metrics.bytes_gathered
