"""Zone-map morsel pruning: byte-identity with the unpruned engine.

The correctness contract of the pruning subsystem
(:mod:`repro.storage.zonemaps`): the executor may skip a morsel only
when zone-map bounds *prove* it contributes nothing, so execution with
``zone_maps=True`` must be byte-identical to ``zone_maps=False`` — for
every filter kind, every column layout (clustered, shuffled, constant,
all-NaN), and at ``parallelism`` 1 and 4.  The tests sweep exactly that
grid and additionally pin down the pruning counters: positive where
skipping is provable, zero where it is not (and always zero with the
flag off).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.executor import Executor
from repro.optimizer.pipelines import optimize_query
from repro.sql.binder import parse_query
from repro.storage.database import Database
from repro.storage.table import Table

_ROWS = 20_000
_MORSEL_ROWS = 2_048
_DOMAIN = 1_000


def _build_database(layout: str) -> Database:
    """One fact + one dimension; the fact key layout varies by case."""
    rng = np.random.default_rng(11)
    keys = rng.integers(0, _DOMAIN, _ROWS)
    if layout == "clustered":
        keys = np.sort(keys)
    elif layout == "constant":
        keys = np.full(_ROWS, 42)
    measures = rng.random(_ROWS) * 100.0
    if layout == "all_null":
        measures = np.full(_ROWS, np.nan)
    tags = np.array(
        [f"tag{int(value) % 7}" for value in keys], dtype=object
    )
    database = Database(f"zp_{layout}")
    database.add_table(
        Table.from_arrays(
            "fact",
            {"k": keys, "v": measures, "tag": tags},
        ),
        validate_key=False,
    )
    database.add_table(
        Table.from_arrays("dim", {"d": np.arange(_DOMAIN)}, key=("d",))
    )
    return database


_QUERIES = [
    # Range predicate on the fact key (prunable when clustered).
    "SELECT COUNT(*) AS c, SUM(f.v) AS s FROM fact f "
    "WHERE f.k BETWEEN 100 AND 149",
    # Equality + IN on the key; impossible band (prunes everything).
    "SELECT COUNT(*) AS c FROM fact f WHERE f.k = 42",
    "SELECT COUNT(*) AS c FROM fact f WHERE f.k IN (5, 300, 999)",
    "SELECT COUNT(*) AS c FROM fact f WHERE f.k > 5000",
    # Predicates over the float measure (NaN semantics; <> is TRUE for
    # NaN rows, so all-NaN morsels must never be pruned for it).
    "SELECT COUNT(*) AS c FROM fact f WHERE f.v < 1.5",
    "SELECT COUNT(*) AS c FROM fact f WHERE f.v <> 1.5",
    # Equality on the text column (string-interval pruning; the
    # unorderable "no information" state is unit-tested in
    # tests/storage/test_zonemaps.py — the stats layer predates support
    # for None-bearing text columns, so it cannot flow through plans).
    "SELECT COUNT(*) AS c FROM fact f WHERE f.tag = 'tag3'",
    # Text predicate rides along (LIKE itself never prunes).
    "SELECT COUNT(*) AS c FROM fact f "
    "WHERE f.k < 200 AND f.tag LIKE 'tag1%'",
    # Selective join: the dimension induces a bitvector on the fact
    # scan whose key bounds cover only a band.
    "SELECT COUNT(*) AS c, SUM(f.v) AS s FROM fact f, dim d "
    "WHERE f.k = d.d AND d.d BETWEEN 100 AND 149",
    # Unselective join (no filter below the threshold): join-level
    # pruning path.
    "SELECT COUNT(*) AS c FROM fact f, dim d WHERE f.k = d.d",
]


def _run_all(database, queries, **executor_kwargs):
    executor = Executor(database, **executor_kwargs)
    results = []
    for index, sql in enumerate(queries):
        plan = optimize_query(
            database, parse_query(database, sql, f"q{index}"), "bqo"
        ).plan
        results.append(executor.execute(plan))
    return results


@pytest.mark.parametrize(
    "layout", ["clustered", "shuffled", "constant", "all_null"]
)
@pytest.mark.parametrize("filter_kind", ["exact", "bloom", "blocked_bloom"])
@pytest.mark.parametrize("parallelism", [1, 4])
def test_pruned_equals_unpruned(layout, filter_kind, parallelism):
    database = _build_database(layout)
    baseline = _run_all(
        database, _QUERIES,
        filter_kind=filter_kind, zone_maps=False,
        parallelism=parallelism, morsel_rows=_MORSEL_ROWS,
    )
    pruned = _run_all(
        database, _QUERIES,
        filter_kind=filter_kind, zone_maps=True,
        parallelism=parallelism, morsel_rows=_MORSEL_ROWS,
    )
    for index, (want, got) in enumerate(zip(baseline, pruned)):
        assert want.aggregates.keys() == got.aggregates.keys()
        for label in want.aggregates:
            expected = want.aggregates[label]
            actual = got.aggregates[label]
            assert actual.dtype == expected.dtype
            assert np.array_equal(
                actual, expected, equal_nan=True
            ), (
                f"{layout}/{filter_kind}/p{parallelism} drift on query "
                f"{index} ({label}): {expected} vs {actual}"
            )
        assert want.metrics.morsels_pruned == 0
        assert want.metrics.rows_skipped == 0


def test_counters_fire_on_clustered_layout():
    database = _build_database("clustered")
    results = _run_all(
        database, _QUERIES, zone_maps=True, morsel_rows=_MORSEL_ROWS
    )
    pruned = sum(result.metrics.morsels_pruned for result in results)
    skipped = sum(result.metrics.rows_skipped for result in results)
    assert pruned > 0
    assert skipped > 0
    # The impossible band (k > 5000 over a [0, 1000) domain) prunes the
    # entire table without evaluating the predicate once.
    impossible = results[3]
    assert impossible.metrics.rows_skipped == _ROWS
    assert impossible.scalar("c") == 0


def test_all_null_measure_prunes_everything():
    database = _build_database("all_null")
    results = _run_all(
        database, ["SELECT COUNT(*) AS c FROM fact f WHERE f.v < 1.5"],
        zone_maps=True, morsel_rows=_MORSEL_ROWS,
    )
    assert results[0].scalar("c") == 0
    assert results[0].metrics.rows_skipped == _ROWS


def test_shuffled_layout_prunes_nothing_on_fact():
    database = _build_database("shuffled")
    results = _run_all(
        database,
        ["SELECT COUNT(*) AS c FROM fact f WHERE f.k BETWEEN 100 AND 149"],
        zone_maps=True, morsel_rows=_MORSEL_ROWS,
    )
    # Every shuffled morsel spans (almost) the whole domain; nothing is
    # provably empty, and the unpruned path runs unchanged.
    assert results[0].metrics.morsels_pruned == 0
    assert results[0].scalar("c") > 0


def test_constant_column_prunes_all_or_nothing():
    database = _build_database("constant")
    hit, miss = _run_all(
        database,
        [
            "SELECT COUNT(*) AS c FROM fact f WHERE f.k = 42",
            "SELECT COUNT(*) AS c FROM fact f WHERE f.k = 43",
        ],
        zone_maps=True, morsel_rows=_MORSEL_ROWS,
    )
    # A constant column is trivially sorted, so both equality queries
    # are answered by the clustered band search — two binary searches,
    # zero row-wise evaluations (all rows count as skipped *work*,
    # whether kept or not).
    assert hit.scalar("c") == _ROWS
    assert hit.metrics.morsels_pruned == 0
    assert hit.metrics.morsels_band_searched > 0
    assert hit.metrics.rows_skipped == _ROWS
    assert miss.scalar("c") == 0
    assert miss.metrics.morsels_band_searched > 0
    assert miss.metrics.rows_skipped == _ROWS


def test_constant_morsel_short_circuit_without_band():
    """An OR of bands is not one band, so the band search stands aside
    and the constant-morsel short-circuit keeps morsels whole."""
    database = _build_database("constant")
    (hit,) = _run_all(
        database,
        ["SELECT COUNT(*) AS c FROM fact f WHERE f.k = 42 OR f.k = 43"],
        zone_maps=True, morsel_rows=_MORSEL_ROWS,
    )
    assert hit.scalar("c") == _ROWS
    assert hit.metrics.morsels_band_searched == 0
    assert hit.metrics.morsels_short_circuited > 0
    assert hit.metrics.rows_skipped == _ROWS


def test_clustered_band_search_replaces_morsel_checks():
    """On the clustered layout a BETWEEN band is answered entirely by
    binary search: byte-identical rows, no per-morsel prune flags."""
    database = _build_database("clustered")
    (banded,) = _run_all(
        database,
        ["SELECT COUNT(*) AS c, SUM(f.v) AS s FROM fact f "
         "WHERE f.k BETWEEN 100 AND 149"],
        zone_maps=True, morsel_rows=_MORSEL_ROWS,
    )
    (plain,) = _run_all(
        database,
        ["SELECT COUNT(*) AS c, SUM(f.v) AS s FROM fact f "
         "WHERE f.k BETWEEN 100 AND 149"],
        zone_maps=False, morsel_rows=_MORSEL_ROWS,
    )
    assert banded.metrics.morsels_band_searched > 0
    assert banded.metrics.rows_skipped == _ROWS
    for label in plain.aggregates:
        assert np.array_equal(
            banded.aggregates[label], plain.aggregates[label]
        )
        assert banded.aggregates[label].dtype == plain.aggregates[label].dtype


def test_eager_baseline_never_prunes():
    database = _build_database("clustered")
    results = _run_all(
        database,
        ["SELECT COUNT(*) AS c FROM fact f WHERE f.k > 5000"],
        zone_maps=True, eager_materialization=True,
    )
    assert results[0].metrics.rows_skipped == 0
    assert results[0].scalar("c") == 0
