"""Executor edge cases: empty inputs, self-joins, multi-column keys,
residual filters, duplicate-heavy joins."""

import numpy as np
import pytest

from repro.engine.executor import Executor
from repro.errors import ExecutionError
from repro.expr.expressions import Comparison, col, lit
from repro.plan.builder import attach_aggregate, build_right_deep, scan_for
from repro.plan.nodes import FilterNode
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.query.spec import Aggregate, JoinPredicate, QuerySpec, RelationRef
from repro.storage.database import Database
from repro.storage.schema import ForeignKey
from repro.storage.table import Table


@pytest.fixture(scope="module")
def edge_db() -> Database:
    db = Database("edge")
    db.add_table(
        Table.from_arrays(
            "dim",
            {
                "id": np.arange(10),
                "v": np.arange(10),
                "tag": np.array([f"t{i % 3}" for i in range(10)], dtype=object),
            },
            key=("id",),
        )
    )
    db.add_table(
        Table.from_arrays(
            "fact",
            {
                "a": np.array([0, 0, 1, 2, 2, 2, 9]),
                "b": np.array([1, 1, 1, 3, 3, 4, 9]),
                "m": np.arange(7).astype(np.float64),
            },
        )
    )
    db.add_table(Table.from_arrays("empty", {"id": np.array([], dtype=np.int64)},
                                   key=("id",)))
    db.add_foreign_key(ForeignKey("fact", ("a",), "dim", ("id",)))
    db.add_foreign_key(ForeignKey("fact", ("b",), "dim", ("id",)))
    return db


def run_count(db, spec, order):
    graph = JoinGraph(spec, db.catalog)
    plan = attach_aggregate(
        push_down_bitvectors(build_right_deep(graph, order)), spec
    )
    return Executor(db).execute(plan).scalar("cnt")


class TestEmptyInputs:
    def test_empty_dimension_yields_zero(self, edge_db):
        spec = QuerySpec(
            name="q",
            relations=(RelationRef("f", "fact"), RelationRef("e", "empty")),
            join_predicates=(JoinPredicate("f", ("a",), "e", ("id",)),),
            aggregates=(Aggregate("count", label="cnt"),),
        )
        assert run_count(edge_db, spec, ["f", "e"]) == 0

    def test_predicate_selecting_nothing(self, edge_db):
        spec = QuerySpec(
            name="q",
            relations=(RelationRef("f", "fact"), RelationRef("d", "dim")),
            join_predicates=(JoinPredicate("f", ("a",), "d", ("id",)),),
            local_predicates={"d": Comparison(">", col("d", "v"), lit(999))},
            aggregates=(Aggregate("count", label="cnt"),),
        )
        assert run_count(edge_db, spec, ["f", "d"]) == 0

    def test_empty_probe_side(self, edge_db):
        spec = QuerySpec(
            name="q",
            relations=(RelationRef("e", "empty"), RelationRef("d", "dim")),
            join_predicates=(JoinPredicate("e", ("id",), "d", ("id",)),),
            aggregates=(Aggregate("count", label="cnt"),),
        )
        assert run_count(edge_db, spec, ["e", "d"]) == 0


class TestSelfJoin:
    def test_same_table_two_aliases(self, edge_db):
        spec = QuerySpec(
            name="q",
            relations=(RelationRef("x", "dim"), RelationRef("y", "dim")),
            join_predicates=(JoinPredicate("x", ("id",), "y", ("id",)),),
            aggregates=(Aggregate("count", label="cnt"),),
        )
        assert run_count(edge_db, spec, ["x", "y"]) == 10

    def test_fact_self_join_on_shared_column(self, edge_db):
        spec = QuerySpec(
            name="q",
            relations=(RelationRef("p", "fact"), RelationRef("q", "fact")),
            join_predicates=(JoinPredicate("p", ("a",), "q", ("a",)),),
            aggregates=(Aggregate("count", label="cnt"),),
        )
        a = edge_db.table("fact").column("a")
        expected = sum(int((a == v).sum()) ** 2 for v in np.unique(a))
        assert run_count(edge_db, spec, ["p", "q"]) == expected


class TestMultiColumnJoin:
    def test_two_column_key_join(self, edge_db):
        spec = QuerySpec(
            name="q",
            relations=(RelationRef("p", "fact"), RelationRef("q", "fact")),
            join_predicates=(
                JoinPredicate("p", ("a",), "q", ("a",)),
                JoinPredicate("p", ("b",), "q", ("b",)),
            ),
            aggregates=(Aggregate("count", label="cnt"),),
        )
        rows = list(zip(edge_db.table("fact").column("a"),
                        edge_db.table("fact").column("b")))
        expected = sum(rows.count(r) for r in rows)
        assert run_count(edge_db, spec, ["p", "q"]) == expected


class TestResidualFilterExecution:
    def test_multi_alias_bitvector_applies_at_filter_node(self, edge_db):
        # build side joins BOTH probe relations => residual FilterNode
        spec = QuerySpec(
            name="q",
            relations=(
                RelationRef("f", "fact"),
                RelationRef("d", "dim"),
                RelationRef("g", "fact"),
            ),
            join_predicates=(
                JoinPredicate("f", ("a",), "d", ("id",)),
                JoinPredicate("g", ("a",), "f", ("b",)),
                JoinPredicate("g", ("b",), "d", ("id",)),
            ),
            aggregates=(Aggregate("count", label="cnt"),),
        )
        graph = JoinGraph(spec, edge_db.catalog)
        plan = push_down_bitvectors(build_right_deep(graph, ["f", "d", "g"]))
        assert any(isinstance(n, FilterNode) for n in plan.walk())
        plan = attach_aggregate(plan, spec)
        with_filters = Executor(edge_db).execute(plan).scalar("cnt")

        plan2 = build_right_deep(graph, ["f", "d", "g"])
        for node in plan2.walk():
            if hasattr(node, "creates_bitvector"):
                node.creates_bitvector = False
        plan2 = attach_aggregate(push_down_bitvectors(plan2), spec)
        without = Executor(edge_db).execute(plan2).scalar("cnt")
        assert with_filters == without


class TestExecutorErrors:
    def test_aggregate_below_root_rejected(self, edge_db, star_spec=None):
        spec = QuerySpec(
            name="q",
            relations=(RelationRef("d", "dim"),),
            join_predicates=(),
            aggregates=(Aggregate("count", label="cnt"),),
        )
        inner = attach_aggregate(scan_for(spec, "d"), spec)
        nested = attach_aggregate(inner, spec)
        with pytest.raises(ExecutionError):
            Executor(edge_db).execute(nested)

    def test_scalar_on_non_aggregate_result(self, edge_db):
        spec = QuerySpec(
            name="q", relations=(RelationRef("d", "dim"),), join_predicates=()
        )
        result = Executor(edge_db).execute(scan_for(spec, "d"))
        with pytest.raises(ExecutionError):
            result.scalar("cnt")

    def test_text_join_keys_supported(self, edge_db):
        spec = QuerySpec(
            name="q",
            relations=(RelationRef("x", "dim"), RelationRef("y", "dim")),
            join_predicates=(JoinPredicate("x", ("tag",), "y", ("tag",)),),
            aggregates=(Aggregate("count", label="cnt"),),
        )
        tags = edge_db.table("dim").column("tag").tolist()
        expected = sum(tags.count(t) for t in tags)
        assert run_count(edge_db, spec, ["x", "y"]) == expected
