"""Zone maps: synopsis construction, pruning logic, database cache."""

import threading

import numpy as np
import pytest

from repro.expr.expressions import (
    And,
    Between,
    InList,
    Like,
    Not,
    Or,
    col,
    lit,
    Comparison,
)
from repro.storage.database import Database
from repro.storage.table import Table
from repro.storage.zonemaps import (
    ColumnZoneMap,
    filter_prunes_morsel,
    predicate_band,
    predicate_prunes_morsel,
)


def cmp(op, column, value):
    return Comparison(op, col("t", column), lit(value))


class TestColumnZoneMap:
    def test_int_bounds_per_morsel(self):
        zone = ColumnZoneMap.build(
            np.array([5, 1, 3, 10, 10, 10, 7, 8]), [(0, 3), (3, 6), (6, 8)]
        )
        assert zone.num_morsels == 3
        assert (zone.bounds(0).low, zone.bounds(0).high) == (1, 5)
        assert (zone.bounds(1).low, zone.bounds(1).high) == (10, 10)
        assert zone.is_constant(1)
        assert not zone.is_constant(0)
        assert zone.bounds(0).null_count == 0

    def test_float_nan_handling(self):
        column = np.array([1.5, np.nan, 2.5, np.nan, np.nan, np.nan])
        zone = ColumnZoneMap.build(column, [(0, 3), (3, 6)])
        assert zone.bounds(0).low == 1.5
        assert zone.bounds(0).high == 2.5
        assert zone.bounds(0).null_count == 1
        # All-NaN morsel: no comparable values at all.
        assert zone.bounds(1).all_null
        assert zone.bounds(1).null_count == 3
        assert not zone.is_constant(1)

    def test_text_bounds(self):
        zone = ColumnZoneMap.build(
            np.array(["pear", "apple", "fig"], dtype=object), [(0, 3)]
        )
        assert (zone.bounds(0).low, zone.bounds(0).high) == ("apple", "pear")

    def test_empty_range(self):
        zone = ColumnZoneMap.build(np.array([1, 2, 3]), [(1, 1)])
        assert zone.bounds(0).all_null

    def test_unorderable_object_morsel_yields_no_information(self):
        # A text morsel containing None (or mixed types) has no total
        # order: its synopsis must read as "unknown", never as "empty",
        # because x = 'a' still matches real rows there.
        column = np.array(["a", None, "b", "c", "d", "e"], dtype=object)
        zone = ColumnZoneMap.build(column, [(0, 3), (3, 6)])
        assert zone.bounds(0) is None
        assert not zone.is_constant(0)
        assert (zone.bounds(1).low, zone.bounds(1).high) == ("c", "e")

        def provider(alias, col_name):
            return zone.bounds(0)

        assert not predicate_prunes_morsel(cmp("=", "k", "zzz"), provider)
        assert not predicate_prunes_morsel(
            InList(col("t", "k"), ("zzz",)), provider
        )
        assert not filter_prunes_morsel([("x", "y")], [zone.bounds(0)])


class TestPredicatePruning:
    def bounds_of(self, low, high, nulls=0):
        zone = ColumnZoneMap(((0, 4),), (low,), (high,), (nulls,))

        def provider(alias, column):
            assert alias == "t"
            return zone.bounds(0) if column == "k" else None

        return provider

    def test_equality(self):
        assert predicate_prunes_morsel(cmp("=", "k", 99), self.bounds_of(1, 10))
        assert not predicate_prunes_morsel(
            cmp("=", "k", 5), self.bounds_of(1, 10)
        )

    def test_ordered_comparisons(self):
        bounds = self.bounds_of(10, 20)
        assert predicate_prunes_morsel(cmp("<", "k", 10), bounds)
        assert not predicate_prunes_morsel(cmp("<=", "k", 10), bounds)
        assert predicate_prunes_morsel(cmp(">", "k", 20), bounds)
        assert not predicate_prunes_morsel(cmp(">=", "k", 20), bounds)
        # Flipped literal-on-the-left form: 5 > k  <=>  k < 5.
        flipped = Comparison(">", lit(5), col("t", "k"))
        assert predicate_prunes_morsel(flipped, bounds)

    def test_not_equal_only_on_constant(self):
        assert predicate_prunes_morsel(cmp("<>", "k", 7), self.bounds_of(7, 7))
        assert not predicate_prunes_morsel(
            cmp("<>", "k", 7), self.bounds_of(7, 8)
        )
        # NaN rows satisfy <>; a morsel with nulls can never prune it.
        assert not predicate_prunes_morsel(
            cmp("<>", "k", 7), self.bounds_of(7, 7, nulls=1)
        )

    def test_between_and_inlist(self):
        bounds = self.bounds_of(10, 20)
        assert predicate_prunes_morsel(
            Between(col("t", "k"), lit(30), lit(40)), bounds
        )
        assert not predicate_prunes_morsel(
            Between(col("t", "k"), lit(15), lit(40)), bounds
        )
        assert predicate_prunes_morsel(
            InList(col("t", "k"), (1, 2, 99)), bounds
        )
        assert not predicate_prunes_morsel(
            InList(col("t", "k"), (1, 2, 15)), bounds
        )
        assert predicate_prunes_morsel(InList(col("t", "k"), ()), bounds)

    def test_all_null_morsel_prunes_comparisons(self):
        bounds = self.bounds_of(None, None, nulls=4)
        assert predicate_prunes_morsel(cmp("=", "k", 1), bounds)
        assert predicate_prunes_morsel(cmp("<", "k", 1), bounds)
        assert predicate_prunes_morsel(cmp(">=", "k", 1), bounds)
        assert predicate_prunes_morsel(
            Between(col("t", "k"), lit(0), lit(9)), bounds
        )
        assert predicate_prunes_morsel(InList(col("t", "k"), (1,)), bounds)

    def test_all_null_morsel_never_prunes_not_equal(self):
        # numpy's != is TRUE for NaN: every all-NaN row satisfies <>,
        # so pruning it would drop rows the evaluator keeps.
        bounds = self.bounds_of(None, None, nulls=4)
        assert not predicate_prunes_morsel(cmp("<>", "k", 1), bounds)
        flipped = Comparison("<>", lit(1), col("t", "k"))
        assert not predicate_prunes_morsel(flipped, bounds)

    def test_boolean_composition(self):
        bounds = self.bounds_of(10, 20)
        pruning = cmp("=", "k", 99)
        passing = cmp("=", "k", 15)
        assert predicate_prunes_morsel(And((passing, pruning)), bounds)
        assert not predicate_prunes_morsel(Or((passing, pruning)), bounds)
        assert predicate_prunes_morsel(Or((pruning, pruning)), bounds)
        # Negation and LIKE are opaque to interval reasoning.
        assert not predicate_prunes_morsel(Not(pruning), bounds)
        assert not predicate_prunes_morsel(
            Like(col("t", "k"), "x%"), bounds
        )

    def test_type_mismatch_never_prunes(self):
        assert not predicate_prunes_morsel(
            cmp("=", "k", "text"), self.bounds_of(1, 10)
        )

    def test_missing_zone_map_never_prunes(self):
        assert not predicate_prunes_morsel(
            cmp("=", "other", 99), self.bounds_of(1, 10)
        )


class TestFilterPruning:
    def morsel(self, low, high, nulls=0):
        zone = ColumnZoneMap(((0, 4),), (low,), (high,), (nulls,))
        return zone.bounds(0)

    def test_disjoint_prunes(self):
        assert filter_prunes_morsel([(100, 200)], [self.morsel(1, 50)])
        assert filter_prunes_morsel([(0, 0)], [self.morsel(1, 50)])
        assert not filter_prunes_morsel([(40, 60)], [self.morsel(1, 50)])

    def test_any_key_column_suffices(self):
        assert filter_prunes_morsel(
            [(0, 100), (500, 600)],
            [self.morsel(10, 20), self.morsel(10, 20)],
        )

    def test_unavailable_bounds_never_prune(self):
        assert not filter_prunes_morsel(None, [self.morsel(1, 5)])
        assert not filter_prunes_morsel([None], [self.morsel(1, 5)])
        assert not filter_prunes_morsel([(100, 200)], [None])

    def test_all_null_morsel_prunes(self):
        assert filter_prunes_morsel([(1, 5)], [self.morsel(None, None, 4)])

    def test_type_mismatch_skips_column(self):
        assert not filter_prunes_morsel(
            [("a", "b")], [self.morsel(1, 5)]
        )


@pytest.fixture
def database():
    db = Database("zm")
    db.add_table(
        Table.from_arrays(
            "fact",
            {"k": np.arange(10_000), "v": np.ones(10_000)},
        ),
        validate_key=False,
    )
    return db


class TestDatabaseZoneMaps:
    def test_cached_per_shape(self, database):
        first = database.zone_map("fact", "k", 2048, 1)
        assert database.zone_map("fact", "k", 2048, 1) is first
        assert database.zone_map("fact", "k", 4096, 1) is not first
        assert database.zone_map("fact", "k", 2048, 4) is not first
        info = database.zone_map_cache_info()
        assert info["entries"] == 3
        assert info["builds"] == 3
        assert info["lookups"] == 4

    def test_ranges_match_table_morsels(self, database):
        zone = database.zone_map("fact", "k", 2048, 1)
        expected = [
            (m.start, m.stop) for m in database.table("fact").morsels(2048, 1)
        ]
        assert list(zone.ranges) == expected
        # Clustered arange: each morsel's bounds are its row endpoints.
        for index, (start, stop) in enumerate(expected):
            assert zone.bounds(index).low == start
            assert zone.bounds(index).high == stop - 1

    def test_peek_never_builds(self, database):
        assert database.zone_map_if_built("fact", "k") is None
        assert database.zone_map_cache_info()["builds"] == 0
        built = database.zone_map("fact", "k", 2048, 1)
        assert database.zone_map_if_built("fact", "k") is built
        assert database.zone_map_if_built("fact", "k", 2048, 1) is built
        assert database.zone_map_if_built("fact", "k", 9999, 1) is None
        # A partially specified shape constrains the match — it never
        # falls back to a differently-shaped (misaligned) entry.
        assert database.zone_map_if_built("fact", "k", morsel_rows=2048) is built
        assert database.zone_map_if_built("fact", "k", morsel_rows=9999) is None
        assert database.zone_map_if_built("fact", "k", min_morsels=1) is built
        assert database.zone_map_if_built("fact", "k", min_morsels=8) is None

    def test_invalidation_alongside_dictionaries(self, database):
        database.zone_map("fact", "k", 2048, 1)
        database.invalidate_zone_maps("other")
        assert database.zone_map_cache_info()["entries"] == 1
        database.invalidate_dictionaries("fact")
        assert database.zone_map_cache_info()["entries"] == 0
        database.zone_map("fact", "k", 2048, 1)
        database.invalidate_zone_maps()
        assert database.zone_map_cache_info()["entries"] == 0

    def test_unknown_table_or_column_raises(self, database):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            database.zone_map("nope", "k")
        with pytest.raises(SchemaError):
            database.zone_map("fact", "nope")
        # A failed build must not wedge the single-flight machinery.
        database.zone_map("fact", "k", 2048, 1)


class TestZoneMapSingleFlight:
    _THREADS = 16

    def _barrier_run(self, worker):
        barrier = threading.Barrier(self._THREADS)
        results = [None] * self._THREADS
        errors = []

        def runner(slot):
            try:
                barrier.wait()
                results[slot] = worker(slot)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        threads = [
            threading.Thread(target=runner, args=(slot,))
            for slot in range(self._THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results

    def test_thundering_herd_builds_once(self, database):
        results = self._barrier_run(
            lambda _: database.zone_map("fact", "k", 2048, 1)
        )
        assert all(result is results[0] for result in results)
        info = database.zone_map_cache_info()
        assert info["builds"] == 1, (
            f"duplicate builds leaked into metrics: {info}"
        )
        assert info["entries"] == 1
        assert info["lookups"] == self._THREADS

    def test_distinct_keys_build_independently(self, database):
        columns = ["k", "v"]
        self._barrier_run(
            lambda slot: database.zone_map("fact", columns[slot % 2], 2048, 1)
        )
        info = database.zone_map_cache_info()
        assert info["builds"] == 2
        assert info["entries"] == 2

    def test_build_vs_invalidate_race(self, database):
        stop = threading.Event()
        invalidations = 0

        def invalidator():
            nonlocal invalidations
            while not stop.is_set():
                database.invalidate_zone_maps("fact")
                invalidations += 1

        churner = threading.Thread(target=invalidator)
        churner.start()
        try:
            def reader(_slot):
                for _ in range(20):
                    zone = database.zone_map("fact", "k", 2048, 1)
                    # A half-built or stale synopsis would misdescribe
                    # the clustered column.
                    assert zone.bounds(0).low == 0

            self._barrier_run(reader)
        finally:
            stop.set()
            churner.join()
        info = database.zone_map_cache_info()
        assert 1 <= info["builds"] <= invalidations + 1


class TestPredicateBand:
    """``predicate_band``: lossless single-column value bands.

    The executor's clustered band search replaces row-wise predicate
    evaluation with two binary searches only when the predicate is
    *exactly* a band; any lossy translation here would silently change
    results, so the rejection cases matter as much as the accepted ones.
    """

    def test_between_is_an_inclusive_band(self):
        band = predicate_band(Between(col("t", "k"), lit(3), lit(9)), "t")
        assert band == ("k", 3, True, 9, True)

    def test_equality_is_a_degenerate_band(self):
        assert predicate_band(cmp("=", "k", 42), "t") == (
            "k", 42, True, 42, True
        )

    def test_comparison_rays(self):
        assert predicate_band(cmp("<", "k", 7), "t") == (
            "k", None, False, 7, False
        )
        assert predicate_band(cmp("<=", "k", 7), "t") == (
            "k", None, False, 7, True
        )
        assert predicate_band(cmp(">", "k", 7), "t") == (
            "k", 7, False, None, False
        )
        assert predicate_band(cmp(">=", "k", 7), "t") == (
            "k", 7, True, None, False
        )

    def test_flipped_literal_reverses_the_operator(self):
        # 7 < k means k > 7.
        band = predicate_band(Comparison("<", lit(7), col("t", "k")), "t")
        assert band == ("k", 7, False, None, False)

    def test_conjunction_intersects_bounds(self):
        band = predicate_band(
            And((cmp(">=", "k", 2), cmp("<", "k", 10), cmp(">", "k", 4))),
            "t",
        )
        assert band == ("k", 4, False, 10, False)

    def test_tied_bounds_stay_inclusive_only_when_both_are(self):
        band = predicate_band(
            And((cmp(">=", "k", 5), cmp(">", "k", 5))), "t"
        )
        assert band == ("k", 5, False, None, False)

    def test_contradictory_band_is_still_a_band(self):
        # k > 9 AND k < 2: an empty band is representable (the caller's
        # searchsorted clamp yields zero rows) — no fallback needed.
        band = predicate_band(
            And((cmp(">", "k", 9), cmp("<", "k", 2))), "t"
        )
        assert band == ("k", 9, False, 2, False)

    def test_rejections_fall_back_to_evaluation(self):
        for predicate in (
            cmp("<>", "k", 5),                       # two rays
            Or((cmp("=", "k", 1), cmp("=", "k", 2))),  # disjunction
            InList(col("t", "k"), (1, 2)),           # code list
            Not(cmp("=", "k", 1)),                   # negation
            cmp("=", "k", None),                     # NULL literal
            Comparison("<", col("t", "k"), col("t", "v")),  # col vs col
            And((cmp(">", "k", 1), cmp("<", "v", 9))),  # two columns
        ):
            assert predicate_band(predicate, "t") is None

    def test_other_alias_is_not_this_scan(self):
        assert predicate_band(cmp("=", "k", 1), "u") is None

    def test_incomparable_bound_types_reject(self):
        # Two low bounds that cannot be ordered against each other: the
        # intersection is undefined, so no band may be claimed.
        band = predicate_band(
            And((cmp(">", "k", 5), cmp(">", "k", "zebra"))), "t"
        )
        assert band is None


class TestSortedAscending:
    def test_sorted_column_is_detected(self):
        zone = ColumnZoneMap.build(
            np.array([1, 2, 2, 5, 9]), [(0, 2), (2, 5)]
        )
        assert zone.sorted_ascending

    def test_constant_column_is_trivially_sorted(self):
        zone = ColumnZoneMap.build(np.full(6, 7), [(0, 3), (3, 6)])
        assert zone.sorted_ascending

    def test_shuffled_column_is_not(self):
        zone = ColumnZoneMap.build(np.array([3, 1, 2]), [(0, 3)])
        assert not zone.sorted_ascending

    def test_nan_poisons_sortedness(self):
        # NaN sorts last under searchsorted but compares false under
        # every predicate: a band search over it would be unsound.
        zone = ColumnZoneMap.build(
            np.array([1.0, 2.0, np.nan]), [(0, 3)]
        )
        assert not zone.sorted_ascending

    def test_unorderable_text_is_not_sorted(self):
        zone = ColumnZoneMap.build(
            np.array(["a", None, "b"], dtype=object), [(0, 3)]
        )
        assert not zone.sorted_ascending
