"""Tests for schemas, foreign keys, catalogs, and databases."""

import numpy as np
import pytest

from repro.errors import DataError, SchemaError
from repro.storage.catalog import Catalog
from repro.storage.database import Database
from repro.storage.schema import ColumnDef, ForeignKey, TableSchema
from repro.storage.table import Table
from repro.storage.types import ColumnType


def dim_schema() -> TableSchema:
    return TableSchema(
        "dim",
        (ColumnDef("id", ColumnType.INT64), ColumnDef("v", ColumnType.INT64)),
        key=("id",),
    )


def fact_schema() -> TableSchema:
    return TableSchema(
        "fact",
        (ColumnDef("fk", ColumnType.INT64), ColumnDef("m", ColumnType.FLOAT64)),
    )


class TestTableSchema:
    def test_invalid_table_name(self):
        with pytest.raises(SchemaError):
            TableSchema("1bad", (ColumnDef("a", ColumnType.INT64),))

    def test_invalid_column_name(self):
        with pytest.raises(SchemaError):
            ColumnDef("no spaces", ColumnType.INT64)

    def test_duplicate_columns(self):
        with pytest.raises(SchemaError, match="duplicate"):
            TableSchema(
                "t",
                (ColumnDef("a", ColumnType.INT64), ColumnDef("a", ColumnType.INT64)),
            )

    def test_key_must_exist(self):
        with pytest.raises(SchemaError, match="key column"):
            TableSchema("t", (ColumnDef("a", ColumnType.INT64),), key=("b",))

    def test_is_key_superset(self):
        schema = dim_schema()
        assert schema.is_key(("id",))
        assert schema.is_key(("id", "v"))  # superset still unique
        assert not schema.is_key(("v",))
        assert not TableSchema("t", (ColumnDef("a", ColumnType.INT64),)).is_key(("a",))


class TestCatalog:
    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.add_schema(dim_schema())
        with pytest.raises(SchemaError, match="duplicate"):
            catalog.add_schema(dim_schema())

    def test_fk_target_must_be_key(self):
        catalog = Catalog()
        catalog.add_schema(dim_schema())
        catalog.add_schema(fact_schema())
        with pytest.raises(SchemaError, match="unique key"):
            catalog.add_foreign_key(ForeignKey("fact", ("fk",), "dim", ("v",)))

    def test_fk_columns_must_exist(self):
        catalog = Catalog()
        catalog.add_schema(dim_schema())
        catalog.add_schema(fact_schema())
        with pytest.raises(SchemaError):
            catalog.add_foreign_key(ForeignKey("fact", ("nope",), "dim", ("id",)))

    def test_valid_fk_registered(self):
        catalog = Catalog()
        catalog.add_schema(dim_schema())
        catalog.add_schema(fact_schema())
        catalog.add_foreign_key(ForeignKey("fact", ("fk",), "dim", ("id",)))
        assert catalog.has_foreign_key("fact", ("fk",), "dim", ("id",))
        assert not catalog.has_foreign_key("fact", ("m",), "dim", ("id",))

    def test_is_key_join(self):
        catalog = Catalog()
        catalog.add_schema(dim_schema())
        assert catalog.is_key_join("dim", ("id",))
        assert not catalog.is_key_join("dim", ("v",))

    def test_fk_column_count_mismatch(self):
        with pytest.raises(SchemaError):
            ForeignKey("a", ("x", "y"), "b", ("z",))


class TestDatabase:
    def make_db(self) -> Database:
        db = Database("t")
        db.add_table(
            Table.from_arrays("dim", {"id": np.arange(10), "v": np.arange(10)}, key=("id",))
        )
        db.add_table(
            Table.from_arrays("fact", {"fk": np.arange(10) % 10, "m": np.zeros(10)})
        )
        db.add_foreign_key(ForeignKey("fact", ("fk",), "dim", ("id",)))
        return db

    def test_fk_integrity_passes(self):
        self.make_db().validate_foreign_keys()

    def test_fk_integrity_violation_detected(self):
        db = Database("t")
        db.add_table(
            Table.from_arrays("dim", {"id": np.arange(5)}, key=("id",))
        )
        db.add_table(Table.from_arrays("fact", {"fk": np.array([0, 99])}))
        db.add_foreign_key(ForeignKey("fact", ("fk",), "dim", ("id",)))
        with pytest.raises(DataError, match="dangling"):
            db.validate_foreign_keys()

    def test_stats_cached_and_invalidated(self):
        db = self.make_db()
        stats_a = db.stats("dim")
        assert db.stats("dim") is stats_a
        db.invalidate_stats("dim")
        assert db.stats("dim") is not stats_a

    def test_unknown_table(self):
        with pytest.raises(SchemaError):
            self.make_db().table("missing")

    def test_total_rows(self):
        assert self.make_db().total_rows() == 20

    def test_duplicate_key_rejected_on_add(self):
        db = Database("t")
        bad = Table.from_arrays("d", {"id": np.array([1, 1])}, key=("id",))
        with pytest.raises(DataError):
            db.add_table(bad)
