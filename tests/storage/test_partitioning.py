"""Horizontal partitioning: morsel ranges and table morsels."""

import numpy as np
import pytest

from repro.storage.database import Database
from repro.storage.partition import (
    MIN_MORSEL_ROWS,
    Morsel,
    morsel_ranges,
    partition_table,
)
from repro.storage.table import Table


class TestMorselRanges:
    def test_covers_rows_disjoint_and_ordered(self):
        for num_rows in (1, 1023, 1024, 4097, 100_000, 1_000_001):
            for morsel_rows in (1024, 4096, 65536):
                ranges = morsel_ranges(num_rows, morsel_rows)
                assert ranges[0][0] == 0
                assert ranges[-1][1] == num_rows
                for (_, stop), (start, _) in zip(ranges, ranges[1:]):
                    assert stop == start  # contiguous, disjoint

    def test_balanced_within_one_row(self):
        ranges = morsel_ranges(100_001, 10_000)
        sizes = {stop - start for start, stop in ranges}
        assert max(sizes) - min(sizes) <= 1

    def test_min_morsels_widens_split(self):
        # One 65536-row morsel would cover all rows; four workers ask
        # for at least four.
        assert len(morsel_ranges(65_536, 65_536)) == 1
        assert len(morsel_ranges(65_536, 65_536, min_morsels=4)) == 4

    def test_floor_caps_target_derived_splits(self):
        # The MIN_MORSEL_ROWS floor applies to the morsel_rows-implied
        # split: a tiny target cannot shatter the table.
        ranges = morsel_ranges(MIN_MORSEL_ROWS * 2, 16)
        assert all(stop - start >= MIN_MORSEL_ROWS for start, stop in ranges)
        # ... except when the table itself is smaller than the floor.
        assert morsel_ranges(10, 4) == [(0, 10)]

    def test_min_morsels_overrides_floor(self):
        # An explicit per-worker demand is honored even when the floor
        # would clamp below it: 2048 rows / 64 workers = 32-row morsels.
        ranges = morsel_ranges(MIN_MORSEL_ROWS * 2, 16, min_morsels=64)
        assert len(ranges) == 64
        # A mid-sized table asked to split one-per-worker actually does.
        assert len(morsel_ranges(4096, 65_536, min_morsels=4)) == 4
        # ... but never beyond one row per range.
        assert len(morsel_ranges(3, 65_536, min_morsels=8)) == 3

    def test_empty(self):
        assert morsel_ranges(0) == []
        assert morsel_ranges(-5) == []


class TestTableMorsels:
    @pytest.fixture
    def table(self):
        return Table.from_arrays(
            "fact", {"k": np.arange(10_000), "v": np.ones(10_000)}
        )

    def test_morsels_cover_table(self, table):
        morsels = table.morsels(morsel_rows=3000)
        assert all(isinstance(m, Morsel) for m in morsels)
        assert morsels[0].start == 0
        assert morsels[-1].stop == table.num_rows
        assert sum(m.num_rows for m in morsels) == table.num_rows
        assert [m.index for m in morsels] == list(range(len(morsels)))
        assert all(m.table_name == "fact" for m in morsels)

    def test_morsel_list_cached_per_shape(self, table):
        assert table.morsels(3000) is table.morsels(3000)
        assert table.morsels(3000) is not table.morsels(2000)
        assert table.morsels(3000, min_morsels=8) is not table.morsels(3000)

    def test_database_delegates(self, table):
        database = Database("part")
        database.add_table(table, validate_key=False)
        assert database.morsels("fact", 3000) is table.morsels(3000)

    def test_partition_table_helper(self):
        morsels = partition_table("t", 5000, 2000)
        assert [(m.start, m.stop) for m in morsels] == [
            (0, 1667), (1667, 3334), (3334, 5000)
        ]
