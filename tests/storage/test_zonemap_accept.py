"""Accept-side interval reasoning: ``predicate_accepts_morsel``.

The dual of pruning, powering the constant-morsel short-circuit: a
morsel is *accepted* only when the synopsis proves the predicate for
every row.  The tests mirror the vectorized evaluator's semantics —
especially the NaN discipline — because an unsound accept silently
changes answers.
"""

import numpy as np

from repro.expr.expressions import (
    And,
    Between,
    Comparison,
    InList,
    Like,
    Not,
    Or,
    col,
    lit,
)
from repro.storage.zonemaps import (
    ColumnZoneMap,
    predicate_accept_flags,
    predicate_accepts_morsel,
    predicate_prune_flags,
)


def _bounds_of(zone, index):
    def bounds(alias, column, index=index):
        if alias != "t" or column != "k":
            return None
        return zone.bounds(index)

    return bounds


def _zone(values, ranges):
    return ColumnZoneMap.build(np.asarray(values), ranges)


class TestComparisonAccepts:
    def test_constant_morsel_equality(self):
        zone = _zone([7, 7, 7, 1, 2, 3], [(0, 3), (3, 6)])
        eq = Comparison("=", col("t", "k"), lit(7))
        assert predicate_accepts_morsel(eq, _bounds_of(zone, 0))
        assert not predicate_accepts_morsel(eq, _bounds_of(zone, 1))

    def test_ordered_accepts_from_interval(self):
        zone = _zone([1, 2, 3, 8, 9, 10], [(0, 3), (3, 6)])
        below = Comparison("<", col("t", "k"), lit(5))
        assert predicate_accepts_morsel(below, _bounds_of(zone, 0))
        assert not predicate_accepts_morsel(below, _bounds_of(zone, 1))
        at_least = Comparison(">=", col("t", "k"), lit(8))
        assert predicate_accepts_morsel(at_least, _bounds_of(zone, 1))
        # Flipped literal-vs-column form.
        flipped = Comparison(">", lit(5), col("t", "k"))
        assert predicate_accepts_morsel(flipped, _bounds_of(zone, 0))

    def test_not_equal_accepts_disjoint_interval(self):
        zone = _zone([1, 2, 3], [(0, 3)])
        assert predicate_accepts_morsel(
            Comparison("<>", col("t", "k"), lit(9)), _bounds_of(zone, 0)
        )
        assert not predicate_accepts_morsel(
            Comparison("<>", col("t", "k"), lit(2)), _bounds_of(zone, 0)
        )

    def test_nan_rows_block_ordered_accepts(self):
        zone = _zone([1.0, 2.0, np.nan], [(0, 3)])
        assert not predicate_accepts_morsel(
            Comparison("<", col("t", "k"), lit(10.0)), _bounds_of(zone, 0)
        )
        # numpy's != is True for NaN, so <> tolerates the NaN rows.
        assert predicate_accepts_morsel(
            Comparison("<>", col("t", "k"), lit(9.0)), _bounds_of(zone, 0)
        )

    def test_all_nan_morsel_accepts_only_not_equal(self):
        zone = _zone([np.nan, np.nan], [(0, 2)])
        assert predicate_accepts_morsel(
            Comparison("<>", col("t", "k"), lit(1.0)), _bounds_of(zone, 0)
        )
        assert not predicate_accepts_morsel(
            Comparison("<", col("t", "k"), lit(1.0)), _bounds_of(zone, 0)
        )


class TestCompoundAccepts:
    def test_between_and_in(self):
        zone = _zone([5, 6, 7, 7, 7, 7], [(0, 3), (3, 6)])
        between = Between(col("t", "k"), lit(5), lit(7))
        assert predicate_accepts_morsel(between, _bounds_of(zone, 0))
        in_list = InList(col("t", "k"), (1, 7, 9))
        # IN needs a constant morsel: an interval inside the list's
        # hull proves nothing about membership.
        assert not predicate_accepts_morsel(in_list, _bounds_of(zone, 0))
        assert predicate_accepts_morsel(in_list, _bounds_of(zone, 1))

    def test_and_or_not(self):
        zone = _zone([2, 2, 2], [(0, 3)])
        true_leaf = Comparison("=", col("t", "k"), lit(2))
        false_leaf = Comparison("=", col("t", "k"), lit(9))
        assert predicate_accepts_morsel(
            And((true_leaf, true_leaf)), _bounds_of(zone, 0)
        )
        assert not predicate_accepts_morsel(
            And((true_leaf, false_leaf)), _bounds_of(zone, 0)
        )
        assert predicate_accepts_morsel(
            Or((false_leaf, true_leaf)), _bounds_of(zone, 0)
        )
        # NOT accepts exactly when the operand prunes (false everywhere).
        assert predicate_accepts_morsel(
            Not(false_leaf), _bounds_of(zone, 0)
        )
        assert not predicate_accepts_morsel(
            Not(true_leaf), _bounds_of(zone, 0)
        )

    def test_like_and_unknown_bounds_never_accept(self):
        zone = _zone([2, 2, 2], [(0, 3)])
        assert not predicate_accepts_morsel(
            Like(col("t", "k"), "2%"), _bounds_of(zone, 0)
        )
        assert not predicate_accepts_morsel(
            Comparison("=", col("t", "k"), lit(2)),
            lambda alias, column: None,
        )


def test_accept_flags_mirror_prune_flags_sweep():
    values = np.array([5, 5, 5, 1, 2, 3, 9, 9, 9])
    ranges = [(0, 3), (3, 6), (6, 9)]
    zone = ColumnZoneMap.build(values, ranges)
    predicate = Comparison("=", col("t", "k"), lit(5))
    accepts = predicate_accept_flags(
        predicate, "t", lambda column: zone if column == "k" else None, 3
    )
    prunes = predicate_prune_flags(
        predicate, "t", lambda column: zone if column == "k" else None, 3
    )
    assert accepts == [True, False, False]
    assert prunes == [False, True, True]
    # The two sweeps can never both claim a morsel.
    assert not any(a and p for a, p in zip(accepts, prunes))


def test_mixed_type_morsel_never_accepts():
    values = np.array([1, "a", 2], dtype=object)
    zone = ColumnZoneMap.build(values, [(0, 3)])
    assert not predicate_accepts_morsel(
        Comparison("<", col("t", "k"), lit(10)),
        lambda alias, column: zone.bounds(0),
    )
