"""Table-resident dictionary indexes on Database."""

import numpy as np
import pytest

from repro.storage.database import Database
from repro.storage.table import Table
from repro.util.keycodes import ColumnDictionary


@pytest.fixture
def db():
    database = Database("dicts")
    database.add_table(
        Table.from_arrays(
            "dim",
            {"id": np.array([3, 1, 2]), "name": np.array(["c", "a", "b"], dtype=object)},
            key=("id",),
        )
    )
    return database


class TestDictionaryCache:
    def test_built_once_and_cached(self, db):
        first = db.dictionary("dim", "id")
        second = db.dictionary("dim", "id")
        assert first is second
        info = db.dictionary_cache_info()
        assert info["entries"] == 1
        assert info["builds"] == 1
        assert info["lookups"] == 2

    def test_codes_decode_to_column(self, db):
        dictionary = db.dictionary("dim", "id")
        assert dictionary.values.tolist() == [1, 2, 3]
        assert dictionary.values[dictionary.codes].tolist() == [3, 1, 2]

    def test_string_column(self, db):
        dictionary = db.dictionary("dim", "name")
        assert dictionary.values.tolist() == ["a", "b", "c"]
        assert dictionary.encode(
            np.array(["b", "zzz"], dtype=object)
        ).tolist() == [1, -1]

    def test_adding_tables_does_not_drop_entries(self, db):
        kept = db.dictionary("dim", "id")
        version = db.schema_version
        db.add_table(
            Table.from_arrays("extra", {"k": np.arange(4)}, key=("k",))
        )
        assert db.schema_version > version  # external caches invalidate
        assert db.dictionary("dim", "id") is kept  # still valid: immutable

    def test_explicit_invalidation(self, db):
        built = db.dictionary("dim", "id")
        db.invalidate_dictionaries()
        assert db.dictionary_cache_info()["entries"] == 0
        assert db.dictionary("dim", "id") is not built

    def test_targeted_invalidation(self, db):
        db.add_table(
            Table.from_arrays("extra", {"k": np.arange(4)}, key=("k",))
        )
        kept = db.dictionary("extra", "k")
        dropped = db.dictionary("dim", "id")
        db.invalidate_dictionaries("dim")
        assert db.dictionary("extra", "k") is kept
        assert db.dictionary("dim", "id") is not dropped


class TestEncodeFastPath:
    def test_dense_table_and_searchsorted_agree(self):
        rng = np.random.default_rng(3)
        # compact domain -> dense lookup table
        compact = ColumnDictionary.build(rng.integers(0, 100, 500))
        assert compact._lookup_table() is not None
        # sparse domain -> binary search fallback
        sparse = ColumnDictionary.build(
            rng.integers(0, 2**40, 500) * 10**6
        )
        assert sparse._lookup_table() is None
        for dictionary in (compact, sparse):
            probes = rng.integers(-50, 2**41, 1000)
            codes = dictionary.encode(probes)
            present = codes >= 0
            assert np.array_equal(
                np.isin(probes, dictionary.values), present
            )
            assert np.array_equal(
                dictionary.values[codes[present]], probes[present]
            )

    def test_translate_roundtrip(self):
        left = ColumnDictionary.build(np.array([1, 3, 5, 7]))
        right = ColumnDictionary.build(np.array([3, 7, 9]))
        mapping = left.translate_to(right)
        assert mapping.tolist() == [-1, 0, -1, 1]
