"""Tests for columnar tables."""

import numpy as np
import pytest

from repro.errors import DataError, SchemaError
from repro.storage.schema import ColumnDef, TableSchema
from repro.storage.table import Table
from repro.storage.types import ColumnType


def make_table() -> Table:
    return Table.from_arrays(
        "t",
        {
            "id": np.array([1, 2, 3], dtype=np.int64),
            "name": np.array(["a", "b", "c"], dtype=object),
            "x": np.array([0.5, 1.5, 2.5]),
        },
        key=("id",),
    )


class TestConstruction:
    def test_from_arrays_infers_types(self):
        table = make_table()
        assert table.column_type("id") is ColumnType.INT64
        assert table.column_type("name") is ColumnType.TEXT
        assert table.column_type("x") is ColumnType.FLOAT64

    def test_num_rows(self):
        assert make_table().num_rows == 3

    def test_ragged_columns_rejected(self):
        schema = TableSchema(
            "t",
            (ColumnDef("a", ColumnType.INT64), ColumnDef("b", ColumnType.INT64)),
        )
        with pytest.raises(DataError, match="ragged"):
            Table(schema, {"a": np.array([1, 2]), "b": np.array([1])})

    def test_missing_column_rejected(self):
        schema = TableSchema("t", (ColumnDef("a", ColumnType.INT64),))
        with pytest.raises(DataError, match="missing"):
            Table(schema, {})

    def test_extra_column_rejected(self):
        schema = TableSchema("t", (ColumnDef("a", ColumnType.INT64),))
        with pytest.raises(DataError, match="unexpected"):
            Table(schema, {"a": np.array([1]), "b": np.array([2])})

    def test_empty_table_valid(self):
        table = Table.from_arrays("t", {"a": np.array([], dtype=np.int64)})
        assert table.num_rows == 0


class TestAccess:
    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            make_table().column("nope")

    def test_take(self):
        taken = make_table().take(np.array([2, 0]))
        assert taken.column("id").tolist() == [3, 1]

    def test_filter(self):
        filtered = make_table().filter(np.array([True, False, True]))
        assert filtered.column("name").tolist() == ["a", "c"]

    def test_filter_wrong_length_raises(self):
        with pytest.raises(DataError):
            make_table().filter(np.array([True]))

    def test_head(self):
        assert make_table().head(2).num_rows == 2
        assert make_table().head(99).num_rows == 3

    def test_rows(self):
        rows = make_table().rows(limit=2)
        assert rows[0] == (1, "a", 0.5)
        assert len(rows) == 2


class TestKeyValidation:
    def test_unique_key_passes(self):
        make_table().validate_key()

    def test_duplicate_key_raises(self):
        table = Table.from_arrays(
            "t", {"id": np.array([1, 1, 2], dtype=np.int64)}, key=("id",)
        )
        with pytest.raises(DataError, match="duplicate"):
            table.validate_key()

    def test_multi_column_key(self):
        table = Table.from_arrays(
            "t",
            {"a": np.array([1, 1]), "b": np.array([1, 2])},
            key=("a", "b"),
        )
        table.validate_key()

    def test_no_key_is_noop(self):
        table = Table.from_arrays("t", {"a": np.array([1, 1])})
        table.validate_key()
