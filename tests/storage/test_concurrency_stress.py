"""Concurrency stress: dictionary construction and filter-cache races.

Two shared-artifact paths get hammered by many threads at once:

* ``Database.dictionary`` — construction is single-flight, so a
  thundering herd on one column must produce exactly one build (no
  duplicate builds leaking into ``dictionary_builds``), and every
  caller must receive the same object;
* ``BitvectorFilterCache.get_or_build`` racing ``clear()`` — the LRU
  generation guard must keep a build that straddled an invalidation
  from re-publishing, while hit/miss accounting stays consistent.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.filters.cache import BitvectorFilterCache, filter_cache_key
from repro.filters.registry import create_filter
from repro.storage.database import Database
from repro.storage.table import Table

_THREADS = 16
_ROUNDS = 30


def _barrier_run(worker, count: int = _THREADS) -> list:
    """Start ``count`` threads through a barrier; re-raise first error."""
    barrier = threading.Barrier(count)
    results: list = [None] * count
    errors: list = []

    def runner(slot: int) -> None:
        try:
            barrier.wait()
            results[slot] = worker(slot)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(slot,)) for slot in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return results


@pytest.fixture
def database():
    rng = np.random.default_rng(7)
    db = Database("stress")
    db.add_table(
        Table.from_arrays(
            "fact",
            {
                "k": rng.integers(0, 5000, 200_000),
                "g": rng.integers(0, 64, 200_000),
            },
        )
    )
    return db


class TestDictionarySingleFlight:
    def test_thundering_herd_builds_once(self, database):
        results = _barrier_run(lambda _: database.dictionary("fact", "k"))
        assert all(result is results[0] for result in results)
        info = database.dictionary_cache_info()
        assert info["builds"] == 1, (
            f"duplicate builds leaked into metrics: {info}"
        )
        assert info["entries"] == 1
        assert info["lookups"] == _THREADS

    def test_distinct_columns_build_independently(self, database):
        columns = ["k", "g"]
        _barrier_run(
            lambda slot: database.dictionary("fact", columns[slot % 2])
        )
        info = database.dictionary_cache_info()
        assert info["builds"] == 2
        assert info["entries"] == 2

    def test_build_vs_invalidate_race(self, database):
        """Readers racing invalidations: every returned dictionary must
        decode its column, and builds never exceed one per epoch."""
        stop = threading.Event()
        invalidations = 0

        def invalidator() -> None:
            nonlocal invalidations
            while not stop.is_set():
                database.invalidate_dictionaries("fact")
                invalidations += 1

        column = database.table("fact").column("k")
        churner = threading.Thread(target=invalidator)
        churner.start()
        try:
            def reader(_slot: int) -> None:
                for _ in range(_ROUNDS):
                    dictionary = database.dictionary("fact", "k")
                    # Spot-check correctness on a slice: a stale or
                    # half-built dictionary would decode wrongly.
                    assert np.array_equal(
                        dictionary.values[dictionary.codes[:64]], column[:64]
                    )

            _barrier_run(reader, count=8)
        finally:
            stop.set()
            churner.join()
        info = database.dictionary_cache_info()
        # Single-flight bound: at most one build per invalidation epoch
        # (+1 for the initial build), never one per caller.
        assert info["builds"] <= invalidations + 1
        assert info["builds"] >= 1


class TestFilterCacheRaces:
    def _key(self, tag: str) -> tuple:
        return filter_cache_key(
            table_name="fact",
            key_columns=("k",),
            predicate_key=tag,
            filter_kind="exact",
        )

    def test_concurrent_get_or_build_single_entry(self):
        cache = BitvectorFilterCache(8)
        keys = np.arange(1000)
        builds = []
        build_lock = threading.Lock()

        def builder():
            with build_lock:
                builds.append(1)
            return create_filter("exact", [keys])

        key = self._key("p")
        results = _barrier_run(lambda _: cache.get_or_build(key, builder))
        filters = {id(bitvector) for bitvector, _ in results}
        hits = sum(1 for _, was_cached in results if was_cached)
        misses = _THREADS - hits
        # Racing builders may each build once (builder runs outside the
        # lock, bounded duplicate work) but exactly one filter wins the
        # slot, and accounting matches what callers observed.
        assert len(cache) == 1
        assert misses == len(builds)
        assert misses >= 1
        # Every returned filter answers identically, winner or not.
        probe = np.array([0, 999, 1000, -1])
        expected = [True, True, False, False]
        for bitvector, _ in results:
            assert bitvector.contains([probe]).tolist() == expected
        assert len(filters) <= len(builds)

    def test_build_vs_clear_never_republishes_stale(self):
        """A build that straddles a clear() must not re-publish."""
        cache = BitvectorFilterCache(8)
        keys = np.arange(500)
        key = self._key("q")
        release = threading.Event()
        entered = threading.Event()

        def slow_builder():
            entered.set()
            assert release.wait(timeout=5.0)
            return create_filter("exact", [keys])

        worker_result: list = []

        def worker() -> None:
            worker_result.append(cache.get_or_build(key, slow_builder))

        thread = threading.Thread(target=worker)
        thread.start()
        assert entered.wait(timeout=5.0)
        cache.clear()  # invalidation lands mid-build
        release.set()
        thread.join()
        bitvector, was_cached = worker_result[0]
        assert was_cached is False
        # The stale build served its own caller but was not published.
        assert cache.get(key) is None
        assert len(cache) == 0
        # The next request rebuilds cleanly and does publish.
        rebuilt, was_cached = cache.get_or_build(
            key, lambda: create_filter("exact", [keys])
        )
        assert was_cached is False
        assert cache.get(key) is rebuilt

    def test_clear_churn_stays_consistent(self):
        cache = BitvectorFilterCache(8)
        keys = np.arange(2000)
        stop = threading.Event()

        def clearer() -> None:
            while not stop.is_set():
                cache.clear()

        churner = threading.Thread(target=clearer)
        churner.start()
        try:
            def worker(slot: int) -> None:
                key = self._key(f"r{slot % 4}")
                for _ in range(_ROUNDS):
                    bitvector, _ = cache.get_or_build(
                        key, lambda: create_filter("exact", [keys])
                    )
                    assert bitvector.contains(
                        [np.array([0, 2000])]
                    ).tolist() == [True, False]

            _barrier_run(worker, count=8)
        finally:
            stop.set()
            churner.join()
        # After the churn settles the cache is internally consistent:
        # bounded, and every resident filter is a published winner.
        assert len(cache) <= 4
        assert cache.size_bits() >= 0
