"""Tests for CSV round-tripping."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.storage.csvio import table_from_csv, table_to_csv
from repro.storage.table import Table


def make_table() -> Table:
    return Table.from_arrays(
        "t",
        {
            "id": np.array([1, 2, 3], dtype=np.int64),
            "name": np.array(["x", "hello, world", "line"], dtype=object),
            "score": np.array([1.25, -3.5, 0.0]),
        },
        key=("id",),
    )


class TestCsvRoundTrip:
    def test_round_trip_preserves_values(self, tmp_path):
        table = make_table()
        path = tmp_path / "t.csv"
        table_to_csv(table, path)
        loaded = table_from_csv(table.schema, path)
        assert loaded.column("id").tolist() == [1, 2, 3]
        assert loaded.column("name").tolist() == ["x", "hello, world", "line"]
        assert loaded.column("score").tolist() == [1.25, -3.5, 0.0]

    def test_empty_table_round_trip(self, tmp_path):
        table = Table.from_arrays("t", {"a": np.array([], dtype=np.int64)})
        path = tmp_path / "empty.csv"
        table_to_csv(table, path)
        loaded = table_from_csv(table.schema, path)
        assert loaded.num_rows == 0

    def test_header_mismatch_rejected(self, tmp_path):
        table = make_table()
        path = tmp_path / "t.csv"
        path.write_text("wrong,header,here\n1,a,2\n")
        with pytest.raises(DataError, match="header"):
            table_from_csv(table.schema, path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "none.csv"
        path.write_text("")
        with pytest.raises(DataError, match="empty"):
            table_from_csv(make_table().schema, path)
