"""Tests for workload generators: integrity, shape, determinism."""

import numpy as np
import pytest

from repro.query.joingraph import JoinGraph
from repro.workloads import WORKLOADS, customer_lite, job_lite, star, tpcds_lite
from repro.workloads.generator import (
    categorical,
    compound_words,
    scaled,
    skewed_fk,
    surrogate_keys,
    zipf_weights,
)
from repro.util.rng import derive_rng


class TestGeneratorPrimitives:
    def test_zipf_weights_normalized_and_decreasing(self):
        weights = zipf_weights(100, 1.0)
        assert weights.sum() == pytest.approx(1.0)
        assert all(weights[i] >= weights[i + 1] for i in range(99))

    def test_zero_skew_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_skewed_fk_values_in_domain(self):
        rng = derive_rng(0, "t")
        parents = surrogate_keys(100)
        fks = skewed_fk(rng, 10_000, parents, skew=0.8)
        assert np.isin(fks, parents).all()

    def test_skew_concentrates_mass(self):
        rng = derive_rng(0, "t")
        parents = surrogate_keys(1000)
        skewed = skewed_fk(rng, 50_000, parents, skew=1.2)
        uniform = skewed_fk(rng, 50_000, parents, skew=0.0)
        top_skewed = np.sort(np.bincount(skewed))[-10:].sum()
        top_uniform = np.sort(np.bincount(uniform))[-10:].sum()
        assert top_skewed > 2 * top_uniform

    def test_categorical_from_vocab(self):
        rng = derive_rng(0, "t")
        values = categorical(rng, 1000, ["a", "b", "c"])
        assert set(values.tolist()) <= {"a", "b", "c"}

    def test_compound_words_structure(self):
        rng = derive_rng(0, "t")
        words = compound_words(rng, 50, ["x"], ["y", "z"])
        assert all(w in ("x-y", "x-z") for w in words)

    def test_scaled_floor(self):
        assert scaled(1000, 0.00001) == 8
        assert scaled(1000, 2.0) == 2000


@pytest.mark.parametrize("name", sorted(WORKLOADS))
class TestWorkloadIntegrity:
    def test_referential_integrity(self, name):
        db, _ = WORKLOADS[name].build(scale=0.02)
        db.validate_foreign_keys()

    def test_deterministic_rebuild(self, name):
        db_a, queries_a = WORKLOADS[name].build(scale=0.02)
        db_b, queries_b = WORKLOADS[name].build(scale=0.02)
        assert db_a.table_names == db_b.table_names
        for table in db_a.table_names:
            ta, tb = db_a.table(table), db_b.table(table)
            assert ta.num_rows == tb.num_rows
            first = ta.column_names[0]
            assert np.array_equal(ta.column(first), tb.column(first))
        assert [q.name for q in queries_a] == [q.name for q in queries_b]

    def test_queries_validate_and_connect(self, name):
        db, queries = WORKLOADS[name].build(scale=0.02)
        for spec in queries:
            spec.validate_against(db)
            graph = JoinGraph(spec, db.catalog)
            assert graph.is_connected(), spec.name

    def test_scale_changes_fact_size(self, name):
        small, _ = WORKLOADS[name].build(scale=0.01)
        large, _ = WORKLOADS[name].build(scale=0.05)
        assert large.total_rows() > small.total_rows()


class TestWorkloadShapes:
    def test_tpcds_has_two_fact_tables(self):
        db, queries = tpcds_lite.build(scale=0.02)
        multi = next(q for q in queries if q.name == "ds_q15")
        graph = JoinGraph(multi, db.catalog)
        assert len(graph.fact_tables()) == 2

    def test_tpcds_snowflake_chain_exists(self):
        db, queries = tpcds_lite.build(scale=0.02)
        snow = next(q for q in queries if q.name == "ds_q10")
        graph = JoinGraph(snow, db.catalog)
        components = graph.branch_components("ss")
        assert max(len(c) for c in components) == 3  # c -> hd -> ib

    def test_job_has_dimension_dimension_joins(self):
        db, queries = job_lite.build(scale=0.02)
        q11 = next(q for q in queries if q.name == "job_q11")
        graph = JoinGraph(q11, db.catalog)
        facts = graph.fact_tables()
        assert "ci" in facts and "an" in facts

    def test_customer_join_counts_high(self):
        _, queries = customer_lite.build(scale=0.02)
        joins = [len(q.join_predicates) for q in queries]
        assert sum(joins) / len(joins) >= 10
        assert max(joins) >= 20

    def test_ssb_star_shape(self):
        db, queries = star.build(scale=0.02)
        q41 = next(q for q in queries if q.name == "ssb_q4_1")
        graph = JoinGraph(q41, db.catalog)
        assert graph.is_star("lo")

    def test_fig2_query_present_in_job(self):
        _, queries = job_lite.build(scale=0.02)
        assert any(q.name == "job_fig2" for q in queries)


class TestSyntheticBuilders:
    def test_star_definition_holds(self):
        from repro.workloads.synthetic import random_star

        db, spec = random_star(0)
        graph = JoinGraph(spec, db.catalog)
        assert graph.is_star("f")
        db.validate_foreign_keys()

    def test_snowflake_definition_holds(self):
        from repro.workloads.synthetic import random_snowflake

        db, spec = random_snowflake(0, branch_lengths=(1, 2, 3))
        graph = JoinGraph(spec, db.catalog)
        assert graph.is_snowflake("f")
        assert not graph.is_star("f")
        db.validate_foreign_keys()

    def test_branch_chain_lengths(self):
        from repro.workloads.synthetic import random_branch

        db, spec = random_branch(0, length=4)
        graph = JoinGraph(spec, db.catalog)
        component = graph.branch_components("f")[0]
        assert len(graph.chain_order("f", component)) == 4
