"""Tests for the experiment harness and figure/table computations."""

import pytest

from repro.bench.harness import run_workload
from repro.bench.reporting import (
    figure8_rows,
    figure9_rows,
    figure10_rows,
    render_table,
    selectivity_groups,
    table3_rows,
    table4_rows,
)


@pytest.fixture(scope="module")
def result(tpcds_tiny):
    db, queries = tpcds_tiny
    return run_workload(
        "tpcds", db, queries[:9],
        pipelines=("original", "bqo", "original_nobv"),
    )


class TestHarness:
    def test_all_runs_recorded(self, result):
        assert len(result.runs) == 9 * 3
        assert len(result.queries()) == 9

    def test_consistency_enforced(self, result):
        # construction would have raised on any pipeline disagreement
        for query in result.queries():
            values = {
                result.run(query, p).checksum for p in result.pipelines
            }
            assert len(values) == 1

    def test_totals_positive(self, result):
        assert result.total_cpu("original") > 0
        assert result.total_cpu("bqo") > 0

    def test_tuples_by_kind_totals(self, result):
        totals = result.total_tuples_by_kind("original")
        assert set(totals) <= {"leaf", "join", "other"}
        assert totals["leaf"] > 0

    def test_filters_created_under_original(self, result):
        with_filters = [
            result.run(q, "original").num_filters_created
            for q in result.queries()
        ]
        assert any(n > 0 for n in with_filters)
        assert all(
            result.run(q, "original_nobv").num_filters_created == 0
            for q in result.queries()
        )


class TestReporting:
    def test_selectivity_groups_partition(self, result):
        groups = selectivity_groups(result)
        assert set(groups.values()) <= {"S", "M", "L"}
        assert len(groups) == 9
        counts = {g: list(groups.values()).count(g) for g in "SML"}
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_figure8_rows_normalized(self, result):
        rows = figure8_rows(result)
        total_row = next(r for r in rows if r["group"] == "total")
        assert total_row["original"] == pytest.approx(1.0)
        group_sum = sum(
            r["original"] for r in rows if r["group"] in ("S", "M", "L")
        )
        assert group_sum == pytest.approx(1.0)

    def test_figure9_rows_normalized(self, result):
        rows = figure9_rows(result)
        total_row = next(r for r in rows if r["operator"] == "total")
        assert total_row["original"] == pytest.approx(1.0)

    def test_figure10_sorted_descending(self, result):
        rows = figure10_rows(result)
        originals = [r["original"] for r in rows]
        assert originals == sorted(originals, reverse=True)
        assert originals[0] == pytest.approx(1.0)

    def test_table4_shape(self, result):
        rows = table4_rows(result)
        row = rows[0]
        assert 0 < row["cpu_ratio"] <= 1.5
        assert 0 <= row["queries_with_filters"] <= 1
        assert 0 <= row["improved"] <= 1
        assert 0 <= row["regressed"] <= 1

    def test_table3_statistics(self, tpcds_tiny):
        db, queries = tpcds_tiny
        rows = table3_rows([("tpcds", db, queries)])
        assert rows[0]["tables"] == 11
        assert rows[0]["queries"] == 32
        assert rows[0]["joins_max"] >= rows[0]["joins_avg"]

    def test_render_table(self, result):
        text = render_table(figure8_rows(result), "fig8")
        assert "fig8" in text
        assert "workload" in text
        assert render_table([]) == "(no rows)"
