"""The committed overload artifact must hold its acceptance gates.

CI gates the committed ``BENCH_overload.json`` with
``tools/check_overload.py`` (admitted p99 within deadline, shed p99
under 10 ms with retry hints, goodput at 16x >= 80% of 1x and monotone
non-increasing, serial-oracle checksum identity); this test keeps the
same gate inside the tier-1 run so a regenerated artifact that misses
the overload contract fails before it ships.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_overload import check  # noqa: E402


def test_committed_artifact_passes_the_overload_gates():
    assert check(REPO_ROOT / "BENCH_overload.json") == []
