"""The committed trace-overhead artifact must hold its acceptance gates.

CI gates the committed ``BENCH_trace_overhead.json`` with
``tools/check_trace_overhead.py`` (armed overhead < 3%, disarmed noise
<= 0.5%, on/off checksum identity at parallelism 1 and 4); this test
keeps the same gate inside the tier-1 run so a regenerated artifact
that misses the contract fails before it ships.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_trace_overhead import check  # noqa: E402


def test_committed_artifact_passes_the_observability_gates():
    assert check(REPO_ROOT / "BENCH_trace_overhead.json") == []
