"""Tests for the command-line experiment runner."""

import pytest

from repro.bench.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.workload == "tpcds"
        # Scale resolves per experiment: 0.15 for the paper figures,
        # 1.0 for parallel-scaling.
        assert args.scale is None
        assert args.experiment == "paper"
        assert "bqo" in args.pipelines

    def test_parallel_scaling_arguments(self):
        args = build_parser().parse_args(
            ["--experiment", "parallel-scaling", "--parallelism", "1", "4",
             "--morsel-rows", "8192", "--output", "out.json"]
        )
        assert args.experiment == "parallel-scaling"
        assert args.parallelism == [1, 4]
        assert args.morsel_rows == 8192
        assert args.output == "out.json"

    def test_workload_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--workload", "nope"])

    def test_unknown_experiment_lists_valid_names(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--experiment", "nope"])
        err = capsys.readouterr().err
        for name in ("paper", "parallel-scaling", "zonemap-pruning"):
            assert name in err

    def test_experiment_help_enumerates_registry(self):
        from repro.bench.cli import EXPERIMENTS

        parser = build_parser()
        help_text = parser.format_help()
        for name in EXPERIMENTS:
            assert name in help_text

    def test_zonemap_pruning_arguments(self):
        args = build_parser().parse_args(
            ["--experiment", "zonemap-pruning", "--parallelism", "1",
             "--output", "prune.json"]
        )
        assert args.experiment == "zonemap-pruning"
        assert args.parallelism == [1]
        assert args.output == "prune.json"

    def test_all_selects_every_workload(self):
        args = build_parser().parse_args(["--workload", "all"])
        assert args.workload == "all"


class TestMain:
    def test_runs_tpcds_small(self, capsys):
        exit_code = main(
            ["--workload", "tpcds", "--scale", "0.02", "--top", "5"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "Figure 9" in out
        assert "Figure 10" in out
        assert "Table 4" in out

    def test_parallel_scaling_experiment(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "scaling.json"
        exit_code = main(
            ["--experiment", "parallel-scaling", "--scale", "0.05",
             "--parallelism", "1", "2", "--output", str(out_path)]
        )
        assert exit_code == 0
        assert "parallel scaling" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["checksums_identical"] is True
        assert [level["parallelism"] for level in payload["levels"]] == [1, 2]
        assert payload["levels"][0]["speedup"] == 1.0

    def test_zonemap_pruning_experiment(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "pruning.json"
        exit_code = main(
            ["--experiment", "zonemap-pruning", "--scale", "0.02",
             "--parallelism", "1", "--output", str(out_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "zone-map pruning" in out
        payload = json.loads(out_path.read_text())
        assert payload["checksums_identical"] is True
        assert set(payload["layouts"]) == {"clustered", "shuffled"}
        assert payload["clustered_skip_fraction"] > 0.0

    def test_custom_pipelines_skip_tables(self, capsys):
        exit_code = main(
            ["--workload", "customer", "--scale", "0.02",
             "--pipelines", "bqo"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Figure 8" not in out  # needs original+bqo
