"""Tests for the command-line experiment runner."""

import pytest

from repro.bench.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.workload == "tpcds"
        assert args.scale == 0.15
        assert "bqo" in args.pipelines

    def test_workload_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--workload", "nope"])

    def test_all_selects_every_workload(self):
        args = build_parser().parse_args(["--workload", "all"])
        assert args.workload == "all"


class TestMain:
    def test_runs_tpcds_small(self, capsys):
        exit_code = main(
            ["--workload", "tpcds", "--scale", "0.02", "--top", "5"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "Figure 9" in out
        assert "Figure 10" in out
        assert "Table 4" in out

    def test_custom_pipelines_skip_tables(self, capsys):
        exit_code = main(
            ["--workload", "customer", "--scale", "0.02",
             "--pipelines", "bqo"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Figure 8" not in out  # needs original+bqo
