"""Tests for the Cascades-lite memo, rules, and integration modes."""

import pytest

from repro.cascades.engine import CascadesOptimizer
from repro.cascades.memo import LogicalGet, LogicalJoin, Memo
from repro.cascades.rules import JoinAssociativity, JoinCommutativity
from repro.engine.executor import Executor
from repro.errors import OptimizerError
from repro.plan.builder import attach_aggregate
from repro.plan.properties import base_aliases
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph


class TestMemo:
    def test_seed_left_deep(self):
        memo = Memo()
        root = memo.seed_left_deep(["a", "b", "c"])
        assert root == frozenset({"a", "b", "c"})
        assert memo.has_group(frozenset({"a"}))
        assert memo.has_group(frozenset({"a", "b"}))

    def test_duplicate_expressions_ignored(self):
        memo = Memo()
        expr = LogicalGet("a")
        assert memo.insert_expression(expr)
        assert not memo.insert_expression(LogicalGet("a"))
        assert memo.num_expressions() == 1

    def test_expression_group_mismatch_rejected(self):
        memo = Memo()
        group = memo.group(frozenset({"a"}))
        with pytest.raises(OptimizerError):
            group.add(LogicalGet("b"))


class TestRules:
    def test_commutativity(self, star_db, star_spec):
        graph = JoinGraph(star_spec, star_db.catalog)
        memo = Memo()
        join = LogicalJoin(frozenset({"f"}), frozenset({"d1"}))
        out = JoinCommutativity().apply(join, memo, graph)
        assert out == [LogicalJoin(frozenset({"d1"}), frozenset({"f"}))]

    def test_associativity_respects_connectivity(self, star_db, star_spec):
        graph = JoinGraph(star_spec, star_db.catalog)
        memo = Memo()
        memo.seed_left_deep(["f", "d1", "d2"])
        top = LogicalJoin(frozenset({"f", "d1"}), frozenset({"d2"}))
        produced = JoinAssociativity().apply(top, memo, graph)
        # Join(Join(f,d1), d2) -> Join(f, Join(d1, d2)) would need a
        # d1-d2 edge, which a star does not have: nothing produced.
        assert produced == []

    def test_exploration_materializes_connected_subsets(self, star_db, star_spec):
        optimizer = CascadesOptimizer(star_db)
        plan = optimizer.optimize(star_spec, "blind")
        assert base_aliases(plan) == frozenset(star_spec.aliases)


class TestIntegrationModes:
    @pytest.mark.parametrize("mode", ("blind", "full", "alternative", "shallow"))
    def test_mode_produces_correct_answer(
        self, mode, star_db, star_spec, star_expected_count
    ):
        optimizer = CascadesOptimizer(star_db)
        plan = optimizer.optimize(star_spec, mode)
        plan = attach_aggregate(push_down_bitvectors(plan), star_spec)
        result = Executor(star_db).execute(plan)
        assert result.scalar("cnt") == star_expected_count

    def test_unknown_mode_rejected(self, star_db, star_spec):
        with pytest.raises(OptimizerError, match="integration mode"):
            CascadesOptimizer(star_db).optimize(star_spec, "deep")

    def test_full_mode_never_estimates_worse_than_blind(self, star_db, star_spec):
        """Full integration scores every plan bitvector-aware, so its
        chosen plan's aware-cost is <= the blind plan's aware-cost."""
        from repro.cost.cout import EstimatedCardModel, cout
        from repro.plan.clone import clone_plan
        from repro.stats.estimator import CardinalityEstimator

        optimizer = CascadesOptimizer(star_db)
        estimator = CardinalityEstimator(star_db, star_spec.alias_tables)

        def aware(plan):
            copy, _ = clone_plan(plan)
            return cout(push_down_bitvectors(copy), EstimatedCardModel(estimator))

        full_cost = aware(optimizer.optimize(star_spec, "full"))
        blind_cost = aware(optimizer.optimize(star_spec, "blind"))
        assert full_cost <= blind_cost + 1e-6

    def test_alternative_never_worse_than_blind(self, star_db, star_spec):
        from repro.cost.cout import EstimatedCardModel, cout
        from repro.plan.clone import clone_plan
        from repro.stats.estimator import CardinalityEstimator

        optimizer = CascadesOptimizer(star_db)
        estimator = CardinalityEstimator(star_db, star_spec.alias_tables)

        def aware(plan):
            copy, _ = clone_plan(plan)
            return cout(push_down_bitvectors(copy), EstimatedCardModel(estimator))

        alt = aware(optimizer.optimize(star_spec, "alternative"))
        blind = aware(optimizer.optimize(star_spec, "blind"))
        assert alt <= blind + 1e-6

    def test_modes_on_snowflake_query(self, tpcds_tiny):
        db, queries = tpcds_tiny
        spec = next(q for q in queries if q.name == "ds_q10")
        optimizer = CascadesOptimizer(db)
        answers = set()
        for mode in ("blind", "alternative", "shallow"):
            plan = optimizer.optimize(spec, mode)
            plan = attach_aggregate(push_down_bitvectors(plan), spec)
            result = Executor(db).execute(plan)
            answers.add(result.scalar("cnt"))
        assert len(answers) == 1
