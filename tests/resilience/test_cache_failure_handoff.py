"""Single-flight failure handoff in the bitvector filter cache.

A failed build must behave like a failed RPC, not a poisoned well:
every thread parked on the pending slot is woken with the *builder's*
exception (none of them silently rebuilds inside the same flight), the
cache publishes nothing, and the next independent request builds
fresh.  The stress test drives a randomized herd through the
``cache.publish`` fault site to hunt for lost-wakeup or
poisoned-entry interleavings.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.filters.cache import BitvectorFilterCache
from repro.filters.exact import ExactFilter
from repro.testing import FaultPlan, InjectedFault, inject


def _make_filter():
    return ExactFilter.build([np.arange(64)])


def _herd(cache, key, builder, num_threads):
    """num_threads concurrent get_or_build calls; outcomes per thread."""
    barrier = threading.Barrier(num_threads)
    outcomes = [None] * num_threads

    def worker(slot):
        barrier.wait()
        try:
            outcomes[slot] = ("ok", cache.get_or_build(key, builder))
        except BaseException as exc:  # noqa: BLE001 - recorded for asserts
            outcomes[slot] = ("error", exc)

    threads = [
        threading.Thread(target=worker, args=(slot,))
        for slot in range(num_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
        assert not thread.is_alive(), "herd deadlocked on a dead build"
    return outcomes


def test_failing_build_wakes_every_waiter_with_the_error():
    cache = BitvectorFilterCache(8)
    gate = threading.Event()
    attempts = []

    def doomed_builder():
        attempts.append(threading.get_ident())
        gate.wait(timeout=5)  # park the herd on the pending event
        raise InjectedFault("build died mid-flight")

    timer = threading.Timer(0.05, gate.set)
    timer.start()
    try:
        outcomes = _herd(cache, ("dim", ("id",)), doomed_builder, 8)
    finally:
        timer.cancel()

    # Exactly one thread ran the builder; all eight observed its error.
    assert len(attempts) == 1
    assert all(kind == "error" for kind, _ in outcomes)
    errors = {id(payload) for _, payload in outcomes}
    assert len(errors) == 1  # the same exception instance, handed off
    assert all(
        isinstance(payload, InjectedFault) for _, payload in outcomes
    )

    # Nothing half-built was published, and the *next* request (a new
    # flight) builds successfully.
    assert len(cache) == 0
    filter_, was_cached = cache.get_or_build(
        ("dim", ("id",)), _make_filter
    )
    assert not was_cached
    assert filter_ is not None
    assert len(cache) == 1


def test_publish_fault_takes_the_failed_build_path():
    cache = BitvectorFilterCache(8)
    with inject(FaultPlan().raise_at("cache.publish", invocation=0)):
        with pytest.raises(InjectedFault):
            cache.get_or_build(("k",), _make_filter)
    assert len(cache) == 0
    filter_, was_cached = cache.get_or_build(("k",), _make_filter)
    assert not was_cached and filter_ is not None


def test_stress_randomized_publish_faults_never_poison_entries():
    """Seeded Bernoulli faults at the publish site under a concurrent
    herd over several keys: every failure is typed, every success
    returns a real filter, and afterwards every key is buildable."""
    cache = BitvectorFilterCache(32)
    keys = [("dim", ("id",), salt) for salt in range(4)]
    plan = FaultPlan(seed=13).raise_with_probability(
        "cache.publish", probability=0.4, max_fires=6
    )

    barrier = threading.Barrier(16)
    outcomes = []
    lock = threading.Lock()

    def worker(slot):
        barrier.wait()
        key = keys[slot % len(keys)]
        for _ in range(5):
            try:
                filter_, _ = cache.get_or_build(key, _make_filter)
                with lock:
                    outcomes.append(("ok", filter_))
            except InjectedFault as exc:
                with lock:
                    outcomes.append(("fault", exc))

    with inject(plan):
        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=20)
            assert not thread.is_alive(), "stress herd deadlocked"

    assert len(outcomes) == 16 * 5
    assert all(
        payload is not None for kind, payload in outcomes if kind == "ok"
    )
    faults_seen = sum(1 for kind, _ in outcomes if kind == "fault")
    # A fired fault fails the builder *and* re-raises in every waiter
    # parked on the same flight, so observed failures can exceed fires
    # — but never the other way around, and fires respect max_fires.
    assert plan.total_fired <= 6
    assert faults_seen >= plan.total_fired
    # After the chaos: every key resolves to a healthy cached filter.
    for key in keys:
        filter_, _ = cache.get_or_build(key, _make_filter)
        assert filter_ is not None
    assert len(cache) >= len(keys)
