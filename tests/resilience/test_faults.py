"""The fault-injection harness itself: deterministic, bounded, free
when disabled.

These tests drive :func:`repro.testing.fault_point` directly (no
engine involved) so the contract of the harness — exact-invocation
rules, seeded Bernoulli draws, stall actions, install/uninstall
hygiene — is pinned independently of where the engine places its
sites.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ReproError
from repro.testing import FaultPlan, InjectedFault, TransientFault, fault_point, inject
from repro.testing.faults import REGISTERED_SITES, install, uninstall


def test_raise_at_fires_exactly_once_at_named_invocation():
    plan = FaultPlan(seed=1).raise_at("morsel.task", invocation=2)
    with inject(plan):
        fault_point("morsel.task")
        fault_point("morsel.task")
        with pytest.raises(InjectedFault, match="morsel.task"):
            fault_point("morsel.task")
        fault_point("morsel.task")  # invocation 3: rule spent
    assert plan.count("morsel.task") == 4
    assert plan.total_fired == 1
    record = plan.fired[0]
    assert (record.site, record.invocation, record.action) == (
        "morsel.task", 2, "raise",
    )


def test_custom_exception_type_and_message():
    plan = FaultPlan().raise_at(
        "cache.publish", exc_type=TransientFault, message="flaky publish"
    )
    with inject(plan), pytest.raises(TransientFault, match="flaky publish"):
        fault_point("cache.publish")


def test_injected_fault_taxonomy():
    assert issubclass(TransientFault, InjectedFault)
    assert issubclass(InjectedFault, ReproError)


def test_stall_sleeps_without_raising():
    plan = FaultPlan().stall_at("morsel.task", seconds=0.05)
    with inject(plan):
        started = time.perf_counter()
        fault_point("morsel.task")  # stalls, returns normally
        elapsed = time.perf_counter() - started
    assert elapsed >= 0.04
    assert plan.fired[0].action == "stall"


def test_probability_draws_are_seed_deterministic():
    def run(seed):
        plan = FaultPlan(seed=seed).raise_with_probability(
            "filter.build_partition", probability=0.3
        )
        fired = []
        with inject(plan):
            for invocation in range(60):
                try:
                    fault_point("filter.build_partition")
                except InjectedFault:
                    fired.append(invocation)
        return fired

    first, second = run(seed=9), run(seed=9)
    assert first == second
    assert first  # 60 draws at p=0.3: fires with overwhelming probability


def test_max_fires_bounds_probabilistic_rules():
    plan = FaultPlan(seed=4).raise_with_probability(
        "pool.submit", probability=1.0, max_fires=3
    )
    with inject(plan):
        for _ in range(10):
            try:
                fault_point("pool.submit")
            except InjectedFault:
                pass
    assert plan.total_fired == 3
    assert plan.count("pool.submit") == 10


def test_probability_validation():
    with pytest.raises(ValueError):
        FaultPlan().raise_with_probability("morsel.task", probability=1.5)


def test_install_is_exclusive():
    plan = FaultPlan()
    with inject(plan):
        with pytest.raises(RuntimeError, match="already installed"):
            install(FaultPlan())
    uninstall()  # idempotent


def test_fault_point_is_noop_when_disarmed():
    plan = FaultPlan().raise_at("morsel.task", invocation=0)
    for site in REGISTERED_SITES:
        fault_point(site)  # nothing installed: free no-op
    with inject(plan):
        pass
    fault_point("morsel.task")  # plan was disarmed on exit
    assert plan.count("morsel.task") == 0


def test_disarm_after_exception_inside_inject():
    with pytest.raises(InjectedFault):
        with inject(FaultPlan().raise_at("morsel.task")):
            fault_point("morsel.task")
    fault_point("morsel.task")  # the manager disarmed on the error path
