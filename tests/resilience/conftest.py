"""Shared fixtures for the resilience suite.

Every test here exercises the cooperative-enforcement machinery
(deadlines, budgets, cancellation, fault injection), so the parallel
thresholds are forced down — the conftest star database must split
into many morsels for the checkpoints and fault sites to be reached —
and any fault plan a failing test leaves installed is disarmed so one
red test cannot cascade into its siblings.
"""

from __future__ import annotations

import pytest

import repro.engine.executor as executor_module
from repro.testing import faults as faults_module


@pytest.fixture(autouse=True)
def _tiny_parallel_threshold(monkeypatch):
    """Force morsel splits on test-sized relations."""
    monkeypatch.setattr(executor_module, "_MIN_PARALLEL_ROWS", 64)
    monkeypatch.setattr("repro.storage.partition.MIN_MORSEL_ROWS", 16)


@pytest.fixture(autouse=True)
def _disarm_leaked_fault_plans():
    """A test that dies inside ``inject`` must not poison the session."""
    yield
    faults_module.uninstall()
