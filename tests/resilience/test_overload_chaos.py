"""Overload chaos: stalled workers under admission pressure, breaker
trips from injected faults, and byte-identical recovery.

The scenario the admission tier exists for: execution slots wedge (a
``morsel.task`` stall), traffic keeps arriving, and the service must
refuse the overflow in microseconds with *typed* sheds instead of
queueing unboundedly — then, once the stall clears, serve again with
answers byte-identical to a serial oracle.  A second scenario drives
one query shape into repeated injected failures until its breaker
opens, proves other shapes are unaffected, and closes the breaker
through the half-open probe.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import MorselTaskError, QueryShed, ReproError
from repro.service import AdmissionConfig, AsyncQueryService, QueryService
from repro.sql.parameterize import fingerprint_sql
from repro.testing import FaultPlan, InjectedFault, inject

COUNT_SQL = (
    "SELECT COUNT(*) AS cnt FROM fact f, dim1 d1 "
    "WHERE f.fk1 = d1.id AND d1.v < 4"
)
SUM_SQL = (
    "SELECT SUM(f.m) AS total FROM fact f, dim1 d1, dim2 d2 "
    "WHERE f.fk1 = d1.id AND f.fk2 = d2.id AND d1.v < 5 AND d2.w < 6"
)


def _oracle_bytes(star_db, sql):
    service = QueryService(star_db)
    result = service.execute(sql).result
    service.close()
    return {
        label: (values.dtype, values.tobytes())
        for label, values in result.aggregates.items()
    }


def _assert_matches_oracle(answer, oracle):
    assert answer.result.aggregates.keys() == oracle.keys()
    for label, (dtype, payload) in oracle.items():
        actual = answer.result.aggregates[label]
        assert actual.dtype == dtype
        assert actual.tobytes() == payload, f"{label} diverged"


def test_stalled_workers_shed_overflow_typed_then_recover(star_db):
    """Wedged slots + pressure => queue sheds; after the stall, byte-
    identical answers on the same service."""
    oracle = _oracle_bytes(star_db, COUNT_SQL)
    # Every execution slot runs into a long stall: parallelism > 1 so
    # the ``morsel.task`` site is on the executed path.
    plan = FaultPlan(seed=11)
    for invocation in range(4):
        plan.stall_at("morsel.task", invocation=invocation, seconds=0.4)

    async def run():
        svc = AsyncQueryService(
            star_db,
            max_concurrency=2,
            admission=AdmissionConfig(
                queue_capacity=2,
                # Full queue for the wedged "normal" traffic: this test
                # wants exactly 2 running + 2 queued before sheds start.
                watermarks={"interactive": 1.0, "normal": 1.0, "batch": 0.5},
            ),
            parallelism=2,
            morsel_rows=512,
        )
        with inject(plan):
            wedged = [
                asyncio.ensure_future(svc.execute(COUNT_SQL, f"wedged_{i}"))
                for i in range(4)  # 2 stall in slots, 2 fill the queue
            ]
            await asyncio.sleep(0.1)
            sheds = []
            for i in range(6):
                try:
                    await svc.execute(COUNT_SQL, f"pressure_{i}")
                except QueryShed as shed:
                    sheds.append(shed)
            wedged_results = await asyncio.gather(*wedged)
        # Stall cleared: the same service serves again, answers intact.
        recovered = await svc.execute(COUNT_SQL, "recovered")
        stats = svc.admission_stats()
        await svc.close()
        return wedged_results, sheds, recovered, stats

    wedged_results, sheds, recovered, stats = asyncio.run(run())
    assert len(sheds) == 6  # capacity was wedged: all pressure refused
    assert all(s.reason == "queue" for s in sheds)
    assert all(s.retry_after is not None for s in sheds)
    assert stats.shed_queue == 6
    for answer in wedged_results:  # stalls delay, never corrupt
        _assert_matches_oracle(answer, oracle)
    _assert_matches_oracle(recovered, oracle)


def test_repeated_faults_trip_the_breaker_then_half_open_recovers(star_db):
    """A fingerprint that keeps failing is cut off; the probe heals it."""
    oracle = _oracle_bytes(star_db, SUM_SQL)
    failures = 4
    # Every morsel task raises while the plan is installed: each doomed
    # run fails deterministically regardless of how many morsels it has.
    plan = FaultPlan(seed=5).raise_with_probability("morsel.task", 1.0)

    async def run():
        svc = AsyncQueryService(
            star_db,
            max_concurrency=2,
            admission=AdmissionConfig(
                breaker_window=failures,
                breaker_min_samples=failures,
                breaker_failure_threshold=0.5,
                breaker_cooldown_seconds=0.25,
            ),
            parallelism=2,
            morsel_rows=512,
        )
        with inject(plan):
            for i in range(failures):
                with pytest.raises(ReproError) as excinfo:
                    await svc.execute(SUM_SQL, f"doomed_{i}")
                exc = excinfo.value
                assert isinstance(exc, (InjectedFault, MorselTaskError))
                if isinstance(exc, MorselTaskError):
                    assert isinstance(exc.__cause__, InjectedFault)
            # The breaker is open: admission refuses before execution,
            # so the still-armed fault plan is never even reached.
            with pytest.raises(QueryShed) as shedinfo:
                await svc.execute(SUM_SQL, "cut_off")
            assert shedinfo.value.reason == "breaker"
            assert shedinfo.value.retry_after is not None
        # Faults cleared, the breaker still open for its fingerprint: a
        # different query shape is not collateral damage.
        assert (
            svc.admission.breaker_state(fingerprint_sql(SUM_SQL).digest)
            == "open"
        )
        unaffected = await svc.execute(COUNT_SQL, "unaffected")
        assert unaffected.ok
        await asyncio.sleep(0.3)  # cooldown elapses
        probe = await svc.execute(SUM_SQL, "probe")
        after = await svc.execute(SUM_SQL, "after")
        stats = svc.admission_stats()
        await svc.close()
        return probe, after, stats

    probe, after, stats = asyncio.run(run())
    assert stats.breaker_trips == 1
    assert stats.shed_breaker == 1
    assert stats.failures == failures
    _assert_matches_oracle(probe, oracle)
    _assert_matches_oracle(after, oracle)
