"""Batch failure isolation and bounded retry.

``run_many`` used to propagate the first worker's exception and
silently abandon every later future.  Now each statement resolves to a
:class:`ServiceResult` — failures carry ``error`` in their own slot —
and a :class:`RetryPolicy` can absorb whitelisted transient faults
with seeded decorrelated-jitter backoff.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import QueryService, RetryPolicy
from repro.errors import MorselTaskError, QueryTimeout
from repro.testing import FaultPlan, InjectedFault, TransientFault, inject


def _count_sql(threshold: int) -> str:
    return (
        "SELECT COUNT(*) AS cnt FROM fact f, dim1 d1 "
        f"WHERE f.fk1 = d1.id AND d1.v < {threshold}"
    )


def _expected_count(db, threshold: int) -> int:
    dim1, fact = db.table("dim1"), db.table("fact")
    selected = dim1.column("id")[dim1.column("v") < threshold]
    return int(np.isin(fact.column("fk1"), selected).sum())


BAD_SQL = "SELECT COUNT(*) AS cnt FROM no_such_table t"


@pytest.mark.parametrize("max_workers", [1, 4])
def test_one_failure_never_discards_siblings(star_db, max_workers):
    service = QueryService(star_db)
    thresholds = [2, None, 4, 6, 8]  # statement 2 of 5 is broken
    sqls = [
        BAD_SQL if t is None else _count_sql(t) for t in thresholds
    ]
    results = service.run_many(sqls, max_workers=max_workers)

    assert len(results) == 5
    broken = results[1]
    assert not broken.ok
    assert broken.result is None
    assert broken.error is not None
    assert broken.metrics.error.startswith(type(broken.error).__name__)
    assert broken.num_rows == 0
    with pytest.raises(Exception, match="failed"):
        broken.scalar("cnt")

    # Results 1, 3, 4, 5 all arrived, in order, with correct answers.
    for i, threshold in enumerate(thresholds):
        if threshold is None:
            continue
        assert results[i].ok
        assert results[i].metrics.query == f"batch_{i}"
        assert results[i].scalar("cnt") == _expected_count(
            star_db, threshold
        )
    assert service.stats().failures == 1


def test_batch_deadline_failure_isolated_per_slot(star_db):
    service = QueryService(star_db, deadline_seconds=1e-9)
    healthy = QueryService(star_db)
    results = service.run_many([_count_sql(3)], max_workers=1)
    assert isinstance(results[0].error, QueryTimeout)
    assert healthy.run_many([_count_sql(3)], max_workers=1)[0].ok


def test_morsel_failure_reports_query_and_row_range(star_db):
    """Satellite: a worker exception is wrapped with enough context to
    find the morsel — query name and row range — with the original
    exception chained as the cause."""
    service = QueryService(
        star_db, parallelism=4, morsel_rows=512, deadline_seconds=60.0
    )
    with inject(FaultPlan().raise_at("morsel.task", invocation=1)):
        with pytest.raises(
            MorselTaskError,
            match=r"morsel task for query 'doomed' rows \[\d+:\d+\) failed",
        ) as excinfo:
            service.execute(_count_sql(4), name="doomed")
    assert isinstance(excinfo.value.__cause__, InjectedFault)


def test_retry_policy_absorbs_whitelisted_transients(star_db):
    policy = RetryPolicy(
        max_attempts=3, base_seconds=0.001, cap_seconds=0.005
    )
    service = QueryService(star_db, retry_policy=policy)
    plan = FaultPlan().raise_at(
        "cache.publish", invocation=0, exc_type=TransientFault
    )
    with inject(plan):
        results = service.run_many([_count_sql(3)], max_workers=1)
    assert plan.total_fired == 1  # attempt 1 died, attempt 2 clean
    answer = results[0]
    assert answer.ok
    assert answer.metrics.retries == 1
    assert answer.scalar("cnt") == _expected_count(star_db, 3)
    assert service.stats().retries == 1


def test_retry_policy_refuses_non_whitelisted_faults(star_db):
    service = QueryService(
        star_db,
        retry_policy=RetryPolicy(max_attempts=3, base_seconds=0.001),
    )
    plan = FaultPlan().raise_at("cache.publish", exc_type=InjectedFault)
    with inject(plan):
        results = service.run_many([_count_sql(3)], max_workers=1)
    assert plan.total_fired == 1  # exactly one attempt: not retryable
    assert isinstance(results[0].error, InjectedFault)
    assert results[0].metrics.retries == 0


def test_retry_policy_gives_up_after_max_attempts(star_db):
    service = QueryService(
        star_db,
        retry_policy=RetryPolicy(max_attempts=3, base_seconds=0.001),
    )
    plan = FaultPlan()
    for invocation in range(3):
        plan.raise_at(
            "cache.publish", invocation=invocation, exc_type=TransientFault
        )
    with inject(plan):
        results = service.run_many([_count_sql(3)], max_workers=1)
    assert plan.total_fired == 3  # every allowed attempt was consumed
    assert isinstance(results[0].error, TransientFault)


def test_retry_never_applies_to_resilience_errors():
    """Deadline/budget/cancel failures are deliberate enforcement, not
    transient conditions: the whitelist walk refuses them even when a
    whitelisted type appears in the same cause chain."""
    policy = RetryPolicy(retryable=(TransientFault, RuntimeError))
    timeout = QueryTimeout("query 'q' exceeded its deadline")
    assert not policy.is_retryable(timeout)
    chained = RuntimeError("wrapper")
    chained.__cause__ = timeout
    assert not policy.is_retryable(chained)
    assert policy.is_retryable(RuntimeError("flaky io"))
    wrapped = MorselTaskError("morsel task failed")
    wrapped.__cause__ = TransientFault("blip")
    assert policy.is_retryable(wrapped)


def test_retry_backoff_is_seeded_and_bounded():
    policy = RetryPolicy(
        max_attempts=4, base_seconds=0.01, cap_seconds=0.05, seed=21
    )

    def run():
        sleeps = []
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 4:
                raise TransientFault("blip")
            return "done"

        outcome, retries = policy.call(flaky, sleep=sleeps.append)
        return outcome, retries, sleeps

    first = run()
    second = run()
    assert first == second  # same seed, same jitter schedule
    outcome, retries, sleeps = first
    assert outcome == "done" and retries == 3
    assert len(sleeps) == 3
    assert all(0.0 < s <= 0.05 for s in sleeps)


def test_retry_refuses_to_sleep_past_the_deadline():
    """A backoff the remaining budget cannot cover raises QueryTimeout
    at once (chaining the attempt's failure) instead of burning the
    deadline asleep."""
    from repro.engine.context import Deadline

    policy = RetryPolicy(
        max_attempts=5, base_seconds=0.2, cap_seconds=0.5, seed=3
    )
    sleeps = []

    def always_flaky():
        raise TransientFault("blip")

    with pytest.raises(QueryTimeout) as excinfo:
        policy.call(
            always_flaky, sleep=sleeps.append, deadline=Deadline.after(0.05)
        )
    assert sleeps == []  # never slept: the first backoff already broke it
    assert isinstance(excinfo.value.__cause__, TransientFault)


def test_retry_sleeps_normally_under_a_generous_deadline():
    from repro.engine.context import Deadline

    policy = RetryPolicy(
        max_attempts=3, base_seconds=0.001, cap_seconds=0.002, seed=3
    )
    attempts = {"n": 0}

    def flaky_once():
        attempts["n"] += 1
        if attempts["n"] == 1:
            raise TransientFault("blip")
        return "done"

    sleeps = []
    outcome, retries = policy.call(
        flaky_once, sleep=sleeps.append, deadline=Deadline.after(60.0)
    )
    assert (outcome, retries) == ("done", 1)
    assert len(sleeps) == 1


def test_service_retry_consults_the_slot_deadline(star_db):
    """run_many threads one per-slot deadline through execution AND
    retry backoff: a transient fault whose backoff exceeds the budget
    surfaces as QueryTimeout, not as a sleep past the deadline."""
    service = QueryService(
        star_db,
        deadline_seconds=0.5,
        retry_policy=RetryPolicy(
            max_attempts=3, base_seconds=1.0, cap_seconds=2.0
        ),
    )
    plan = FaultPlan(seed=9).raise_at(
        "cache.publish", invocation=0, exc_type=TransientFault
    )
    started = time.perf_counter()
    with inject(plan):
        results = service.run_many(
            [_count_sql(3), _count_sql(4)], max_workers=2
        )
    elapsed = time.perf_counter() - started
    errors = [r.error for r in results if not r.ok]
    assert len(errors) == 1
    assert isinstance(errors[0], QueryTimeout)
    assert elapsed < 1.0  # it refused the 1-2s backoff outright
    # The sibling statement still answered.
    assert any(r.ok for r in results)
