"""Chaos suite: injected faults at every registered site, then a
differential-oracle proof that shared state survived.

The property under test is a negative: *no* failure at *any* internal
boundary — pool submission, a morsel task, a filter-build partition,
a cache publication — may poison the shared worker pool, plan cache,
or bitvector filter cache.  Each scenario injects a deterministic
fault into one query, asserts the failure surfaces as a typed engine
error, and then proves the very next query on the *same* service is
byte-identical to a fresh serial executor's answer.
"""

from __future__ import annotations

import threading

import pytest

import repro.engine.executor as executor_module
from repro import QueryService
from repro.errors import MorselTaskError, QueryTimeout, ReproError
from repro.testing import FaultPlan, InjectedFault, inject
from repro.testing.faults import ENGINE_SITES

@pytest.fixture(autouse=True)
def _partitionable_build_side(monkeypatch):
    """Drop the parallel floor further than the suite default: the
    predicate-filtered dim build side (~40 rows) must still split so
    the ``filter.build_partition`` site is reachable."""
    monkeypatch.setattr(executor_module, "_MIN_PARALLEL_ROWS", 16)


COUNT_SQL = (
    "SELECT COUNT(*) AS cnt FROM fact f, dim1 d1 "
    "WHERE f.fk1 = d1.id AND d1.v < 4"
)
SUM_SQL = (
    "SELECT SUM(f.m) AS total FROM fact f, dim1 d1, dim2 d2 "
    "WHERE f.fk1 = d1.id AND f.fk2 = d2.id AND d1.v < 5 AND d2.w < 6"
)


def _parallel_service(star_db) -> QueryService:
    return QueryService(star_db, parallelism=4, morsel_rows=512)


def _assert_byte_identical(answer, star_db, sql):
    """The recovered answer must match a fresh, serial, cache-cold run."""
    oracle = QueryService(star_db).execute(sql)
    assert answer.result.aggregates.keys() == oracle.result.aggregates.keys()
    for label, expected in oracle.result.aggregates.items():
        actual = answer.result.aggregates[label]
        assert actual.dtype == expected.dtype
        assert actual.tobytes() == expected.tobytes(), f"{label} diverged"


# Engine sites only: the ``service.admit`` / ``service.dequeue`` sites
# fire on the admission-controlled async path, exercised by
# ``tests/resilience/test_overload_chaos.py``.
@pytest.mark.parametrize("site", ENGINE_SITES)
@pytest.mark.parametrize("sql", [COUNT_SQL, SUM_SQL])
def test_fault_at_every_site_is_typed_and_recoverable(star_db, site, sql):
    service = _parallel_service(star_db)
    with inject(FaultPlan(seed=3).raise_at(site, invocation=0)) as plan:
        with pytest.raises(ReproError) as excinfo:
            service.execute(sql, name="chaos")
    assert plan.total_fired == 1, f"site {site} never fired"

    # Typed, not mangled: the raw injected fault, or the morsel wrapper
    # with the injected fault chained as its cause.
    exc = excinfo.value
    assert isinstance(exc, (InjectedFault, MorselTaskError))
    if isinstance(exc, MorselTaskError):
        assert isinstance(exc.__cause__, InjectedFault)

    # Recovery: same service, same statement, clean answer.
    after = service.execute(sql)
    assert after.ok
    _assert_byte_identical(after, star_db, sql)
    assert service.stats().failures == 1


@pytest.mark.parametrize(
    "site", ["filter.build_partition", "cache.publish"]
)
def test_failed_builds_never_poison_the_filter_cache(star_db, site):
    service = _parallel_service(star_db)
    with inject(FaultPlan().raise_at(site, invocation=0)):
        with pytest.raises(ReproError):
            service.execute(COUNT_SQL)
    # Nothing half-built was published.
    assert len(service.filter_cache) == 0
    # The next run rebuilds from scratch and publishes...
    rebuilt = service.execute(COUNT_SQL)
    assert rebuilt.ok and rebuilt.metrics.filter_cache_misses > 0
    assert len(service.filter_cache) > 0
    # ...and the run after that hits the (healthy) cached filter.
    warm = service.execute(COUNT_SQL)
    assert warm.metrics.filter_cache_hits > 0
    _assert_byte_identical(warm, star_db, COUNT_SQL)


def test_stalled_morsel_under_deadline_recovers_byte_identical(star_db):
    service = QueryService(
        star_db, parallelism=4, morsel_rows=512, deadline_seconds=0.05
    )
    with inject(FaultPlan().stall_at("morsel.task", seconds=0.4)):
        with pytest.raises(QueryTimeout):
            service.execute(SUM_SQL, name="stalled")
    after = service.execute(SUM_SQL)
    _assert_byte_identical(after, star_db, SUM_SQL)


def test_repeated_chaos_leaks_no_pool_threads(star_db):
    """The shared morsel pool is grow-only by design; chaos rounds must
    not spawn replacement threads or strand workers."""
    service = _parallel_service(star_db)
    service.execute(COUNT_SQL)  # warm the shared pool to full width
    baseline = threading.active_count()
    for seed in range(3):
        with inject(FaultPlan(seed).raise_at("morsel.task", invocation=0)):
            with pytest.raises(MorselTaskError):
                service.execute(COUNT_SQL)
        recovered = service.execute(COUNT_SQL)
        assert recovered.ok
    assert threading.active_count() <= baseline


def test_seeded_chaos_fires_identically_run_to_run(star_db):
    """End-to-end determinism: the same (seed, workload) pair fires the
    same faults at the same invocations, both rounds failing and both
    services recovering to the same bytes."""

    def round_trip(plan):
        service = _parallel_service(star_db)
        with inject(plan):
            with pytest.raises(ReproError):
                service.execute(SUM_SQL, name="rounds")
        return service.execute(SUM_SQL)

    first_plan = FaultPlan(seed=17).raise_with_probability(
        "morsel.task", probability=0.5, max_fires=1
    )
    second_plan = FaultPlan(seed=17).raise_with_probability(
        "morsel.task", probability=0.5, max_fires=1
    )
    first = round_trip(first_plan)
    second = round_trip(second_plan)
    assert [(r.site, r.invocation) for r in first_plan.fired] == [
        (r.site, r.invocation) for r in second_plan.fired
    ]
    assert (
        first.result.aggregates["total"].tobytes()
        == second.result.aggregates["total"].tobytes()
    )
