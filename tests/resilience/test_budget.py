"""Resource budgets: hard caps on materialized work, with optional
graceful degradation to the serial eager-off path.

Budgets meter the engine's real ``rows_copied`` / ``bytes_gathered``
counters (the zero-copy accounting), checked after every parallel
barrier and at plan-node dispatch — so a breach means actual gathers
happened, and the degraded rerun must still produce the exact serial
answer.
"""

from __future__ import annotations

import pytest

from repro import QueryService, ResourceBudget
from repro.engine.metrics import ExecutionMetrics
from repro.errors import ResourceExhausted

SUM_SQL = (
    "SELECT SUM(f.m) AS total FROM fact f, dim1 d1 "
    "WHERE f.fk1 = d1.id AND d1.v < 6"
)


def _probe_cost(star_db):
    """What the statement actually materializes, with budgets off."""
    metrics = QueryService(
        star_db, parallelism=4, morsel_rows=512
    ).execute(SUM_SQL).metrics
    return metrics.rows_copied, metrics.bytes_gathered


def test_budget_breach_descriptions():
    metrics = ExecutionMetrics()
    metrics.rows_copied = 11
    metrics.bytes_gathered = 2048
    assert ResourceBudget().breach(metrics) is None
    assert ResourceBudget(max_rows_copied=11).breach(metrics) is None
    assert "rows_copied 11 exceeds budget 10" in ResourceBudget(
        max_rows_copied=10
    ).breach(metrics)
    assert "bytes_gathered 2048 exceeds budget 1" in ResourceBudget(
        max_bytes_gathered=1
    ).breach(metrics)


def test_breach_raises_resource_exhausted_by_default(star_db):
    rows, _ = _probe_cost(star_db)
    assert rows > 1  # the statement really gathers; the cap below bites
    service = QueryService(
        star_db,
        parallelism=4,
        morsel_rows=512,
        budget=ResourceBudget(max_rows_copied=1),
    )
    with pytest.raises(
        ResourceExhausted, match="breached its resource budget"
    ) as excinfo:
        service.execute(SUM_SQL, name="hungry")
    # The executor attaches the counters that tripped the cap.
    partial = excinfo.value.partial_metrics
    assert isinstance(partial, ExecutionMetrics)
    assert partial.rows_copied > 1
    stats = service.stats()
    assert stats.failures == 1 and stats.timeouts == 0
    assert stats.degradations == 0


def test_degrade_serial_answers_and_records(star_db):
    budgeted = QueryService(
        star_db,
        parallelism=4,
        morsel_rows=512,
        budget=ResourceBudget(max_rows_copied=1),
        degrade="serial",
    )
    answer = budgeted.execute(SUM_SQL, name="degradable")
    assert answer.ok
    assert answer.metrics.degraded
    stats = budgeted.stats()
    assert stats.degradations == 1 and stats.failures == 0
    # The degraded rerun executes on the serial fallback — the answer
    # must be byte-identical to a fresh serial service's.
    oracle = QueryService(star_db).execute(SUM_SQL)
    assert not oracle.metrics.degraded
    assert (
        answer.result.aggregates["total"].tobytes()
        == oracle.result.aggregates["total"].tobytes()
    )


def test_per_call_budget_overrides_service_default(star_db):
    service = QueryService(star_db, parallelism=4, morsel_rows=512)
    first = service.execute(SUM_SQL)  # no budget: fine
    assert first.ok
    with pytest.raises(ResourceExhausted):
        service.execute(SUM_SQL, budget=ResourceBudget(max_bytes_gathered=1))


def test_unknown_degrade_mode_is_rejected(star_db):
    from repro.errors import ServiceError

    with pytest.raises(ServiceError, match="unknown degrade mode"):
        QueryService(star_db, degrade="shed")
