"""Deadlines and cooperative cancellation, unit level through service
level.

The enforcement is cooperative — checkpoints at plan-node dispatch,
morsel-task start, and optimizer enumeration steps — so the tests pin
three things: the right typed error surfaces (:class:`QueryTimeout`
with partial metrics attached, :class:`QueryCancelled` for sheds), a
stalled worker cannot outlive its deadline, and a timed-out query
leaves the service able to answer the very next request correctly.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import Deadline, ExecutionContext, Executor, QueryService
from repro.engine.context import CancelToken
from repro.engine.metrics import ExecutionMetrics
from repro.errors import QueryCancelled, QueryTimeout
from repro.optimizer import optimize_query
from repro.testing import FaultPlan, inject

COUNT_SQL = (
    "SELECT COUNT(*) AS cnt FROM fact f, dim1 d1 "
    "WHERE f.fk1 = d1.id AND d1.v < 4"
)


def _expected_count(db, threshold=4):
    dim1, fact = db.table("dim1"), db.table("fact")
    selected = dim1.column("id")[dim1.column("v") < threshold]
    return int(np.isin(fact.column("fk1"), selected).sum())


# -- units -------------------------------------------------------------


def test_deadline_rejects_non_positive_seconds():
    with pytest.raises(ValueError):
        Deadline(0)
    with pytest.raises(ValueError):
        Deadline(-1.5)


def test_deadline_expires_on_the_monotonic_clock():
    deadline = Deadline(0.01)
    assert not Deadline(60.0).expired()
    time.sleep(0.02)
    assert deadline.expired()
    assert deadline.remaining() < 0


def test_cancel_token_keeps_the_first_reason():
    token = CancelToken()
    assert not token.cancelled and token.reason is None
    token.cancel("root cause")
    token.cancel("secondary symptom")
    assert token.cancelled
    assert token.reason == "root cause"


def test_expired_context_raises_timeout_and_trips_token():
    context = ExecutionContext(query="q7", deadline=1e-9)
    time.sleep(0.001)
    with pytest.raises(QueryTimeout, match=r"'q7' exceeded its deadline"):
        context.check()
    # Siblings observe the trip as a cancellation with the root cause.
    assert context.cancel_token.cancelled
    assert "deadline" in context.cancel_token.reason


def test_cancelled_context_raises_with_reason():
    context = ExecutionContext(query="q8", deadline=60.0)
    context.cancel("shed by admission control")
    with pytest.raises(QueryCancelled, match="shed by admission control"):
        context.check()


def test_context_without_limits_is_disabled():
    assert not ExecutionContext(query="q").enabled
    assert ExecutionContext(query="q", deadline=5.0).enabled


def test_float_deadline_converts_to_deadline_object():
    context = ExecutionContext(query="q", deadline=2.5)
    assert isinstance(context.deadline, Deadline)
    assert context.deadline.seconds == 2.5


# -- executor ----------------------------------------------------------


def test_executor_timeout_attaches_partial_metrics(star_db, star_spec):
    plan = optimize_query(star_db, star_spec, "bqo").plan
    executor = Executor(star_db, parallelism=4, morsel_rows=512)
    context = ExecutionContext(query="slow_q", deadline=1e-9)
    time.sleep(0.001)
    with pytest.raises(QueryTimeout) as excinfo:
        executor.execute(plan, context=context)
    assert isinstance(excinfo.value.partial_metrics, ExecutionMetrics)


def test_disabled_context_is_dropped_entirely(star_db, star_spec):
    plan = optimize_query(star_db, star_spec, "bqo").plan
    result = Executor(star_db).execute(
        plan, context=ExecutionContext(query="free")
    )
    assert result.metrics.context is None


def test_armed_context_rides_on_metrics(star_db, star_spec):
    plan = optimize_query(star_db, star_spec, "bqo").plan
    context = ExecutionContext(query="armed", deadline=60.0)
    result = Executor(star_db).execute(plan, context=context)
    assert result.metrics.context is context


# -- optimizer ---------------------------------------------------------


def test_optimizer_enumeration_aborts_under_expired_deadline(
    star_db, star_spec
):
    context = ExecutionContext(query="planner_q", deadline=1e-9)
    time.sleep(0.001)
    with pytest.raises(QueryTimeout):
        optimize_query(star_db, star_spec, "bqo", context=context)


# -- service -----------------------------------------------------------


def test_stalled_worker_cannot_outlive_its_deadline(star_db):
    service = QueryService(
        star_db, parallelism=4, morsel_rows=512, deadline_seconds=0.05
    )
    with inject(FaultPlan().stall_at("morsel.task", seconds=0.4)) as plan:
        with pytest.raises(QueryTimeout, match="exceeded its deadline"):
            service.execute(COUNT_SQL, name="stalled")
    assert plan.total_fired == 1
    stats = service.stats()
    assert stats.timeouts == 1 and stats.failures == 1
    # The shared pool, plan cache, and filter cache all survived: the
    # same service answers the same statement correctly right after.
    retry = service.execute(COUNT_SQL)
    assert retry.scalar("cnt") == _expected_count(star_db)
    assert service.stats().timeouts == 1  # no new failures


def test_per_call_deadline_overrides_service_default(star_db):
    service = QueryService(star_db, parallelism=2, morsel_rows=512)
    with pytest.raises(QueryTimeout):
        service.execute(COUNT_SQL, deadline_seconds=1e-9)
    # Default (no deadline) still rules when no override is given, and
    # the aborted optimization was never published to the plan cache.
    answer = service.execute(COUNT_SQL)
    assert not answer.metrics.plan_cache_hit
    assert answer.scalar("cnt") == _expected_count(star_db)


def test_timeout_counted_separately_from_other_failures(star_db):
    service = QueryService(star_db)
    with pytest.raises(QueryTimeout):
        service.execute(COUNT_SQL, deadline_seconds=1e-9)
    with pytest.raises(Exception):
        service.execute("SELECT COUNT(*) AS c FROM no_such_table t")
    stats = service.stats()
    assert stats.failures == 2
    assert stats.timeouts == 1


def test_explain_reports_resilience_configuration(star_db):
    service = QueryService(star_db, deadline_seconds=2.5, degrade="serial")
    header = service.explain(COUNT_SQL)
    assert "-- resilience: deadline=2.5s" in header
    assert "degrade=serial" in header
