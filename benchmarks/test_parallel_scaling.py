"""Morsel-driven parallel execution — scaling on the star workload.

The tentpole claim of the parallel-execution PR: with hash-side builds
shared immutably and probe-side work (predicate evaluation, bitvector
filter application, hash-join probing, large gathers) split into
row-range morsels on the shared worker pool, the warm 20-query star
workload scales with workers while answers stay **byte-identical** to
the serial engine.

Asserted:

* ``parallelism=1`` output is byte-identical to the current
  (default-constructed) engine — the serial code path is untouched;
* ``parallelism=4`` output is byte-identical to ``parallelism=1`` and
  workload checksums agree at every level (morsel decomposition is
  order-preserving by construction);
* on machines with >= 4 usable cores: warm wall-clock at
  ``parallelism=4`` is at least 2x faster than ``parallelism=1``.  The
  morsel kernels (fancy-index gathers, ``searchsorted`` probes, ufunc
  comparisons) all release the GIL, which is where the speedup comes
  from — so on fewer cores the bar is unreachable in principle and the
  timing assertion is skipped (equivalence is still asserted, and a
  bounded-overhead check keeps the 1-core cost honest).

The run also writes ``BENCH_parallel_scaling.json`` at the repo root —
the same artifact as ``python -m repro.bench --experiment
parallel-scaling`` — so the perf trajectory accumulates in-repo.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.bench.reporting import render_table
from repro.bench.scaling import (
    run_parallel_scaling,
    star_workload_plans,
    write_scaling_report,
)
from repro.engine.executor import Executor
from repro.filters.cache import BitvectorFilterCache
from repro.workloads import star

# The scaling run needs morsels big enough to amortize dispatch but
# numerous enough to feed 4 workers; scale 1.0 gives a 120k-row fact
# table -> ~8 morsels of 16k.
SCALING_SCALE = float(os.environ.get("REPRO_SCALING_SCALE", "1.0"))
MORSEL_ROWS = 16384
REPO_ROOT = Path(__file__).resolve().parent.parent


def test_parallel_equivalence_and_scaling(benchmark):
    database = star.build_database(scale=SCALING_SCALE)
    plans = star_workload_plans(database)

    # --- byte-identity: current engine vs parallelism=1 vs parallelism=4
    current = Executor(database, filter_cache=BitvectorFilterCache(64))
    serial = Executor(
        database, filter_cache=BitvectorFilterCache(64),
        parallelism=1, morsel_rows=MORSEL_ROWS,
    )
    parallel = Executor(
        database, filter_cache=BitvectorFilterCache(64),
        parallelism=4, morsel_rows=MORSEL_ROWS,
    )
    for index, plan in enumerate(plans):
        reference = current.execute(plan)
        for engine_name, engine in (("p1", serial), ("p4", parallel)):
            result = engine.execute(plan)
            assert result.aggregates.keys() == reference.aggregates.keys()
            for label in reference.aggregates:
                expected = reference.aggregates[label]
                actual = result.aggregates[label]
                assert actual.dtype == expected.dtype
                assert np.array_equal(actual, expected), (
                    f"{engine_name} answer drift on query {index} ({label})"
                )

    # --- scaling measurement (warm, best-of) + in-repo artifact
    payload = benchmark.pedantic(
        run_parallel_scaling,
        kwargs=dict(
            scale=SCALING_SCALE,
            parallelism_levels=(1, 2, 4),
            morsel_rows=MORSEL_ROWS,
        ),
        rounds=1,
        iterations=1,
    )
    write_scaling_report(payload, REPO_ROOT / "BENCH_parallel_scaling.json")

    print()
    print(render_table(
        [
            {"parallelism": level["parallelism"],
             "warm_seconds": level["warm_seconds"],
             "speedup": level["speedup"]}
            for level in payload["levels"]
        ],
        f"Parallel scaling — star-20q, scale {SCALING_SCALE}, "
        f"{payload['cpu_cores']} cores",
    ))

    assert payload["checksums_identical"], (
        f"checksum drift across parallelism levels: {payload['checksums']}"
    )

    by_level = {level["parallelism"]: level for level in payload["levels"]}
    speedup_at_4 = by_level[4]["speedup"]
    cores = payload["cpu_cores"]
    if cores >= 4:
        # The acceptance bar: >= 2x warm wall-clock at 4 workers.
        assert speedup_at_4 >= 2.0, (
            f"parallelism=4 speedup {speedup_at_4:.2f}x < 2x on "
            f"{cores} cores (levels: {payload['levels']})"
        )
    else:
        # Thread parallelism cannot beat the core count; keep the
        # dispatch overhead honest instead (< 2x the serial time even
        # with every worker contending for one core).
        assert speedup_at_4 > 0.5, (
            f"parallelism=4 overhead too high on {cores} core(s): "
            f"{payload['levels']}"
        )
        pytest.skip(
            f"speedup bar needs >= 4 cores (have {cores}); equivalence "
            f"and overhead asserted, speedup at 4 workers measured at "
            f"{speedup_at_4:.2f}x"
        )
