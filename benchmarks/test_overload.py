"""Overload benchmark gate — shedding is graceful, goodput holds.

Runs :func:`repro.bench.overload.run_overload` at a reduced scale with
short levels and asserts the acceptance bar with CI-noise-tolerant
thresholds (the committed ``BENCH_overload.json``, generated on a quiet
machine at the default scale, carries the tight numbers gated by
``tools/check_overload.py``):

* the 1x level admits everything; every overloaded level sheds;
* sheds are cheap (p99 well under one service time) and always carry
  a retry-after hint;
* goodput at 16x offered load does not collapse (>= 50% of 1x here;
  the artifact gate demands >= 80%);
* every admitted answer is checksum-identical to the serial oracle.
"""

from __future__ import annotations

import pytest

from repro.bench.overload import run_overload


@pytest.fixture(scope="module")
def payload():
    return run_overload(scale=0.3, level_seconds=1.0)


def test_capacity_traffic_is_admitted_and_overload_sheds(payload):
    levels = {level["factor"]: level for level in payload["levels"]}
    assert levels[1]["shed_rate"] <= 0.05
    assert levels[16]["sheds"] > 0
    assert all(
        level["sheds_without_hint"] == 0 for level in payload["levels"]
    )


def test_sheds_are_refusals_not_work(payload):
    for level in payload["levels"]:
        if level["sheds"]:
            assert level["shed_p99_seconds"] < 0.05


def test_goodput_does_not_collapse_under_overload(payload):
    levels = {level["factor"]: level for level in payload["levels"]}
    assert levels[16]["goodput_qps"] >= 0.5 * levels[1]["goodput_qps"]


def test_answers_identical_to_serial_oracle(payload):
    assert all(level["checksums_identical"] for level in payload["levels"])
