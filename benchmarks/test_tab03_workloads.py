"""Table 3 — workload statistics.

Paper values for reference (their full-size datasets):

    workload   tables  queries  joins avg/max
    TPC-DS     25      99       7.9 / 48
    JOB        21      113      7.7 / 16
    CUSTOMER   475     100      30.3 / 80

Our scaled-down analogues keep the *relative* shape: CUSTOMER has by far
the highest join counts, JOB and TPC-DS sit near each other, and every
workload has enough queries for the selectivity-group analysis.
"""

from __future__ import annotations

from repro.bench.reporting import render_table, table3_rows


def test_tab03_workload_statistics(
    tpcds_workload, job_workload, customer_workload, benchmark
):
    workloads = [
        ("tpcds", *tpcds_workload),
        ("job", *job_workload),
        ("customer", *customer_workload),
    ]
    rows = benchmark.pedantic(
        table3_rows, args=(workloads,), rounds=1, iterations=1
    )
    print()
    print(render_table(rows, "Table 3 — workload statistics"))

    by_name = {row["workload"]: row for row in rows}
    assert by_name["tpcds"]["queries"] == 32
    assert by_name["job"]["queries"] == 30
    assert by_name["customer"]["queries"] == 20

    # CUSTOMER dominates join counts, like the paper's Table 3.
    assert by_name["customer"]["joins_avg"] > 2 * by_name["tpcds"]["joins_avg"]
    assert by_name["customer"]["joins_max"] >= 20
    # JOB and TPC-DS have comparable (moderate) average join counts.
    assert 2.0 <= by_name["job"]["joins_avg"] <= 8.0
    assert 2.0 <= by_name["tpcds"]["joins_avg"] <= 8.0
    # CUSTOMER has the most tables.
    assert by_name["customer"]["tables"] > by_name["tpcds"]["tables"]
