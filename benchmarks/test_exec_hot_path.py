"""Warm execution hot path — zero-copy engine vs. eager-materialization.

The paper's premise is that bitvector filters are *cheap* relative to
the joins they prune; the seed engine inflated their measured overhead
with two engine artifacts the paper's cost model never charges for:

* ``Relation.gather`` copied **every** column at **every** filter
  application — O(columns x rows) per mask;
* ``ExactFilter.contains`` re-ran ``np.unique`` joint factorization
  over the build keys on **every** probe.

This benchmark replays the same 20-query star workload as
``test_service_throughput.py`` through two executors sharing one
database: the default zero-copy engine (selection-vector relations,
table-resident dictionary indexes, indexed filter probes) and the
``eager_materialization=True`` baseline that reproduces the seed
behaviour.  Both run warm (plans optimized once, dictionaries and
filter caches hot, one untimed warmup pass).

Asserted (the PR's acceptance bar):

* warm end-to-end execution is at least 2x faster on the lazy engine;
* answers are byte-identical across the two engines;
* ``ExecutionMetrics`` copy counters prove filter applications no
  longer gather untouched columns: the lazy engine copies only join/
  aggregate-relevant columns (strictly fewer rows than eager), and a
  no-aggregate probe query gathers nothing beyond its key columns.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.reporting import render_table
from repro.bench.scaling import star_workload_plans as _star_workload_plans
from repro.engine.executor import Executor
from repro.filters.cache import BitvectorFilterCache
from repro.optimizer.pipelines import optimize_query
from repro.sql.binder import parse_query
from repro.workloads import star

from conftest import BENCH_SCALE


def _run_all(executor: Executor, plans: list) -> list:
    return [executor.execute(plan) for plan in plans]


def _best_of(executor: Executor, plans: list, rounds: int = 7) -> float:
    """Best-of-N wall clock: the min is robust to scheduler noise on
    shared CI runners; the deterministic copy/dictionary counter
    assertions below do not depend on timing at all."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        _run_all(executor, plans)
        best = min(best, time.perf_counter() - started)
    return best


def test_exec_hot_path_speedup(benchmark):
    database = star.build_database(scale=BENCH_SCALE)
    plans = _star_workload_plans(database)

    lazy = Executor(database, filter_cache=BitvectorFilterCache(64))
    eager = Executor(
        database,
        eager_materialization=True,
        filter_cache=BitvectorFilterCache(64),
    )

    # Warmup: builds dictionary indexes and both filter caches, and
    # checks byte-identical answers between the two engines.
    lazy_results = _run_all(lazy, plans)
    eager_results = _run_all(eager, plans)
    for lazy_result, eager_result in zip(lazy_results, eager_results):
        assert lazy_result.aggregates.keys() == eager_result.aggregates.keys()
        for label in lazy_result.aggregates:
            assert np.array_equal(
                lazy_result.aggregates[label], eager_result.aggregates[label]
            ), f"answer mismatch on {label}"

    lazy_seconds = benchmark.pedantic(
        _best_of, args=(lazy, plans), rounds=1, iterations=1
    )
    eager_seconds = _best_of(eager, plans)
    speedup = eager_seconds / max(lazy_seconds, 1e-9)

    lazy_rows = sum(r.metrics.rows_copied for r in lazy_results)
    eager_rows = sum(r.metrics.rows_copied for r in eager_results)
    lazy_bytes = sum(r.metrics.bytes_gathered for r in lazy_results)
    eager_bytes = sum(r.metrics.bytes_gathered for r in eager_results)
    dictionary_hits = sum(r.metrics.dictionary_hits for r in lazy_results)
    dictionary_misses = sum(r.metrics.dictionary_misses for r in lazy_results)

    rows = [
        {"engine": "lazy (zero-copy)", "execute_s": round(lazy_seconds, 4),
         "rows_copied": lazy_rows, "bytes_gathered": lazy_bytes},
        {"engine": "eager (seed)", "execute_s": round(eager_seconds, 4),
         "rows_copied": eager_rows, "bytes_gathered": eager_bytes},
        {"engine": "speedup", "execute_s": round(speedup, 2),
         "rows_copied": "", "bytes_gathered": ""},
    ]
    print()
    print(render_table(rows, "Execution hot path — 20-query star workload, warm"))
    print(f"dictionary encodings: {dictionary_hits} hits / "
          f"{dictionary_misses} fallbacks")

    # The acceptance bar: warm execution at least 2x faster than the
    # eager-materialization baseline.
    assert speedup >= 2.0, (
        f"lazy pass {lazy_seconds:.4f}s not 2x faster than eager baseline "
        f"{eager_seconds:.4f}s (speedup {speedup:.2f}x)"
    )

    # Copy accounting: the lazy engine must gather strictly less.
    assert 0 < lazy_rows < eager_rows
    assert 0 < lazy_bytes < eager_bytes
    # Join keys resolve through the dictionary indexes on this workload
    # (fallbacks only on empty inputs, which encode nothing).
    assert dictionary_hits > 0
    assert dictionary_misses == 0


def test_filter_application_gathers_only_touched_columns():
    """Exact copy-counter accounting on one two-table probe.

    For ``SUM(lo_revenue)`` joined against ASIA customers, the lazy
    engine materializes exactly two columns:

    * ``c.c_custkey`` once, at post-predicate cardinality (read by the
      filter build; the join's build keys hit the same cached copy);
    * ``lo.lo_revenue`` once, at joined cardinality (the aggregate).

    The bitvector application itself copies *nothing*: the probe key is
    read from the identity scan view (zero-copy), the surviving rows
    become a selection vector, and the join encodes its keys through
    the dictionary indexes without materializing them.  The predicate
    column ``c_region`` is read on the identity view too.
    """
    database = star.build_database(scale=0.1)
    sql = (
        "SELECT SUM(lo.lo_revenue) AS rev FROM lineorder lo, customer c "
        "WHERE lo.lo_custkey = c.c_custkey AND c.c_region = 'ASIA'"
    )
    plan = optimize_query(database, parse_query(database, sql, "probe"), "bqo").plan

    result = Executor(database).execute(plan)
    metrics = result.metrics

    scan_nodes = {
        node.label: node.node_id
        for node in plan.walk()
        if "customer" in node.label or "lineorder" in node.label
    }
    asia_customers = next(
        metrics.rows_out(node_id)
        for label, node_id in scan_nodes.items()
        if "customer" in label
    )
    joined_rows = next(
        node.rows_out for node in metrics.nodes if node.kind == "join"
    )
    assert asia_customers > 0 and joined_rows > 0

    expected_rows_copied = asia_customers + joined_rows
    assert metrics.rows_copied == expected_rows_copied, (
        f"lazy engine copied {metrics.rows_copied} rows, expected exactly "
        f"{expected_rows_copied} (c_custkey@{asia_customers} + "
        f"lo_revenue@{joined_rows}); untouched columns were gathered"
    )
    assert metrics.dictionary_hits == 1  # one single-column join key

    # The eager baseline on the same plan copies every needed column at
    # every mask and merge — strictly more.
    eager = Executor(database, eager_materialization=True).execute(plan)
    assert metrics.rows_copied < eager.metrics.rows_copied
    assert metrics.bytes_gathered < eager.metrics.bytes_gathered
    assert float(result.scalar("rev")) == float(eager.scalar("rev"))
