"""Plan quality — estimator q-error and top-k early exit.

The acceptance gate for the plan-quality harness
(``repro.bench.plan_quality``):

* **q-error bound** — per-operator q-errors (estimated vs. observed
  cardinality) over the TPC-DS-lite subset stay under a fixed median
  bound in both cascades integration modes (``full`` and ``shallow``).
  The bound is generous — the estimator is deliberately imperfect (the
  paper's Section 7.4 attributes regressions to exactly this gap) — but
  a blow-up here means statistics, push-down accounting, or the
  executor's row counting broke;
* **top-k early exit** — clustered ``ORDER BY ... LIMIT`` scans prune
  morsels via zone-map bounds (``morsels_pruned > 0``) and remain
  byte-identical to the full sort.

The run also writes ``BENCH_plan_quality.json`` at the repo root — the
same artifact as ``python -m repro.bench --experiment plan-quality`` —
so estimator quality accumulates in-repo over time.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.bench.plan_quality import (
    DEFAULT_SCALE,
    run_plan_quality,
    write_plan_quality_report,
)
from repro.bench.reporting import render_table

SCALE = DEFAULT_SCALE * float(os.environ.get("REPRO_PLAN_QUALITY_SCALE", "1.0"))
REPO_ROOT = Path(__file__).resolve().parent.parent

# Median per-operator q-error each mode must stay under.  Today's
# estimator sits near 1.2; 8x leaves room for noise and new queries
# while still catching order-of-magnitude regressions.
MEDIAN_Q_ERROR_BOUND = 8.0


def test_plan_quality_q_error_and_topk_exit(benchmark):
    payload = benchmark.pedantic(
        run_plan_quality,
        kwargs=dict(scale=SCALE),
        rounds=1,
        iterations=1,
    )
    write_plan_quality_report(payload, REPO_ROOT / "BENCH_plan_quality.json")

    print()
    for mode, report in payload["mode_reports"].items():
        print(render_table(
            [
                {
                    "query": entry["query"],
                    "operators": entry["operators"],
                    "median_q": entry["median_q_error"],
                    "max_q": entry["max_q_error"],
                }
                for entry in report["per_query"]
            ],
            f"Plan quality — mode {mode!r}, scale {payload['scale']}",
        ))

    for mode, report in payload["mode_reports"].items():
        assert report["operators"] > 0, f"no operators recorded for {mode}"
        assert report["median_q_error"] <= MEDIAN_Q_ERROR_BOUND, (
            f"{mode}: median q-error {report['median_q_error']} exceeds "
            f"{MEDIAN_Q_ERROR_BOUND} (per query: {report['per_query']})"
        )
        # Every estimate must be finite and at least 1.0 by construction.
        assert all(
            record["q_error"] >= 1.0 for record in report["records"]
        ), f"{mode}: q-error below 1.0 — the metric is broken"

    topk = payload["topk_early_exit"]
    assert topk["all_identical"], (
        f"top-k early exit drifted from the full sort: {topk['queries']}"
    )
    assert topk["total_morsels_pruned"] > 0, (
        f"clustered top-k scans pruned nothing: {topk['queries']}"
    )
    for query in topk["queries"]:
        assert query["rows_out"] > 0, query
