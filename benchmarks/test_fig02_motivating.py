"""Figure 2 — the motivating example.

The paper's query (movie_keyword x title x keyword with LIKE predicates)
shows that adding bitvector filters as a post-processing step to the
blind optimizer's best plan (P1) leaves a ~3x cheaper plan (P2) on the
table, while P2 looks *worse* than P1 without filters.

We reproduce all four measurements on the JOB-shaped database:

    paper:  P1 no-filters 10939 | P1 post-processed 2261
            P2 with filters 760 | P2 no-filters      12831

and assert the orderings that constitute the argument:
  (a) P2-with-filters <= P1-post-processed       (aware ordering wins)
  (b) P2-no-filters  >= P1-no-filters            (blind costing rejects P2)
  (c) filters help P1                            (post-processing is not useless)
"""

from __future__ import annotations

from repro.bench.reporting import render_table
from repro.cost.cout import cout
from repro.cost.truecard import TrueCardModel
from repro.engine.executor import Executor
from repro.optimizer.pipelines import optimize_query
from repro.plan.nodes import AggregateNode
from repro.plan.pushdown import strip_bitvectors
from repro.query.joingraph import JoinGraph

from benchmarks.conftest import BENCH_SCALE


def _measure(db, plan) -> dict:
    result = Executor(db).execute(plan)
    inner = plan.child if isinstance(plan, AggregateNode) else plan
    return {
        "cout": cout(inner, TrueCardModel(result.metrics)),
        "cpu": result.metrics.metered_cpu(),
    }


def _variants(db, spec) -> dict[str, dict]:
    measurements = {}
    measurements["P1_nofilters"] = _measure(
        db, optimize_query(db, spec, "original_nobv").plan
    )
    measurements["P1_postprocess"] = _measure(
        db, optimize_query(db, spec, "original").plan
    )
    measurements["P2_bqo_filters"] = _measure(
        db, optimize_query(db, spec, "bqo").plan
    )
    measurements["P2_bqo_nofilters"] = _measure(
        db, strip_bitvectors(optimize_query(db, spec, "bqo").plan)
    )
    return measurements


def test_fig02_motivating_example(job_workload, benchmark):
    db, queries = job_workload
    spec = next(q for q in queries if q.name == "job_fig2")
    graph = JoinGraph(spec, db.catalog)
    assert len(graph.fact_tables()) == 1  # mk is the only fact table

    measurements = benchmark.pedantic(
        _variants, args=(db, spec), rounds=1, iterations=1
    )

    rows = [
        {"plan": label, **{k: round(v) for k, v in values.items()}}
        for label, values in measurements.items()
    ]
    print()
    print(render_table(rows, f"Figure 2 (scale={BENCH_SCALE}) — paper: "
                             "P1 10939 / P1+bv 2261 / P2+bv 760 / P2 12831"))

    # (a) considering bitvector filters during optimization beats (or
    #     ties) post-processing them onto the blind plan
    assert measurements["P2_bqo_filters"]["cpu"] <= (
        measurements["P1_postprocess"]["cpu"] * 1.001
    )
    # (b) without bitvector filters the blind choice is justified: the
    #     BQO plan is no better blind, so a blind optimizer rejects it
    assert measurements["P2_bqo_nofilters"]["cpu"] >= (
        measurements["P1_nofilters"]["cpu"] * 0.999
    )
    # (c) filters substantially help even the blind plan
    assert (
        measurements["P1_postprocess"]["cpu"]
        < measurements["P1_nofilters"]["cpu"]
    )
