"""Succinct rank/select structures — footprint, throughput, identity.

The tentpole claims of the succinct-bitvector PR, asserted on
``repro.bench.succinct``:

* **membership footprint** — the exact filter's packed member table
  (1 bit per code-domain slot + ~3% rank directory) is at least 6x
  smaller than the dense bool table (8 bits per slot) it replaced;
* **probe throughput** — at a cache-spilling domain the packed byte
  probe sustains at least 0.9x the dense bool table's fancy-indexing
  throughput (the 8x memory win must not cost meaningful probe speed
  where the packed representation is actually used);
* **byte-identity** — a workload large enough to take the
  bitmap-selection path answers identically on the lazy engine
  (serial and parallel) and the eager baseline;
* **selection state** — the bitmap selections created during that
  workload hold strictly fewer resident bytes than the dense int64
  position vectors they replaced.

The run also writes ``BENCH_succinct_filters.json`` at the repo root —
the same artifact as ``python -m repro.bench --experiment
succinct-filters`` — so the footprint trajectory accumulates in-repo.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.reporting import render_table
from repro.bench.succinct import run_succinct_filters, write_succinct_report

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_succinct_filters_footprint_and_identity(benchmark):
    payload = benchmark.pedantic(
        run_succinct_filters, rounds=1, iterations=1
    )
    # The throughput bar compares wall-clock ratios; on a loaded shared
    # runner one unlucky measurement can breach it with no code defect.
    # Give the measurement one untimed retry before asserting (the
    # footprint and identity sections are deterministic).
    if payload["probe_throughput_ratio"] < 0.9:
        payload = run_succinct_filters()
    write_succinct_report(
        payload, REPO_ROOT / "BENCH_succinct_filters.json"
    )

    footprint = payload["membership_footprint"]
    residency = payload["cache_residency"]
    throughput = payload["probe_throughput"]
    print()
    print(render_table(
        [
            {"section": "membership footprint",
             "packed": footprint["packed_bytes"],
             "dense": footprint["dense_bool_bytes"],
             "ratio": payload["footprint_ratio"]},
            {"section": "cache residency",
             "packed": residency["filters_resident_packed"],
             "dense": residency["filters_resident_dense"],
             "ratio": residency["residency_ratio"]},
        ],
        "Succinct filters — packed vs. dense",
    ))
    print(
        f"probe throughput ratio {payload['probe_throughput_ratio']}x "
        f"({throughput['packed_probes_per_second']}/s packed vs "
        f"{throughput['bool_probes_per_second']}/s bool)"
    )

    assert payload["checksums_identical"], (
        f"checksum drift across engine configurations: "
        f"{payload['engine_identity']['checksums']}"
    )
    assert payload["footprint_ratio"] >= 6.0, (
        f"member-table footprint reduction "
        f"{payload['footprint_ratio']:.2f}x < 6x ({footprint})"
    )
    assert payload["probe_throughput_ratio"] >= 0.9, (
        f"packed probe throughput "
        f"{payload['probe_throughput_ratio']:.2f}x < 0.9x of the dense "
        f"bool table ({throughput})"
    )
    # The packed member table must fit strictly more filters into the
    # fixed cache budget than the dense table would.
    assert (
        residency["filters_resident_packed"]
        > residency["filters_resident_dense"]
    ), f"no residency win: {residency}"
    # Bitmap selections must actually have been created (the workload
    # exceeds the bitmap floor) and hold fewer bytes than dense int64.
    assert payload["selection_bytes"] > 0
    assert payload["selection_bytes"] < payload["selection_bytes_dense"], (
        f"selection state not succinct: {payload['selection_bytes']} vs "
        f"{payload['selection_bytes_dense']} dense"
    )
