"""Zone-map morsel pruning — speedup, skipping, and byte-identity.

The tentpole claim of the zone-map PR: per-morsel min/max synopses let
the executor skip whole morsels whose bounds cannot satisfy a scan
predicate or pass a bitvector filter, and the pruning is *free* where
it cannot help.  Asserted on the band-select + band-join workload of
``repro.bench.pruning``:

* **byte-identity** — with zone maps on, query output (aggregate
  arrays, dtypes included) is byte-identical to the unpruned engine at
  ``parallelism`` 1 and 4, on both clustered and shuffled layouts;
* **clustered win** — on the clustered layout the warm workload runs
  >= 2x faster with zone maps on, with more than half of all eligible
  rows skipped before any kernel touches them;
* **shuffled non-loss** — on the shuffled layout (nothing prunable)
  the zone-map overhead stays within 5% of the ``zone_maps=False``
  baseline: consulting a resident synopsis is O(morsels) interval
  checks.

The run also writes ``BENCH_zonemap_pruning.json`` at the repo root —
the same artifact as ``python -m repro.bench --experiment
zonemap-pruning`` — so the skipping trajectory accumulates in-repo.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.bench.pruning import (
    DEFAULT_ROWS,
    build_pruning_database,
    pruning_workload_sqls,
    run_zonemap_pruning,
    write_pruning_report,
)
from repro.bench.reporting import render_table
from repro.engine.executor import Executor
from repro.filters.cache import BitvectorFilterCache
from repro.optimizer.pipelines import optimize_query
from repro.sql.binder import parse_query

PRUNING_ROWS = int(
    DEFAULT_ROWS * float(os.environ.get("REPRO_PRUNING_SCALE", "1.0"))
)
MORSEL_ROWS = 16384
REPO_ROOT = Path(__file__).resolve().parent.parent


def test_zonemap_pruning_speedup_and_equivalence(benchmark):
    # --- byte-identity: zone maps on vs. off, parallelism 1 and 4
    for layout in ("clustered", "shuffled"):
        database = build_pruning_database(PRUNING_ROWS, layout)
        plans = [
            optimize_query(
                database, parse_query(database, sql, f"{layout}_{i}"), "bqo"
            ).plan
            for i, sql in enumerate(pruning_workload_sqls(PRUNING_ROWS))
        ]
        reference = Executor(
            database, filter_cache=BitvectorFilterCache(64), zone_maps=False
        )
        engines = {
            "zone_p1": Executor(
                database, filter_cache=BitvectorFilterCache(64),
                parallelism=1, morsel_rows=MORSEL_ROWS, zone_maps=True,
            ),
            "zone_p4": Executor(
                database, filter_cache=BitvectorFilterCache(64),
                parallelism=4, morsel_rows=MORSEL_ROWS, zone_maps=True,
            ),
        }
        for index, plan in enumerate(plans):
            expected = reference.execute(plan)
            for engine_name, engine in engines.items():
                result = engine.execute(plan)
                assert result.aggregates.keys() == expected.aggregates.keys()
                for label in expected.aggregates:
                    want = expected.aggregates[label]
                    got = result.aggregates[label]
                    assert got.dtype == want.dtype
                    assert np.array_equal(got, want), (
                        f"{layout}/{engine_name} answer drift on query "
                        f"{index} ({label})"
                    )

    # --- pruning effect (warm, best-of) + in-repo artifact
    payload = benchmark.pedantic(
        run_zonemap_pruning,
        kwargs=dict(
            rows=PRUNING_ROWS,
            parallelism_levels=(1, 4),
            morsel_rows=MORSEL_ROWS,
        ),
        rounds=1,
        iterations=1,
    )
    # The timing bars compare wall-clock ratios; on a loaded shared
    # runner one unlucky measurement can breach them with no code
    # defect.  Give the measurement one untimed retry before asserting
    # (equivalence above is never retried — it is deterministic).
    if (
        payload["clustered_speedup"] < 2.0
        or payload["shuffled_overhead_fraction"] > 0.05
    ):
        payload = run_zonemap_pruning(
            rows=PRUNING_ROWS, parallelism_levels=(1, 4),
            morsel_rows=MORSEL_ROWS,
        )
    write_pruning_report(payload, REPO_ROOT / "BENCH_zonemap_pruning.json")

    print()
    for layout, entry in payload["layouts"].items():
        print(render_table(
            [
                {"parallelism": level["parallelism"],
                 "zone_on_s": level["zone_on_seconds"],
                 "zone_off_s": level["zone_off_seconds"],
                 "speedup": level["speedup"],
                 "skip_fraction": level["skip_fraction"]}
                for level in entry["levels"]
            ],
            f"Zone-map pruning — {layout}, {payload['rows']} rows",
        ))

    assert payload["checksums_identical"], (
        f"checksum drift across zone-map/parallelism combinations: "
        f"{payload['layouts']}"
    )
    # Clustered layout: the acceptance bar — >= 2x warm wall-clock with
    # more than half of the eligible rows skipped outright.  The win is
    # single-threaded (skipped kernels, not extra cores), so no
    # core-count gate applies.
    assert payload["clustered_speedup"] >= 2.0, (
        f"clustered zone-map speedup "
        f"{payload['clustered_speedup']:.2f}x < 2x "
        f"(levels: {payload['layouts']['clustered']['levels']})"
    )
    assert payload["clustered_skip_fraction"] > 0.5, (
        f"skipped only {payload['clustered_skip_fraction']:.1%} of rows"
    )
    # Shuffled layout: synopses that never prune must stay ~free.
    assert payload["shuffled_overhead_fraction"] <= 0.05, (
        f"zone-map overhead {payload['shuffled_overhead_fraction']:+.1%} "
        f"exceeds 5% on the unprunable layout "
        f"(levels: {payload['layouts']['shuffled']['levels']})"
    )
