"""Shared fixtures for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows (run with ``pytest benchmarks/
--benchmark-only -s`` to see them; they are also asserted on).

``REPRO_BENCH_SCALE`` (default 0.15) scales the synthetic databases;
results below are deterministic for a fixed scale and seed.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import run_workload

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))

_PIPELINES = ("original", "bqo", "original_nobv", "dp")


@pytest.fixture(scope="session")
def tpcds_workload():
    from repro.workloads import tpcds_lite

    return tpcds_lite.build(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def job_workload():
    from repro.workloads import job_lite

    return job_lite.build(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def customer_workload():
    from repro.workloads import customer_lite

    return customer_lite.build(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def tpcds_result(tpcds_workload):
    db, queries = tpcds_workload
    return run_workload("tpcds", db, queries, pipelines=_PIPELINES)


@pytest.fixture(scope="session")
def job_result(job_workload):
    db, queries = job_workload
    return run_workload("job", db, queries, pipelines=_PIPELINES)


@pytest.fixture(scope="session")
def customer_result(customer_workload):
    db, queries = customer_workload
    return run_workload("customer", db, queries, pipelines=_PIPELINES)


@pytest.fixture(scope="session")
def all_results(tpcds_result, job_result, customer_result):
    return {
        "tpcds": tpcds_result,
        "job": job_result,
        "customer": customer_result,
    }
