"""Parallel partitioned build sides — the build-phase speedup gate.

The tentpole claim of the parallel-build PR: bitvector filter
construction (dimension-key gathers, factorization sorts, hash
scatters) runs per-morsel on the worker pool and merges on a
deterministic barrier, so the build phase of a large-dimension join
scales with workers while the published filter — and therefore every
query answer — stays byte-identical to the serial build.

Asserted:

* ``parallelism=1`` never takes the partitioned path (the serial
  engine is untouched) and ``parallelism=4`` always does;
* query results are byte-identical across parallelism levels for
  **every** registry filter kind;
* on machines with >= 4 usable cores: the metered build phase
  (``ExecutionMetrics.filter_build_seconds``, cold builds) is at least
  1.8x faster at 4 workers for the default exact filter.  The exact
  merge is algorithmically cheaper than a serial build (sorted-domain
  union + arange code set vs. two full ``np.unique`` sorts), so the
  bar is typically cleared even before thread parallelism kicks in —
  but scheduler-starved single-core runners still only get a bounded
  honesty check.

The run also writes ``BENCH_build_parallel.json`` at the repo root —
the same artifact as ``python -m repro.bench --experiment
build-parallel`` — so the build-phase trajectory accumulates in-repo.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.build_parallel import (
    run_build_parallel,
    write_build_parallel_report,
)
from repro.bench.reporting import render_table

# Full size in CI (the experiment is two tables and a handful of
# executions); scale down locally via the env knob if needed.
BUILD_SCALE = float(os.environ.get("REPRO_BUILD_SCALE", "1.0"))
MORSEL_ROWS = 16384
REPO_ROOT = Path(__file__).resolve().parent.parent


def test_partitioned_build_equivalence_and_speedup(benchmark):
    payload = benchmark.pedantic(
        run_build_parallel,
        kwargs=dict(
            dim_rows=max(int(1_500_000 * BUILD_SCALE), 1),
            fact_rows=max(int(500_000 * BUILD_SCALE), 1),
            parallelism_levels=(1, 4),
            morsel_rows=MORSEL_ROWS,
        ),
        rounds=1,
        iterations=1,
    )
    write_build_parallel_report(payload, REPO_ROOT / "BENCH_build_parallel.json")

    print()
    for kind, entry in payload["kinds"].items():
        print(render_table(
            [
                {
                    "parallelism": level["parallelism"],
                    "build_s": level["build_seconds"],
                    "total_s": level["total_seconds"],
                    "build_speedup": level["build_speedup"],
                    "partitioned": level["partitioned_builds"],
                }
                for level in entry["levels"]
            ],
            f"Parallel filter builds — {kind}, {payload['cpu_cores']} cores",
        ))

    # Byte-identical answers across parallelism levels, per filter kind.
    assert payload["results_identical"], (
        "answer drift between serial and partitioned builds: "
        f"{payload['kinds']}"
    )
    # parallelism=1 stays the untouched serial path; 4 workers always
    # take the partitioned one (the build side is far above the
    # dispatch threshold).
    for kind, entry in payload["kinds"].items():
        for level in entry["levels"]:
            if level["parallelism"] == 1:
                assert level["partitioned_builds"] == 0, (kind, level)
            else:
                assert level["partitioned_builds"] > 0, (kind, level)

    speedup = payload["build_speedup_at_top"]
    cores = payload["cpu_cores"]
    if cores >= 4:
        # The acceptance bar: >= 1.8x build phase at 4 workers.
        assert speedup >= 1.8, (
            f"build-phase speedup {speedup:.2f}x < 1.8x on {cores} cores "
            f"(exact levels: {payload['kinds']['exact']['levels']})"
        )
    else:
        # Thread parallelism cannot beat the core count; keep the
        # partitioned path's overhead honest instead (the exact merge
        # is algorithmically cheaper, so even one core usually wins).
        assert speedup > 0.5, (
            f"partitioned build overhead too high on {cores} core(s): "
            f"{payload['kinds']['exact']['levels']}"
        )
        pytest.skip(
            f"speedup bar needs >= 4 cores (have {cores}); equivalence "
            f"and overhead asserted, build-phase speedup measured at "
            f"{speedup:.2f}x"
        )
