"""Ablation 4 — plan robustness under bitvector filters.

The paper closes by observing (with LIP, its closest prior work) that
bitvector filters make query plans *robust*: with all filters pushed to
the fact table, right-deep plans with different dimension permutations
have nearly identical cost, while without filters the permutation
choice matters enormously.

We quantify this on a random star query: execute every fact-first
right-deep permutation with and without filters and compare the spread
(max/min) of true Cout and metered CPU.  Lemma 4 says the Cout spread
with exact filters is exactly zero.
"""

from __future__ import annotations

import itertools

from repro.bench.reporting import render_table
from repro.engine.executor import Executor
from repro.plan.builder import build_right_deep
from repro.plan.nodes import HashJoinNode
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.workloads.synthetic import random_star


def _permutation_costs(db, graph, dims, with_filters: bool):
    executor = Executor(db)
    couts = []
    cpus = []
    for perm in itertools.permutations(dims):
        plan = build_right_deep(graph, ["f", *perm])
        if not with_filters:
            for node in plan.walk():
                if isinstance(node, HashJoinNode):
                    node.creates_bitvector = False
        plan = push_down_bitvectors(plan)
        result = executor.execute(plan)
        from repro.cost.cout import cout
        from repro.cost.truecard import TrueCardModel

        couts.append(cout(plan, TrueCardModel(result.metrics)))
        cpus.append(result.metrics.metered_cpu())
    return couts, cpus


def test_abl04_plan_robustness(benchmark):
    db, spec = random_star(21, num_dimensions=4, fact_rows=3000, dim_rows=100)
    graph = JoinGraph(spec, db.catalog)
    dims = [a for a in spec.aliases if a != "f"]

    couts_bv, cpus_bv = benchmark.pedantic(
        _permutation_costs, args=(db, graph, dims, True), rounds=1, iterations=1
    )
    couts_plain, cpus_plain = _permutation_costs(db, graph, dims, False)

    rows = [
        {
            "filters": "on",
            "plans": len(couts_bv),
            "cout_spread": round(max(couts_bv) / min(couts_bv), 4),
            "cpu_spread": round(max(cpus_bv) / min(cpus_bv), 4),
        },
        {
            "filters": "off",
            "plans": len(couts_plain),
            "cout_spread": round(max(couts_plain) / min(couts_plain), 4),
            "cpu_spread": round(max(cpus_plain) / min(cpus_plain), 4),
        },
    ]
    print()
    print(render_table(
        rows,
        "Ablation: permutation robustness of fact-first right-deep plans "
        "(Lemma 4 / LIP observation)",
    ))

    # Lemma 4: with exact filters, every permutation has the same Cout.
    assert max(couts_bv) - min(couts_bv) < 1e-6 * max(couts_bv)
    # Metered CPU varies only through filter-check ordering (tiny).
    assert max(cpus_bv) / min(cpus_bv) < 1.05
    # Without filters, the permutation choice matters much more.
    assert (max(couts_plain) / min(couts_plain)) > 1.2 * (
        max(couts_bv) / min(couts_bv)
    )
