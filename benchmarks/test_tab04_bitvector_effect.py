"""Table 4 (Appendix A) — the same plans with vs without bitvector
filtering.

Paper values:

    workload   CPU ratio  queries w/ filters  improved  regressed
    JOB        0.20       0.97                0.58      0.00
    TPC-DS     0.53       0.98                0.88      0.00
    CUSTOMER   0.90       1.00                0.42      0.00

We execute the Original pipeline's plans with filters on
(``original``) and off (``original_nobv``) and assert the same shape:
large CPU reductions, filters used by nearly all queries, many queries
improved by >20%, and no query regressed by >20%.
"""

from __future__ import annotations

from repro.bench.reporting import render_table, table4_rows

_PAPER = {
    "job": {"cpu_ratio": 0.20},
    "tpcds": {"cpu_ratio": 0.53},
    "customer": {"cpu_ratio": 0.90},
}


def test_tab04_bitvector_effect(all_results, benchmark):
    rows = []
    for result in all_results.values():
        rows.extend(table4_rows(result))
    print()
    print(render_table(
        rows,
        "Table 4 — bitvector filtering on vs off "
        f"(paper CPU ratios: { {k: v['cpu_ratio'] for k, v in _PAPER.items()} })",
    ))

    for row in rows:
        name = row["workload"]
        # Filters reduce workload CPU substantially (paper 0.20-0.90).
        assert row["cpu_ratio"] < 0.95, f"{name}: filters should pay off"
        # Nearly all queries end up with at least one filter.
        assert row["queries_with_filters"] >= 0.8, name
        # A large share of queries improve by more than 20%...
        assert row["improved"] >= 0.4, name
        # ...and none regress by more than 20% (paper: 0.00 everywhere).
        assert row["regressed"] == 0.0, name

    benchmark.pedantic(
        lambda: [table4_rows(result) for result in all_results.values()],
        rounds=3,
        iterations=1,
    )
