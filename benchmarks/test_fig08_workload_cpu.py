"""Figure 8 — total workload CPU, Original vs BQO, by selectivity group.

Paper result: BQO reduces total workload CPU to 0.36 (JOB), 0.78
(TPC-DS) and 0.75 (CUSTOMER) of the original optimizer's plans, with the
largest reductions for expensive / low-selectivity (group L) queries.

Our reproduction asserts the same shape: BQO <= Original on every
workload, and the absolute CPU reduction is concentrated in group L.
"""

from __future__ import annotations

from repro.bench.reporting import figure8_rows, render_table

_PAPER_TOTALS = {"job": 0.36, "tpcds": 0.78, "customer": 0.75}


def test_fig08_workload_cpu(all_results, benchmark):
    all_rows = []
    for name, result in all_results.items():
        rows = figure8_rows(result)
        all_rows.extend(rows)
        total = next(r for r in rows if r["group"] == "total")

        # Shape: BQO wins at the workload level.
        assert total["bqo"] <= 1.0 + 1e-9, f"{name}: BQO regressed overall"

        # Shape: group L contributes the largest absolute reduction.
        reductions = {
            r["group"]: r["original"] - r["bqo"]
            for r in rows
            if r["group"] in ("S", "M", "L")
        }
        assert reductions["L"] >= reductions["S"] - 1e-9, (
            f"{name}: expected the expensive group to benefit most"
        )

    print()
    print(render_table(
        all_rows,
        "Figure 8 — normalized total CPU by selectivity group "
        f"(paper totals: {_PAPER_TOTALS})",
    ))

    # Average reduction across workloads is material (paper avg 37%).
    totals = [
        next(r for r in figure8_rows(result) if r["group"] == "total")["bqo"]
        for result in all_results.values()
    ]
    assert sum(totals) / len(totals) < 0.95

    benchmark.pedantic(
        lambda: [figure8_rows(result) for result in all_results.values()],
        rounds=3,
        iterations=1,
    )
