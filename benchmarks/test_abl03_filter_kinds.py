"""Ablation 3 — filter implementations: exact vs Bloom vs blocked Bloom.

The paper's analysis assumes no false positives; its implementation uses
SQL Server's hash bitmaps.  This ablation executes the BQO plans under
each filter implementation and compares CPU and answers:

* answers must be identical (filters never drop matching tuples, and
  joins re-verify keys, so false positives cost work but not
  correctness);
* Bloom variants admit false positives, so their plans process at least
  as many tuples as the exact filter's.
"""

from __future__ import annotations

from repro.bench.harness import run_workload
from repro.bench.reporting import render_table

_KINDS = ("exact", "bloom", "blocked_bloom")


def _run_kinds(db, queries) -> list[dict]:
    rows = []
    checksums: dict[str, dict] = {}
    for kind in _KINDS:
        result = run_workload(
            "tpcds", db, queries, pipelines=("bqo",), filter_kind=kind
        )
        checksums[kind] = {
            query: result.run(query, "bqo").checksum
            for query in result.queries()
        }
        rows.append(
            {
                "filter": kind,
                "total_cpu": round(result.total_cpu("bqo")),
                "total_tuples": sum(
                    result.total_tuples_by_kind("bqo").values()
                ),
            }
        )
    # answers identical across filter kinds
    reference = checksums["exact"]
    for kind in ("bloom", "blocked_bloom"):
        assert checksums[kind] == reference, f"{kind} changed query answers"
    return rows


def test_abl03_filter_kinds(tpcds_workload, benchmark):
    db, queries = tpcds_workload
    rows = benchmark.pedantic(
        _run_kinds, args=(db, queries[:12]), rounds=1, iterations=1
    )
    print()
    print(render_table(rows, "Ablation: bitvector filter implementations"))

    by_kind = {row["filter"]: row for row in rows}
    # False positives can only let extra tuples through.
    assert by_kind["bloom"]["total_tuples"] >= by_kind["exact"]["total_tuples"]
    assert (
        by_kind["blocked_bloom"]["total_tuples"]
        >= by_kind["exact"]["total_tuples"]
    )
    # ...but at sensible bits/key the overhead stays small.
    assert by_kind["bloom"]["total_cpu"] <= by_kind["exact"]["total_cpu"] * 1.25
