"""Trace-overhead benchmark gate — tracing is cheap and invisible.

Runs :func:`repro.bench.trace_overhead.run_trace_overhead` at a small
scale and asserts the acceptance bar with CI-noise-tolerant thresholds:

* armed tracing on the warm service path stays small (< 15% here; the
  committed ``BENCH_trace_overhead.json`` artifact, generated on a
  quiet machine at the default scale, carries the tight < 3% number
  with a disarmed noise floor under 0.5%);
* answers are checksum-identical with tracing on vs. off at
  parallelism 1 and 4 — the hard gate, noise-independent;
* an armed round actually records spans (the instrumentation is live,
  not accidentally compiled out) without dropping any;
* the telemetry and explain_analyze surfaces render from the same run.
"""

from __future__ import annotations

import pytest

from repro.bench.trace_overhead import run_trace_overhead


@pytest.fixture(scope="module")
def payload():
    return run_trace_overhead(scale=0.04, rounds=3, parallelism=2)


def test_armed_overhead_is_small(payload):
    overhead = payload["overhead"]
    assert overhead["armed_overhead_fraction"] < 0.15


def test_answers_identical_with_tracing_on_and_off(payload):
    identity = payload["identity"]
    assert identity["all_identical"]
    assert [level["parallelism"] for level in identity["levels"]] == [1, 4]


def test_armed_rounds_record_spans_without_drops(payload):
    overhead = payload["overhead"]
    assert overhead["spans_per_round"] > overhead["queries"]
    assert overhead["spans_dropped"] == 0


def test_surfaces_render(payload):
    surfaces = payload["surfaces"]
    telemetry = surfaces["telemetry"]
    assert telemetry["execute_seconds"]["count"] > 0
    assert telemetry["output_rows"]["count"] > 0
    assert "EXPLAIN ANALYZE" in surfaces["explain_analyze_sample"]
    assert "actual" in surfaces["explain_analyze_sample"]
