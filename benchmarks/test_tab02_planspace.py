"""Table 2 — plan space complexity: exponential vs linear.

For star and snowflake queries with PKFK joins, the number of
cross-product-free right-deep orders grows super-linearly with the
relation count while the candidate set of Theorems 4.1/5.1 stays at
``n + 1`` — and the candidate set always contains a plan with the
minimal true ``Cout``.

The pytest-benchmark measurement is the *candidate* search (evaluate
n+1 plans); exhaustive search times are printed alongside so the
complexity gap is visible in wall-clock too.
"""

from __future__ import annotations

import time

from repro.bench.reporting import render_table
from repro.cost.truecard import true_cout
from repro.optimizer.candidates import (
    snowflake_candidate_orders,
    star_candidate_orders,
)
from repro.optimizer.enumerate import right_deep_orders
from repro.plan.builder import build_right_deep
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.workloads.synthetic import random_snowflake, random_star


def _min_cout(db, graph, orders) -> tuple[float, int]:
    best = float("inf")
    count = 0
    for order in orders:
        plan = push_down_bitvectors(build_right_deep(graph, list(order)))
        best = min(best, true_cout(plan, db))
        count += 1
    return best, count


def _candidate_search(db, graph, fact, kind):
    orders = (
        star_candidate_orders(graph, fact)
        if kind == "star"
        else snowflake_candidate_orders(graph, fact)
    )
    return _min_cout(db, graph, orders)


def test_tab02_star_plan_space(benchmark):
    rows = []
    for n_dims in (3, 4, 5):
        db, spec = random_star(
            n_dims, num_dimensions=n_dims, fact_rows=800, dim_rows=60
        )
        graph = JoinGraph(spec, db.catalog)
        started = time.perf_counter()
        full_min, full_count = _min_cout(db, graph, right_deep_orders(graph))
        full_seconds = time.perf_counter() - started
        started = time.perf_counter()
        cand_min, cand_count = _candidate_search(db, graph, "f", "star")
        cand_seconds = time.perf_counter() - started
        rows.append(
            {
                "relations": n_dims + 1,
                "full_plans": full_count,
                "candidates": cand_count,
                "full_min": round(full_min),
                "cand_min": round(cand_min),
                "full_s": round(full_seconds, 3),
                "cand_s": round(cand_seconds, 3),
            }
        )
        assert cand_count == n_dims + 1
        assert abs(full_min - cand_min) < 1e-6 * max(1.0, full_min)
    print()
    print(render_table(rows, "Table 2 (star): full space vs n+1 candidates"))
    # exponential vs linear growth
    assert rows[-1]["full_plans"] > 10 * rows[-1]["candidates"]

    db, spec = random_star(99, num_dimensions=4, fact_rows=800, dim_rows=60)
    graph = JoinGraph(spec, db.catalog)
    benchmark.pedantic(
        _candidate_search, args=(db, graph, "f", "star"), rounds=3, iterations=1
    )


def test_tab02_snowflake_plan_space(benchmark):
    rows = []
    for branches in ((1, 2), (2, 2), (1, 2, 2)):
        n = sum(branches)
        db, spec = random_snowflake(
            n, branch_lengths=branches, fact_rows=700, dim_rows=50
        )
        graph = JoinGraph(spec, db.catalog)
        full_min, full_count = _min_cout(db, graph, right_deep_orders(graph))
        cand_min, cand_count = _candidate_search(db, graph, "f", "snowflake")
        rows.append(
            {
                "relations": n + 1,
                "branches": str(branches),
                "full_plans": full_count,
                "candidates": cand_count,
                "full_min": round(full_min),
                "cand_min": round(cand_min),
            }
        )
        assert cand_count == n + 1
        assert abs(full_min - cand_min) < 1e-6 * max(1.0, full_min)
    print()
    print(render_table(rows, "Table 2 (snowflake): full space vs n+1 candidates"))
    assert rows[-1]["full_plans"] > 10 * rows[-1]["candidates"]

    db, spec = random_snowflake(7, branch_lengths=(2, 2), fact_rows=700)
    graph = JoinGraph(spec, db.catalog)
    benchmark.pedantic(
        _candidate_search,
        args=(db, graph, "f", "snowflake"),
        rounds=3,
        iterations=1,
    )
