"""Figure 10 — per-query CPU for the most expensive queries (log scale
in the paper), Original vs BQO.

Paper result: individual queries improve by up to two orders of
magnitude; regressions exist but are small and rare (attributed to Cout
inaccuracy, right-deep bias on highly selective queries, and heuristic
extensions).

We print the per-query table for every workload and assert:
  * at least one query improves by >= 1.5x on each workload's top list,
  * no query regresses by more than 2x,
  * queries that regress are a minority.
"""

from __future__ import annotations

from repro.bench.reporting import figure10_rows, render_table


def test_fig10_individual_queries(all_results, benchmark):
    for name, result in all_results.items():
        rows = figure10_rows(result, top=15)
        print()
        print(render_table(
            [
                {
                    "query": r["query"],
                    "original": round(r["original"], 4),
                    "bqo": round(r["bqo"], 4),
                    "speedup": round(r["speedup"], 2),
                }
                for r in rows
            ],
            f"Figure 10 ({name}) — top queries by Original CPU "
            "(paper: up to two orders of magnitude improvement)",
        ))
        speedups = [r["speedup"] for r in rows]
        assert max(speedups) >= 1.5, f"{name}: expected a significant win"
        assert min(speedups) >= 0.5, f"{name}: regression larger than 2x"
        regressed = sum(1 for s in speedups if s < 0.99)
        assert regressed <= len(speedups) // 2, (
            f"{name}: regressions should be the minority"
        )

    benchmark.pedantic(
        lambda: [figure10_rows(result) for result in all_results.values()],
        rounds=3,
        iterations=1,
    )
