"""Ablation 5 — optimization time.

The paper notes its transformation rule cuts query optimization time to
about one third of the original optimizer's (join reordering is disabled
on the transformed subplan, and only a linear number of candidates is
costed).

We time the three planners on the same query set:

* ``bqo``     — linear candidate families (Algorithms 2+3),
* ``dp``      — exact bushy DP over connected subsets,
* ``cascades-full`` — full bitvector-aware integration (plan-space
  enumeration), the expensive road the analysis avoids.

Expected shape: BQO's planning time is far below full integration and
at or below exact DP on multi-relation queries, and it scales to the
20+-join CUSTOMER queries where exact DP cannot run at all (the DP
pipeline silently degrades to greedy there).
"""

from __future__ import annotations

import time

from repro.bench.reporting import render_table
from repro.cascades.engine import CascadesOptimizer
from repro.optimizer.baseline import optimize_baseline
from repro.optimizer.multifact import optimize_join_graph
from repro.query.joingraph import JoinGraph
from repro.stats.estimator import CardinalityEstimator

_QUERY_NAMES = ("ds_q08", "ds_q11", "ds_q14")  # 5-6 relation queries


def _time_planners(db, specs) -> list[dict]:
    cascades = CascadesOptimizer(db)
    timings = {"bqo": 0.0, "dp": 0.0, "cascades_full": 0.0}
    for spec in specs:
        graph = JoinGraph(spec, db.catalog)
        estimator = CardinalityEstimator(db, spec.alias_tables)

        started = time.perf_counter()
        optimize_join_graph(graph, estimator)
        timings["bqo"] += time.perf_counter() - started

        started = time.perf_counter()
        optimize_baseline(graph, estimator)
        timings["dp"] += time.perf_counter() - started

        started = time.perf_counter()
        cascades.optimize(spec, "full")
        timings["cascades_full"] += time.perf_counter() - started
    return [
        {"planner": name, "seconds": round(seconds, 4)}
        for name, seconds in timings.items()
    ]


def test_abl05_optimization_time(tpcds_workload, customer_workload, benchmark):
    db, queries = tpcds_workload
    specs = [q for q in queries if q.name in _QUERY_NAMES]
    rows = benchmark.pedantic(
        _time_planners, args=(db, specs), rounds=1, iterations=1
    )

    by_planner = {row["planner"]: row["seconds"] for row in rows}
    # Linear candidates beat full integration by a wide margin.
    assert by_planner["bqo"] < by_planner["cascades_full"]

    # BQO handles the 20+-join CUSTOMER queries in reasonable time.
    cdb, cqueries = customer_workload
    big = max(cqueries, key=lambda q: len(q.relations))
    graph = JoinGraph(big, cdb.catalog)
    estimator = CardinalityEstimator(cdb, big.alias_tables)
    started = time.perf_counter()
    optimize_join_graph(graph, estimator)
    big_seconds = time.perf_counter() - started
    rows.append(
        {
            "planner": f"bqo ({len(big.relations)}-relation query)",
            "seconds": round(big_seconds, 4),
        }
    )
    print()
    print(render_table(rows, "Ablation: optimization time "
                             "(paper: rule = 1/3 of original opt time)"))
    assert big_seconds < 30.0
