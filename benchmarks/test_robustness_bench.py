"""Robustness benchmark gate — enforcement is cheap, sheds and
degradations actually happen, recovery is clean.

Runs :func:`repro.bench.robustness.run_robustness` at a small scale
and asserts the acceptance bar with CI-noise-tolerant thresholds:

* deadline-check overhead on the warm path stays small (< 15% here;
  the committed ``BENCH_robustness.json`` artifact, generated on a
  quiet machine at the default scale, carries the tight < 2% number);
* the stress scenario records a non-zero enforced-timeout count and a
  non-zero graceful-degradation count, with zero failures in degrade
  mode (every budget breach still produced an answer);
* recovery answers after injected faults are checksum-identical to a
  serial oracle.
"""

from __future__ import annotations

import pytest

from repro.bench.robustness import run_robustness


@pytest.fixture(scope="module")
def payload():
    return run_robustness(scale=0.04, rounds=3, chaos_rounds=3)


def test_deadline_overhead_is_small_and_answers_identical(payload):
    overhead = payload["deadline_overhead"]
    assert overhead["checksums_identical"]
    assert overhead["overhead_fraction"] < 0.15


def test_stress_records_sheds_and_degradations(payload):
    stress = payload["stress"]
    assert stress["enforced_timeouts"] > 0
    assert stress["degradations"] > 0
    assert stress["degraded_failures"] == 0
    assert stress["answered_under_degradation"] == stress["degradations"]
    assert stress["shed_matches_slice"]


def test_recovery_is_clean_and_bounded(payload):
    recovery = payload["recovery"]
    assert recovery["answers_identical_to_serial_oracle"]
    assert recovery["max_recovery_seconds"] < 30.0  # sanity, not perf
