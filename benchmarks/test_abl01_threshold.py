"""Ablation 1 (paper Section 6.3 / 7.3) — the lambda_thresh sweep.

The paper profiles the filter-check overhead and deploys a 5%
elimination threshold for creating bitvector filters.  This ablation
sweeps the threshold on the TPC-DS-shaped workload:

* ``0.0``   — every join creates a filter (no cost-based selection),
* ``0.05``  — the paper's deployed value,
* ``0.5``   — aggressive pruning of filters,
* ``0.99``  — filters effectively disabled.

Expected shape: the deployed value is at least as good as filters-off
by a wide margin, and not materially worse than filters-everywhere
(the selection only drops near-useless filters).
"""

from __future__ import annotations

from repro.bench.harness import run_workload
from repro.bench.reporting import render_table

_THRESHOLDS = (0.0, 0.05, 0.5, 0.99)


def _sweep(db, queries) -> list[dict]:
    rows = []
    for threshold in _THRESHOLDS:
        result = run_workload(
            "tpcds",
            db,
            queries,
            pipelines=("bqo",),
            lambda_thresh=threshold,
        )
        rows.append(
            {"lambda_thresh": threshold, "total_cpu": result.total_cpu("bqo")}
        )
    base = rows[0]["total_cpu"] or 1.0
    for row in rows:
        row["normalized"] = round(row["total_cpu"] / base, 4)
        row["total_cpu"] = round(row["total_cpu"])
    return rows


def test_abl01_lambda_threshold(tpcds_workload, benchmark):
    db, queries = tpcds_workload
    rows = benchmark.pedantic(
        _sweep, args=(db, queries), rounds=1, iterations=1
    )
    print()
    print(render_table(rows, "Ablation: lambda_thresh sweep (paper deploys 0.05)"))

    by_threshold = {row["lambda_thresh"]: row["normalized"] for row in rows}
    # The deployed threshold is close to filters-everywhere...
    assert by_threshold[0.05] <= 1.05
    # ...and effectively-disabled filters are clearly worse.
    assert by_threshold[0.99] > by_threshold[0.05] * 1.10
    # Aggressive pruning sits between the deployed value and disabled.
    assert by_threshold[0.5] >= by_threshold[0.05] * 0.98
