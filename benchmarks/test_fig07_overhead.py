"""Figure 7 — profiling the overhead of bitvector filtering.

The paper runs a two-table PKFK join (store_sales x customer) varying
the fraction of customer rows selected, executing the same plan with and
without the bitvector filter, and finds the filtered plan wins once the
filter eliminates more than ~10% of probe tuples; 5% is then deployed as
``lambda_thresh``.

We rebuild the experiment on the SSB-shaped star (lineorder x customer),
sweep the same selectivity grid, print the normalized CPU series, and
assert the crossover lands in the single-digit-to-low-tens percent band.
"""

from __future__ import annotations

from repro.bench.reporting import render_table
from repro.cost.constants import DEFAULT_LAMBDA_THRESH
from repro.engine.executor import Executor
from repro.expr.expressions import Comparison, col, lit
from repro.plan.builder import build_right_deep
from repro.plan.nodes import HashJoinNode
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.query.spec import JoinPredicate, QuerySpec, RelationRef
from repro.workloads import star

from benchmarks.conftest import BENCH_SCALE

# Fractions of the dimension kept — the paper's Figure 7 grid is the
# *selectivity of the bitmap*; elimination fraction is 1 - kept.
_KEPT_FRACTIONS = (1.0, 0.99, 0.95, 0.9, 0.8, 0.5, 0.1, 0.05, 0.01, 0.001)


def _spec(db, kept: float) -> QuerySpec:
    n_customers = db.table("customer").num_rows
    threshold = max(1, int(round(n_customers * kept)))
    return QuerySpec(
        name=f"fig7_{kept}",
        relations=(
            RelationRef("lo", "lineorder"),
            RelationRef("c", "customer"),
        ),
        join_predicates=(JoinPredicate("lo", ("lo_custkey",), "c", ("c_custkey",)),),
        local_predicates={
            "c": Comparison("<=", col("c", "c_custkey"), lit(threshold))
        },
    )


def _run_pair(db, spec) -> tuple[float, float]:
    """Metered CPU of the same right-deep plan with / without filter."""
    graph = JoinGraph(spec, db.catalog)
    executor = Executor(db)

    with_plan = push_down_bitvectors(build_right_deep(graph, ["lo", "c"]))
    cpu_with = executor.execute(with_plan).metrics.metered_cpu()

    without = build_right_deep(graph, ["lo", "c"])
    for node in without.walk():
        if isinstance(node, HashJoinNode):
            node.creates_bitvector = False
    without = push_down_bitvectors(without)
    cpu_without = executor.execute(without).metrics.metered_cpu()
    return cpu_with, cpu_without


def test_fig07_overhead_profile(benchmark):
    db = star.build_database(scale=BENCH_SCALE)
    rows = []
    crossover_elimination = None
    for kept in _KEPT_FRACTIONS:
        spec = _spec(db, kept)
        cpu_with, cpu_without = _run_pair(db, spec)
        elimination = 1.0 - kept
        rows.append(
            {
                "bitmap_selectivity": kept,
                "eliminated": round(elimination, 3),
                "cpu_with_filter": round(cpu_with),
                "cpu_no_filter": round(cpu_without),
                "ratio": round(cpu_with / cpu_without, 4),
            }
        )
        if crossover_elimination is None and cpu_with < cpu_without:
            crossover_elimination = elimination
    print()
    print(render_table(
        rows,
        "Figure 7 — paper: filter wins past ~10% elimination; "
        "deployed lambda_thresh = 5%",
    ))

    # With nothing eliminated the filtered plan only pays overhead.
    assert rows[0]["ratio"] > 1.0
    # With almost everything eliminated the filter wins big.
    assert rows[-1]["ratio"] < 0.6
    # The crossover falls in the single-digit-to-low-tens band the
    # paper measured (it found ~10%).
    assert crossover_elimination is not None
    assert 0.005 <= crossover_elimination <= 0.25
    # The deployed threshold sits at or below the crossover, as in the
    # paper ("slightly smaller than the break-even" is the safe side).
    assert DEFAULT_LAMBDA_THRESH <= 2 * crossover_elimination

    spec = _spec(db, 0.5)
    benchmark.pedantic(_run_pair, args=(db, spec), rounds=3, iterations=1)
