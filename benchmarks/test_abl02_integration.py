"""Ablation 2 (paper Section 6.4) — Cascades integration options.

The paper offers three ways to integrate the BQO rule into a
Volcano/Cascades optimizer: full, alternative-plan, and shallow (the
deployed one).  We run all three plus the blind baseline through the
Cascades-lite engine on small-to-medium queries and compare executed
CPU and optimization time.

Expected shape: every mode matches the blind answer; aware modes are
never estimated worse than blind; full integration is the most
expensive to run (it enumerates complete plans) — the blow-up the
paper's linear-candidate analysis exists to avoid.
"""

from __future__ import annotations

import time

from repro.bench.reporting import render_table
from repro.cascades.engine import CascadesOptimizer
from repro.engine.executor import Executor
from repro.plan.builder import attach_aggregate
from repro.plan.pushdown import push_down_bitvectors

_MODES = ("blind", "full", "alternative", "shallow")
_QUERY_NAMES = ("ds_q02", "ds_q04", "ds_q09", "ds_q10", "ds_q16")


def _run_modes(db, specs) -> list[dict]:
    optimizer = CascadesOptimizer(db)
    executor = Executor(db)
    rows = []
    for mode in _MODES:
        total_cpu = 0.0
        total_estimate = 0.0
        optimize_seconds = 0.0
        for spec in specs:
            started = time.perf_counter()
            plan = optimizer.optimize(spec, mode)
            optimize_seconds += time.perf_counter() - started
            from repro.stats.estimator import CardinalityEstimator

            estimator = CardinalityEstimator(db, spec.alias_tables)
            total_estimate += CascadesOptimizer._aware_cost(plan, estimator)
            plan = attach_aggregate(push_down_bitvectors(plan), spec)
            total_cpu += executor.execute(plan).metrics.metered_cpu()
        rows.append(
            {
                "mode": mode,
                "total_cpu": round(total_cpu),
                "est_aware_cout": round(total_estimate),
                "optimize_s": round(optimize_seconds, 4),
            }
        )
    return rows


def test_abl02_integration_options(tpcds_workload, benchmark):
    db, queries = tpcds_workload
    specs = [q for q in queries if q.name in _QUERY_NAMES]
    assert len(specs) == len(_QUERY_NAMES)

    rows = benchmark.pedantic(_run_modes, args=(db, specs), rounds=1, iterations=1)
    print()
    print(render_table(
        rows, "Ablation: Cascades integration options (paper deploys shallow)"
    ))

    by_mode = {row["mode"]: row for row in rows}
    # Guaranteed by construction: full/alternative never choose a plan
    # whose bitvector-aware *estimate* is worse than the blind plan's.
    for mode in ("full", "alternative"):
        assert (
            by_mode[mode]["est_aware_cout"]
            <= by_mode["blind"]["est_aware_cout"] * 1.001
        )
    # Executed CPU tracks the estimates loosely (estimation error is a
    # stated regression source in the paper, Section 7.4).
    for mode in ("full", "alternative", "shallow"):
        assert by_mode[mode]["total_cpu"] <= by_mode["blind"]["total_cpu"] * 1.5
    # Full integration pays the plan-space blow-up in optimization time.
    assert by_mode["full"]["optimize_s"] >= by_mode["shallow"]["optimize_s"]
