"""Service-layer throughput — plan-cache amortization on repeat traffic.

The extended paper (arXiv:2005.03328) frames bitvector filtering as an
amortizable runtime artifact; "Query Optimization in the Wild"
(arXiv:2510.20082) identifies plan caching as the dominant industrial
lever for optimizer latency.  This scenario measures both levers at
once: a 20-query star workload (every query structurally distinct) is
replayed through :class:`repro.service.QueryService` twice — a *cold*
pass that parses and optimizes everything, then a *warm* pass with
fresh constants that should be answered from the plan cache.

Asserted (the PR's acceptance bar):

* the warm pass's total optimize-path time is at least 2x lower than
  the cold pass's (in practice it is orders of magnitude lower);
* ``ServiceStats`` exposes exactly 20 plan-cache misses (cold) and 20
  hits (warm);
* warm answers match a from-scratch optimize+execute of the same SQL.
"""

from __future__ import annotations

import itertools

from repro.bench.reporting import render_table
from repro.engine.executor import Executor
from repro.optimizer.pipelines import optimize_query
from repro.service import QueryService
from repro.sql.binder import parse_query
from repro.sql.parameterize import fingerprint_sql
from repro.workloads import star

from conftest import BENCH_SCALE

# Per-dimension join clause and parameterizable local predicate.
_DIMENSIONS = {
    "c": ("customer c", "lo.lo_custkey = c.c_custkey", "c.c_region = '{region}'"),
    "s": ("supplier s", "lo.lo_suppkey = s.s_suppkey", "s.s_nation = '{nation}'"),
    "p": ("part p", "lo.lo_partkey = p.p_partkey", "p.p_category = '{category}'"),
    "d": (
        "date_dim d",
        "lo.lo_orderdate = d.d_datekey",
        "d.d_year BETWEEN {year_lo} AND {year_hi}",
    ),
}

_COLD_CONSTANTS = {
    "region": "ASIA",
    "nation": "NATION07",
    "category": "MFGR#1",
    "year_lo": 1993,
    "year_hi": 1994,
}
_WARM_CONSTANTS = {
    "region": "EUROPE",
    "nation": "NATION12",
    "category": "MFGR#2",
    "year_lo": 1992,
    "year_hi": 1995,
}


def _workload_templates() -> list[str]:
    """20 structurally distinct star-query templates.

    All 15 non-empty dimension subsets with the default aggregate, plus
    5 multi-dimension subsets re-issued with a different select list.
    """
    subsets = [
        "".join(combo)
        for size in range(1, 5)
        for combo in itertools.combinations("cspd", size)
    ]
    assert len(subsets) == 15
    templates = [_template(keys, "COUNT(*) AS cnt, SUM(lo.lo_revenue) AS rev")
                 for keys in subsets]
    templates.extend(
        _template(keys, "SUM(lo.lo_quantity) AS qty")
        for keys in ("cs", "cp", "sd", "pd", "cspd")
    )
    return templates


def _template(dimension_keys: str, select_list: str) -> str:
    tables = ["lineorder lo"]
    conjuncts: list[str] = []
    for key in dimension_keys:
        table, join, predicate = _DIMENSIONS[key]
        tables.append(table)
        conjuncts.append(join)
        conjuncts.append(predicate)
    return (
        f"SELECT {select_list} FROM " + ", ".join(tables)
        + " WHERE " + " AND ".join(conjuncts)
    )


def _replay(database) -> dict:
    service = QueryService(database)
    templates = _workload_templates()
    assert len(templates) == 20
    cold_sqls = [t.format(**_COLD_CONSTANTS) for t in templates]
    warm_sqls = [t.format(**_WARM_CONSTANTS) for t in templates]

    # sanity: 20 distinct shapes, and constants do not perturb them
    fingerprints = {fingerprint_sql(sql).text for sql in cold_sqls}
    assert len(fingerprints) == 20
    assert fingerprints == {fingerprint_sql(sql).text for sql in warm_sqls}

    cold = [service.execute(sql, name=f"cold_{i}") for i, sql in enumerate(cold_sqls)]
    warm = [service.execute(sql, name=f"warm_{i}") for i, sql in enumerate(warm_sqls)]
    return {
        "service": service,
        "warm_sqls": warm_sqls,
        "cold_optimize": sum(r.metrics.optimize_seconds for r in cold),
        "warm_optimize": sum(r.metrics.optimize_seconds for r in warm),
        "cold_hits": sum(r.metrics.plan_cache_hit for r in cold),
        "warm_hits": sum(r.metrics.plan_cache_hit for r in warm),
        "warm_results": warm,
    }


def test_service_throughput_warm_replay(benchmark):
    database = star.build_database(scale=BENCH_SCALE)
    out = benchmark.pedantic(_replay, args=(database,), rounds=1, iterations=1)
    service: QueryService = out["service"]
    stats = service.stats()

    rows = [
        {"pass": "cold", "optimize_s": round(out["cold_optimize"], 4),
         "plan_cache_hits": out["cold_hits"]},
        {"pass": "warm", "optimize_s": round(out["warm_optimize"], 4),
         "plan_cache_hits": out["warm_hits"]},
        {"pass": "speedup",
         "optimize_s": round(out["cold_optimize"] / max(out["warm_optimize"], 1e-9), 1),
         "plan_cache_hits": ""},
    ]
    print()
    print(render_table(rows, "Service throughput — optimize-path time per pass"))
    print(f"filter cache: {service.filter_cache.hits} hits / "
          f"{service.filter_cache.misses} misses")

    # Cache counters are exposed and exact.
    assert stats.plan_cache_misses == 20
    assert stats.plan_cache_hits == 20
    assert out["cold_hits"] == 0
    assert out["warm_hits"] == 20

    # The acceptance bar: warm optimize path at least 2x cheaper.
    assert out["warm_optimize"] * 2 <= out["cold_optimize"], (
        f"warm pass {out['warm_optimize']:.4f}s not 2x faster than "
        f"cold pass {out['cold_optimize']:.4f}s"
    )

    # Warm answers (cached plan, fresh constants) match one-shot planning.
    executor = Executor(database)
    for i in (0, 7, 19):
        sql = out["warm_sqls"][i]
        spec = parse_query(database, sql, f"check_{i}")
        fresh = executor.execute(optimize_query(database, spec, "bqo").plan)
        served = out["warm_results"][i]
        for label in fresh.aggregates:
            assert float(served.scalar(label)) == float(fresh.scalar(label))
