"""Figure 9 — tuples output by operator class, Original vs BQO.

Paper result: BQO reduces the total tuples flowing through the plans —
0.65 (JOB), 0.92 (TPC-DS), 0.77 (CUSTOMER) of the original — with the
JOB join-operator output dropping from 0.50 to 0.24.

We assert the same shape: total tuple volume does not grow under BQO on
any workload and shrinks materially on average, with leaf volume (scan
outputs, which bitvector push-down prunes) driving the reduction.
"""

from __future__ import annotations

from repro.bench.reporting import figure9_rows, render_table

_PAPER_TOTALS = {"job": 0.65, "tpcds": 0.92, "customer": 0.77}


def test_fig09_tuples_by_operator(all_results, benchmark):
    all_rows = []
    totals = {}
    for name, result in all_results.items():
        rows = figure9_rows(result)
        all_rows.extend(rows)
        total = next(r for r in rows if r["operator"] == "total")
        totals[name] = total["bqo"]
        assert total["bqo"] <= 1.05, f"{name}: BQO inflated tuple volume"

        leaf = next(r for r in rows if r["operator"] == "leaf")
        assert leaf["bqo"] <= leaf["original"] + 1e-9, (
            f"{name}: BQO should not scan more tuples than Original"
        )

    print()
    print(render_table(
        all_rows,
        f"Figure 9 — normalized tuples by operator (paper: {_PAPER_TOTALS})",
    ))

    assert sum(totals.values()) / len(totals) < 0.95

    benchmark.pedantic(
        lambda: [figure9_rows(result) for result in all_results.values()],
        rounds=3,
        iterations=1,
    )
