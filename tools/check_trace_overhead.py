#!/usr/bin/env python3
"""Gate the committed trace-overhead artifact's acceptance numbers.

The committed ``BENCH_trace_overhead.json`` carries measurements from a
quiet machine; this checker holds it to the observability tier's
contract without re-measuring (CI runners are too noisy to regenerate
the tight numbers, so re-measurement gates live in
``benchmarks/test_trace_overhead.py`` with loose thresholds instead):

* ``armed_overhead_fraction`` < 3% — tracing armed is cheap;
* ``disarmed_noise_fraction`` <= 0.5% — disarmed cost is unmeasurable
  (two identical untraced runs differ by at most this);
* ``identity.all_identical`` — answers byte-identical with tracing on
  vs. off at parallelism 1 and 4;
* no ring-buffer drops, and the armed run actually recorded spans.

Used by CI and runnable standalone::

    python tools/check_trace_overhead.py BENCH_trace_overhead.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ARMED_LIMIT = 0.03
NOISE_LIMIT = 0.005


def check(path: Path) -> list[str]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    overhead = payload["overhead"]
    identity = payload["identity"]
    errors = []
    if overhead["armed_overhead_fraction"] >= ARMED_LIMIT:
        errors.append(
            f"armed overhead {overhead['armed_overhead_fraction']:.4f} "
            f">= {ARMED_LIMIT} limit"
        )
    if overhead["disarmed_noise_fraction"] > NOISE_LIMIT:
        errors.append(
            f"disarmed noise {overhead['disarmed_noise_fraction']:.4f} "
            f"> {NOISE_LIMIT} limit"
        )
    if not identity["all_identical"]:
        errors.append("checksums differ between tracing on and off")
    if sorted(level["parallelism"] for level in identity["levels"]) != [1, 4]:
        errors.append("identity must cover parallelism 1 and 4")
    if overhead["spans_per_round"] <= overhead["queries"]:
        errors.append("armed run recorded suspiciously few spans")
    if overhead["spans_dropped"] != 0:
        errors.append(f"{overhead['spans_dropped']} spans dropped")
    return errors


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else Path("BENCH_trace_overhead.json")
    errors = check(path)
    if errors:
        for error in errors:
            print(f"FAIL {path}: {error}")
        return 1
    print(f"OK {path}: armed overhead, noise floor, and identity gates hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
