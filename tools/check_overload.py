#!/usr/bin/env python3
"""Gate the committed overload artifact's acceptance numbers.

The committed ``BENCH_overload.json`` carries closed-loop measurements
from a quiet machine; this checker holds it to the admission tier's
overload contract without re-measuring (CI runners are too noisy to
regenerate the tight numbers, so a loose re-measurement gate lives in
``benchmarks/test_overload.py`` instead):

* levels cover at least 1x and 16x capacity, in increasing order;
* the 1x level admits everything (shed rate ~0) and every overloaded
  level actually sheds;
* admitted p99 stays within the deadline (small tolerance for the gap
  between cooperative checkpoints) at every level;
* sheds are refusals, not work: shed p99 < 10 ms and every shed
  carries a retry-after hint;
* goodput holds under overload — the most-loaded level keeps >= 80%
  of the 1x level's goodput, and goodput is monotone non-increasing
  across levels within a noise tolerance (overload must degrade
  gracefully, never collapse);
* every admitted answer matched the serial oracle checksum.

Used by CI and runnable standalone::

    python tools/check_overload.py BENCH_overload.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Admitted p99 may exceed the deadline by this factor: cooperative
#: checkpoints bound enforcement lag, not the artifact's honesty.
DEADLINE_TOLERANCE = 1.10
SHED_P99_LIMIT_SECONDS = 0.010
GOODPUT_FLOOR_FRACTION = 0.80
#: A later level's goodput may exceed an earlier one's by at most this
#: factor (closed-loop 1x can idle slightly between completions).
MONOTONE_TOLERANCE = 1.10
#: The 1x closed-loop level should admit essentially everything.
BASELINE_SHED_LIMIT = 0.01


def check(path: Path) -> list[str]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    levels = payload["levels"]
    deadline = payload["deadline_seconds"]
    errors = []

    factors = [level["factor"] for level in levels]
    if factors != sorted(factors) or len(factors) < 2:
        errors.append(f"levels must increase and cover >= 2 factors: {factors}")
    if factors and factors[0] != 1:
        errors.append(f"first level must be 1x capacity, got {factors[0]}x")
    if factors and factors[-1] < 16:
        errors.append(f"most-loaded level must reach 16x, got {factors[-1]}x")

    for level in levels:
        factor = level["factor"]
        if level["attempts"] == 0 or level["successes"] == 0:
            errors.append(f"{factor}x: no traffic recorded")
            continue
        if not level["checksums_identical"]:
            errors.append(
                f"{factor}x: {level['checksum_mismatches']} answers "
                "differed from the serial oracle"
            )
        if level["admitted_p99_seconds"] > deadline * DEADLINE_TOLERANCE:
            errors.append(
                f"{factor}x: admitted p99 {level['admitted_p99_seconds']:.4f}s "
                f"exceeds deadline {deadline:.4f}s "
                f"(x{DEADLINE_TOLERANCE} tolerance)"
            )
        if factor == 1 and level["shed_rate"] > BASELINE_SHED_LIMIT:
            errors.append(
                f"1x: shed rate {level['shed_rate']:.4f} > "
                f"{BASELINE_SHED_LIMIT} (capacity traffic must be admitted)"
            )
        if factor > 1:
            if level["sheds"] == 0:
                errors.append(
                    f"{factor}x: overloaded level shed nothing — load "
                    "generation is not exceeding capacity"
                )
            if level["shed_p99_seconds"] >= SHED_P99_LIMIT_SECONDS:
                errors.append(
                    f"{factor}x: shed p99 "
                    f"{level['shed_p99_seconds'] * 1e3:.2f} ms >= "
                    f"{SHED_P99_LIMIT_SECONDS * 1e3:.0f} ms limit"
                )
        if level["sheds_without_hint"]:
            errors.append(
                f"{factor}x: {level['sheds_without_hint']} sheds carried "
                "no retry-after hint"
            )

    goodputs = [level["goodput_qps"] for level in levels]
    if goodputs and goodputs[0] > 0:
        floor = GOODPUT_FLOOR_FRACTION * goodputs[0]
        if goodputs[-1] < floor:
            errors.append(
                f"goodput at {factors[-1]}x is {goodputs[-1]:.1f} qps, "
                f"below {GOODPUT_FLOOR_FRACTION:.0%} of the 1x level "
                f"({goodputs[0]:.1f} qps)"
            )
        for earlier, later, factor in zip(goodputs, goodputs[1:], factors[1:]):
            if later > earlier * MONOTONE_TOLERANCE:
                errors.append(
                    f"goodput rose to {later:.1f} qps at {factor}x "
                    f"(earlier level {earlier:.1f} qps) — levels are not "
                    "saturating capacity"
                )
    return errors


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else Path("BENCH_overload.json")
    errors = check(path)
    if errors:
        for error in errors:
            print(f"FAIL {path}: {error}")
        return 1
    print(
        f"OK {path}: shed latency, deadline, goodput, and oracle-identity "
        "gates hold"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
