#!/usr/bin/env python3
"""Docs link checker: every relative link in the Markdown docs must resolve.

Scans ``README.md`` and ``docs/*.md`` for Markdown links and verifies
that relative targets exist on disk (external ``http(s)``/``mailto``
links and pure ``#anchor`` links are skipped; ``#fragment`` suffixes on
file links are ignored).  Used by CI and by
``tests/docs/test_doc_links.py``.

Run standalone::

    python tools/check_doc_links.py        # exits 1 on broken links
"""

from __future__ import annotations

import re
from pathlib import Path

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files(root: Path) -> list[Path]:
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((root / "docs").glob("*.md")))
    return files


def broken_links(root: Path) -> list[tuple[Path, str]]:
    """All ``(source_file, target)`` pairs whose target does not exist."""
    broken: list[tuple[Path, str]] = []
    for source in doc_files(root):
        text = source.read_text(encoding="utf-8")
        for match in LINK_PATTERN.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (source.parent / path).resolve()
            if not resolved.exists():
                broken.append((source, target))
    return broken


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    failures = broken_links(root)
    for source, target in failures:
        print(f"{source.relative_to(root)}: broken link -> {target}")
    if failures:
        return 1
    checked = len(doc_files(root))
    print(f"doc links OK ({checked} files checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
