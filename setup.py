"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``bdist_wheel`` for the
PEP 517 editable path; this shim keeps the legacy
``--no-use-pep517`` editable install working offline.  All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
