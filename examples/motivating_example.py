"""The paper's Figure 2 walkthrough on the JOB-shaped database.

Shows why post-processing bitvector filters onto the blind optimizer's
best plan (P1) leaves a much cheaper plan (P2) undiscovered — and why a
blind optimizer can never pick P2 (it looks worse without filters).

This drives the optimizer pipelines directly; for the SQL-in,
results-out serving path (with plan caching for repeat traffic) see
``repro.service.QueryService`` and examples/quickstart.py.

Run:  python examples/motivating_example.py
"""

from __future__ import annotations

from repro import Executor, format_plan, optimize_query
from repro.plan.pushdown import strip_bitvectors
from repro.workloads import job_lite


def measure(database, plan, label: str) -> float:
    result = Executor(database).execute(plan)
    cpu = result.metrics.metered_cpu()
    print(f"--- {label}: metered CPU = {cpu:.0f}")
    print(format_plan(plan, result.metrics.cardinality_annotations()))
    print()
    return cpu


def main() -> None:
    database, queries = job_lite.build(scale=0.2)
    spec = next(q for q in queries if q.name == "job_fig2")
    print(f"Query (the paper's Figure 2):\n{spec}\n")

    p1_plain = optimize_query(database, spec, "original_nobv").plan
    cpu_p1_plain = measure(database, p1_plain, "P1: blind plan, no filters")

    p1_post = optimize_query(database, spec, "original").plan
    cpu_p1_post = measure(database, p1_post, "P1 + post-processed filters")

    p2 = optimize_query(database, spec, "bqo").plan
    cpu_p2 = measure(database, p2, "P2: bitvector-aware plan")

    p2_plain = strip_bitvectors(optimize_query(database, spec, "bqo").plan)
    cpu_p2_plain = measure(database, p2_plain, "P2 without filters")

    print("Summary (paper: 10939 / 2261 / 760 / 12831):")
    print(f"  P1 no filters    : {cpu_p1_plain:9.0f}")
    print(f"  P1 post-processed: {cpu_p1_post:9.0f}")
    print(f"  P2 with filters  : {cpu_p2:9.0f}")
    print(f"  P2 no filters    : {cpu_p2_plain:9.0f}")
    print()
    print("P2 only wins once filters are part of the cost model —")
    print("which is exactly the paper's argument for bitvector-aware")
    print("query optimization.")


if __name__ == "__main__":
    main()
