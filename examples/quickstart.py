"""Quickstart: optimize and execute a decision-support query.

Builds the SSB-style star schema, writes a query as SQL, optimizes it
with the baseline ("original": blind snowflake heuristics + post-hoc
bitvector push-down) and with the paper's bitvector-aware optimizer
("bqo"), executes both plans, and compares metered CPU.

Then switches to the serving path: a ``QueryService`` answers the same
SQL end-to-end and, on repeat traffic with different constants, skips
parsing and optimization entirely via its fingerprint-keyed plan cache
(see ``repro.service`` and docs/ARCHITECTURE.md).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Executor, QueryService, format_plan, optimize_query, parse_query
from repro.workloads import star


def main() -> None:
    print("Building the SSB-style star schema (scale 0.2) ...")
    database = star.build_database(scale=0.2)
    print(f"  {database!r}")
    for name in database.table_names:
        print(f"    {name:<10} {database.table(name).num_rows:>8} rows")

    sql = """
        SELECT COUNT(*) AS orders, SUM(lo.lo_revenue) AS revenue
        FROM lineorder lo, customer c, supplier s, date_dim d
        WHERE lo.lo_custkey = c.c_custkey
          AND lo.lo_suppkey = s.s_suppkey
          AND lo.lo_orderdate = d.d_datekey
          AND c.c_region = 'ASIA'
          AND s.s_nation = 'NATION07'
          AND d.d_year BETWEEN 1993 AND 1994
    """
    spec = parse_query(database, sql, "quickstart")
    print(f"\nQuery:\n{spec}\n")

    executor = Executor(database)
    for pipeline in ("original", "bqo"):
        optimized = optimize_query(database, spec, pipeline)
        result = executor.execute(optimized.plan)
        print(f"=== pipeline: {pipeline} ===")
        print(format_plan(optimized.plan, result.metrics.cardinality_annotations()))
        print(f"  orders  = {result.scalar('orders')}")
        print(f"  revenue = {float(result.scalar('revenue')):.2f}")
        print(f"  metered CPU = {result.metrics.metered_cpu():.0f}")
        print(f"  tuples by operator: {result.metrics.tuples_by_kind()}")
        print()

    print("=== serving path: QueryService with plan + filter caching ===")
    service = QueryService(database, pipeline="bqo")
    repeat = sql.replace("'ASIA'", "'EUROPE'").replace("NATION07", "NATION03")
    for label, text in (("cold", sql), ("warm (new constants)", repeat)):
        answer = service.execute(text, name=label)
        print(
            f"  {label:<22} orders={answer.scalar('orders')}"
            f"  plan cache {'HIT' if answer.metrics.plan_cache_hit else 'MISS'}"
            f"  optimize path {answer.metrics.optimize_seconds * 1e3:.2f} ms"
        )
    stats = service.stats()
    print(f"  service stats: {stats.queries} queries, "
          f"{stats.plan_cache_hits} plan-cache hits, "
          f"{stats.filter_cache_hits} filter-cache hits")

    print()
    print("=== morsel-driven parallel execution (byte-identical answers) ===")
    parallel = QueryService(database, pipeline="bqo", parallelism=4,
                            morsel_rows=16384)
    answer = parallel.execute(sql, name="parallel")
    print(f"  parallelism=4 orders={answer.scalar('orders')}")

    print()
    print("=== zone maps: morsel-level data skipping ===")
    # A selective band over the date key: on date-clustered facts (the
    # natural decision-support layout) whole morsels fall outside the
    # band and are skipped before any row is read.
    banded = sql.replace("BETWEEN 1993 AND 1994", "= 1997")
    answer = parallel.execute(banded, name="banded")
    print(f"  pruning counters: morsels_pruned={answer.metrics.morsels_pruned}"
          f"  rows_skipped={answer.metrics.rows_skipped}")
    explain = parallel.explain(banded)
    header = [line for line in explain.splitlines() if line.startswith("--")]
    print("  explain header:")
    for line in header:
        print(f"    {line}")

    print()
    print("=== resilience: deadlines, budgets, failure isolation ===")
    from repro import ResourceBudget
    from repro.errors import QueryTimeout

    guarded = QueryService(
        database,
        pipeline="bqo",
        parallelism=4,
        deadline_seconds=5.0,                    # per-query wall clock
        budget=ResourceBudget(max_rows_copied=5_000_000),
        degrade="serial",                        # budget breach: answer anyway
    )
    answer = guarded.execute(sql, name="guarded")
    print(f"  under deadline+budget: orders={answer.scalar('orders')}"
          f"  degraded={answer.metrics.degraded}")
    try:
        guarded.execute(sql, name="shed", deadline_seconds=1e-7)
    except QueryTimeout as exc:
        print(f"  shed at the first checkpoint: {exc}")
    # Batches isolate failures: a broken statement occupies its own
    # slot with .error set, and every sibling result still arrives.
    results = guarded.run_many([sql, "SELECT broken FROM nowhere x"])
    for res in results:
        outcome = "ok" if res.ok else f"error: {type(res.error).__name__}"
        print(f"  {res.metrics.query:<8} {outcome}")
    stats = guarded.stats()
    print(f"  stats: {stats.timeouts} timeouts, {stats.degradations} "
          f"degradations, {stats.failures} failures")

    print()
    print("=== serving real traffic: the admission-controlled asyncio facade ===")
    import asyncio

    from repro.errors import QueryShed
    from repro.service import AdmissionConfig, AsyncQueryService

    async def serve() -> None:
        # Tiny queue + strict per-client quota so overload is visible
        # in a quickstart; production configs run much wider.
        config = AdmissionConfig(queue_capacity=4, quota_rate=2.0,
                                 quota_burst=3.0)
        async with AsyncQueryService(
            database, pipeline="bqo", max_concurrency=2,
            deadline_seconds=5.0, admission=config,
        ) as svc:
            answered = sheds = 0
            for i in range(8):
                try:
                    result = await svc.execute(
                        sql, name=f"async_{i}", client="dashboard",
                        priority="interactive",
                    )
                    answered += 1
                    if i == 0:
                        print(f"  awaited orders={result.scalar('orders')}")
                except QueryShed as shed:
                    sheds += 1
                    if sheds == 1:
                        print(f"  shed ({shed.reason}): retry in "
                              f"{shed.retry_after:.2f}s")
            stats = svc.admission_stats()
            print(f"  {answered} answered, {sheds} shed "
                  f"(shed_rate={stats.shed_rate:.2f}, "
                  f"admitted={stats.admitted})")

    asyncio.run(serve())


if __name__ == "__main__":
    main()
