"""Profiling bitvector filter overhead (the paper's Figure 7).

Runs the two-table micro-benchmark — a PKFK hash join whose build side
is filtered to a controlled fraction — with and without the bitvector
filter, locates the break-even elimination fraction, and shows why the
paper deploys lambda_thresh = 5%.  (The construction cost profiled here
is what the ``repro.service.QueryService`` bitvector filter cache
amortizes across a workload.)

Run:  python examples/threshold_tuning.py
"""

from __future__ import annotations

from repro.cost.constants import DEFAULT_COSTS, DEFAULT_LAMBDA_THRESH
from repro.engine.executor import Executor
from repro.expr.expressions import Comparison, col, lit
from repro.plan.builder import build_right_deep
from repro.plan.nodes import HashJoinNode
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.query.spec import JoinPredicate, QuerySpec, RelationRef
from repro.workloads import star


def run(database, kept: float) -> tuple[float, float]:
    n_customers = database.table("customer").num_rows
    threshold = max(1, int(round(n_customers * kept)))
    spec = QuerySpec(
        name="profile",
        relations=(
            RelationRef("lo", "lineorder"),
            RelationRef("c", "customer"),
        ),
        join_predicates=(JoinPredicate("lo", ("lo_custkey",), "c", ("c_custkey",)),),
        local_predicates={
            "c": Comparison("<=", col("c", "c_custkey"), lit(threshold))
        },
    )
    graph = JoinGraph(spec, database.catalog)
    executor = Executor(database)

    filtered = push_down_bitvectors(build_right_deep(graph, ["lo", "c"]))
    cpu_filtered = executor.execute(filtered).metrics.metered_cpu()

    plain = build_right_deep(graph, ["lo", "c"])
    for node in plain.walk():
        if isinstance(node, HashJoinNode):
            node.creates_bitvector = False
    plain = push_down_bitvectors(plain)
    cpu_plain = executor.execute(plain).metrics.metered_cpu()
    return cpu_filtered, cpu_plain


def main() -> None:
    database = star.build_database(scale=0.3)
    print("customer x lineorder PKFK join; sweep the fraction of")
    print("customers selected and compare the same plan with/without")
    print("the bitvector filter.\n")
    print(f"{'kept':>8} {'eliminated':>11} {'with filter':>12} "
          f"{'no filter':>10} {'ratio':>7}")
    crossover = None
    for kept in (1.0, 0.99, 0.95, 0.9, 0.8, 0.5, 0.2, 0.1, 0.05, 0.01):
        cpu_filtered, cpu_plain = run(database, kept)
        ratio = cpu_filtered / cpu_plain
        marker = ""
        if crossover is None and ratio < 1.0:
            crossover = 1.0 - kept
            marker = "   <- break-even"
        print(f"{kept:>8.2f} {1 - kept:>11.2f} {cpu_filtered:>12.0f} "
              f"{cpu_plain:>10.0f} {ratio:>7.3f}{marker}")

    print(f"\nBreak-even elimination fraction: ~{crossover:.0%}")
    print(f"Analytic Cf/Cp break-even      : "
          f"{DEFAULT_COSTS.break_even_elimination:.0%}")
    print(f"Deployed lambda_thresh          : {DEFAULT_LAMBDA_THRESH:.0%} "
          "(the paper picks a value slightly below break-even)")


if __name__ == "__main__":
    main()
