"""Bring your own schema: build tables, declare keys, run BQO.

Shows the full public API surface on a user-defined retail schema:
table construction from numpy arrays, foreign keys, CSV round-trip,
SQL over the custom schema, all optimizer pipelines, and the Cascades
integration modes from Section 6.4.  Once a schema is built this way,
``repro.service.QueryService`` serves SQL against it end-to-end with
plan and bitvector-filter caching (see examples/quickstart.py).

Run:  python examples/custom_schema.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    Database,
    Executor,
    ForeignKey,
    Table,
    format_plan,
    optimize_query,
    parse_query,
)
from repro.cascades import CascadesOptimizer
from repro.plan.builder import attach_aggregate
from repro.plan.pushdown import push_down_bitvectors
from repro.storage.csvio import table_from_csv, table_to_csv


def build_database(seed: int = 11) -> Database:
    rng = np.random.default_rng(seed)
    database = Database("retail")

    n_products, n_stores, n_sales = 1500, 40, 60_000
    products = Table.from_arrays(
        "products",
        {
            "product_id": np.arange(n_products),
            "category": np.array(
                [f"cat_{i % 12}" for i in range(n_products)], dtype=object
            ),
            "price": rng.uniform(1, 500, n_products),
        },
        key=("product_id",),
    )
    stores = Table.from_arrays(
        "stores",
        {
            "store_id": np.arange(n_stores),
            "region": np.array(
                [f"region_{i % 5}" for i in range(n_stores)], dtype=object
            ),
        },
        key=("store_id",),
    )
    sales = Table.from_arrays(
        "sales",
        {
            "product_id": rng.integers(0, n_products, n_sales),
            "store_id": rng.integers(0, n_stores, n_sales),
            "quantity": rng.integers(1, 20, n_sales),
        },
    )
    for table in (products, stores, sales):
        database.add_table(table)
    database.add_foreign_key(
        ForeignKey("sales", ("product_id",), "products", ("product_id",))
    )
    database.add_foreign_key(
        ForeignKey("sales", ("store_id",), "stores", ("store_id",))
    )
    database.validate_foreign_keys()
    return database


def main() -> None:
    database = build_database()
    print(f"Built {database!r}")

    # CSV round-trip: persist and reload a dimension table.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "stores.csv"
        table_to_csv(database.table("stores"), path)
        reloaded = table_from_csv(database.table("stores").schema, path)
        print(f"CSV round-trip: stores -> {path.name} -> {reloaded.num_rows} rows")

    sql = """
        SELECT p.category, COUNT(*) AS n, SUM(s.quantity) AS units
        FROM sales s, products p, stores st
        WHERE s.product_id = p.product_id AND s.store_id = st.store_id
          AND p.price > 400 AND st.region = 'region_2'
        GROUP BY p.category
    """
    spec = parse_query(database, sql, "retail_report")
    executor = Executor(database)

    print("\nPipelines:")
    for pipeline in ("original", "bqo", "dp"):
        optimized = optimize_query(database, spec, pipeline)
        result = executor.execute(optimized.plan)
        print(f"  {pipeline:<9} metered CPU = "
              f"{result.metrics.metered_cpu():>9.0f}  "
              f"groups = {result.num_rows}")

    print("\nCascades integration modes (Section 6.4):")
    cascades = CascadesOptimizer(database)
    for mode in ("blind", "full", "alternative", "shallow"):
        plan = cascades.optimize(spec, mode)
        plan = attach_aggregate(push_down_bitvectors(plan), spec)
        result = executor.execute(plan)
        print(f"  {mode:<12} metered CPU = {result.metrics.metered_cpu():>9.0f}")

    optimized = optimize_query(database, spec, "bqo")
    result = executor.execute(optimized.plan)
    print("\nBQO plan with runtime cardinalities:")
    print(format_plan(optimized.plan, result.metrics.cardinality_annotations()))


if __name__ == "__main__":
    main()
