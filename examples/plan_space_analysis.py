"""Theorems 4.1 / 5.1 in action: the linear candidate set.

Enumerates EVERY cross-product-free right-deep plan of a random
snowflake query, computes each plan's exact bitvector-aware Cout by
executing it, and shows that the n+1 candidate plans of the paper's
analysis contain the global minimum — while the full space is orders of
magnitude larger.  (This linear candidate set is what keeps plan-cache
misses cheap in the ``repro.service.QueryService`` serving path.)

Run:  python examples/plan_space_analysis.py
"""

from __future__ import annotations

from collections import Counter

from repro.cost.truecard import true_cout
from repro.optimizer.candidates import snowflake_candidate_orders
from repro.optimizer.enumerate import right_deep_orders
from repro.plan.builder import build_right_deep
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.workloads.synthetic import random_snowflake


def cost_of(database, graph, order) -> float:
    plan = push_down_bitvectors(build_right_deep(graph, list(order)))
    return true_cout(plan, database)


def main() -> None:
    database, spec = random_snowflake(
        seed=7, branch_lengths=(1, 2, 2), fact_rows=2000, dim_rows=80
    )
    graph = JoinGraph(spec, database.catalog)
    print(f"Snowflake query: fact + branches of lengths (1, 2, 2)\n{spec}\n")

    print("Enumerating the FULL right-deep plan space ...")
    full_costs = []
    for order in right_deep_orders(graph):
        full_costs.append((cost_of(database, graph, order), tuple(order)))
    full_costs.sort()
    print(f"  {len(full_costs)} plans; Cout range "
          f"[{full_costs[0][0]:.0f} .. {full_costs[-1][0]:.0f}]")

    print("\nCost distribution (text histogram):")
    lows = full_costs[0][0]
    highs = full_costs[-1][0]
    buckets = Counter()
    for cost, _ in full_costs:
        bucket = int(9.999 * (cost - lows) / max(1e-9, highs - lows))
        buckets[bucket] += 1
    for bucket in range(10):
        bar = "#" * buckets.get(bucket, 0)
        lo = lows + bucket * (highs - lows) / 10
        print(f"  {lo:10.0f}+ | {bar}")

    print("\nEvaluating the n+1 candidates of Theorem 5.1 ...")
    candidate_costs = []
    for order in snowflake_candidate_orders(graph, "f"):
        candidate_costs.append((cost_of(database, graph, order), tuple(order)))
    candidate_costs.sort()
    for cost, order in candidate_costs:
        print(f"  Cout {cost:10.0f}   T({', '.join(order)})")

    best_full = full_costs[0][0]
    best_candidate = candidate_costs[0][0]
    print(f"\n  full-space minimum : {best_full:.0f}")
    print(f"  candidate minimum  : {best_candidate:.0f}")
    print(f"  candidates searched: {len(candidate_costs)} "
          f"(vs {len(full_costs)} in the full space)")
    assert abs(best_full - best_candidate) < 1e-6 * max(1.0, best_full)
    print("\nThe linear candidate set contains the optimum — Theorem 5.1 holds.")


if __name__ == "__main__":
    main()
