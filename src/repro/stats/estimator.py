"""Cardinality and selectivity estimation.

This is the estimator every planning component shares.  It follows the
standard System-R lineage the paper's host optimizer also descends from:

* column-vs-literal predicates use histograms / distinct counts,
* LIKE and other opaque text predicates are estimated from a stored row
  sample,
* conjunctions assume independence,
* equi-join selectivity is ``1 / max(ndv(left), ndv(right))``,
* semi-join (bitvector) selectivity uses distinct-value containment.

The estimator is deliberately *good but imperfect* — the paper
attributes part of its regressions to exactly this gap (Section 7.4).
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.expr.eval import like_to_regex
from repro.expr.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Like,
    Literal,
    Not,
    Or,
    referenced_columns,
)
from repro.stats.statistics import ColumnStatistics
from repro.storage.database import Database

_DEFAULT_SELECTIVITY = 0.33
_MIN_ROWS = 1.0


class CardinalityEstimator:
    """Estimates base-table, predicate, join, and semi-join cardinalities.

    Parameters
    ----------
    database:
        Provides table statistics.
    alias_tables:
        Maps query aliases to table names, so expressions over aliases
        can be resolved to statistics.
    """

    def __init__(self, database: Database, alias_tables: dict[str, str]) -> None:
        self._database = database
        self._alias_tables = dict(alias_tables)

    # ------------------------------------------------------------------
    # Base tables
    # ------------------------------------------------------------------

    def table_rows(self, alias: str) -> float:
        stats = self._table_stats(alias)
        return float(stats.num_rows)

    def base_cardinality(self, alias: str, predicate: Expression | None) -> float:
        """Estimated rows of ``alias`` after its local predicate."""
        rows = self.table_rows(alias)
        if predicate is None:
            return max(_MIN_ROWS, rows)
        return max(_MIN_ROWS, rows * self.predicate_selectivity(predicate))

    # ------------------------------------------------------------------
    # Predicate selectivity
    # ------------------------------------------------------------------

    def predicate_selectivity(self, expression: Expression) -> float:
        """Estimated fraction of rows satisfying ``expression``."""
        selectivity = self._selectivity(expression)
        return float(min(1.0, max(0.0, selectivity)))

    def _selectivity(self, expression: Expression) -> float:
        if isinstance(expression, And):
            product = 1.0
            for operand in expression.operands:
                product *= self._selectivity(operand)
            return product
        if isinstance(expression, Or):
            miss = 1.0
            for operand in expression.operands:
                miss *= 1.0 - self._selectivity(operand)
            return 1.0 - miss
        if isinstance(expression, Not):
            return 1.0 - self._selectivity(expression.operand)
        if isinstance(expression, Comparison):
            return self._comparison_selectivity(expression)
        if isinstance(expression, Between):
            return self._between_selectivity(expression)
        if isinstance(expression, InList):
            return self._in_selectivity(expression)
        if isinstance(expression, Like):
            return self._like_selectivity(expression)
        return _DEFAULT_SELECTIVITY

    def _comparison_selectivity(self, expression: Comparison) -> float:
        column, literal = _column_vs_literal(expression.left, expression.right)
        if column is None:
            # column-vs-column or literal-vs-literal inside one table;
            # fall back to a fixed guess.
            return _DEFAULT_SELECTIVITY
        stats = self._column_stats(column)
        op = expression.op
        if _column_on_right(expression):
            op = _flip_comparison(op)
        value = literal.value
        if op == "=":
            return self._eq_selectivity(stats, value)
        if op == "<>":
            return 1.0 - self._eq_selectivity(stats, value)
        if not isinstance(value, (int, float)) or stats.histogram is None:
            return self._sample_selectivity(stats, op, value)
        if op == "<":
            return stats.histogram.selectivity_le(float(value) - 0.5) \
                if stats.column_type.name == "INT64" \
                else stats.histogram.selectivity_le(float(value))
        if op == "<=":
            return stats.histogram.selectivity_le(float(value))
        if op == ">":
            return 1.0 - stats.histogram.selectivity_le(float(value))
        if op == ">=":
            half = 0.5 if stats.column_type.name == "INT64" else 0.0
            return 1.0 - stats.histogram.selectivity_le(float(value) - half)
        return _DEFAULT_SELECTIVITY

    def _eq_selectivity(self, stats: ColumnStatistics, value: object) -> float:
        if isinstance(value, (int, float)) and stats.histogram is not None:
            return stats.histogram.selectivity_eq(float(value))
        if stats.num_distinct > 0:
            return 1.0 / stats.num_distinct
        return _DEFAULT_SELECTIVITY

    def _between_selectivity(self, expression: Between) -> float:
        if not isinstance(expression.operand, ColumnRef):
            return _DEFAULT_SELECTIVITY
        stats = self._column_stats(expression.operand)
        low = expression.low.value if isinstance(expression.low, Literal) else None
        high = expression.high.value if isinstance(expression.high, Literal) else None
        if (
            stats.histogram is not None
            and isinstance(low, (int, float))
            and isinstance(high, (int, float))
        ):
            return stats.histogram.selectivity_range(float(low), float(high))
        return _DEFAULT_SELECTIVITY

    def _in_selectivity(self, expression: InList) -> float:
        if not isinstance(expression.operand, ColumnRef):
            return _DEFAULT_SELECTIVITY
        stats = self._column_stats(expression.operand)
        total = 0.0
        for value in expression.values:
            total += self._eq_selectivity(stats, value)
        return min(1.0, total)

    def _like_selectivity(self, expression: Like) -> float:
        if not isinstance(expression.operand, ColumnRef):
            return _DEFAULT_SELECTIVITY
        stats = self._column_stats(expression.operand)
        if len(stats.sample) == 0:
            return _DEFAULT_SELECTIVITY
        regex = like_to_regex(expression.pattern)
        matches = sum(
            1 for value in stats.sample.tolist() if regex.match(str(value))
        )
        # Laplace smoothing so a zero-match sample never estimates 0.
        return (matches + 1.0) / (len(stats.sample) + 2.0)

    def _sample_selectivity(
        self, stats: ColumnStatistics, op: str, value: object
    ) -> float:
        if len(stats.sample) == 0:
            return _DEFAULT_SELECTIVITY
        sample = stats.sample
        try:
            if op == "<":
                matches = int(np.sum(sample < value))
            elif op == "<=":
                matches = int(np.sum(sample <= value))
            elif op == ">":
                matches = int(np.sum(sample > value))
            elif op == ">=":
                matches = int(np.sum(sample >= value))
            else:
                return _DEFAULT_SELECTIVITY
        except TypeError:
            return _DEFAULT_SELECTIVITY
        return (matches + 1.0) / (len(sample) + 2.0)

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------

    def column_distinct(self, alias: str, column: str) -> float:
        stats = self._table_stats(alias)
        return float(max(1, stats.column(column).num_distinct))

    def join_selectivity(
        self,
        left_alias: str,
        left_columns: tuple[str, ...],
        right_alias: str,
        right_columns: tuple[str, ...],
    ) -> float:
        """Equi-join selectivity relative to the cross product.

        Multi-column joins multiply per-column selectivities (the usual
        independence assumption), floored so huge keys never estimate 0.
        """
        selectivity = 1.0
        for left_col, right_col in zip(left_columns, right_columns):
            ndv_left = self.column_distinct(left_alias, left_col)
            ndv_right = self.column_distinct(right_alias, right_col)
            selectivity *= 1.0 / max(ndv_left, ndv_right)
        return max(selectivity, 1e-12)

    def join_cardinality(
        self,
        left_rows: float,
        right_rows: float,
        left_alias: str,
        left_columns: tuple[str, ...],
        right_alias: str,
        right_columns: tuple[str, ...],
    ) -> float:
        selectivity = self.join_selectivity(
            left_alias, left_columns, right_alias, right_columns
        )
        return max(_MIN_ROWS, left_rows * right_rows * selectivity)

    def semijoin_selectivity(
        self,
        probe_alias: str,
        probe_columns: tuple[str, ...],
        build_alias: str,
        build_columns: tuple[str, ...],
        build_fraction: float,
    ) -> float:
        """Fraction of probe rows surviving a bitvector from the build side.

        ``build_fraction`` is the estimated fraction of build-side rows
        remaining after the build side's own predicates/filters; the
        distinct count of the build key shrinks accordingly (standard
        distinct-value scaling).
        """
        survival = 1.0
        for probe_col, build_col in zip(probe_columns, build_columns):
            ndv_probe = self.column_distinct(probe_alias, probe_col)
            ndv_build = self.column_distinct(build_alias, build_col)
            remaining_build_ndv = ndv_build * min(1.0, max(0.0, build_fraction))
            survival *= min(1.0, remaining_build_ndv / max(ndv_probe, 1.0))
        return float(min(1.0, max(0.0, survival)))

    # ------------------------------------------------------------------
    # Zone-map skipping (morsel-level data skipping)
    # ------------------------------------------------------------------
    #
    # These estimates *peek* at the zone maps the executor has already
    # built (repro.storage.zonemaps) and never trigger construction, so
    # consulting them inside the optimizer costs O(morsels) interval
    # checks — zero when no synopsis is resident yet (cold optimizers
    # behave exactly as before).  They quantify rows the engine will
    # eliminate *for free* by skipping whole morsels, which cost-based
    # filter selection uses to avoid deploying bitvectors whose work
    # zone maps already do (see repro.optimizer.filter_selection).

    def zone_map_skip_fraction(self, alias: str, predicate: Expression) -> float:
        """Fraction of the table's rows in morsels ``predicate`` prunes.

        A lower bound on the rows the executor skips without evaluating
        the predicate; ``0.0`` whenever no compatible zone map is
        resident.  Only synopses sharing one morsel partitioning are
        combined (bounds of differently-shaped maps do not align).
        The sweep itself is the executor's
        (:func:`repro.storage.zonemaps.predicate_prune_flags`), so the
        estimate and the realized skipping cannot diverge.
        """
        from repro.storage.zonemaps import (
            predicate_prune_flags,
            pruned_row_fraction,
        )

        table_name = self._alias_tables.get(alias)
        if table_name is None:
            return 0.0
        num_rows = self._database.table(table_name).num_rows
        if num_rows == 0:
            return 0.0
        columns = {
            column
            for ref_alias, column in referenced_columns(predicate)
            if ref_alias == alias
        }
        zones = self._resident_zone_maps(table_name, columns)
        if not zones:
            return 0.0
        ranges = next(iter(zones.values())).ranges
        flags = predicate_prune_flags(
            predicate, alias, zones.get, len(ranges)
        )
        return pruned_row_fraction(ranges, flags, num_rows)

    def bitvector_zone_skip_fraction(
        self,
        probe_alias: str,
        probe_columns: tuple[str, ...],
        build_alias: str,
        build_columns: tuple[str, ...],
    ) -> float:
        """Fraction of probe rows in morsels disjoint from the build keys.

        The build key range comes from column statistics (min/max);
        the probe side from resident zone maps.  A morsel disjoint on
        *any* key column cannot match — the sweep is the executor's
        (:func:`repro.storage.zonemaps.filter_prune_flags`), so the
        estimate and the realized skipping cannot diverge.
        """
        from repro.storage.zonemaps import (
            filter_prune_flags,
            pruned_row_fraction,
        )

        table_name = self._alias_tables.get(probe_alias)
        if table_name is None:
            return 0.0
        num_rows = self._database.table(table_name).num_rows
        if num_rows == 0:
            return 0.0
        key_bounds: list[tuple | None] = []
        for build_col in build_columns:
            stats = self._table_stats(build_alias).column(build_col)
            if stats.min_value is None or stats.max_value is None:
                key_bounds.append(None)
            else:
                key_bounds.append((stats.min_value, stats.max_value))
        if all(bounds is None for bounds in key_bounds):
            return 0.0
        zones = self._resident_zone_maps(table_name, set(probe_columns))
        if len(zones) < len(set(probe_columns)):
            # Every probe key column needs an aligned synopsis; a
            # missing one makes the per-column zip below unsound.
            return 0.0
        ranges = next(iter(zones.values())).ranges
        column_zones = [zones[column] for column in probe_columns]
        flags = filter_prune_flags(key_bounds, column_zones, len(ranges))
        return pruned_row_fraction(ranges, flags, num_rows)

    # ------------------------------------------------------------------
    # Parallel build-side discounting
    # ------------------------------------------------------------------

    def filter_build_discount(
        self, build_rows: float, parallelism: int
    ) -> float:
        """Effective divisor on a filter's build cost at this parallelism.

        The executor partitions a join's bitvector build across the
        worker pool (partition-build-then-merge, see
        :meth:`repro.engine.executor.Executor._build_join_filter`), so
        the optimizer should charge the build pass at roughly
        ``cost / discount`` when trading it against probe savings.  The
        model mirrors the executor's own dispatch rules: serial below
        :data:`~repro.storage.partition.MIN_PARALLEL_ROWS` (discount
        1.0), and never crediting more workers than can each be fed a
        :data:`~repro.storage.partition.MIN_MORSEL_ROWS`-sized
        partition — tiny builds cannot amortize per-morsel dispatch no
        matter how wide the pool is.
        """
        from repro.storage.partition import MIN_MORSEL_ROWS, MIN_PARALLEL_ROWS

        parallelism = int(parallelism)
        if parallelism <= 1 or build_rows < MIN_PARALLEL_ROWS:
            return 1.0
        return float(
            min(float(parallelism), max(build_rows / MIN_MORSEL_ROWS, 1.0))
        )

    def _resident_zone_maps(self, table_name: str, columns) -> dict:
        """Resident zone maps for ``columns`` sharing one partitioning."""
        zones: dict = {}
        reference_ranges = None
        for column in sorted(columns):
            zone = self._database.zone_map_if_built(table_name, column)
            if zone is None:
                continue
            if reference_ranges is None:
                reference_ranges = zone.ranges
            if zone.ranges == reference_ranges:
                zones[column] = zone
        return zones

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _table_stats(self, alias: str):
        try:
            table_name = self._alias_tables[alias]
        except KeyError:
            raise QueryError(f"unknown alias {alias!r}") from None
        return self._database.stats(table_name)

    def _column_stats(self, ref: ColumnRef) -> ColumnStatistics:
        return self._table_stats(ref.alias).column(ref.column)


def _column_vs_literal(
    left: Expression, right: Expression
) -> tuple[ColumnRef | None, Literal | None]:
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return left, right
    if isinstance(right, ColumnRef) and isinstance(left, Literal):
        return right, left
    return None, None


def _column_on_right(expression: Comparison) -> bool:
    return isinstance(expression.right, ColumnRef) and isinstance(
        expression.left, Literal
    )


def _flip_comparison(op: str) -> str:
    flips = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
    return flips[op]
