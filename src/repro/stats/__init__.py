"""Statistics substrate: histograms, column/table stats, estimation.

A real cost-based optimizer (the paper uses SQL Server's) needs
cardinality estimation.  This package provides equi-depth histograms,
distinct counts, row samples for LIKE estimation, and the selectivity /
join-cardinality estimator used by all planning components.
"""

from repro.stats.histogram import EquiDepthHistogram
from repro.stats.statistics import ColumnStatistics, TableStatistics
from repro.stats.estimator import CardinalityEstimator

__all__ = [
    "EquiDepthHistogram",
    "ColumnStatistics",
    "TableStatistics",
    "CardinalityEstimator",
]
