"""Equi-depth histograms over numeric columns.

Each bucket holds (approximately) the same number of rows; range
selectivities interpolate linearly within the boundary buckets, the
standard textbook approach and close to what commercial engines do.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class EquiDepthHistogram:
    """Equi-depth histogram: ``boundaries`` has ``num_buckets + 1`` edges.

    ``counts[i]`` rows fall in ``[boundaries[i], boundaries[i + 1])``
    except the last bucket which is closed on the right.
    ``distinct[i]`` estimates the distinct values per bucket, used for
    equality selectivity.
    """

    boundaries: np.ndarray
    counts: np.ndarray
    distinct: np.ndarray
    total_rows: int

    @classmethod
    def build(cls, values: np.ndarray, num_buckets: int = 32) -> "EquiDepthHistogram":
        """Build an equi-depth histogram from a numeric array."""
        values = np.asarray(values, dtype=np.float64)
        total = len(values)
        if total == 0:
            empty = np.array([], dtype=np.float64)
            return cls(empty, empty.astype(np.int64), empty.astype(np.int64), 0)
        ordered = np.sort(values)
        num_buckets = max(1, min(num_buckets, total))
        quantiles = np.linspace(0.0, 1.0, num_buckets + 1)
        edges = np.quantile(ordered, quantiles)
        # Collapse duplicate edges (heavy skew) while keeping coverage.
        edges = np.unique(edges)
        if len(edges) < 2:
            edges = np.array([edges[0], edges[0]])
        counts = np.empty(len(edges) - 1, dtype=np.int64)
        distinct = np.empty(len(edges) - 1, dtype=np.int64)
        start_indices = np.searchsorted(ordered, edges[:-1], side="left")
        end_indices = np.searchsorted(ordered, edges[1:], side="left")
        end_indices[-1] = total
        for i in range(len(edges) - 1):
            bucket = ordered[start_indices[i]: end_indices[i]]
            counts[i] = len(bucket)
            distinct[i] = len(np.unique(bucket)) if len(bucket) else 0
        return cls(edges, counts, distinct, total)

    # ------------------------------------------------------------------
    # Selectivity estimation
    # ------------------------------------------------------------------

    def selectivity_le(self, value: float) -> float:
        """Estimated fraction of rows with ``column <= value``."""
        if self.total_rows == 0 or len(self.boundaries) < 2:
            return 0.5
        if value < self.boundaries[0]:
            return 0.0
        if value >= self.boundaries[-1]:
            return 1.0
        bucket = int(np.searchsorted(self.boundaries, value, side="right")) - 1
        bucket = min(bucket, len(self.counts) - 1)
        rows_before = int(self.counts[:bucket].sum())
        lo = self.boundaries[bucket]
        hi = self.boundaries[bucket + 1]
        width = hi - lo
        fraction = 1.0 if width <= 0 else (value - lo) / width
        return (rows_before + fraction * self.counts[bucket]) / self.total_rows

    def selectivity_range(self, low: float | None, high: float | None) -> float:
        """Estimated fraction of rows with ``low <= column <= high``."""
        high_sel = 1.0 if high is None else self.selectivity_le(high)
        low_sel = 0.0 if low is None else self.selectivity_le(low)
        return max(0.0, min(1.0, high_sel - low_sel))

    def selectivity_eq(self, value: float) -> float:
        """Estimated fraction of rows with ``column == value``."""
        if self.total_rows == 0 or len(self.boundaries) < 2:
            return 0.0
        if value < self.boundaries[0] or value > self.boundaries[-1]:
            return 0.0
        bucket = int(np.searchsorted(self.boundaries, value, side="right")) - 1
        bucket = max(0, min(bucket, len(self.counts) - 1))
        bucket_rows = int(self.counts[bucket])
        bucket_distinct = max(1, int(self.distinct[bucket]))
        return (bucket_rows / bucket_distinct) / self.total_rows
