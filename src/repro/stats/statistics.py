"""Per-column and per-table statistics collection."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.stats.histogram import EquiDepthHistogram
from repro.storage.table import Table
from repro.storage.types import ColumnType

_SAMPLE_ROWS = 2000
_SAMPLE_SEED = 0x5EED


@dataclasses.dataclass(frozen=True)
class ColumnStatistics:
    """Statistics for a single column.

    ``histogram`` is present for numeric columns only.  ``sample``
    holds up to :data:`_SAMPLE_ROWS` raw values used to estimate
    predicates histograms cannot capture (LIKE, IN over text).
    """

    name: str
    column_type: ColumnType
    num_rows: int
    num_distinct: int
    min_value: float | None
    max_value: float | None
    histogram: EquiDepthHistogram | None
    sample: np.ndarray

    @classmethod
    def collect(cls, name: str, values: np.ndarray, column_type: ColumnType,
                rng: np.random.Generator) -> "ColumnStatistics":
        num_rows = len(values)
        num_distinct = int(len(np.unique(values))) if num_rows else 0
        if column_type.is_numeric and num_rows:
            as_float = values.astype(np.float64)
            min_value = float(as_float.min())
            max_value = float(as_float.max())
            histogram = EquiDepthHistogram.build(as_float)
        else:
            min_value = None
            max_value = None
            histogram = None
        if num_rows > _SAMPLE_ROWS:
            sample = values[rng.choice(num_rows, _SAMPLE_ROWS, replace=False)]
        else:
            sample = values.copy()
        return cls(
            name=name,
            column_type=column_type,
            num_rows=num_rows,
            num_distinct=num_distinct,
            min_value=min_value,
            max_value=max_value,
            histogram=histogram,
            sample=sample,
        )


@dataclasses.dataclass(frozen=True)
class TableStatistics:
    """Statistics for a whole table."""

    table_name: str
    num_rows: int
    columns: dict[str, ColumnStatistics]

    @classmethod
    def collect(cls, table: Table) -> "TableStatistics":
        rng = np.random.default_rng(_SAMPLE_SEED)
        columns = {
            column_def.name: ColumnStatistics.collect(
                column_def.name,
                table.column(column_def.name),
                column_def.column_type,
                rng,
            )
            for column_def in table.schema.columns
        }
        return cls(table_name=table.name, num_rows=table.num_rows, columns=columns)

    def column(self, name: str) -> ColumnStatistics:
        return self.columns[name]
