"""Shared data-generation primitives for the synthetic workloads.

All functions are deterministic given a :class:`numpy.random.Generator`.
Foreign keys support Zipf-like skew (decision-support fact tables are
rarely uniform), text columns draw from small vocabularies so LIKE
predicates have meaningful selectivities, and date columns mimic
TPC-DS's integer day-number surrogate keys.
"""

from __future__ import annotations

import numpy as np


def zipf_weights(n: int, skew: float) -> np.ndarray:
    """Normalized Zipf weights over ranks 1..n (skew 0 = uniform)."""
    if n <= 0:
        raise ValueError("n must be positive")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-skew) if skew > 0 else np.ones(n)
    return weights / weights.sum()


def skewed_fk(
    rng: np.random.Generator,
    num_rows: int,
    parent_keys: np.ndarray,
    skew: float = 0.0,
) -> np.ndarray:
    """Foreign-key column referencing ``parent_keys`` with Zipf skew.

    Inverse-CDF sampling keeps this O(num_rows log n) even for skewed
    draws.  The rank-to-key mapping is shuffled so skew is not aligned
    with key order.
    """
    n = len(parent_keys)
    if n == 0:
        raise ValueError("parent_keys must be non-empty")
    if skew <= 0:
        return parent_keys[rng.integers(0, n, num_rows)]
    cdf = np.cumsum(zipf_weights(n, skew))
    draws = rng.random(num_rows)
    ranks = np.searchsorted(cdf, draws, side="left")
    shuffled = parent_keys.copy()
    rng.shuffle(shuffled)
    return shuffled[np.clip(ranks, 0, n - 1)]


def surrogate_keys(num_rows: int, start: int = 1) -> np.ndarray:
    """Dense integer surrogate keys ``start .. start + num_rows - 1``."""
    return np.arange(start, start + num_rows, dtype=np.int64)


def categorical(
    rng: np.random.Generator,
    num_rows: int,
    values: list[str],
    skew: float = 0.0,
) -> np.ndarray:
    """Text column drawn from a fixed vocabulary (optionally skewed)."""
    weights = zipf_weights(len(values), skew)
    indices = rng.choice(len(values), size=num_rows, p=weights)
    vocabulary = np.array(values, dtype=object)
    return vocabulary[indices]


def numeric(
    rng: np.random.Generator,
    num_rows: int,
    low: float,
    high: float,
    integer: bool = False,
) -> np.ndarray:
    """Uniform numeric column in ``[low, high]``."""
    if integer:
        return rng.integers(int(low), int(high) + 1, num_rows).astype(np.int64)
    return rng.uniform(low, high, num_rows)


def date_keys(
    rng: np.random.Generator,
    num_rows: int,
    first_day: int = 2450815,   # TPC-DS style Julian day numbers
    num_days: int = 365 * 5,
    skew: float = 0.3,
) -> np.ndarray:
    """Fact-side date surrogate keys with mild recency skew."""
    days = surrogate_keys(num_days, start=first_day)
    return skewed_fk(rng, num_rows, days, skew=skew)


def compound_words(
    rng: np.random.Generator,
    num_rows: int,
    prefixes: list[str],
    suffixes: list[str],
) -> np.ndarray:
    """Two-part text values (e.g. keyword-like strings for LIKE tests)."""
    left = rng.integers(0, len(prefixes), num_rows)
    right = rng.integers(0, len(suffixes), num_rows)
    prefix_arr = np.array(prefixes, dtype=object)
    suffix_arr = np.array(suffixes, dtype=object)
    out = np.empty(num_rows, dtype=object)
    for i in range(num_rows):
        out[i] = f"{prefix_arr[left[i]]}-{suffix_arr[right[i]]}"
    return out


def scaled(base: int, scale: float, minimum: int = 8) -> int:
    """Scale a base row count, with a floor so tiny scales stay valid."""
    return max(minimum, int(round(base * scale)))
