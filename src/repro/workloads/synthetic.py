"""Parametric random star / snowflake / branch instances.

Used by theorem validation (Table 2) and property-based tests: each
builder returns a database with declared PKFK constraints plus the
matching :class:`QuerySpec`, with randomized dimension predicates so
``Cout`` landscapes differ run to run.
"""

from __future__ import annotations

import numpy as np

from repro.expr.expressions import Comparison, col, lit
from repro.query.spec import Aggregate, JoinPredicate, QuerySpec, RelationRef
from repro.storage.database import Database
from repro.storage.schema import ForeignKey
from repro.storage.table import Table
from repro.util.rng import derive_rng
from repro.workloads.generator import skewed_fk, surrogate_keys


def _dimension(
    name: str, rng: np.random.Generator, num_rows: int
) -> Table:
    return Table.from_arrays(
        name,
        {
            "id": surrogate_keys(num_rows),
            "attr": rng.integers(0, 100, num_rows),
        },
        key=("id",),
    )


def random_star(
    seed: int,
    num_dimensions: int = 4,
    fact_rows: int = 4000,
    dim_rows: int = 200,
    predicate_rate: float = 0.7,
    skew: float = 0.5,
) -> tuple[Database, QuerySpec]:
    """A star query with PKFK joins (paper Definition 1).

    Each dimension gets a random range predicate with probability
    ``predicate_rate`` so different dimensions reduce the fact table by
    different amounts.
    """
    rng = derive_rng(seed, "star")
    database = Database(f"star_{seed}")

    fact_columns: dict[str, np.ndarray] = {}
    relations = [RelationRef("f", "fact")]
    joins: list[JoinPredicate] = []
    local_predicates = {}
    dims: list[Table] = []
    for index in range(num_dimensions):
        dim_name = f"dim{index}"
        table = _dimension(dim_name, rng, dim_rows)
        dims.append(table)
        fact_columns[f"fk{index}"] = skewed_fk(
            rng, fact_rows, table.column("id"), skew=skew
        )
        alias = f"d{index}"
        relations.append(RelationRef(alias, dim_name))
        joins.append(JoinPredicate("f", (f"fk{index}",), alias, ("id",)))
        if rng.random() < predicate_rate:
            threshold = int(rng.integers(5, 95))
            local_predicates[alias] = Comparison(
                "<", col(alias, "attr"), lit(threshold)
            )
    fact_columns["measure"] = rng.integers(0, 1000, fact_rows)
    fact = Table.from_arrays("fact", fact_columns)

    for table in dims:
        database.add_table(table)
    database.add_table(fact)
    for index in range(num_dimensions):
        database.add_foreign_key(
            ForeignKey("fact", (f"fk{index}",), f"dim{index}", ("id",))
        )

    spec = QuerySpec(
        name=f"star_{seed}",
        relations=tuple(relations),
        join_predicates=tuple(joins),
        local_predicates=local_predicates,
        aggregates=(Aggregate("count", label="cnt"),),
    )
    return database, spec


def random_snowflake(
    seed: int,
    branch_lengths: tuple[int, ...] = (1, 2, 3),
    fact_rows: int = 4000,
    dim_rows: int = 200,
    predicate_rate: float = 0.7,
    skew: float = 0.5,
) -> tuple[Database, QuerySpec]:
    """A snowflake query with PKFK joins (paper Definition 2).

    Branch ``i`` is a chain ``fact -> R_{i,1} -> ... -> R_{i,n_i}``
    where each hop's join column is the child's unique key.  Chain
    dimension tables shrink outward (realistic hierarchies).
    """
    rng = derive_rng(seed, "snowflake")
    database = Database(f"snowflake_{seed}")

    relations = [RelationRef("f", "fact")]
    joins: list[JoinPredicate] = []
    local_predicates = {}
    fact_columns: dict[str, np.ndarray] = {}
    tables: list[Table] = []
    foreign_keys: list[ForeignKey] = []

    for branch_index, length in enumerate(branch_lengths):
        parent_rows = dim_rows
        # Build from the tip of the chain inward so each table can
        # reference its child's keys.
        chain_tables: list[Table] = []
        chain_sizes = [
            max(10, int(dim_rows / (2 ** depth))) for depth in range(length)
        ]
        child_keys: np.ndarray | None = None
        for depth in reversed(range(length)):
            name = f"b{branch_index}_{depth}"
            rows = chain_sizes[depth]
            columns = {
                "id": surrogate_keys(rows),
                "attr": rng.integers(0, 100, rows),
            }
            if child_keys is not None:
                columns["child_fk"] = skewed_fk(rng, rows, child_keys, skew=0.0)
            table = Table.from_arrays(name, columns, key=("id",))
            chain_tables.insert(0, table)
            child_keys = table.column("id")
        tables.extend(chain_tables)

        for depth in range(length):
            alias = f"b{branch_index}_{depth}"
            relations.append(RelationRef(alias, alias))
            if depth == 0:
                fact_columns[f"fk{branch_index}"] = skewed_fk(
                    rng, fact_rows, chain_tables[0].column("id"), skew=skew
                )
                joins.append(
                    JoinPredicate("f", (f"fk{branch_index}",), alias, ("id",))
                )
                foreign_keys.append(
                    ForeignKey("fact", (f"fk{branch_index}",), alias, ("id",))
                )
            else:
                parent_alias = f"b{branch_index}_{depth - 1}"
                joins.append(
                    JoinPredicate(parent_alias, ("child_fk",), alias, ("id",))
                )
                foreign_keys.append(
                    ForeignKey(parent_alias, ("child_fk",), alias, ("id",))
                )
            if rng.random() < predicate_rate:
                threshold = int(rng.integers(5, 95))
                local_predicates[alias] = Comparison(
                    "<", col(alias, "attr"), lit(threshold)
                )

    fact_columns["measure"] = rng.integers(0, 1000, fact_rows)
    fact = Table.from_arrays("fact", fact_columns)
    for table in tables:
        database.add_table(table)
    database.add_table(fact)
    for foreign_key in foreign_keys:
        database.add_foreign_key(foreign_key)

    spec = QuerySpec(
        name=f"snowflake_{seed}",
        relations=tuple(relations),
        join_predicates=tuple(joins),
        local_predicates=local_predicates,
        aggregates=(Aggregate("count", label="cnt"),),
    )
    return database, spec


def random_branch(
    seed: int,
    length: int = 4,
    base_rows: int = 3000,
    predicate_rate: float = 0.7,
) -> tuple[Database, QuerySpec]:
    """A pure branch/chain query (paper Definition 4):
    ``R0 -> R1 -> ... -> Rn`` with R0 the largest relation."""
    database, spec = random_snowflake(
        seed,
        branch_lengths=(length,),
        fact_rows=base_rows,
        predicate_rate=predicate_rate,
    )
    return database, spec
