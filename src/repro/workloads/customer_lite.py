"""CUSTOMER-shaped workload: deep snowflake, very high join counts.

The paper's proprietary customer workload averages 30.3 joins per query
over 475 tables.  This generator reproduces the *regime*: a central
``orders`` fact with many snowflake branches of depth up to four, and a
query set whose join counts average ~20 relations.  Schema and queries
are generated programmatically (as a real ISV schema would be),
deterministically from the seed.
"""

from __future__ import annotations

import numpy as np

from repro.expr.expressions import Comparison, col, lit
from repro.query.spec import Aggregate, JoinPredicate, QuerySpec, RelationRef
from repro.storage.database import Database
from repro.storage.schema import ForeignKey
from repro.storage.table import Table
from repro.util.rng import derive_rng
from repro.workloads.generator import scaled, skewed_fk, surrogate_keys

DEFAULT_SEED = 475

# Branch depth per branch index; 12 branches, depths 1-4 => 30 dimension
# tables plus the fact table.
_BRANCH_DEPTHS = (1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 2, 3)
_NUM_QUERIES = 20


def _branch_table(branch: int, depth: int) -> str:
    return f"dim_{branch:02d}_{depth}"


def build(scale: float = 1.0, seed: int = DEFAULT_SEED) -> tuple[Database, list[QuerySpec]]:
    database = build_database(scale, seed)
    return database, queries(database, seed)


def build_database(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Database:
    rng = derive_rng(seed, "customer")
    database = Database("customer_lite")

    n_fact = scaled(80_000, scale)
    fact_columns: dict[str, np.ndarray] = {}
    foreign_keys: list[ForeignKey] = []

    for branch, depth_count in enumerate(_BRANCH_DEPTHS):
        # Build the chain tip-first so parents can reference children.
        child_keys: np.ndarray | None = None
        sizes = [
            scaled(4000 // (2 ** depth), scale, minimum=12)
            for depth in range(depth_count)
        ]
        for depth in reversed(range(depth_count)):
            name = _branch_table(branch, depth)
            rows = sizes[depth]
            columns = {
                "id": surrogate_keys(rows),
                "attr_a": rng.integers(0, 1000, rows),
                "attr_b": rng.integers(0, 50, rows),
            }
            if child_keys is not None:
                columns["child_fk"] = skewed_fk(rng, rows, child_keys, 0.2)
                foreign_keys.append(
                    ForeignKey(name, ("child_fk",), _branch_table(branch, depth + 1), ("id",))
                )
            table = Table.from_arrays(name, columns, key=("id",))
            database.add_table(table)
            child_keys = table.column("id")
        root = database.table(_branch_table(branch, 0))
        fact_columns[f"fk_{branch:02d}"] = skewed_fk(
            rng, n_fact, root.column("id"), 0.4
        )
        foreign_keys.append(
            ForeignKey("orders", (f"fk_{branch:02d}",), _branch_table(branch, 0), ("id",))
        )

    fact_columns["amount"] = rng.uniform(1.0, 10_000.0, n_fact)
    fact_columns["status"] = rng.integers(0, 8, n_fact)
    database.add_table(Table.from_arrays("orders", fact_columns))
    for foreign_key in foreign_keys:
        database.add_foreign_key(foreign_key)
    return database


def queries(database: Database, seed: int = DEFAULT_SEED) -> list[QuerySpec]:
    """Generate the 20-query workload (deterministic in ``seed``).

    Each query joins the fact with a random subset of branches (full
    chains included so the snowflake structure is exercised), with
    random range predicates of varied selectivity.
    """
    rng = derive_rng(seed, "customer-queries")
    specs: list[QuerySpec] = []
    num_branches = len(_BRANCH_DEPTHS)
    for query_index in range(_NUM_QUERIES):
        num_chosen = int(rng.integers(6, num_branches + 1))
        chosen = sorted(
            rng.choice(num_branches, size=num_chosen, replace=False).tolist()
        )
        relations = [RelationRef("f", "orders")]
        joins: list[JoinPredicate] = []
        local_predicates = {}
        for branch in chosen:
            depth_count = _BRANCH_DEPTHS[branch]
            # Join the full chain for most branches, a prefix otherwise.
            used_depth = depth_count if rng.random() < 0.7 else int(
                rng.integers(1, depth_count + 1)
            )
            for depth in range(used_depth):
                alias = f"b{branch:02d}_{depth}"
                relations.append(RelationRef(alias, _branch_table(branch, depth)))
                if depth == 0:
                    joins.append(
                        JoinPredicate("f", (f"fk_{branch:02d}",), alias, ("id",))
                    )
                else:
                    joins.append(
                        JoinPredicate(
                            f"b{branch:02d}_{depth - 1}", ("child_fk",),
                            alias, ("id",),
                        )
                    )
                if rng.random() < 0.45:
                    column = "attr_a" if rng.random() < 0.5 else "attr_b"
                    bound = 1000 if column == "attr_a" else 50
                    threshold = int(rng.integers(bound // 10, bound))
                    local_predicates[alias] = Comparison(
                        "<", col(alias, column), lit(threshold)
                    )
        if rng.random() < 0.3:
            local_predicates["f"] = Comparison(
                "<", col("f", "status"), lit(int(rng.integers(2, 8)))
            )
        specs.append(
            QuerySpec(
                name=f"cust_q{query_index:02d}",
                relations=tuple(relations),
                join_predicates=tuple(joins),
                local_predicates=local_predicates,
                aggregates=(
                    Aggregate("count", label="cnt"),
                    Aggregate("sum", col("f", "amount"), label="amount"),
                ),
            )
        )
    return specs
