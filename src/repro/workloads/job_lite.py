"""JOB/IMDB-shaped workload.

The paper singles out JOB for having the most complex join graphs:
multiple fact tables, large dimension tables, and joins between
dimension tables.  This synthetic analogue keeps those properties:

* fact-like tables (nothing references their keys): ``movie_keyword``,
  ``cast_info``, ``movie_companies``, ``movie_info``, ``aka_name``;
* ``title`` is a large shared dimension every fact joins through;
* dimension-dimension joins (``name <- aka_name``) and fact-fact joins
  through shared key columns;
* LIKE predicates over generated text vocabularies with meaningful
  match rates (the paper's Figure 2 query is ``job_fig2`` here).
"""

from __future__ import annotations

import numpy as np

from repro.query.spec import QuerySpec
from repro.sql.binder import parse_query
from repro.storage.database import Database
from repro.storage.schema import ForeignKey
from repro.storage.table import Table
from repro.util.rng import derive_rng
from repro.workloads.generator import (
    categorical,
    compound_words,
    numeric,
    scaled,
    skewed_fk,
    surrogate_keys,
)

DEFAULT_SEED = 113

_KINDS = ["movie", "tv series", "video game", "video movie", "tv movie", "episode"]
_ROLES = [
    "actor", "actress", "producer", "writer", "cinematographer",
    "composer", "costume designer", "director", "editor", "guest",
]
_COUNTRIES = ["us", "gb", "de", "fr", "it", "jp", "in", "ca", "es", "se"]
_COMPANY_KINDS = [
    "production companies", "distributors", "special effects companies",
    "miscellaneous companies",
]
_INFO_KINDS = [f"info_{i:02d}" for i in range(30)]

_TITLE_PREFIX = [
    "dark", "golden", "last", "first", "silent", "broken", "hidden",
    "lost", "eternal", "crimson", "iron", "frozen",
]
_TITLE_SUFFIX = [
    "empire (tv)", "river", "kingdom", "legacy (vhs)", "night", "garden",
    "voyage", "promise (tv)", "city", "storm",
]
_KEYWORD_PREFIX = [
    "action", "drama", "murder", "love", "space", "war", "history",
    "magic", "blood", "revenge", "family", "secret",
]
_KEYWORD_SUFFIX = [
    "gene", "edge", "stage", "siege", "story", "quest", "night",
    "world", "dream", "saga",
]
_NAME_PREFIX = [
    "smith", "garcia", "mueller", "tanaka", "rossi", "kim", "olsen",
    "novak", "silva", "dubois",
]
_NAME_SUFFIX = [
    "john", "maria", "wei", "anna", "luca", "sofia", "ivan", "noor",
    "kenji", "fatima",
]


def build(scale: float = 1.0, seed: int = DEFAULT_SEED) -> tuple[Database, list[QuerySpec]]:
    database = build_database(scale, seed)
    return database, queries(database)


def build_database(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Database:
    rng = derive_rng(seed, "job")
    database = Database("job_lite")

    n_title = scaled(50_000, scale)
    n_keyword = scaled(8_000, scale)
    n_name = scaled(40_000, scale)
    n_company = scaled(10_000, scale)
    n_mk = scaled(100_000, scale)
    n_ci = scaled(150_000, scale)
    n_mc = scaled(60_000, scale)
    n_mi = scaled(80_000, scale)
    n_aka = scaled(20_000, scale)

    kind_type = Table.from_arrays(
        "kind_type",
        {
            "kt_id": surrogate_keys(len(_KINDS)),
            "kt_kind": np.array(_KINDS, dtype=object),
        },
        key=("kt_id",),
    )
    title = Table.from_arrays(
        "title",
        {
            "t_id": surrogate_keys(n_title),
            "t_kind_id": skewed_fk(rng, n_title, kind_type.column("kt_id"), 0.8),
            "t_production_year": numeric(rng, n_title, 1930, 2019, integer=True),
            "t_title": compound_words(rng, n_title, _TITLE_PREFIX, _TITLE_SUFFIX),
        },
        key=("t_id",),
    )
    keyword = Table.from_arrays(
        "keyword",
        {
            "k_id": surrogate_keys(n_keyword),
            "k_keyword": compound_words(rng, n_keyword, _KEYWORD_PREFIX, _KEYWORD_SUFFIX),
        },
        key=("k_id",),
    )
    name = Table.from_arrays(
        "name",
        {
            "n_id": surrogate_keys(n_name),
            "n_gender": categorical(rng, n_name, ["m", "f"]),
            "n_name": compound_words(rng, n_name, _NAME_PREFIX, _NAME_SUFFIX),
        },
        key=("n_id",),
    )
    role_type = Table.from_arrays(
        "role_type",
        {
            "rt_id": surrogate_keys(len(_ROLES)),
            "rt_role": np.array(_ROLES, dtype=object),
        },
        key=("rt_id",),
    )
    company_name = Table.from_arrays(
        "company_name",
        {
            "cn_id": surrogate_keys(n_company),
            "cn_country_code": categorical(rng, n_company, _COUNTRIES, skew=0.7),
        },
        key=("cn_id",),
    )
    company_type = Table.from_arrays(
        "company_type",
        {
            "ct_id": surrogate_keys(len(_COMPANY_KINDS)),
            "ct_kind": np.array(_COMPANY_KINDS, dtype=object),
        },
        key=("ct_id",),
    )
    info_type = Table.from_arrays(
        "info_type",
        {
            "it_id": surrogate_keys(len(_INFO_KINDS)),
            "it_info": np.array(_INFO_KINDS, dtype=object),
        },
        key=("it_id",),
    )
    movie_keyword = Table.from_arrays(
        "movie_keyword",
        {
            "mk_movie_id": skewed_fk(rng, n_mk, title.column("t_id"), 0.7),
            "mk_keyword_id": skewed_fk(rng, n_mk, keyword.column("k_id"), 0.9),
        },
    )
    cast_info = Table.from_arrays(
        "cast_info",
        {
            "ci_movie_id": skewed_fk(rng, n_ci, title.column("t_id"), 0.6),
            "ci_person_id": skewed_fk(rng, n_ci, name.column("n_id"), 0.8),
            "ci_role_id": skewed_fk(rng, n_ci, role_type.column("rt_id"), 0.9),
        },
    )
    movie_companies = Table.from_arrays(
        "movie_companies",
        {
            "mc_movie_id": skewed_fk(rng, n_mc, title.column("t_id"), 0.5),
            "mc_company_id": skewed_fk(rng, n_mc, company_name.column("cn_id"), 0.9),
            "mc_company_type_id": skewed_fk(rng, n_mc, company_type.column("ct_id"), 0.5),
        },
    )
    movie_info = Table.from_arrays(
        "movie_info",
        {
            "mi_movie_id": skewed_fk(rng, n_mi, title.column("t_id"), 0.6),
            "mi_info_type_id": skewed_fk(rng, n_mi, info_type.column("it_id"), 0.7),
        },
    )
    aka_name = Table.from_arrays(
        "aka_name",
        {
            "an_person_id": skewed_fk(rng, n_aka, name.column("n_id"), 0.7),
            "an_name": compound_words(rng, n_aka, _NAME_PREFIX, _NAME_SUFFIX),
        },
    )

    for table in (
        kind_type, title, keyword, name, role_type, company_name,
        company_type, info_type, movie_keyword, cast_info,
        movie_companies, movie_info, aka_name,
    ):
        database.add_table(table)

    fks = [
        ("title", "t_kind_id", "kind_type", "kt_id"),
        ("movie_keyword", "mk_movie_id", "title", "t_id"),
        ("movie_keyword", "mk_keyword_id", "keyword", "k_id"),
        ("cast_info", "ci_movie_id", "title", "t_id"),
        ("cast_info", "ci_person_id", "name", "n_id"),
        ("cast_info", "ci_role_id", "role_type", "rt_id"),
        ("movie_companies", "mc_movie_id", "title", "t_id"),
        ("movie_companies", "mc_company_id", "company_name", "cn_id"),
        ("movie_companies", "mc_company_type_id", "company_type", "ct_id"),
        ("movie_info", "mi_movie_id", "title", "t_id"),
        ("movie_info", "mi_info_type_id", "info_type", "it_id"),
        ("aka_name", "an_person_id", "name", "n_id"),
    ]
    for child, child_col, parent, parent_col in fks:
        database.add_foreign_key(ForeignKey(child, (child_col,), parent, (parent_col,)))
    return database


_QUERIES: list[tuple[str, str]] = [
    # The paper's Figure 2 motivating query, adapted to our vocabulary.
    (
        "job_fig2",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_keyword mk, title t, keyword k
        WHERE mk.mk_movie_id = t.t_id AND mk.mk_keyword_id = k.k_id
          AND t.t_title LIKE '%(%' AND k.k_keyword LIKE '%ge%'
        """,
    ),
    (
        "job_q01",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_keyword mk, keyword k
        WHERE mk.mk_keyword_id = k.k_id AND k.k_keyword LIKE 'murder%'
        """,
    ),
    (
        "job_q02",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_keyword mk, title t, keyword k, kind_type kt
        WHERE mk.mk_movie_id = t.t_id AND mk.mk_keyword_id = k.k_id
          AND t.t_kind_id = kt.kt_id
          AND kt.kt_kind = 'movie' AND k.k_keyword LIKE '%saga'
        """,
    ),
    (
        "job_q03",
        """
        SELECT COUNT(*) AS cnt
        FROM cast_info ci, name n, role_type rt
        WHERE ci.ci_person_id = n.n_id AND ci.ci_role_id = rt.rt_id
          AND n.n_gender = 'f' AND rt.rt_role = 'actress'
        """,
    ),
    (
        "job_q04",
        """
        SELECT COUNT(*) AS cnt
        FROM cast_info ci, title t, name n
        WHERE ci.ci_movie_id = t.t_id AND ci.ci_person_id = n.n_id
          AND t.t_production_year > 2010 AND n.n_name LIKE 'kim%'
        """,
    ),
    (
        "job_q05",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_companies mc, company_name cn, company_type ct
        WHERE mc.mc_company_id = cn.cn_id AND mc.mc_company_type_id = ct.ct_id
          AND cn.cn_country_code = 'de' AND ct.ct_kind = 'distributors'
        """,
    ),
    (
        "job_q06",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_companies mc, title t, company_name cn, kind_type kt
        WHERE mc.mc_movie_id = t.t_id AND mc.mc_company_id = cn.cn_id
          AND t.t_kind_id = kt.kt_id
          AND cn.cn_country_code = 'jp' AND kt.kt_kind IN ('movie', 'tv series')
          AND t.t_production_year BETWEEN 1990 AND 2005
        """,
    ),
    # multiple fact tables joined through the shared title dimension
    (
        "job_q07",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_keyword mk, cast_info ci, title t, keyword k
        WHERE mk.mk_movie_id = t.t_id AND ci.ci_movie_id = t.t_id
          AND mk.mk_keyword_id = k.k_id
          AND k.k_keyword LIKE 'space%' AND t.t_production_year > 2000
        """,
    ),
    (
        "job_q08",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_keyword mk, movie_companies mc, title t, keyword k, company_name cn
        WHERE mk.mk_movie_id = t.t_id AND mc.mc_movie_id = t.t_id
          AND mk.mk_keyword_id = k.k_id AND mc.mc_company_id = cn.cn_id
          AND k.k_keyword LIKE '%quest' AND cn.cn_country_code = 'us'
        """,
    ),
    (
        "job_q09",
        """
        SELECT COUNT(*) AS cnt
        FROM cast_info ci, movie_companies mc, title t, name n, company_name cn
        WHERE ci.ci_movie_id = t.t_id AND mc.mc_movie_id = t.t_id
          AND ci.ci_person_id = n.n_id AND mc.mc_company_id = cn.cn_id
          AND n.n_gender = 'm' AND cn.cn_country_code = 'gb'
          AND t.t_production_year < 1980
        """,
    ),
    (
        "job_q10",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_keyword mk, cast_info ci, movie_companies mc, title t,
             keyword k, name n, company_name cn
        WHERE mk.mk_movie_id = t.t_id AND ci.ci_movie_id = t.t_id
          AND mc.mc_movie_id = t.t_id AND mk.mk_keyword_id = k.k_id
          AND ci.ci_person_id = n.n_id AND mc.mc_company_id = cn.cn_id
          AND k.k_keyword LIKE 'blood%' AND n.n_name LIKE '%anna'
          AND cn.cn_country_code IN ('us', 'gb')
        """,
    ),
    # dimension-dimension joins (aka_name hangs off name)
    (
        "job_q11",
        """
        SELECT COUNT(*) AS cnt
        FROM cast_info ci, name n, aka_name an
        WHERE ci.ci_person_id = n.n_id AND an.an_person_id = n.n_id
          AND an.an_name LIKE 'garcia%'
        """,
    ),
    (
        "job_q12",
        """
        SELECT COUNT(*) AS cnt
        FROM cast_info ci, title t, name n, aka_name an, role_type rt
        WHERE ci.ci_movie_id = t.t_id AND ci.ci_person_id = n.n_id
          AND an.an_person_id = n.n_id AND ci.ci_role_id = rt.rt_id
          AND rt.rt_role = 'director' AND t.t_production_year >= 2015
        """,
    ),
    (
        "job_q13",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_info mi, title t, info_type it
        WHERE mi.mi_movie_id = t.t_id AND mi.mi_info_type_id = it.it_id
          AND it.it_info = 'info_03' AND t.t_production_year BETWEEN 1995 AND 2000
        """,
    ),
    (
        "job_q14",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_info mi, movie_keyword mk, title t, info_type it, keyword k
        WHERE mi.mi_movie_id = t.t_id AND mk.mk_movie_id = t.t_id
          AND mi.mi_info_type_id = it.it_id AND mk.mk_keyword_id = k.k_id
          AND it.it_info IN ('info_01', 'info_02') AND k.k_keyword LIKE 'war%'
        """,
    ),
    (
        "job_q15",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_info mi, cast_info ci, movie_companies mc, title t,
             info_type it, name n, company_name cn, kind_type kt
        WHERE mi.mi_movie_id = t.t_id AND ci.ci_movie_id = t.t_id
          AND mc.mc_movie_id = t.t_id AND mi.mi_info_type_id = it.it_id
          AND ci.ci_person_id = n.n_id AND mc.mc_company_id = cn.cn_id
          AND t.t_kind_id = kt.kt_id
          AND it.it_info = 'info_10' AND n.n_gender = 'f'
          AND cn.cn_country_code = 'fr' AND kt.kt_kind = 'movie'
        """,
    ),
    # direct fact-fact join on shared key columns (non-PKFK)
    (
        "job_q16",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_keyword mk, movie_companies mc, keyword k
        WHERE mk.mk_movie_id = mc.mc_movie_id AND mk.mk_keyword_id = k.k_id
          AND k.k_keyword LIKE 'magic%'
        """,
    ),
    (
        "job_q17",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_info mi, movie_keyword mk, info_type it
        WHERE mi.mi_movie_id = mk.mk_movie_id AND mi.mi_info_type_id = it.it_id
          AND it.it_info = 'info_25'
        """,
    ),
    # larger stars with selective predicates
    (
        "job_q18",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_keyword mk, title t, keyword k, kind_type kt
        WHERE mk.mk_movie_id = t.t_id AND mk.mk_keyword_id = k.k_id
          AND t.t_kind_id = kt.kt_id
          AND k.k_keyword = 'love-gene' AND kt.kt_kind = 'tv series'
        """,
    ),
    (
        "job_q19",
        """
        SELECT COUNT(*) AS cnt
        FROM cast_info ci, title t, name n, role_type rt, kind_type kt
        WHERE ci.ci_movie_id = t.t_id AND ci.ci_person_id = n.n_id
          AND ci.ci_role_id = rt.rt_id AND t.t_kind_id = kt.kt_id
          AND rt.rt_role = 'composer' AND kt.kt_kind = 'video game'
          AND n.n_name LIKE 'tanaka%'
        """,
    ),
    (
        "job_q20",
        """
        SELECT t.t_production_year, COUNT(*) AS cnt
        FROM movie_companies mc, title t, company_name cn
        WHERE mc.mc_movie_id = t.t_id AND mc.mc_company_id = cn.cn_id
          AND cn.cn_country_code = 'us'
        GROUP BY t.t_production_year
        """,
    ),
    (
        "job_q21",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_info mi, title t
        WHERE mi.mi_movie_id = t.t_id AND t.t_title LIKE 'dark%'
        """,
    ),
    (
        "job_q22",
        """
        SELECT COUNT(*) AS cnt, MIN(t.t_production_year) AS first_year
        FROM movie_keyword mk, title t
        WHERE mk.mk_movie_id = t.t_id AND t.t_title LIKE '%storm'
        """,
    ),
    (
        "job_q23",
        """
        SELECT COUNT(*) AS cnt
        FROM cast_info ci, movie_keyword mk, title t, keyword k, name n
        WHERE ci.ci_movie_id = t.t_id AND mk.mk_movie_id = t.t_id
          AND mk.mk_keyword_id = k.k_id AND ci.ci_person_id = n.n_id
          AND k.k_keyword LIKE 'secret%' AND n.n_gender = 'f'
          AND t.t_production_year > 1990
        """,
    ),
    (
        "job_q24",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_companies mc, movie_info mi, title t, company_type ct,
             info_type it
        WHERE mc.mc_movie_id = t.t_id AND mi.mi_movie_id = t.t_id
          AND mc.mc_company_type_id = ct.ct_id AND mi.mi_info_type_id = it.it_id
          AND ct.ct_kind = 'production companies' AND it.it_info = 'info_05'
        """,
    ),
    (
        "job_q25",
        """
        SELECT COUNT(*) AS cnt
        FROM cast_info ci, name n, aka_name an, role_type rt
        WHERE ci.ci_person_id = n.n_id AND an.an_person_id = n.n_id
          AND ci.ci_role_id = rt.rt_id
          AND rt.rt_role IN ('writer', 'editor') AND n.n_name LIKE '%wei'
        """,
    ),
    (
        "job_q26",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_keyword mk, cast_info ci, title t, keyword k, name n,
             role_type rt, kind_type kt
        WHERE mk.mk_movie_id = t.t_id AND ci.ci_movie_id = t.t_id
          AND mk.mk_keyword_id = k.k_id AND ci.ci_person_id = n.n_id
          AND ci.ci_role_id = rt.rt_id AND t.t_kind_id = kt.kt_id
          AND k.k_keyword LIKE 'history%' AND rt.rt_role = 'producer'
          AND kt.kt_kind = 'movie' AND t.t_production_year BETWEEN 1980 AND 2010
        """,
    ),
    (
        "job_q27",
        """
        SELECT kt.kt_kind, COUNT(*) AS cnt
        FROM movie_keyword mk, title t, kind_type kt
        WHERE mk.mk_movie_id = t.t_id AND t.t_kind_id = kt.kt_id
        GROUP BY kt.kt_kind
        """,
    ),
    (
        "job_q28",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_info mi, title t
        WHERE mi.mi_movie_id = t.t_id AND t.t_production_year = 1994
        """,
    ),
    (
        "job_q29",
        """
        SELECT COUNT(*) AS cnt
        FROM movie_companies mc, title t, company_name cn, company_type ct,
             kind_type kt
        WHERE mc.mc_movie_id = t.t_id AND mc.mc_company_id = cn.cn_id
          AND mc.mc_company_type_id = ct.ct_id AND t.t_kind_id = kt.kt_id
          AND cn.cn_country_code = 'it' AND ct.ct_kind = 'distributors'
          AND kt.kt_kind = 'tv movie'
        """,
    ),
]


def queries(database: Database) -> list[QuerySpec]:
    """Bind the JOB-lite query set against a built database."""
    return [parse_query(database, sql, name) for name, sql in _QUERIES]
