"""TPC-DS-shaped workload.

Scaled-down synthetic analogue of the paper's TPC-DS 100 GB setup:
``store_sales`` is the dominant fact table with a star of dimensions,
``customer`` fans out into a snowflake
(``customer -> customer_address`` and
``customer -> household_demographics -> income_band``), and
``catalog_sales`` is a second fact table for multi-fact queries.

The 32-query workload spans the selectivity spectrum (the paper's
L/M/S grouping needs cheap, moderate, and expensive queries), exercises
pure stars, snowflake chains, dimension-heavy joins, group-bys,
fact-to-fact joins through shared dimensions, and the report-style
top-k shapes (``GROUP BY ... HAVING ... ORDER BY ... LIMIT``) that
dominate real TPC-DS.
"""

from __future__ import annotations

import numpy as np

from repro.query.spec import QuerySpec
from repro.sql.binder import parse_query
from repro.storage.database import Database
from repro.storage.schema import ForeignKey
from repro.storage.table import Table
from repro.util.rng import derive_rng
from repro.workloads.generator import (
    categorical,
    numeric,
    scaled,
    skewed_fk,
    surrogate_keys,
)

DEFAULT_SEED = 100

_STATES = [
    "AL", "CA", "CO", "FL", "GA", "IL", "IN", "KS", "KY", "MI",
    "MN", "MO", "NC", "NY", "OH", "OK", "OR", "PA", "TN", "TX",
]
_CATEGORIES = [
    "Books", "Children", "Electronics", "Home", "Jewelry",
    "Men", "Music", "Shoes", "Sports", "Women",
]
_BUY_POTENTIAL = ["0-500", "501-1000", "1001-5000", "5001-10000", ">10000", "Unknown"]
_COUNTIES = [f"county_{i:03d}" for i in range(80)]
_MEALS = ["breakfast", "lunch", "dinner", "night"]


def build(scale: float = 1.0, seed: int = DEFAULT_SEED) -> tuple[Database, list[QuerySpec]]:
    database = build_database(scale, seed)
    return database, queries(database)


def build_database(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Database:
    rng = derive_rng(seed, "tpcds")
    database = Database("tpcds_lite")

    # Calendar-shaped dimensions are fixed-size regardless of scale
    # (TPC-DS keeps date_dim/time_dim constant across scale factors, and
    # the query predicates reference concrete years).
    n_date = 365 * 5
    n_time = 1440
    n_item = scaled(6000, scale)
    n_customer = scaled(20_000, scale)
    n_address = scaled(10_000, scale)
    n_hdemo = scaled(720, scale, minimum=24)
    n_income = 20
    n_store = scaled(60, scale, minimum=6)
    n_promo = scaled(300, scale, minimum=10)
    n_store_sales = scaled(150_000, scale)
    n_catalog_sales = scaled(80_000, scale)

    date_dim = Table.from_arrays(
        "date_dim",
        {
            "d_date_sk": surrogate_keys(n_date),
            "d_year": 1998 + (np.arange(n_date) // 365),
            "d_moy": 1 + (np.arange(n_date) // 30) % 12,
            "d_dom": 1 + np.arange(n_date) % 30,
            "d_qoy": 1 + (np.arange(n_date) // 91) % 4,
        },
        key=("d_date_sk",),
    )
    time_dim = Table.from_arrays(
        "time_dim",
        {
            "t_time_sk": surrogate_keys(n_time),
            "t_hour": np.arange(n_time) * 24 // n_time,
            "t_meal_time": categorical(rng, n_time, _MEALS),
        },
        key=("t_time_sk",),
    )
    item = Table.from_arrays(
        "item",
        {
            "i_item_sk": surrogate_keys(n_item),
            "i_category": categorical(rng, n_item, _CATEGORIES, skew=0.3),
            "i_class": categorical(rng, n_item, [f"class_{i:02d}" for i in range(40)]),
            "i_brand": categorical(rng, n_item, [f"brand_{i:03d}" for i in range(100)]),
            "i_current_price": numeric(rng, n_item, 0.5, 300.0),
        },
        key=("i_item_sk",),
    )
    income_band = Table.from_arrays(
        "income_band",
        {
            "ib_income_band_sk": surrogate_keys(n_income),
            "ib_lower_bound": np.arange(n_income, dtype=np.int64) * 10_000,
            "ib_upper_bound": (np.arange(n_income, dtype=np.int64) + 1) * 10_000,
        },
        key=("ib_income_band_sk",),
    )
    household_demographics = Table.from_arrays(
        "household_demographics",
        {
            "hd_demo_sk": surrogate_keys(n_hdemo),
            "hd_income_band_sk": skewed_fk(
                rng, n_hdemo, income_band.column("ib_income_band_sk"), 0.2
            ),
            "hd_dep_count": numeric(rng, n_hdemo, 0, 9, integer=True),
            "hd_buy_potential": categorical(rng, n_hdemo, _BUY_POTENTIAL),
        },
        key=("hd_demo_sk",),
    )
    customer_address = Table.from_arrays(
        "customer_address",
        {
            "ca_address_sk": surrogate_keys(n_address),
            "ca_state": categorical(rng, n_address, _STATES, skew=0.4),
            "ca_county": categorical(rng, n_address, _COUNTIES),
            "ca_gmt_offset": numeric(rng, n_address, -8, -5, integer=True),
        },
        key=("ca_address_sk",),
    )
    customer = Table.from_arrays(
        "customer",
        {
            "c_customer_sk": surrogate_keys(n_customer),
            "c_current_addr_sk": skewed_fk(
                rng, n_customer, customer_address.column("ca_address_sk"), 0.1
            ),
            "c_current_hdemo_sk": skewed_fk(
                rng, n_customer, household_demographics.column("hd_demo_sk"), 0.1
            ),
            "c_birth_year": numeric(rng, n_customer, 1930, 2000, integer=True),
        },
        key=("c_customer_sk",),
    )
    store = Table.from_arrays(
        "store",
        {
            "s_store_sk": surrogate_keys(n_store),
            "s_state": categorical(rng, n_store, _STATES[:10]),
            "s_number_employees": numeric(rng, n_store, 50, 300, integer=True),
        },
        key=("s_store_sk",),
    )
    promotion = Table.from_arrays(
        "promotion",
        {
            "p_promo_sk": surrogate_keys(n_promo),
            "p_channel_email": categorical(rng, n_promo, ["Y", "N"]),
            "p_channel_tv": categorical(rng, n_promo, ["Y", "N"]),
        },
        key=("p_promo_sk",),
    )
    store_sales = Table.from_arrays(
        "store_sales",
        {
            "ss_sold_date_sk": skewed_fk(rng, n_store_sales, date_dim.column("d_date_sk"), 0.3),
            "ss_sold_time_sk": skewed_fk(rng, n_store_sales, time_dim.column("t_time_sk"), 0.2),
            "ss_item_sk": skewed_fk(rng, n_store_sales, item.column("i_item_sk"), 0.6),
            "ss_customer_sk": skewed_fk(rng, n_store_sales, customer.column("c_customer_sk"), 0.5),
            "ss_store_sk": skewed_fk(rng, n_store_sales, store.column("s_store_sk"), 0.3),
            "ss_promo_sk": skewed_fk(rng, n_store_sales, promotion.column("p_promo_sk"), 0.4),
            "ss_quantity": numeric(rng, n_store_sales, 1, 100, integer=True),
            "ss_sales_price": numeric(rng, n_store_sales, 0.5, 300.0),
            "ss_net_paid": numeric(rng, n_store_sales, 0.5, 30_000.0),
            "ss_net_profit": numeric(rng, n_store_sales, -5_000.0, 10_000.0),
        },
    )
    catalog_sales = Table.from_arrays(
        "catalog_sales",
        {
            "cs_sold_date_sk": skewed_fk(rng, n_catalog_sales, date_dim.column("d_date_sk"), 0.3),
            "cs_item_sk": skewed_fk(rng, n_catalog_sales, item.column("i_item_sk"), 0.5),
            "cs_bill_customer_sk": skewed_fk(
                rng, n_catalog_sales, customer.column("c_customer_sk"), 0.4
            ),
            "cs_quantity": numeric(rng, n_catalog_sales, 1, 100, integer=True),
            "cs_net_paid": numeric(rng, n_catalog_sales, 0.5, 30_000.0),
        },
    )

    for table in (
        date_dim, time_dim, item, income_band, household_demographics,
        customer_address, customer, store, promotion, store_sales,
        catalog_sales,
    ):
        database.add_table(table)

    fks = [
        ("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"),
        ("store_sales", "ss_sold_time_sk", "time_dim", "t_time_sk"),
        ("store_sales", "ss_item_sk", "item", "i_item_sk"),
        ("store_sales", "ss_customer_sk", "customer", "c_customer_sk"),
        ("store_sales", "ss_store_sk", "store", "s_store_sk"),
        ("store_sales", "ss_promo_sk", "promotion", "p_promo_sk"),
        ("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk"),
        ("catalog_sales", "cs_item_sk", "item", "i_item_sk"),
        ("catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk"),
        ("customer", "c_current_addr_sk", "customer_address", "ca_address_sk"),
        ("customer", "c_current_hdemo_sk", "household_demographics", "hd_demo_sk"),
        ("household_demographics", "hd_income_band_sk", "income_band", "ib_income_band_sk"),
    ]
    for child, child_col, parent, parent_col in fks:
        database.add_foreign_key(ForeignKey(child, (child_col,), parent, (parent_col,)))
    return database


_QUERIES: list[tuple[str, str]] = [
    # --- simple stars over store_sales, varied selectivity ------------
    (
        "ds_q01",
        """
        SELECT COUNT(*) AS cnt, SUM(ss.ss_net_paid) AS paid
        FROM store_sales ss, date_dim d
        WHERE ss.ss_sold_date_sk = d.d_date_sk AND d.d_year = 2000
        """,
    ),
    (
        "ds_q02",
        """
        SELECT COUNT(*) AS cnt
        FROM store_sales ss, date_dim d, item i
        WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_item_sk = i.i_item_sk
          AND d.d_year = 2001 AND d.d_moy = 11 AND i.i_category = 'Books'
        """,
    ),
    (
        "ds_q03",
        """
        SELECT SUM(ss.ss_net_profit) AS profit
        FROM store_sales ss, item i, store s
        WHERE ss.ss_item_sk = i.i_item_sk AND ss.ss_store_sk = s.s_store_sk
          AND i.i_current_price > 250 AND s.s_state = 'CA'
        """,
    ),
    (
        "ds_q04",
        """
        SELECT COUNT(*) AS cnt, SUM(ss.ss_quantity) AS qty
        FROM store_sales ss, date_dim d, store s, promotion p
        WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_store_sk = s.s_store_sk
          AND ss.ss_promo_sk = p.p_promo_sk
          AND d.d_qoy = 2 AND p.p_channel_email = 'Y'
        """,
    ),
    (
        "ds_q05",
        """
        SELECT i.i_category, SUM(ss.ss_net_paid) AS paid
        FROM store_sales ss, item i, date_dim d
        WHERE ss.ss_item_sk = i.i_item_sk AND ss.ss_sold_date_sk = d.d_date_sk
          AND d.d_year BETWEEN 1999 AND 2001
        GROUP BY i.i_category
        """,
    ),
    (
        "ds_q06",
        """
        SELECT COUNT(*) AS cnt
        FROM store_sales ss, time_dim t, date_dim d
        WHERE ss.ss_sold_time_sk = t.t_time_sk AND ss.ss_sold_date_sk = d.d_date_sk
          AND t.t_meal_time = 'dinner' AND d.d_moy IN (11, 12)
        """,
    ),
    (
        "ds_q07",
        """
        SELECT COUNT(*) AS cnt, AVG(ss.ss_sales_price) AS avg_price
        FROM store_sales ss, item i
        WHERE ss.ss_item_sk = i.i_item_sk
          AND i.i_brand IN ('brand_001', 'brand_002', 'brand_003')
        """,
    ),
    (
        "ds_q08",
        """
        SELECT COUNT(*) AS cnt
        FROM store_sales ss, date_dim d, item i, store s, promotion p, time_dim t
        WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_item_sk = i.i_item_sk
          AND ss.ss_store_sk = s.s_store_sk AND ss.ss_promo_sk = p.p_promo_sk
          AND ss.ss_sold_time_sk = t.t_time_sk
          AND d.d_year = 2002 AND i.i_category IN ('Music', 'Shoes')
          AND p.p_channel_tv = 'N' AND t.t_hour BETWEEN 8 AND 20
        """,
    ),
    # --- snowflake chains through customer -----------------------------
    (
        "ds_q09",
        """
        SELECT COUNT(*) AS cnt
        FROM store_sales ss, customer c, customer_address ca
        WHERE ss.ss_customer_sk = c.c_customer_sk
          AND c.c_current_addr_sk = ca.ca_address_sk
          AND ca.ca_state IN ('CA', 'TX', 'NY')
        """,
    ),
    (
        "ds_q10",
        """
        SELECT COUNT(*) AS cnt, SUM(ss.ss_net_paid) AS paid
        FROM store_sales ss, customer c, household_demographics hd, income_band ib
        WHERE ss.ss_customer_sk = c.c_customer_sk
          AND c.c_current_hdemo_sk = hd.hd_demo_sk
          AND hd.hd_income_band_sk = ib.ib_income_band_sk
          AND ib.ib_lower_bound >= 120000 AND hd.hd_dep_count < 4
        """,
    ),
    (
        "ds_q11",
        """
        SELECT COUNT(*) AS cnt
        FROM store_sales ss, customer c, customer_address ca,
             household_demographics hd, income_band ib, date_dim d
        WHERE ss.ss_customer_sk = c.c_customer_sk
          AND c.c_current_addr_sk = ca.ca_address_sk
          AND c.c_current_hdemo_sk = hd.hd_demo_sk
          AND hd.hd_income_band_sk = ib.ib_income_band_sk
          AND ss.ss_sold_date_sk = d.d_date_sk
          AND ca.ca_state = 'TX' AND ib.ib_upper_bound <= 60000
          AND d.d_year = 2000
        """,
    ),
    (
        "ds_q12",
        """
        SELECT ca.ca_state, COUNT(*) AS cnt
        FROM store_sales ss, customer c, customer_address ca, item i
        WHERE ss.ss_customer_sk = c.c_customer_sk
          AND c.c_current_addr_sk = ca.ca_address_sk
          AND ss.ss_item_sk = i.i_item_sk
          AND i.i_category = 'Electronics' AND c.c_birth_year < 1960
        GROUP BY ca.ca_state
        """,
    ),
    (
        "ds_q13",
        """
        SELECT COUNT(*) AS cnt
        FROM store_sales ss, customer c, household_demographics hd
        WHERE ss.ss_customer_sk = c.c_customer_sk
          AND c.c_current_hdemo_sk = hd.hd_demo_sk
          AND hd.hd_buy_potential = '>10000'
        """,
    ),
    (
        "ds_q14",
        """
        SELECT COUNT(*) AS cnt, SUM(ss.ss_net_profit) AS profit
        FROM store_sales ss, customer c, customer_address ca,
             household_demographics hd, date_dim d, store s
        WHERE ss.ss_customer_sk = c.c_customer_sk
          AND c.c_current_addr_sk = ca.ca_address_sk
          AND c.c_current_hdemo_sk = hd.hd_demo_sk
          AND ss.ss_sold_date_sk = d.d_date_sk
          AND ss.ss_store_sk = s.s_store_sk
          AND ca.ca_gmt_offset = -6 AND hd.hd_dep_count BETWEEN 2 AND 5
          AND d.d_qoy = 4 AND s.s_number_employees > 100
        """,
    ),
    # --- multi-fact queries --------------------------------------------
    (
        "ds_q15",
        """
        SELECT COUNT(*) AS cnt
        FROM store_sales ss, catalog_sales cs, item i
        WHERE ss.ss_item_sk = i.i_item_sk AND cs.cs_item_sk = i.i_item_sk
          AND i.i_category = 'Jewelry' AND i.i_current_price > 200
        """,
    ),
    (
        "ds_q16",
        """
        SELECT COUNT(*) AS cnt
        FROM catalog_sales cs, date_dim d, item i
        WHERE cs.cs_sold_date_sk = d.d_date_sk AND cs.cs_item_sk = i.i_item_sk
          AND d.d_year = 1999 AND i.i_class = 'class_07'
        """,
    ),
    (
        "ds_q17",
        """
        SELECT COUNT(*) AS cnt
        FROM store_sales ss, catalog_sales cs, customer c, customer_address ca
        WHERE ss.ss_customer_sk = c.c_customer_sk
          AND cs.cs_bill_customer_sk = c.c_customer_sk
          AND c.c_current_addr_sk = ca.ca_address_sk
          AND ca.ca_state = 'OH' AND c.c_birth_year BETWEEN 1950 AND 1955
        """,
    ),
    (
        "ds_q18",
        """
        SELECT SUM(cs.cs_net_paid) AS paid
        FROM catalog_sales cs, customer c, household_demographics hd, income_band ib
        WHERE cs.cs_bill_customer_sk = c.c_customer_sk
          AND c.c_current_hdemo_sk = hd.hd_demo_sk
          AND hd.hd_income_band_sk = ib.ib_income_band_sk
          AND ib.ib_lower_bound >= 150000
        """,
    ),
    # --- group-bys and wide aggregations --------------------------------
    (
        "ds_q19",
        """
        SELECT s.s_state, i.i_category, SUM(ss.ss_net_paid) AS paid
        FROM store_sales ss, store s, item i, date_dim d
        WHERE ss.ss_store_sk = s.s_store_sk AND ss.ss_item_sk = i.i_item_sk
          AND ss.ss_sold_date_sk = d.d_date_sk AND d.d_year = 2001
        GROUP BY s.s_state, i.i_category
        """,
    ),
    (
        "ds_q20",
        """
        SELECT d.d_year, COUNT(*) AS cnt, AVG(ss.ss_net_profit) AS profit
        FROM store_sales ss, date_dim d
        WHERE ss.ss_sold_date_sk = d.d_date_sk
        GROUP BY d.d_year
        """,
    ),
    (
        "ds_q21",
        """
        SELECT hd.hd_buy_potential, COUNT(*) AS cnt
        FROM store_sales ss, customer c, household_demographics hd
        WHERE ss.ss_customer_sk = c.c_customer_sk
          AND c.c_current_hdemo_sk = hd.hd_demo_sk
        GROUP BY hd.hd_buy_potential
        """,
    ),
    # --- selectivity extremes (for the L/M/S split) ---------------------
    (
        "ds_q22",
        """
        SELECT COUNT(*) AS cnt
        FROM store_sales ss, date_dim d, item i
        WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_item_sk = i.i_item_sk
          AND d.d_year = 2000 AND d.d_moy = 6 AND d.d_dom = 15
          AND i.i_brand = 'brand_042'
        """,
    ),
    (
        "ds_q23",
        """
        SELECT COUNT(*) AS cnt, SUM(ss.ss_net_paid) AS paid
        FROM store_sales ss, item i, customer c, customer_address ca,
             date_dim d
        WHERE ss.ss_item_sk = i.i_item_sk AND ss.ss_customer_sk = c.c_customer_sk
          AND c.c_current_addr_sk = ca.ca_address_sk
          AND ss.ss_sold_date_sk = d.d_date_sk
          AND i.i_current_price BETWEEN 10 AND 280
        """,
    ),
    (
        "ds_q24",
        """
        SELECT COUNT(*) AS cnt
        FROM store_sales ss, promotion p, time_dim t
        WHERE ss.ss_promo_sk = p.p_promo_sk AND ss.ss_sold_time_sk = t.t_time_sk
          AND p.p_channel_email = 'Y' AND p.p_channel_tv = 'Y'
          AND t.t_meal_time IN ('breakfast', 'lunch')
        """,
    ),
    (
        "ds_q25",
        """
        SELECT COUNT(*) AS cnt
        FROM store_sales ss, catalog_sales cs, item i, date_dim d
        WHERE ss.ss_item_sk = i.i_item_sk AND cs.cs_item_sk = i.i_item_sk
          AND cs.cs_sold_date_sk = d.d_date_sk
          AND i.i_category = 'Sports' AND d.d_year = 2002
        """,
    ),
    # --- top-k / HAVING report queries (TPC-DS is full of
    # "best N categories by revenue" shapes: q3, q42, q52, ...) ----------
    (
        "ds_q26",
        """
        SELECT i.i_brand, SUM(ss.ss_net_paid) AS paid
        FROM store_sales ss, item i, date_dim d
        WHERE ss.ss_item_sk = i.i_item_sk AND ss.ss_sold_date_sk = d.d_date_sk
          AND d.d_year = 2000 AND d.d_moy = 12
        GROUP BY i.i_brand
        ORDER BY paid DESC, i.i_brand ASC
        LIMIT 10
        """,
    ),
    (
        "ds_q27",
        """
        SELECT ca.ca_state, COUNT(*) AS cnt, SUM(ss.ss_net_profit) AS profit
        FROM store_sales ss, customer c, customer_address ca
        WHERE ss.ss_customer_sk = c.c_customer_sk
          AND c.c_current_addr_sk = ca.ca_address_sk
        GROUP BY ca.ca_state
        HAVING COUNT(*) > 500
        ORDER BY profit DESC
        LIMIT 5
        """,
    ),
    (
        "ds_q28",
        """
        SELECT i.i_category, i.i_class, AVG(ss.ss_sales_price) AS avg_price
        FROM store_sales ss, item i, store s
        WHERE ss.ss_item_sk = i.i_item_sk AND ss.ss_store_sk = s.s_store_sk
          AND s.s_state IN ('CA', 'NY')
        GROUP BY i.i_category, i.i_class
        HAVING COUNT(*) >= 20 AND AVG(ss.ss_sales_price) > 100
        ORDER BY avg_price DESC, i.i_category ASC, i.i_class ASC
        LIMIT 15
        """,
    ),
    (
        "ds_q29",
        """
        SELECT d.d_year, d.d_moy, SUM(cs.cs_net_paid) AS paid
        FROM catalog_sales cs, date_dim d
        WHERE cs.cs_sold_date_sk = d.d_date_sk
        GROUP BY d.d_year, d.d_moy
        ORDER BY SUM(cs.cs_quantity) DESC, d.d_year ASC, d.d_moy ASC
        LIMIT 8
        """,
    ),
    (
        "ds_q30",
        """
        SELECT s.s_state, SUM(ss.ss_net_paid) AS paid
        FROM store_sales ss, store s, date_dim d
        WHERE ss.ss_store_sk = s.s_store_sk AND ss.ss_sold_date_sk = d.d_date_sk
          AND d.d_year BETWEEN 2000 AND 2001
        GROUP BY s.s_state
        HAVING SUM(ss.ss_net_paid) > 1000000
        ORDER BY s.s_state ASC
        """,
    ),
    # --- clustered top-k scans (zone-map early exit on the sorted
    # surrogate-key layout of date_dim) ----------------------------------
    (
        "ds_q31",
        """
        SELECT d.d_date_sk, d.d_year, d.d_moy
        FROM date_dim d
        ORDER BY d.d_date_sk DESC
        LIMIT 20
        """,
    ),
    (
        "ds_q32",
        """
        SELECT d.d_date_sk, d.d_year
        FROM date_dim d
        ORDER BY d.d_year ASC, d.d_date_sk ASC
        LIMIT 30
        """,
    ),
]


def queries(database: Database) -> list[QuerySpec]:
    """Bind the TPC-DS-lite query set against a built database."""
    return [parse_query(database, sql, name) for name, sql in _QUERIES]


def query_sqls() -> list[tuple[str, str]]:
    """The workload's ``(name, sql)`` pairs, unbound.

    Service-level benchmarks (e.g. ``repro.bench.trace_overhead``) feed
    these through :class:`repro.service.QueryService` so the measured
    path includes parsing, plan caching, and instrumentation — not just
    pre-bound plan execution.
    """
    return list(_QUERIES)
