"""SSB-style star schema workload.

A classic star: a ``lineorder`` fact table with customer, supplier,
part, and date dimensions.  Used by the micro-benchmarks (Figure 7's
two-table profile), the quickstart example, and star-query tests.
"""

from __future__ import annotations

import numpy as np

from repro.query.spec import QuerySpec
from repro.sql.binder import parse_query
from repro.storage.database import Database
from repro.storage.schema import ForeignKey
from repro.storage.table import Table
from repro.util.rng import derive_rng
from repro.workloads.generator import (
    categorical,
    numeric,
    scaled,
    skewed_fk,
    surrogate_keys,
)

DEFAULT_SEED = 2020

_REGIONS = ["AMERICA", "ASIA", "EUROPE", "AFRICA", "MIDDLE EAST"]
_NATIONS = [f"NATION{i:02d}" for i in range(25)]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_CATEGORIES = [f"MFGR#{i}" for i in range(1, 6)]
_BRANDS = [f"BRAND#{i:02d}" for i in range(1, 41)]
_COLORS = ["red", "green", "blue", "ivory", "salmon", "peach", "orchid", "navy"]


def build(scale: float = 1.0, seed: int = DEFAULT_SEED) -> tuple[Database, list[QuerySpec]]:
    """Build the SSB-like database and its query set."""
    database = build_database(scale, seed)
    return database, queries(database)


def build_database(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Database:
    rng = derive_rng(seed, "ssb")
    database = Database("ssb")

    n_customer = scaled(3000, scale)
    n_supplier = scaled(400, scale)
    n_part = scaled(2000, scale)
    n_date = 365 * 4  # calendar dimension: fixed regardless of scale
    n_fact = scaled(120_000, scale)

    customer = Table.from_arrays(
        "customer",
        {
            "c_custkey": surrogate_keys(n_customer),
            "c_region": categorical(rng, n_customer, _REGIONS),
            "c_nation": categorical(rng, n_customer, _NATIONS),
            "c_mktsegment": categorical(rng, n_customer, _SEGMENTS),
        },
        key=("c_custkey",),
    )
    supplier = Table.from_arrays(
        "supplier",
        {
            "s_suppkey": surrogate_keys(n_supplier),
            "s_region": categorical(rng, n_supplier, _REGIONS),
            "s_nation": categorical(rng, n_supplier, _NATIONS),
        },
        key=("s_suppkey",),
    )
    part = Table.from_arrays(
        "part",
        {
            "p_partkey": surrogate_keys(n_part),
            "p_category": categorical(rng, n_part, _CATEGORIES),
            "p_brand": categorical(rng, n_part, _BRANDS),
            "p_color": categorical(rng, n_part, _COLORS),
        },
        key=("p_partkey",),
    )
    date_dim = Table.from_arrays(
        "date_dim",
        {
            "d_datekey": surrogate_keys(n_date),
            "d_year": 1992 + (np.arange(n_date) // 365),
            "d_month": 1 + (np.arange(n_date) // 30) % 12,
            "d_weeknum": 1 + (np.arange(n_date) // 7) % 52,
        },
        key=("d_datekey",),
    )
    lineorder = Table.from_arrays(
        "lineorder",
        {
            "lo_custkey": skewed_fk(rng, n_fact, customer.column("c_custkey"), 0.4),
            "lo_suppkey": skewed_fk(rng, n_fact, supplier.column("s_suppkey"), 0.3),
            "lo_partkey": skewed_fk(rng, n_fact, part.column("p_partkey"), 0.6),
            "lo_orderdate": skewed_fk(rng, n_fact, date_dim.column("d_datekey"), 0.2),
            "lo_quantity": numeric(rng, n_fact, 1, 50, integer=True),
            "lo_discount": numeric(rng, n_fact, 0, 10, integer=True),
            "lo_revenue": numeric(rng, n_fact, 100.0, 10_000.0),
        },
    )

    for table in (customer, supplier, part, date_dim, lineorder):
        database.add_table(table)
    database.add_foreign_key(ForeignKey("lineorder", ("lo_custkey",), "customer", ("c_custkey",)))
    database.add_foreign_key(ForeignKey("lineorder", ("lo_suppkey",), "supplier", ("s_suppkey",)))
    database.add_foreign_key(ForeignKey("lineorder", ("lo_partkey",), "part", ("p_partkey",)))
    database.add_foreign_key(ForeignKey("lineorder", ("lo_orderdate",), "date_dim", ("d_datekey",)))
    return database


_QUERIES: list[tuple[str, str]] = [
    (
        "ssb_q1_1",
        """
        SELECT SUM(lo.lo_revenue) AS revenue
        FROM lineorder lo, date_dim d
        WHERE lo.lo_orderdate = d.d_datekey
          AND d.d_year = 1993 AND lo.lo_discount BETWEEN 1 AND 3
          AND lo.lo_quantity < 25
        """,
    ),
    (
        "ssb_q1_2",
        """
        SELECT SUM(lo.lo_revenue) AS revenue
        FROM lineorder lo, date_dim d
        WHERE lo.lo_orderdate = d.d_datekey
          AND d.d_month = 1 AND lo.lo_discount BETWEEN 4 AND 6
        """,
    ),
    (
        "ssb_q2_1",
        """
        SELECT SUM(lo.lo_revenue) AS revenue, COUNT(*) AS orders
        FROM lineorder lo, part p, supplier s, date_dim d
        WHERE lo.lo_partkey = p.p_partkey AND lo.lo_suppkey = s.s_suppkey
          AND lo.lo_orderdate = d.d_datekey
          AND p.p_category = 'MFGR#1' AND s.s_region = 'AMERICA'
        """,
    ),
    (
        "ssb_q2_2",
        """
        SELECT SUM(lo.lo_revenue) AS revenue
        FROM lineorder lo, part p, supplier s, date_dim d
        WHERE lo.lo_partkey = p.p_partkey AND lo.lo_suppkey = s.s_suppkey
          AND lo.lo_orderdate = d.d_datekey
          AND p.p_brand IN ('BRAND#03', 'BRAND#04') AND s.s_region = 'ASIA'
        """,
    ),
    (
        "ssb_q3_1",
        """
        SELECT c.c_nation, SUM(lo.lo_revenue) AS revenue
        FROM lineorder lo, customer c, supplier s, date_dim d
        WHERE lo.lo_custkey = c.c_custkey AND lo.lo_suppkey = s.s_suppkey
          AND lo.lo_orderdate = d.d_datekey
          AND c.c_region = 'ASIA' AND s.s_region = 'ASIA'
          AND d.d_year BETWEEN 1992 AND 1994
        GROUP BY c.c_nation
        """,
    ),
    (
        "ssb_q3_2",
        """
        SELECT SUM(lo.lo_revenue) AS revenue
        FROM lineorder lo, customer c, supplier s, date_dim d
        WHERE lo.lo_custkey = c.c_custkey AND lo.lo_suppkey = s.s_suppkey
          AND lo.lo_orderdate = d.d_datekey
          AND c.c_nation = 'NATION03' AND s.s_nation = 'NATION03'
        """,
    ),
    (
        "ssb_q4_1",
        """
        SELECT SUM(lo.lo_revenue) AS profit
        FROM lineorder lo, customer c, supplier s, part p, date_dim d
        WHERE lo.lo_custkey = c.c_custkey AND lo.lo_suppkey = s.s_suppkey
          AND lo.lo_partkey = p.p_partkey AND lo.lo_orderdate = d.d_datekey
          AND c.c_region = 'AMERICA' AND s.s_region = 'AMERICA'
          AND p.p_category = 'MFGR#2'
        """,
    ),
    (
        "ssb_q4_2",
        """
        SELECT COUNT(*) AS cnt
        FROM lineorder lo, customer c, supplier s, part p, date_dim d
        WHERE lo.lo_custkey = c.c_custkey AND lo.lo_suppkey = s.s_suppkey
          AND lo.lo_partkey = p.p_partkey AND lo.lo_orderdate = d.d_datekey
          AND c.c_mktsegment = 'MACHINERY' AND s.s_region = 'EUROPE'
          AND p.p_color IN ('red', 'green') AND d.d_year = 1995
        """,
    ),
]


def queries(database: Database) -> list[QuerySpec]:
    """Bind the SSB query set against a built database."""
    return [parse_query(database, sql, name) for name, sql in _QUERIES]
