"""Synthetic benchmark workloads.

Stand-ins for the paper's three evaluation workloads (Section 7.2,
Table 3), shaped to reproduce the topological and statistical properties
that drive its results:

* :mod:`repro.workloads.tpcds_lite` — TPC-DS-shaped: one dominant fact
  table (``store_sales``), a second fact (``catalog_sales``), snowflake
  dimension paths, 32 queries (including report-style
  ``ORDER BY ... LIMIT`` / ``HAVING`` top-k shapes).
* :mod:`repro.workloads.job_lite` — JOB/IMDB-shaped: several fact-like
  tables joined through shared dimensions, dimension-dimension joins,
  non-PKFK joins, 30 queries (including the paper's Figure 2 query).
* :mod:`repro.workloads.customer_lite` — CUSTOMER-shaped: deep
  snowflake with many branches and high join counts per query.
* :mod:`repro.workloads.star` — SSB-style star schema used by the
  micro-benchmarks and examples.
* :mod:`repro.workloads.synthetic` — parametric random star/snowflake
  instances for theorem validation and property-based tests.

Every ``build(scale, seed)`` returns ``(Database, list[QuerySpec])``
with declared PK/FK constraints and referential integrity.
"""

from repro.workloads import (  # noqa: F401
    customer_lite,
    job_lite,
    star,
    synthetic,
    tpcds_lite,
)

WORKLOADS = {
    "tpcds": tpcds_lite,
    "job": job_lite,
    "customer": customer_lite,
}

__all__ = [
    "customer_lite",
    "job_lite",
    "star",
    "synthetic",
    "tpcds_lite",
    "WORKLOADS",
]
