"""Physical plan node classes.

A plan is a tree of :class:`PlanNode`.  Hash joins distinguish a *build*
child (hash table side) from a *probe* child (streaming side); the tree
shape therefore encodes the paper's plan spaces directly — a right-deep
tree is one where every build child is a leaf and the probe spine runs
to the right-most leaf.

Bitvector filters are represented by :class:`BitvectorDef` records.
Push-down (:mod:`repro.plan.pushdown`, the paper's Algorithm 1) creates
one def per hash join and attaches it to the node where it is applied:
a :class:`ScanNode` (fully pushed down) or a residual
:class:`FilterNode` above a join.
"""

from __future__ import annotations

import itertools

from repro.errors import PlanError
from repro.expr.expressions import Expression
from repro.query.spec import Aggregate, OrderKey
from repro.expr.expressions import ColumnRef

_node_counter = itertools.count(1)
_filter_counter = itertools.count(1)


class BitvectorDef:
    """One bitvector filter: created at a join, applied somewhere below.

    Attributes
    ----------
    filter_id:
        Unique id linking the creation site to the application site at
        runtime.
    source_join:
        The :class:`HashJoinNode` whose build side creates the filter.
    build_keys / probe_keys:
        Alias-qualified key columns on the build / probe side.  The
        probe keys determine where the filter may be pushed (paper
        Algorithm 1 line 15: all referenced columns must be available).
    """

    def __init__(
        self,
        source_join: "HashJoinNode",
        build_keys: tuple[tuple[str, str], ...],
        probe_keys: tuple[tuple[str, str], ...],
    ) -> None:
        self.filter_id = next(_filter_counter)
        self.source_join = source_join
        self.build_keys = build_keys
        self.probe_keys = probe_keys

    @property
    def probe_aliases(self) -> frozenset[str]:
        return frozenset(alias for alias, _ in self.probe_keys)

    def __repr__(self) -> str:
        keys = ", ".join(f"{a}.{c}" for a, c in self.probe_keys)
        return f"BV#{self.filter_id}[{keys}]"


class PlanNode:
    """Base plan node.

    ``applied_bitvectors`` lists the filters applied at this node (set
    by push-down); ``output_aliases`` is the set of base relation
    aliases whose columns the node's output carries.
    """

    def __init__(self) -> None:
        self.node_id = next(_node_counter)
        self.applied_bitvectors: list[BitvectorDef] = []

    @property
    def output_aliases(self) -> frozenset[str]:
        raise NotImplementedError

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def walk(self):
        """Pre-order traversal."""
        yield self
        for child in self.children():
            yield from child.walk()

    @property
    def label(self) -> str:
        return type(self).__name__


class ScanNode(PlanNode):
    """Leaf: scan one base table instance, applying its local predicate
    and any bitvector filters pushed down to it."""

    def __init__(self, alias: str, table_name: str,
                 predicate: Expression | None = None) -> None:
        super().__init__()
        self.alias = alias
        self.table_name = table_name
        self.predicate = predicate

    @property
    def output_aliases(self) -> frozenset[str]:
        return frozenset({self.alias})

    @property
    def label(self) -> str:
        suffix = " σ" if self.predicate is not None else ""
        return f"Scan({self.alias}:{self.table_name}){suffix}"


class HashJoinNode(PlanNode):
    """Hash join: builds on ``build``, streams ``probe``.

    ``creates_bitvector`` is the cost-based switch from Section 6.3 —
    when False, push-down does not generate a filter for this join.
    """

    def __init__(
        self,
        build: PlanNode,
        probe: PlanNode,
        build_keys: tuple[tuple[str, str], ...],
        probe_keys: tuple[tuple[str, str], ...],
        creates_bitvector: bool = True,
    ) -> None:
        super().__init__()
        if len(build_keys) != len(probe_keys) or not build_keys:
            raise PlanError("hash join requires aligned, non-empty key lists")
        build_aliases = build.output_aliases
        probe_aliases = probe.output_aliases
        for alias, _ in build_keys:
            if alias not in build_aliases:
                raise PlanError(f"build key alias {alias!r} not in build side")
        for alias, _ in probe_keys:
            if alias not in probe_aliases:
                raise PlanError(f"probe key alias {alias!r} not in probe side")
        if build_aliases & probe_aliases:
            raise PlanError("join children share relation aliases")
        self.build = build
        self.probe = probe
        self.build_keys = build_keys
        self.probe_keys = probe_keys
        self.creates_bitvector = creates_bitvector
        # Filled in by push-down when a bitvector is actually created.
        self.created_bitvector: BitvectorDef | None = None

    @property
    def output_aliases(self) -> frozenset[str]:
        return self.build.output_aliases | self.probe.output_aliases

    def children(self) -> tuple[PlanNode, ...]:
        return (self.build, self.probe)

    @property
    def label(self) -> str:
        keys = ", ".join(
            f"{ba}.{bc}={pa}.{pc}"
            for (ba, bc), (pa, pc) in zip(self.build_keys, self.probe_keys)
        )
        return f"HashJoin[{keys}]"


class FilterNode(PlanNode):
    """Residual bitvector application site (Algorithm 1 lines 24-29).

    Created when a bitvector's probe columns span both children of a
    join below, so the filter cannot descend further.
    """

    def __init__(self, child: PlanNode) -> None:
        super().__init__()
        self.child = child

    @property
    def output_aliases(self) -> frozenset[str]:
        return self.child.output_aliases

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    @property
    def label(self) -> str:
        filters = ", ".join(repr(f) for f in self.applied_bitvectors)
        return f"Filter[{filters}]"


class AggregateNode(PlanNode):
    """Final aggregation over the join result.

    ``having`` is an optional post-grouping predicate over the
    aggregate-output domain (:data:`repro.query.spec.OUTPUT_ALIAS`
    column references).
    """

    def __init__(
        self,
        child: PlanNode,
        aggregates: tuple[Aggregate, ...],
        group_by: tuple[ColumnRef, ...] = (),
        having: Expression | None = None,
    ) -> None:
        super().__init__()
        self.child = child
        self.aggregates = aggregates
        self.group_by = group_by
        self.having = having

    @property
    def output_aliases(self) -> frozenset[str]:
        return self.child.output_aliases

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    @property
    def label(self) -> str:
        items = ", ".join(str(a) for a in self.aggregates)
        if self.group_by:
            items += " GROUP BY " + ", ".join(str(g) for g in self.group_by)
        if self.having is not None:
            items += f" HAVING {self.having}"
        return f"Aggregate[{items}]"


class TopKNode(PlanNode):
    """Top-k / projection operator at the plan root.

    Sorts its input by ``order_by`` and keeps the first ``limit`` rows
    (all rows when ``limit`` is ``None``).  Over a relation input it
    can exploit zone-map ordering to skip morsels that provably cannot
    contribute to the top k (clustered layouts).  ``columns`` lists the
    projection output columns for pure projection queries.
    """

    def __init__(
        self,
        child: PlanNode,
        order_by: tuple[OrderKey, ...] = (),
        limit: int | None = None,
        columns: tuple[ColumnRef, ...] = (),
    ) -> None:
        super().__init__()
        if limit is not None and limit < 0:
            raise PlanError("top-k limit must be non-negative")
        self.child = child
        self.order_by = order_by
        self.limit = limit
        self.columns = columns

    @property
    def output_aliases(self) -> frozenset[str]:
        return self.child.output_aliases

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    @property
    def label(self) -> str:
        parts = []
        if self.order_by:
            parts.append(", ".join(str(key) for key in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return f"TopK[{'; '.join(parts)}]" if parts else "TopK[]"
