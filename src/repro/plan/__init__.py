"""Physical plans: nodes, construction, bitvector push-down, display."""

from repro.plan.nodes import (
    BitvectorDef,
    PlanNode,
    ScanNode,
    HashJoinNode,
    FilterNode,
    AggregateNode,
    TopKNode,
)
from repro.plan.builder import (
    join_nodes,
    build_right_deep,
    attach_aggregate,
    scan_for,
)
from repro.plan.pushdown import push_down_bitvectors
from repro.plan.properties import (
    is_right_deep,
    join_count,
    plan_signature,
    collect_nodes,
    base_aliases,
)
from repro.plan.display import format_plan

__all__ = [
    "BitvectorDef",
    "PlanNode",
    "ScanNode",
    "HashJoinNode",
    "FilterNode",
    "AggregateNode",
    "TopKNode",
    "join_nodes",
    "build_right_deep",
    "attach_aggregate",
    "scan_for",
    "push_down_bitvectors",
    "is_right_deep",
    "join_count",
    "plan_signature",
    "collect_nodes",
    "base_aliases",
    "format_plan",
]
