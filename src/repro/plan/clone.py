"""Structural plan cloning.

Candidate plans are costed by running bitvector push-down and a
cardinality model over them; push-down mutates the tree, so costing
works on a clone.  ``clone_plan`` copies Scan/HashJoin/Aggregate nodes
(fresh node ids, no bitvector state) and returns a mapping from original
node ids to clones so per-join decisions (e.g. the Section 6.3
``creates_bitvector`` switch) can be transferred back.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.plan.nodes import (
    AggregateNode,
    FilterNode,
    HashJoinNode,
    PlanNode,
    ScanNode,
    TopKNode,
)


def clone_plan(plan: PlanNode) -> tuple[PlanNode, dict[int, PlanNode]]:
    """Deep-copy a plan that has not been through push-down.

    Returns ``(copy, mapping)`` where ``mapping[original_node_id]`` is
    the corresponding clone.
    """
    mapping: dict[int, PlanNode] = {}

    def visit(node: PlanNode) -> PlanNode:
        if isinstance(node, ScanNode):
            copy: PlanNode = ScanNode(node.alias, node.table_name, node.predicate)
        elif isinstance(node, HashJoinNode):
            copy = HashJoinNode(
                build=visit(node.build),
                probe=visit(node.probe),
                build_keys=node.build_keys,
                probe_keys=node.probe_keys,
                creates_bitvector=node.creates_bitvector,
            )
        elif isinstance(node, AggregateNode):
            copy = AggregateNode(
                visit(node.child), node.aggregates, node.group_by, node.having
            )
        elif isinstance(node, TopKNode):
            copy = TopKNode(
                visit(node.child), node.order_by, node.limit, node.columns
            )
        elif isinstance(node, FilterNode):
            raise PlanError("clone_plan expects a plan without FilterNodes")
        else:
            raise PlanError(f"cannot clone node {node.label}")
        mapping[node.node_id] = copy
        return copy

    return visit(plan), mapping
