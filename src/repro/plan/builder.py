"""Plan construction helpers.

``build_right_deep`` turns a join order ``[X0, X1, ..., Xn]`` (the
paper's ``T(X0, X1, ..., Xn)``: X0 the right-most leaf, Xn the left-most)
into a physical tree: X0 is the bottom of the probe spine and each Xk
joins in as the build side of the k-th join.

``join_nodes`` is the general composition primitive — both children can
be arbitrary subplans, which Algorithm 3 uses when it stitches optimized
snowflake subplans together.
"""

from __future__ import annotations

from repro.errors import OptimizerError, PlanError
from repro.plan.nodes import AggregateNode, HashJoinNode, PlanNode, ScanNode, TopKNode
from repro.query.joingraph import JoinGraph
from repro.query.spec import QuerySpec


def scan_for(spec: QuerySpec, alias: str) -> ScanNode:
    """Create the scan leaf for one relation instance of ``spec``."""
    return ScanNode(
        alias=alias,
        table_name=spec.table_of(alias),
        predicate=spec.local_predicate(alias),
    )


def join_nodes(
    graph: JoinGraph,
    build: PlanNode,
    probe: PlanNode,
    creates_bitvector: bool = True,
    allow_cross_product: bool = False,
) -> HashJoinNode:
    """Join two subplans on every graph edge connecting them.

    The equi-join key is the concatenation of all join-column pairs
    between any build-side alias and any probe-side alias (a join such
    as HJ1 in the paper's Figure 1, where the build relation joins two
    probe-side relations, yields a composite key spanning both).
    """
    build_aliases = build.output_aliases
    probe_aliases = probe.output_aliases
    build_keys: list[tuple[str, str]] = []
    probe_keys: list[tuple[str, str]] = []
    for build_alias in sorted(build_aliases):
        for probe_alias in sorted(probe_aliases):
            edge = graph.edge_between(build_alias, probe_alias)
            if edge is None:
                continue
            for build_col, probe_col in zip(
                edge.columns_of(build_alias), edge.columns_of(probe_alias)
            ):
                build_keys.append((build_alias, build_col))
                probe_keys.append((probe_alias, probe_col))
    if not build_keys:
        if not allow_cross_product:
            raise OptimizerError(
                f"cross product between {sorted(build_aliases)} and "
                f"{sorted(probe_aliases)}"
            )
        raise PlanError("cross products are not executable by hash join")
    return HashJoinNode(
        build=build,
        probe=probe,
        build_keys=tuple(build_keys),
        probe_keys=tuple(probe_keys),
    )


def build_right_deep(
    graph: JoinGraph,
    order: list[str],
    leaf_plans: dict[str, PlanNode] | None = None,
) -> PlanNode:
    """Build the right-deep tree ``T(order[0], order[1], ..., order[n])``.

    ``leaf_plans`` optionally substitutes a subplan for an alias (used
    by Algorithm 3 to embed already-optimized snowflakes).  Raises
    :class:`OptimizerError` if any prefix is disconnected (cross
    product), matching the paper's plan space.
    """
    if not order:
        raise OptimizerError("empty join order")
    spec = graph.spec
    leaf_plans = leaf_plans or {}

    def leaf(alias: str) -> PlanNode:
        return leaf_plans.get(alias) or scan_for(spec, alias)

    plan = leaf(order[0])
    for alias in order[1:]:
        plan = join_nodes(graph, build=leaf(alias), probe=plan)
    return plan


def attach_aggregate(plan: PlanNode, spec: QuerySpec) -> PlanNode:
    """Wrap the plan with the query's output operators.

    Aggregation (with HAVING) goes first; a :class:`TopKNode` wraps the
    result whenever the query has ORDER BY / LIMIT or needs projection
    columns materialized.
    """
    if spec.aggregates:
        plan = AggregateNode(
            plan, spec.aggregates, spec.group_by, having=spec.having
        )
    if spec.order_by or spec.limit is not None or spec.select_columns:
        plan = TopKNode(
            plan,
            order_by=spec.order_by,
            limit=spec.limit,
            columns=spec.select_columns,
        )
    return plan
