"""Bitvector filter creation and push-down — the paper's Algorithm 1.

Starting from the plan root, each hash join creates one bitvector filter
from its build side keyed on the equi-join columns, destined for the
probe side.  Every in-flight filter then descends: if exactly one child
of the current operator carries *all* the columns the filter references,
it continues into that child; otherwise it is applied right here via a
residual :class:`~repro.plan.nodes.FilterNode`.  Filters that reach a
scan are applied at the scan ("pushed down to the lowest possible
level").

The traversal mirrors the paper's pseudo-code: ``PlanPushDown`` seeds an
empty filter set at the root and ``OpPushDown`` recurses pre-order.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.plan.nodes import (
    AggregateNode,
    BitvectorDef,
    FilterNode,
    HashJoinNode,
    PlanNode,
    ScanNode,
    TopKNode,
)


def push_down_bitvectors(plan: PlanNode) -> PlanNode:
    """Return a plan with bitvector filters created and pushed down.

    The input plan must not already contain residual filter nodes (the
    algorithm runs once, on a freshly built plan).  Scan-level
    ``applied_bitvectors`` are reset before placement, so the call is
    idempotent in effect.
    """
    for node in plan.walk():
        if isinstance(node, FilterNode):
            raise PlanError("push-down must run on a plan without FilterNodes")
        node.applied_bitvectors = []
        if isinstance(node, HashJoinNode):
            node.created_bitvector = None
    return _op_push_down(plan, [])


def _op_push_down(op: PlanNode, incoming: list[BitvectorDef]) -> PlanNode:
    if isinstance(op, (AggregateNode, TopKNode)):
        op.child = _op_push_down(op.child, incoming)
        return op

    if isinstance(op, ScanNode):
        # Lowest possible level: apply every arriving filter at the scan.
        for bitvector in incoming:
            if not bitvector.probe_aliases <= op.output_aliases:
                raise PlanError(
                    f"filter {bitvector!r} cannot apply at scan {op.alias!r}"
                )
        op.applied_bitvectors = list(incoming)
        return op

    if not isinstance(op, HashJoinNode):
        raise PlanError(f"unexpected node in push-down: {op.label}")

    push_down_map: dict[int, list[BitvectorDef]] = {
        id(op.build): [],
        id(op.probe): [],
    }

    # Lines 8-10: this hash join creates a filter for its probe side.
    if op.creates_bitvector:
        created = BitvectorDef(
            source_join=op,
            build_keys=op.build_keys,
            probe_keys=op.probe_keys,
        )
        op.created_bitvector = created
        push_down_map[id(op.probe)].append(created)

    # Lines 12-23: route every incoming filter to the unique child that
    # carries all its columns, or keep it here as residual.
    residual: list[BitvectorDef] = []
    for bitvector in incoming:
        eligible = [
            child
            for child in (op.build, op.probe)
            if bitvector.probe_aliases <= child.output_aliases
        ]
        if len(eligible) == 1:
            push_down_map[id(eligible[0])].append(bitvector)
        else:
            residual.append(bitvector)

    # Lines 30-33: recurse into children with their routed filters.
    op.build = _op_push_down(op.build, push_down_map[id(op.build)])
    op.probe = _op_push_down(op.probe, push_down_map[id(op.probe)])

    # Lines 24-29: wrap with a residual filter operator if needed.
    if residual:
        filter_node = FilterNode(op)
        filter_node.applied_bitvectors = residual
        return filter_node
    return op


def strip_bitvectors(plan: PlanNode) -> PlanNode:
    """Remove all bitvector filters (creation + application) from a plan.

    Used by the Table 4 experiment, which executes the *same* plan with
    and without bitvector filtering.  Residual filter nodes are spliced
    out of the tree.
    """
    for node in plan.walk():
        node.applied_bitvectors = []
        if isinstance(node, HashJoinNode):
            node.created_bitvector = None
    return _splice_filters(plan)


def _splice_filters(node: PlanNode) -> PlanNode:
    if isinstance(node, FilterNode):
        return _splice_filters(node.child)
    if isinstance(node, HashJoinNode):
        node.build = _splice_filters(node.build)
        node.probe = _splice_filters(node.probe)
        return node
    if isinstance(node, (AggregateNode, TopKNode)):
        node.child = _splice_filters(node.child)
        return node
    return node
