"""Structural plan properties used by tests and the optimizer."""

from __future__ import annotations

from repro.plan.nodes import (
    AggregateNode,
    FilterNode,
    HashJoinNode,
    PlanNode,
    ScanNode,
    TopKNode,
)


def collect_nodes(plan: PlanNode, node_type: type | None = None) -> list[PlanNode]:
    """All nodes in pre-order, optionally filtered by type."""
    nodes = list(plan.walk())
    if node_type is None:
        return nodes
    return [node for node in nodes if isinstance(node, node_type)]


def join_count(plan: PlanNode) -> int:
    return len(collect_nodes(plan, HashJoinNode))


def base_aliases(plan: PlanNode) -> frozenset[str]:
    return plan.output_aliases


def _strip_wrappers(node: PlanNode) -> PlanNode:
    while isinstance(node, (FilterNode, AggregateNode, TopKNode)):
        node = node.children()[0]
    return node


def is_right_deep(plan: PlanNode) -> bool:
    """True when every hash join's build side is a single base relation.

    Residual filter nodes and the final aggregate are transparent for
    the shape test (they do not change the join tree's silhouette).
    """
    node = _strip_wrappers(plan)
    while isinstance(node, HashJoinNode):
        build = _strip_wrappers(node.build)
        if not isinstance(build, ScanNode):
            return False
        node = _strip_wrappers(node.probe)
    return isinstance(node, ScanNode)


def right_deep_order(plan: PlanNode) -> list[str]:
    """Recover ``[X0, X1, ..., Xn]`` from a right-deep plan.

    ``X0`` is the right-most leaf (bottom of the probe spine).
    Raises ``ValueError`` if the plan is not right-deep.
    """
    if not is_right_deep(plan):
        raise ValueError("plan is not right-deep")
    builds: list[str] = []
    node = _strip_wrappers(plan)
    while isinstance(node, HashJoinNode):
        build = _strip_wrappers(node.build)
        assert isinstance(build, ScanNode)
        builds.append(build.alias)
        node = _strip_wrappers(node.probe)
    assert isinstance(node, ScanNode)
    return [node.alias] + list(reversed(builds))


def plan_signature(plan: PlanNode) -> str:
    """Deterministic structural signature (for dedup and test asserts)."""
    node = plan
    if isinstance(node, TopKNode):
        return f"TopK({plan_signature(node.child)})"
    if isinstance(node, AggregateNode):
        return f"Agg({plan_signature(node.child)})"
    if isinstance(node, FilterNode):
        filters = ",".join(
            "+".join(f"{a}.{c}" for a, c in bv.probe_keys)
            for bv in node.applied_bitvectors
        )
        return f"Flt[{filters}]({plan_signature(node.child)})"
    if isinstance(node, HashJoinNode):
        return f"HJ({plan_signature(node.build)},{plan_signature(node.probe)})"
    if isinstance(node, ScanNode):
        return node.alias
    return node.label
