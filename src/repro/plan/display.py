"""Human-readable plan rendering.

Produces indented trees like::

    Aggregate[COUNT(*)]
      HashJoin[k.id=mk.keyword_id]
        Scan(k:keyword) σ  <- creates BV#2
        HashJoin[t.id=mk.movie_id]
          Scan(t:title) σ  <- creates BV#1
          Scan(mk:movie_keyword)  [BV#1, BV#2]

mirroring the annotated plans in the paper's figures.
"""

from __future__ import annotations

from repro.plan.nodes import HashJoinNode, PlanNode


def format_plan(
    plan: PlanNode,
    annotations: dict[int, str] | None = None,
    indent: str = "  ",
) -> str:
    """Render a plan tree.

    ``annotations`` maps ``node_id`` to extra text (e.g. cardinalities
    or costs) appended to the node's line.
    """
    annotations = annotations or {}
    lines: list[str] = []

    def visit(node: PlanNode, depth: int) -> None:
        parts = [node.label]
        if isinstance(node, HashJoinNode) and node.created_bitvector is not None:
            parts.append(f"<- creates {node.created_bitvector!r}")
        if node.applied_bitvectors and not node.label.startswith("Filter"):
            applied = ", ".join(repr(b) for b in node.applied_bitvectors)
            parts.append(f"[{applied}]")
        extra = annotations.get(node.node_id)
        if extra:
            parts.append(f"-- {extra}")
        lines.append(indent * depth + "  ".join(parts))
        for child in node.children():
            visit(child, depth + 1)

    visit(plan, 0)
    return "\n".join(lines)
