"""repro — Bitvector-aware Query Optimization for Decision Support Queries.

A from-scratch reproduction of Ding, Chaudhuri & Narasayya (SIGMOD 2020):
an in-memory columnar engine with hash joins and bitvector filters, a
cost-based optimizer substrate, and the paper's bitvector-aware join
ordering algorithms, workloads, and experiment harness.

Typical one-shot usage::

    from repro import Database, Table, optimize_query, Executor
    from repro.workloads import tpcds_lite

    db, queries = tpcds_lite.build(scale=0.1, seed=7)
    optimized = optimize_query(db, queries[0], pipeline="bqo")
    result = Executor(db).execute(optimized.plan)
    print(result.metrics.metered_cpu())

For repeat traffic, the service layer (:mod:`repro.service`) caches
optimized plans by normalized query fingerprint and reuses bitvector
filters across queries::

    from repro import QueryService
    from repro.workloads import star

    service = QueryService(star.build_database(scale=0.1))
    answer = service.execute("SELECT COUNT(*) AS n FROM lineorder lo, "
                             "customer c WHERE lo.lo_custkey = c.c_custkey "
                             "AND c.c_region = 'ASIA'")
    print(answer.scalar("n"), answer.metrics.plan_cache_hit)
    print(service.explain("SELECT ..."), service.stats())
"""

from repro.storage import Table, Database, ForeignKey, TableSchema, ColumnDef
from repro.storage.types import ColumnType
from repro.query.spec import QuerySpec, RelationRef, JoinPredicate, Aggregate
from repro.query.joingraph import JoinGraph
from repro.engine import (
    Deadline,
    ExecutionContext,
    ExecutionResult,
    Executor,
    ResourceBudget,
)
from repro.optimizer import optimize_query, OptimizedPlan, PIPELINES
from repro.plan import format_plan
from repro.sql import parse_query
from repro.service import (
    QueryService,
    RetryPolicy,
    ServiceMetrics,
    ServiceResult,
    ServiceStats,
)

__version__ = "1.0.0"

__all__ = [
    "Table",
    "Database",
    "ForeignKey",
    "TableSchema",
    "ColumnDef",
    "ColumnType",
    "QuerySpec",
    "RelationRef",
    "JoinPredicate",
    "Aggregate",
    "JoinGraph",
    "Executor",
    "ExecutionResult",
    "ExecutionContext",
    "Deadline",
    "ResourceBudget",
    "optimize_query",
    "OptimizedPlan",
    "PIPELINES",
    "format_plan",
    "parse_query",
    "QueryService",
    "ServiceResult",
    "ServiceMetrics",
    "ServiceStats",
    "RetryPolicy",
    "__version__",
]
