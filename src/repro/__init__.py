"""repro — Bitvector-aware Query Optimization for Decision Support Queries.

A from-scratch reproduction of Ding, Chaudhuri & Narasayya (SIGMOD 2020):
an in-memory columnar engine with hash joins and bitvector filters, a
cost-based optimizer substrate, and the paper's bitvector-aware join
ordering algorithms, workloads, and experiment harness.

Typical usage::

    from repro import Database, Table, optimize_query, Executor
    from repro.workloads import tpcds_lite

    db, queries = tpcds_lite.build(scale=0.1, seed=7)
    optimized = optimize_query(db, queries[0], pipeline="bqo")
    result = Executor(db).execute(optimized.plan)
    print(result.metrics.metered_cpu())
"""

from repro.storage import Table, Database, ForeignKey, TableSchema, ColumnDef
from repro.storage.types import ColumnType
from repro.query.spec import QuerySpec, RelationRef, JoinPredicate, Aggregate
from repro.query.joingraph import JoinGraph
from repro.engine import Executor, ExecutionResult
from repro.optimizer import optimize_query, OptimizedPlan, PIPELINES
from repro.plan import format_plan
from repro.sql import parse_query

__version__ = "1.0.0"

__all__ = [
    "Table",
    "Database",
    "ForeignKey",
    "TableSchema",
    "ColumnDef",
    "ColumnType",
    "QuerySpec",
    "RelationRef",
    "JoinPredicate",
    "Aggregate",
    "JoinGraph",
    "Executor",
    "ExecutionResult",
    "optimize_query",
    "OptimizedPlan",
    "PIPELINES",
    "format_plan",
    "parse_query",
    "__version__",
]
