"""Query representation: specs and join graphs."""

from repro.query.spec import (
    RelationRef,
    JoinPredicate,
    Aggregate,
    QuerySpec,
)
from repro.query.joingraph import JoinGraph, JoinEdge

__all__ = [
    "RelationRef",
    "JoinPredicate",
    "Aggregate",
    "QuerySpec",
    "JoinGraph",
    "JoinEdge",
]
