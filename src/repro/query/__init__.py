"""Query representation: specs and join graphs."""

from repro.query.spec import (
    OUTPUT_ALIAS,
    RelationRef,
    JoinPredicate,
    Aggregate,
    OrderKey,
    QuerySpec,
)
from repro.query.joingraph import JoinGraph, JoinEdge

__all__ = [
    "OUTPUT_ALIAS",
    "RelationRef",
    "JoinPredicate",
    "Aggregate",
    "OrderKey",
    "QuerySpec",
    "JoinGraph",
    "JoinEdge",
]
