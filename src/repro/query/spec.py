"""Declarative query specification.

A :class:`QuerySpec` captures exactly what the paper's optimizer works
with: a set of relation instances (aliases), per-relation local filter
predicates, equi-join predicates between pairs of relations, and an
aggregate output.  SQL text is parsed/bound into this form
(:mod:`repro.sql`), and workload generators construct it directly.
"""

from __future__ import annotations

import dataclasses

from repro.errors import QueryError
from repro.expr.expressions import ColumnRef, Expression, referenced_aliases
from repro.storage.database import Database

_AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "avg")


@dataclasses.dataclass(frozen=True)
class RelationRef:
    """A relation instance in a query: table ``table`` bound to ``alias``."""

    alias: str
    table: str

    def __str__(self) -> str:
        return f"{self.table} AS {self.alias}"


@dataclasses.dataclass(frozen=True)
class JoinPredicate:
    """Equi-join predicate between two relation instances.

    ``left_columns[i] = right_columns[i]`` for every i; multi-column
    joins keep the pairing aligned.
    """

    left_alias: str
    left_columns: tuple[str, ...]
    right_alias: str
    right_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.left_columns) != len(self.right_columns):
            raise QueryError("join predicate column count mismatch")
        if not self.left_columns:
            raise QueryError("join predicate requires at least one column pair")
        if self.left_alias == self.right_alias:
            raise QueryError("join predicate must span two relations")

    def reversed(self) -> "JoinPredicate":
        return JoinPredicate(
            self.right_alias, self.right_columns, self.left_alias, self.left_columns
        )

    def __str__(self) -> str:
        pairs = " AND ".join(
            f"{self.left_alias}.{lc} = {self.right_alias}.{rc}"
            for lc, rc in zip(self.left_columns, self.right_columns)
        )
        return pairs


@dataclasses.dataclass(frozen=True)
class Aggregate:
    """Aggregate output item, e.g. ``COUNT(*)`` or ``SUM(ss.net_paid)``."""

    function: str
    argument: ColumnRef | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        if self.function not in _AGGREGATE_FUNCTIONS:
            raise QueryError(f"unknown aggregate function {self.function!r}")
        if self.function != "count" and self.argument is None:
            raise QueryError(f"{self.function}() requires an argument")

    def __str__(self) -> str:
        argument = "*" if self.argument is None else str(self.argument)
        return f"{self.function.upper()}({argument})"


@dataclasses.dataclass(frozen=True)
class QuerySpec:
    """Complete logical query: relations, predicates, joins, output."""

    name: str
    relations: tuple[RelationRef, ...]
    join_predicates: tuple[JoinPredicate, ...]
    local_predicates: dict[str, Expression] = dataclasses.field(default_factory=dict)
    aggregates: tuple[Aggregate, ...] = ()
    group_by: tuple[ColumnRef, ...] = ()

    def __post_init__(self) -> None:
        aliases = [relation.alias for relation in self.relations]
        if len(set(aliases)) != len(aliases):
            raise QueryError(f"duplicate aliases in query {self.name!r}")
        alias_set = set(aliases)
        for join in self.join_predicates:
            if join.left_alias not in alias_set or join.right_alias not in alias_set:
                raise QueryError(
                    f"join predicate {join} references unknown alias"
                )
        for alias, predicate in self.local_predicates.items():
            if alias not in alias_set:
                raise QueryError(f"local predicate on unknown alias {alias!r}")
            refs = referenced_aliases(predicate)
            if not refs.issubset({alias}):
                raise QueryError(
                    f"local predicate for {alias!r} references other "
                    f"relations: {sorted(refs - {alias})}"
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def aliases(self) -> tuple[str, ...]:
        return tuple(relation.alias for relation in self.relations)

    @property
    def alias_tables(self) -> dict[str, str]:
        return {relation.alias: relation.table for relation in self.relations}

    def table_of(self, alias: str) -> str:
        for relation in self.relations:
            if relation.alias == alias:
                return relation.table
        raise QueryError(f"unknown alias {alias!r}")

    def local_predicate(self, alias: str) -> Expression | None:
        return self.local_predicates.get(alias)

    def validate_against(self, database: Database) -> None:
        """Check that every table/column reference exists in the catalog."""
        for relation in self.relations:
            if not database.catalog.has_table(relation.table):
                raise QueryError(f"unknown table {relation.table!r}")
        alias_tables = self.alias_tables
        for join in self.join_predicates:
            for alias, columns in (
                (join.left_alias, join.left_columns),
                (join.right_alias, join.right_columns),
            ):
                schema = database.catalog.schema(alias_tables[alias])
                for column in columns:
                    if not schema.has_column(column):
                        raise QueryError(
                            f"unknown column {alias}.{column} "
                            f"(table {schema.name!r})"
                        )
        for alias, predicate in self.local_predicates.items():
            schema = database.catalog.schema(alias_tables[alias])
            for ref_alias, column in _predicate_columns(predicate):
                if ref_alias == alias and not schema.has_column(column):
                    raise QueryError(
                        f"unknown column {alias}.{column} in predicate"
                    )

    def __str__(self) -> str:
        parts = [f"QUERY {self.name}: FROM " + ", ".join(map(str, self.relations))]
        if self.join_predicates:
            parts.append("JOIN " + " AND ".join(map(str, self.join_predicates)))
        for alias, predicate in sorted(self.local_predicates.items()):
            parts.append(f"WHERE[{alias}] {predicate}")
        return "\n".join(parts)


def _predicate_columns(predicate: Expression):
    from repro.expr.expressions import referenced_columns

    return referenced_columns(predicate)
