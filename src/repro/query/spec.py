"""Declarative query specification.

A :class:`QuerySpec` captures exactly what the paper's optimizer works
with: a set of relation instances (aliases), per-relation local filter
predicates, equi-join predicates between pairs of relations, and an
aggregate output.  SQL text is parsed/bound into this form
(:mod:`repro.sql`), and workload generators construct it directly.
"""

from __future__ import annotations

import dataclasses

from repro.errors import QueryError
from repro.expr.expressions import ColumnRef, Expression, referenced_aliases
from repro.storage.database import Database

_AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "avg")


@dataclasses.dataclass(frozen=True)
class RelationRef:
    """A relation instance in a query: table ``table`` bound to ``alias``."""

    alias: str
    table: str

    def __str__(self) -> str:
        return f"{self.table} AS {self.alias}"


@dataclasses.dataclass(frozen=True)
class JoinPredicate:
    """Equi-join predicate between two relation instances.

    ``left_columns[i] = right_columns[i]`` for every i; multi-column
    joins keep the pairing aligned.
    """

    left_alias: str
    left_columns: tuple[str, ...]
    right_alias: str
    right_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.left_columns) != len(self.right_columns):
            raise QueryError("join predicate column count mismatch")
        if not self.left_columns:
            raise QueryError("join predicate requires at least one column pair")
        if self.left_alias == self.right_alias:
            raise QueryError("join predicate must span two relations")

    def reversed(self) -> "JoinPredicate":
        return JoinPredicate(
            self.right_alias, self.right_columns, self.left_alias, self.left_columns
        )

    def __str__(self) -> str:
        pairs = " AND ".join(
            f"{self.left_alias}.{lc} = {self.right_alias}.{rc}"
            for lc, rc in zip(self.left_columns, self.right_columns)
        )
        return pairs


@dataclasses.dataclass(frozen=True)
class Aggregate:
    """Aggregate output item, e.g. ``COUNT(*)`` or ``SUM(ss.net_paid)``.

    ``hidden`` marks aggregates that were introduced only to evaluate
    HAVING or ORDER BY (they are computed, then dropped from the query
    output).
    """

    function: str
    argument: ColumnRef | None = None
    label: str | None = None
    hidden: bool = False

    def __post_init__(self) -> None:
        if self.function not in _AGGREGATE_FUNCTIONS:
            raise QueryError(f"unknown aggregate function {self.function!r}")
        if self.function != "count" and self.argument is None:
            raise QueryError(f"{self.function}() requires an argument")

    @property
    def output_label(self) -> str:
        return self.label or str(self)

    def __str__(self) -> str:
        argument = "*" if self.argument is None else str(self.argument)
        return f"{self.function.upper()}({argument})"


#: Reserved alias used by HAVING expressions: a ``ColumnRef`` whose alias
#: is ``OUTPUT_ALIAS`` refers to an aggregate-output column by its label
#: (rather than to a base-table column).
OUTPUT_ALIAS = "$out"


@dataclasses.dataclass(frozen=True)
class OrderKey:
    """One ORDER BY key after binding.

    ``target`` is a :class:`ColumnRef` when the query produces relation
    rows (projection queries), or an aggregate-output label (``str``)
    when the query produces aggregate output.
    """

    target: ColumnRef | str
    ascending: bool = True

    def __str__(self) -> str:
        direction = "ASC" if self.ascending else "DESC"
        return f"{self.target} {direction}"


@dataclasses.dataclass(frozen=True)
class QuerySpec:
    """Complete logical query: relations, predicates, joins, output."""

    name: str
    relations: tuple[RelationRef, ...]
    join_predicates: tuple[JoinPredicate, ...]
    local_predicates: dict[str, Expression] = dataclasses.field(default_factory=dict)
    aggregates: tuple[Aggregate, ...] = ()
    group_by: tuple[ColumnRef, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderKey, ...] = ()
    limit: int | None = None
    select_columns: tuple[ColumnRef, ...] = ()

    def __post_init__(self) -> None:
        aliases = [relation.alias for relation in self.relations]
        if len(set(aliases)) != len(aliases):
            raise QueryError(f"duplicate aliases in query {self.name!r}")
        alias_set = set(aliases)
        if self.limit is not None and self.limit < 0:
            raise QueryError(f"negative LIMIT in query {self.name!r}")
        if self.having is not None and not self.aggregates:
            raise QueryError("HAVING requires an aggregate output")
        if self.select_columns and self.aggregates:
            raise QueryError(
                "select_columns is only valid for pure projection queries"
            )
        for key in self.order_by:
            if self.aggregates:
                if not isinstance(key.target, str):
                    raise QueryError(
                        "ORDER BY over aggregate output must target a label"
                    )
            elif not isinstance(key.target, ColumnRef):
                raise QueryError(
                    "ORDER BY over relation output must target a column"
                )
        for join in self.join_predicates:
            if join.left_alias not in alias_set or join.right_alias not in alias_set:
                raise QueryError(
                    f"join predicate {join} references unknown alias"
                )
        for alias, predicate in self.local_predicates.items():
            if alias not in alias_set:
                raise QueryError(f"local predicate on unknown alias {alias!r}")
            refs = referenced_aliases(predicate)
            if not refs.issubset({alias}):
                raise QueryError(
                    f"local predicate for {alias!r} references other "
                    f"relations: {sorted(refs - {alias})}"
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def aliases(self) -> tuple[str, ...]:
        return tuple(relation.alias for relation in self.relations)

    @property
    def alias_tables(self) -> dict[str, str]:
        return {relation.alias: relation.table for relation in self.relations}

    def table_of(self, alias: str) -> str:
        for relation in self.relations:
            if relation.alias == alias:
                return relation.table
        raise QueryError(f"unknown alias {alias!r}")

    def local_predicate(self, alias: str) -> Expression | None:
        return self.local_predicates.get(alias)

    def validate_against(self, database: Database) -> None:
        """Check that every table/column reference exists in the catalog."""
        for relation in self.relations:
            if not database.catalog.has_table(relation.table):
                raise QueryError(f"unknown table {relation.table!r}")
        alias_tables = self.alias_tables
        for join in self.join_predicates:
            for alias, columns in (
                (join.left_alias, join.left_columns),
                (join.right_alias, join.right_columns),
            ):
                schema = database.catalog.schema(alias_tables[alias])
                for column in columns:
                    if not schema.has_column(column):
                        raise QueryError(
                            f"unknown column {alias}.{column} "
                            f"(table {schema.name!r})"
                        )
        for alias, predicate in self.local_predicates.items():
            schema = database.catalog.schema(alias_tables[alias])
            for ref_alias, column in _predicate_columns(predicate):
                if ref_alias == alias and not schema.has_column(column):
                    raise QueryError(
                        f"unknown column {alias}.{column} in predicate"
                    )
        output_refs = list(self.select_columns)
        output_refs.extend(
            key.target for key in self.order_by if isinstance(key.target, ColumnRef)
        )
        for ref in output_refs:
            if ref.alias not in alias_tables:
                raise QueryError(f"unknown alias {ref.alias!r} in output")
            schema = database.catalog.schema(alias_tables[ref.alias])
            if not schema.has_column(ref.column):
                raise QueryError(
                    f"unknown column {ref.alias}.{ref.column} in output"
                )

    def __str__(self) -> str:
        parts = [f"QUERY {self.name}: FROM " + ", ".join(map(str, self.relations))]
        if self.join_predicates:
            parts.append("JOIN " + " AND ".join(map(str, self.join_predicates)))
        for alias, predicate in sorted(self.local_predicates.items()):
            parts.append(f"WHERE[{alias}] {predicate}")
        return "\n".join(parts)


def _predicate_columns(predicate: Expression):
    from repro.expr.expressions import referenced_columns

    return referenced_columns(predicate)
