"""Join graph over relation aliases, with the classifications the
paper's algorithms depend on.

Key vocabulary (paper Table 1 / Definitions 1-4 / Section 6.2):

* **key join** ``A -> B``: the join columns form a unique key of B.
* **PKFK join**: a key join backed by a declared foreign key.
* **fact table** (Section 6.2): a relation that does *not* join any
  other relation on its own key columns — nothing "hangs off" it as a
  dimension.
* **star query** (Definition 1): one fact table R0 with ``R0 -> Rk``
  for every dimension Rk, and no dimension-dimension edges.
* **branch** (Definition 4): a chain ``R0 -> R1 -> ... -> Rn`` hanging
  off the fact table.
* **snowflake query** (Definition 2): fact table plus disjoint chains.
"""

from __future__ import annotations

import dataclasses
from collections import deque

from repro.errors import QueryError
from repro.query.spec import JoinPredicate, QuerySpec
from repro.storage.catalog import Catalog


@dataclasses.dataclass(frozen=True)
class JoinEdge:
    """Merged equi-join edge between two aliases.

    All join column pairs between the two relations are merged into one
    edge (a composite key join), matching how a hash join would evaluate
    them together.
    """

    left_alias: str
    left_columns: tuple[str, ...]
    right_alias: str
    right_columns: tuple[str, ...]

    def other(self, alias: str) -> str:
        if alias == self.left_alias:
            return self.right_alias
        if alias == self.right_alias:
            return self.left_alias
        raise QueryError(f"edge does not touch alias {alias!r}")

    def columns_of(self, alias: str) -> tuple[str, ...]:
        if alias == self.left_alias:
            return self.left_columns
        if alias == self.right_alias:
            return self.right_columns
        raise QueryError(f"edge does not touch alias {alias!r}")

    def touches(self, alias: str) -> bool:
        return alias in (self.left_alias, self.right_alias)

    def key(self) -> tuple[str, str]:
        """Canonical unordered pair key."""
        return tuple(sorted((self.left_alias, self.right_alias)))  # type: ignore[return-value]

    def __str__(self) -> str:
        return " AND ".join(
            f"{self.left_alias}.{lc} = {self.right_alias}.{rc}"
            for lc, rc in zip(self.left_columns, self.right_columns)
        )


class JoinGraph:
    """Undirected join graph with key-join annotations."""

    def __init__(self, spec: QuerySpec, catalog: Catalog) -> None:
        self.spec = spec
        self.catalog = catalog
        self.aliases: tuple[str, ...] = spec.aliases
        self._alias_tables = spec.alias_tables
        self._edges: dict[tuple[str, str], JoinEdge] = {}
        self._adjacency: dict[str, set[str]] = {alias: set() for alias in self.aliases}
        for predicate in spec.join_predicates:
            self._merge_predicate(predicate)

    def _merge_predicate(self, predicate: JoinPredicate) -> None:
        pair = tuple(sorted((predicate.left_alias, predicate.right_alias)))
        if predicate.left_alias != pair[0]:
            predicate = predicate.reversed()
        existing = self._edges.get(pair)  # type: ignore[arg-type]
        if existing is None:
            edge = JoinEdge(
                predicate.left_alias,
                predicate.left_columns,
                predicate.right_alias,
                predicate.right_columns,
            )
        else:
            edge = JoinEdge(
                existing.left_alias,
                existing.left_columns + predicate.left_columns,
                existing.right_alias,
                existing.right_columns + predicate.right_columns,
            )
        self._edges[pair] = edge  # type: ignore[index]
        self._adjacency[predicate.left_alias].add(predicate.right_alias)
        self._adjacency[predicate.right_alias].add(predicate.left_alias)

    # ------------------------------------------------------------------
    # Basic topology
    # ------------------------------------------------------------------

    def table_of(self, alias: str) -> str:
        return self._alias_tables[alias]

    def neighbors(self, alias: str) -> set[str]:
        return set(self._adjacency[alias])

    def edge_between(self, a: str, b: str) -> JoinEdge | None:
        return self._edges.get(tuple(sorted((a, b))))  # type: ignore[arg-type]

    @property
    def edges(self) -> list[JoinEdge]:
        return list(self._edges.values())

    def edges_between(self, left_group: set[str], alias: str) -> list[JoinEdge]:
        """All edges between ``alias`` and any member of ``left_group``."""
        found = []
        for other in sorted(self._adjacency[alias]):
            if other in left_group:
                found.append(self.edge_between(other, alias))
        return [edge for edge in found if edge is not None]

    def is_connected(self, subset: tuple[str, ...] | None = None) -> bool:
        nodes = list(subset) if subset is not None else list(self.aliases)
        if not nodes:
            return True
        node_set = set(nodes)
        seen = {nodes[0]}
        frontier = deque([nodes[0]])
        while frontier:
            current = frontier.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor in node_set and neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(node_set)

    def connected_components(self, nodes: set[str]) -> list[set[str]]:
        """Connected components of the induced subgraph on ``nodes``."""
        remaining = set(nodes)
        components: list[set[str]] = []
        while remaining:
            start = min(remaining)  # deterministic order
            component = {start}
            frontier = deque([start])
            while frontier:
                current = frontier.popleft()
                for neighbor in self._adjacency[current]:
                    if neighbor in remaining and neighbor not in component:
                        component.add(neighbor)
                        frontier.append(neighbor)
            remaining -= component
            components.append(component)
        return components

    # ------------------------------------------------------------------
    # Key-join / PKFK classification
    # ------------------------------------------------------------------

    def is_key_join_into(self, edge: JoinEdge, target_alias: str) -> bool:
        """True when ``edge``'s columns form a unique key of ``target_alias``
        — the paper's ``other -> target`` relationship."""
        table = self.table_of(target_alias)
        return self.catalog.is_key_join(table, edge.columns_of(target_alias))

    def is_pkfk_edge(self, edge: JoinEdge) -> bool:
        """True when the edge is a key join in at least one direction."""
        return self.is_key_join_into(edge, edge.left_alias) or self.is_key_join_into(
            edge, edge.right_alias
        )

    # ------------------------------------------------------------------
    # Fact / dimension detection (Section 6.2)
    # ------------------------------------------------------------------

    def is_fact_table(self, alias: str) -> bool:
        """Section 6.2: a relation is a fact table if no join predicate
        is an equi-join on its own key columns."""
        for neighbor in self._adjacency[alias]:
            edge = self.edge_between(alias, neighbor)
            if edge is not None and self.is_key_join_into(edge, alias):
                return False
        return True

    def fact_tables(self) -> list[str]:
        """All fact tables, in alias order."""
        return [alias for alias in self.aliases if self.is_fact_table(alias)]

    # ------------------------------------------------------------------
    # Star / snowflake shape tests (Definitions 1 and 2)
    # ------------------------------------------------------------------

    def is_star(self, fact: str) -> bool:
        """Definition 1: every other relation is a dimension key-joined
        directly (and only) to ``fact``."""
        for alias in self.aliases:
            if alias == fact:
                continue
            if self._adjacency[alias] != {fact}:
                return False
            edge = self.edge_between(alias, fact)
            if edge is None or not self.is_key_join_into(edge, alias):
                return False
        return True

    def is_snowflake(self, fact: str) -> bool:
        """Definition 2: disjoint chains of key joins hanging off ``fact``."""
        for chain in self.branch_components(fact):
            if not self._is_chain_branch(fact, chain):
                return False
        return self.is_connected()

    def branch_components(self, fact: str) -> list[set[str]]:
        """Connected components of the graph with ``fact`` removed.

        For a pure snowflake each component is one branch; for general
        decision-support graphs a component may bundle several connected
        branches (Algorithm 2's group P2).
        """
        others = set(self.aliases) - {fact}
        return self.connected_components(others)

    def branch_roots(self, fact: str, component: set[str]) -> list[str]:
        """Members of ``component`` directly joined to the fact table."""
        return sorted(
            alias for alias in component if fact in self._adjacency[alias]
        )

    def _is_chain_branch(self, fact: str, component: set[str]) -> bool:
        """Is ``component`` a chain R1 -> R2 -> ... hanging off ``fact``
        with each hop a key join away from the fact?"""
        roots = self.branch_roots(fact, component)
        if len(roots) != 1:
            return False
        previous = fact
        current = roots[0]
        seen = {current}
        while True:
            edge = self.edge_between(previous, current)
            if edge is None or not self.is_key_join_into(edge, current):
                return False
            next_nodes = [
                n for n in self._adjacency[current]
                if n in component and n not in seen
            ]
            if not next_nodes:
                return len(seen) == len(component)
            if len(next_nodes) > 1:
                return False
            previous, current = current, next_nodes[0]
            seen.add(current)

    def chain_order(self, fact: str, component: set[str]) -> list[str]:
        """Return the chain ordered from the fact outward.

        Only valid when ``_is_chain_branch`` holds.
        """
        roots = self.branch_roots(fact, component)
        if len(roots) != 1:
            raise QueryError("component is not a chain branch")
        order = [roots[0]]
        seen = set(order)
        while True:
            tail = order[-1]
            next_nodes = [
                n for n in self._adjacency[tail] if n in component and n not in seen
            ]
            if not next_nodes:
                return order
            if len(next_nodes) > 1:
                raise QueryError("component is not a chain branch")
            order.append(next_nodes[0])
            seen.add(next_nodes[0])

    # ------------------------------------------------------------------
    # Subgraph extraction (for Algorithm 3)
    # ------------------------------------------------------------------

    def induced_spec(self, aliases: set[str], name: str) -> QuerySpec:
        """Query spec for the induced subgraph on ``aliases``."""
        relations = tuple(r for r in self.spec.relations if r.alias in aliases)
        joins = tuple(
            join
            for join in self.spec.join_predicates
            if join.left_alias in aliases and join.right_alias in aliases
        )
        locals_ = {
            alias: predicate
            for alias, predicate in self.spec.local_predicates.items()
            if alias in aliases
        }
        return QuerySpec(
            name=name,
            relations=relations,
            join_predicates=joins,
            local_predicates=locals_,
        )
