"""Query service layer: raw SQL end-to-end, fast on repeat traffic.

The paper treats a query as a one-shot artifact; production decision-
support workloads re-issue structurally identical queries with
different constants.  This package adds the serving substrate on top of
the reproduction's sql → optimizer → plan → executor stack:

* :class:`QueryService` — the facade: ``execute(sql)``,
  ``run_many(sqls)`` (thread pool), ``explain(sql)``, ``stats()``;
* :class:`AsyncQueryService` — the admission-controlled ``asyncio``
  front door: awaitable ``execute``, bounded concurrency, and graceful
  overload shedding with typed :class:`~repro.errors.QueryShed`;
* :class:`~repro.service.admission.AdmissionController` — the overload
  policies behind it: bounded priority queue, per-client token-bucket
  quotas, deadline shed-on-arrival, per-fingerprint failure-rate
  breakers;
* :class:`~repro.service.plan_cache.PlanCache` — fingerprint-keyed LRU
  of optimized plans with parameter templates;
* :class:`~repro.service.metrics.ServiceMetrics` /
  :class:`~repro.service.metrics.ServiceStats` — per-query and
  aggregate accounting (cache hits, optimize/execute time, metered
  CPU).

The companion bitvector filter cache lives in
:mod:`repro.filters.cache`, and fingerprinting in
:mod:`repro.sql.parameterize`.
"""

from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionRequest,
    AdmissionStats,
    FailureRateBreaker,
    TokenBucket,
)
from repro.service.async_service import AsyncQueryService
from repro.service.metrics import ServiceMetrics, ServiceStats
from repro.service.plan_cache import CachedPlan, PlanCache
from repro.service.retry import RetryPolicy
from repro.service.service import QueryService, ServiceResult

__all__ = [
    "QueryService",
    "AsyncQueryService",
    "ServiceResult",
    "ServiceMetrics",
    "ServiceStats",
    "PlanCache",
    "CachedPlan",
    "RetryPolicy",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionRequest",
    "AdmissionStats",
    "TokenBucket",
    "FailureRateBreaker",
]
