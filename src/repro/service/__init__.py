"""Query service layer: raw SQL end-to-end, fast on repeat traffic.

The paper treats a query as a one-shot artifact; production decision-
support workloads re-issue structurally identical queries with
different constants.  This package adds the serving substrate on top of
the reproduction's sql → optimizer → plan → executor stack:

* :class:`QueryService` — the facade: ``execute(sql)``,
  ``run_many(sqls)`` (thread pool), ``explain(sql)``, ``stats()``;
* :class:`~repro.service.plan_cache.PlanCache` — fingerprint-keyed LRU
  of optimized plans with parameter templates;
* :class:`~repro.service.metrics.ServiceMetrics` /
  :class:`~repro.service.metrics.ServiceStats` — per-query and
  aggregate accounting (cache hits, optimize/execute time, metered
  CPU).

The companion bitvector filter cache lives in
:mod:`repro.filters.cache`, and fingerprinting in
:mod:`repro.sql.parameterize`.
"""

from repro.service.metrics import ServiceMetrics, ServiceStats
from repro.service.plan_cache import CachedPlan, PlanCache
from repro.service.retry import RetryPolicy
from repro.service.service import QueryService, ServiceResult

__all__ = [
    "QueryService",
    "ServiceResult",
    "ServiceMetrics",
    "ServiceStats",
    "PlanCache",
    "CachedPlan",
    "RetryPolicy",
]
