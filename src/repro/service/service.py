"""The :class:`QueryService` facade: raw SQL in, results out, fast on repeats.

End-to-end data flow::

    sql ── fingerprint ──┬─ HIT ──► substitute params ─┐
                         │                             ├─► execute
                         └─ MISS ─► parse ─ bind ─     │   (shared plan,
                                    optimize ─ cache ──┘    overrides)

The service owns three pieces of cross-query state:

* a :class:`~repro.service.plan_cache.PlanCache` keyed by the query's
  normalized fingerprint (literals parameterized — see
  :mod:`repro.sql.parameterize`), so structurally identical queries
  skip parsing and optimization entirely;
* a :class:`~repro.filters.cache.BitvectorFilterCache` shared by every
  execution, amortizing bitvector construction across the workload;
* running :class:`~repro.service.metrics.ServiceStats`.

Both caches are invalidated automatically when the database's
``schema_version`` moves (a table or foreign key was added).  All entry
points are thread-safe; :meth:`QueryService.run_many` executes a batch
on a persistent per-service thread pool (created lazily, grown to the
widest batch seen, shut down by :meth:`QueryService.close`), so
hot-path batches do not pay pool startup/teardown.  With
``parallelism > 1`` each query additionally runs morsel-parallel
inside the executor (see :mod:`repro.engine.parallel`).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.cost.constants import DEFAULT_LAMBDA_THRESH
from repro.engine.context import ExecutionContext, ResourceBudget
from repro.engine.executor import ExecutionResult, Executor
from repro.engine.parallel import DEFAULT_MORSEL_ROWS
from repro.engine.context import Deadline
from repro.errors import (
    QueryTimeout,
    ResourceExhausted,
    ServiceClosed,
    ServiceError,
)
from repro.expr.expressions import substitute_parameters
from repro.filters.cache import BitvectorFilterCache
from repro.obs import ServiceTelemetry, Tracer
from repro.optimizer.pipelines import PIPELINES, optimize_query
from repro.plan.display import format_plan
from repro.service.metrics import ServiceMetrics, ServiceStats
from repro.service.plan_cache import CachedPlan, PlanCache
from repro.service.retry import RetryPolicy
from repro.sql.binder import bind_select
from repro.sql.parameterize import QueryFingerprint, fingerprint_sql, parameterize_statement
from repro.sql.parser import parse_select
from repro.storage.database import Database


@dataclasses.dataclass(frozen=True)
class ServiceResult:
    """One answered query: the engine result plus service accounting.

    A statement that failed inside :meth:`QueryService.run_many` still
    produces a record — ``result`` is ``None`` and ``error`` carries
    the exception — so one failure never discards sibling results.
    Callers check :attr:`ok` (or ``error``) before reading rows.
    """

    result: ExecutionResult | None
    metrics: ServiceMetrics
    error: BaseException | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def scalar(self, label: str) -> object:
        if self.result is None:
            raise ServiceError(
                f"query {self.metrics.query!r} failed: {self.error}"
            )
        return self.result.scalar(label)

    @property
    def num_rows(self) -> int:
        return 0 if self.result is None else self.result.num_rows


class QueryService:
    """Serve raw SQL against one database with cross-query caching.

    Parameters
    ----------
    database:
        The data and catalog every query binds against.
    pipeline:
        Default optimization pipeline (any :data:`repro.optimizer.PIPELINES`
        name; per-call override available).
    filter_kind / filter_options:
        Bitvector filter implementation the executor deploys.
    plan_cache_size / filter_cache_size:
        LRU bounds for the two caches.
    max_workers:
        Default thread-pool width for :meth:`run_many`.
    parallelism / morsel_rows / adaptive_morsels:
        Morsel-driven intra-query parallelism, passed through to the
        :class:`~repro.engine.executor.Executor`.  The default 1 keeps
        each query on its serving thread (byte-identical to the serial
        engine); cross-query (``max_workers``, per-service batch pool)
        and intra-query (``parallelism``, the process-wide morsel
        pool) parallelism compose, with the morsel pool bounded by the
        widest ``parallelism`` in the process.  At ``parallelism > 1``
        bitvector filter builds run partitioned on the pool (the plan
        cache optimizes with the matching build-cost discount), and
        ``adaptive_morsels`` resizes morsels per pipeline from observed
        selectivity and wall time.
    zone_maps:
        Morsel-level data skipping via per-column min/max synopses
        (:mod:`repro.storage.zonemaps`), on by default; pruning is
        conservative and answers stay byte-identical.  ``explain()``
        reports the resident synopses, and per-query
        ``morsels_pruned`` / ``rows_skipped`` land in
        :class:`~repro.service.metrics.ServiceMetrics`.
    deadline_seconds:
        Default per-query wall-clock deadline (see
        :class:`~repro.engine.context.Deadline`).  ``None`` (default)
        disables enforcement entirely — the zero-overhead path.  A
        query past its deadline raises
        :class:`~repro.errors.QueryTimeout` at the next cooperative
        checkpoint, with sibling morsel tasks short-circuiting.
    budget:
        Default per-query :class:`~repro.engine.context.ResourceBudget`
        (max rows materialized / bytes gathered), enforced against the
        live execution counters after every parallel barrier.
    degrade:
        What a budget breach does: ``"error"`` (default) raises
        :class:`~repro.errors.ResourceExhausted`; ``"serial"`` re-runs
        the query on a serial fallback executor (shared filter cache,
        deadline still live, budget unenforced so the answer lands) and
        records the degradation in the metrics.
    retry_policy:
        Optional :class:`~repro.service.retry.RetryPolicy` applied by
        :meth:`run_many` to whitelisted transient failures.
    tracer:
        Optional :class:`repro.obs.Tracer` armed for *every* query this
        service runs (per-call override on :meth:`execute`;
        :meth:`explain_analyze` always arms a fresh one).  ``None``
        (default) keeps every instrumented site a single attribute
        test, and results are byte-identical on or off.  Independently
        of tracing, the service keeps an always-on
        :class:`repro.obs.ServiceTelemetry` registry of latency/row
        histograms (see :meth:`telemetry_snapshot`) — those record from
        values the service already measured, so they cost one histogram
        increment per query.
    """

    def __init__(
        self,
        database: Database,
        pipeline: str = "bqo",
        filter_kind: str = "exact",
        filter_options: dict | None = None,
        lambda_thresh: float = DEFAULT_LAMBDA_THRESH,
        plan_cache_size: int = 128,
        filter_cache_size: int = 64,
        max_workers: int = 4,
        parallelism: int = 1,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
        adaptive_morsels: bool = True,
        zone_maps: bool = True,
        deadline_seconds: float | None = None,
        budget: ResourceBudget | None = None,
        degrade: str = "error",
        retry_policy: RetryPolicy | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if pipeline not in PIPELINES:
            raise ServiceError(
                f"unknown pipeline {pipeline!r}; expected one of {sorted(PIPELINES)}"
            )
        if degrade not in ("error", "serial"):
            raise ServiceError(
                f"unknown degrade mode {degrade!r}; expected 'error' or 'serial'"
            )
        self._database = database
        self._pipeline = pipeline
        self._lambda_thresh = lambda_thresh
        self._max_workers = max_workers
        self._deadline_seconds = deadline_seconds
        self._budget = budget
        self._degrade = degrade
        self._retry_policy = retry_policy
        self.plan_cache = PlanCache(plan_cache_size)
        self.filter_cache = BitvectorFilterCache(filter_cache_size)
        self._executor = Executor(
            database,
            filter_kind=filter_kind,
            filter_options=filter_options,
            filter_cache=self.filter_cache,
            parallelism=parallelism,
            morsel_rows=morsel_rows,
            adaptive_morsels=adaptive_morsels,
            zone_maps=zone_maps,
        )
        # Serial fallback for degrade="serial": same database, same
        # shared filter cache, parallelism 1 — created lazily because
        # most services never degrade.
        self._fallback_executor: Executor | None = None
        self._fallback_args = dict(
            filter_kind=filter_kind,
            filter_options=filter_options,
            morsel_rows=morsel_rows,
            zone_maps=zone_maps,
        )
        self._stats = ServiceStats()
        self.telemetry = ServiceTelemetry()
        self._tracer = tracer
        if tracer is not None and tracer.telemetry is None:
            tracer.telemetry = self.telemetry
        self._lock = threading.Lock()
        self._schema_version = database.schema_version
        # Persistent run_many pool: created lazily on the first batch,
        # grown when a batch asks for more workers, reused until
        # close().  Hot-path batches stop paying pool startup/teardown.
        self._batch_pool: ThreadPoolExecutor | None = None
        self._batch_pool_width = 0
        self._batch_pool_lock = threading.Lock()
        # close() is terminal: set under _batch_pool_lock, checked at
        # every entry point so submissions against a closed service get
        # a typed ServiceClosed instead of a dead pool's RuntimeError.
        self._closed = False

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    @property
    def deadline_seconds(self) -> float | None:
        """The service-default per-query deadline (``None`` = off)."""
        return self._deadline_seconds

    @property
    def tracer(self) -> Tracer | None:
        """The tracer armed for every query, if any."""
        return self._tracer

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called (terminal)."""
        return self._closed

    def execute(
        self,
        sql: str,
        name: str = "query",
        pipeline: str | None = None,
        deadline_seconds: float | Deadline | None = None,
        budget: ResourceBudget | None = None,
        tracer: Tracer | None = None,
    ) -> ServiceResult:
        """Parse (or recognize), optimize (or reuse), and execute ``sql``.

        ``deadline_seconds`` / ``budget`` override the service defaults
        for this one statement (``None`` inherits; the service default
        of ``None`` means unenforced).  ``deadline_seconds`` also
        accepts an already-running
        :class:`~repro.engine.context.Deadline` — the admission tier
        and the batch retry path pass one so queue wait and earlier
        attempts consume the same budget.  A query that trips either limit
        raises the matching :class:`~repro.errors.ResilienceError` —
        unless ``degrade="serial"`` absorbs a budget breach — and the
        failure is counted in :meth:`stats`.

        ``tracer`` arms structured tracing for this one statement
        (``None`` inherits the service default, usually off): the call
        records an ``execute`` span over parse/bind, plan-cache
        lookup, optimize, and every engine-level span (see
        :mod:`repro.obs`).
        """
        if self._closed:
            raise ServiceClosed(
                f"query {name!r} refused: this QueryService is closed"
            )
        wall_started = time.perf_counter()
        pipeline = pipeline or self._pipeline
        context = self._make_context(name, deadline_seconds, budget)
        if tracer is None:
            tracer = self._tracer
        try:
            return self._execute_once(
                sql, name, pipeline, context, tracer, wall_started
            )
        except BaseException as exc:
            with self._lock:
                self._stats.failures += 1
                if isinstance(exc, QueryTimeout):
                    self._stats.timeouts += 1
            raise

    def _make_context(
        self,
        name: str,
        deadline_seconds: float | Deadline | None,
        budget: ResourceBudget | None,
    ) -> ExecutionContext | None:
        deadline = (
            self._deadline_seconds if deadline_seconds is None
            else deadline_seconds
        )
        budget = self._budget if budget is None else budget
        if deadline is None and budget is None:
            return None
        return ExecutionContext(query=name, deadline=deadline, budget=budget)

    def _execute_once(
        self,
        sql: str,
        name: str,
        pipeline: str,
        context: ExecutionContext | None,
        tracer: Tracer | None = None,
        wall_started: float | None = None,
    ) -> ServiceResult:
        if tracer is None:
            return self._execute_body(
                sql, name, pipeline, context, None, wall_started
            )
        with tracer.span("execute", query=name, pipeline=pipeline) as span:
            outcome = self._execute_body(
                sql, name, pipeline, context, tracer, wall_started
            )
            span.set(
                rows=outcome.num_rows,
                plan_cache_hit=outcome.metrics.plan_cache_hit,
            )
        return outcome

    def _execute_body(
        self,
        sql: str,
        name: str,
        pipeline: str,
        context: ExecutionContext | None,
        tracer: Tracer | None,
        wall_started: float | None,
    ) -> ServiceResult:
        if wall_started is None:
            wall_started = time.perf_counter()
        started = time.perf_counter()
        entry, fingerprint, overrides, hit = self._prepare(
            sql, pipeline, context, tracer
        )
        optimize_seconds = time.perf_counter() - started

        degraded = False
        started = time.perf_counter()
        try:
            result = self._executor.execute(
                entry.plan, predicate_overrides=overrides, context=context,
                tracer=tracer,
            )
        except ResourceExhausted:
            if self._degrade != "serial" or context is None:
                raise
            # Graceful degradation: the parallel run materialized past
            # its budget; answer anyway on the serial fallback (shared
            # filter cache, deadline still live on a fresh token,
            # budget unenforced so the retry cannot trip it again).
            degraded = True
            if tracer is not None:
                tracer.event(
                    "degrade", query=name, cause="ResourceExhausted",
                    mode="serial",
                )
            fallback_context = (
                ExecutionContext(query=name, deadline=context.deadline)
                if context.deadline is not None
                else None
            )
            result = self._fallback(  # serial, eager-off
            ).execute(
                entry.plan, predicate_overrides=overrides,
                context=fallback_context, tracer=tracer,
            )
        execute_seconds = time.perf_counter() - started

        telemetry = self.telemetry
        telemetry.record("execute_seconds", execute_seconds)
        telemetry.record("optimize_seconds", optimize_seconds)
        if result.metrics.filter_build_seconds:
            telemetry.record(
                "filter_build_seconds", result.metrics.filter_build_seconds
            )
        telemetry.record("output_rows", result.num_rows)

        metrics = ServiceMetrics(
            query=name,
            fingerprint=entry.fingerprint,
            pipeline=pipeline,
            plan_cache_hit=hit,
            optimize_seconds=optimize_seconds,
            execute_seconds=execute_seconds,
            metered_cpu=result.metrics.metered_cpu(),
            output_rows=result.num_rows,
            filter_cache_hits=result.metrics.filter_cache_hits,
            filter_cache_misses=result.metrics.filter_cache_misses,
            rows_copied=result.metrics.rows_copied,
            bytes_gathered=result.metrics.bytes_gathered,
            dictionary_hits=result.metrics.dictionary_hits,
            dictionary_misses=result.metrics.dictionary_misses,
            morsels_pruned=result.metrics.morsels_pruned,
            rows_skipped=result.metrics.rows_skipped,
            morsels_short_circuited=result.metrics.morsels_short_circuited,
            morsels_band_searched=result.metrics.morsels_band_searched,
            selection_bytes=result.metrics.selection_bytes,
            selection_bytes_dense=result.metrics.selection_bytes_dense,
            filter_bytes_resident=self.filter_cache.resident_bytes(),
            filter_builds_parallel=result.metrics.filter_builds_parallel,
            filter_build_seconds=result.metrics.filter_build_seconds,
            degraded=degraded,
            wall_seconds=time.perf_counter() - wall_started,
        )
        with self._lock:
            self._stats.fold(metrics)
        return ServiceResult(result=result, metrics=metrics)

    def _fallback(self) -> Executor:
        """The lazily-created serial fallback executor (degrade path)."""
        with self._batch_pool_lock:
            if self._fallback_executor is None:
                if self._executor.parallelism == 1:
                    self._fallback_executor = self._executor
                else:
                    self._fallback_executor = Executor(
                        self._database,
                        filter_cache=self.filter_cache,
                        parallelism=1,
                        **self._fallback_args,
                    )
            return self._fallback_executor

    def run_many(
        self,
        sqls: list[str],
        max_workers: int | None = None,
        pipeline: str | None = None,
    ) -> list[ServiceResult]:
        """Execute a batch concurrently; results keep input order.

        Batches run on the service's persistent pool — created on the
        first call, grown to the widest ``max_workers`` requested so
        far, and reused across batches until :meth:`close`.

        Failures are *isolated*: a statement that raises yields a
        :class:`ServiceResult` with :attr:`ServiceResult.error` set (and
        ``result=None``) in its slot, and every other statement's
        result still arrives — ``run_many`` itself never raises for a
        per-query failure.  (It previously propagated the first
        worker's exception and silently abandoned the later futures.)
        With a :class:`~repro.service.retry.RetryPolicy` configured,
        whitelisted transient failures are retried with decorrelated-
        jitter backoff before being reported.  A batch submitted after
        :meth:`close` raises :class:`~repro.errors.ServiceClosed`; a
        close that lands *mid-batch* keeps every slot already submitted
        (they drain on the retired pool) and fills the remaining slots
        with isolated ``ServiceClosed`` error records — never a dead
        pool's ``RuntimeError``.
        """
        if self._closed:
            raise ServiceClosed("run_many refused: this QueryService is closed")
        workers = max_workers or self._max_workers
        if workers <= 1 or len(sqls) <= 1:
            return [
                self._execute_isolated(sql, f"batch_{i}", pipeline)
                for i, sql in enumerate(sqls)
            ]
        pool = self._ensure_batch_pool(workers)
        futures = []
        results: list[ServiceResult | None] = [None] * len(sqls)
        for i, sql in enumerate(sqls):
            try:
                futures.append(
                    (i, pool.submit(
                        self._execute_isolated, sql, f"batch_{i}", pipeline
                    ))
                )
            except RuntimeError:
                # A concurrent wider batch (or close()) retired this
                # pool between our lookup and this submit; queries it
                # already accepted still run, so only this statement
                # moves to the fresh pool — unless the service closed,
                # in which case this and later slots get typed error
                # records while the accepted slots still drain.
                try:
                    pool = self._ensure_batch_pool(workers)
                except ServiceClosed as closed:
                    results[i] = self._closed_slot(f"batch_{i}", pipeline, closed)
                    continue
                futures.append(
                    (i, pool.submit(
                        self._execute_isolated, sql, f"batch_{i}", pipeline
                    ))
                )
        # _execute_isolated never raises, so every future resolves and
        # no sibling result is abandoned.
        for i, future in futures:
            results[i] = future.result()
        return results

    def _closed_slot(
        self, name: str, pipeline: str | None, error: ServiceClosed
    ) -> ServiceResult:
        """The isolated error record for a slot refused by close()."""
        metrics = ServiceMetrics(
            query=name,
            fingerprint="",
            pipeline=pipeline or self._pipeline,
            plan_cache_hit=False,
            optimize_seconds=0.0,
            execute_seconds=0.0,
            metered_cpu=0.0,
            output_rows=0,
            filter_cache_hits=0,
            filter_cache_misses=0,
            error=f"{type(error).__name__}: {error}",
        )
        return ServiceResult(result=None, metrics=metrics, error=error)

    def _execute_isolated(
        self, sql: str, name: str, pipeline: str | None
    ) -> ServiceResult:
        """One batch statement: retries applied, failure captured.

        With both a deadline and a retry policy configured, the *slot*
        carries one :class:`~repro.engine.context.Deadline` across every
        attempt: retries consume the same budget as the attempt that
        failed, and the policy refuses to schedule a backoff sleep the
        remaining budget cannot cover (raising
        :class:`~repro.errors.QueryTimeout` immediately instead of
        burning the deadline asleep).
        """
        attempts = 0
        wall_started = time.perf_counter()
        try:
            if self._retry_policy is None:
                return self.execute(sql, name=name, pipeline=pipeline)
            deadline = (
                Deadline.after(self._deadline_seconds)
                if self._deadline_seconds is not None
                else None
            )
            outcome, attempts = self._retry_policy.call(
                lambda: self.execute(
                    sql, name=name, pipeline=pipeline,
                    deadline_seconds=deadline,
                ),
                deadline=deadline,
            )
            if attempts:
                with self._lock:
                    self._stats.retries += attempts
                outcome = ServiceResult(
                    result=outcome.result,
                    metrics=dataclasses.replace(
                        outcome.metrics, retries=attempts,
                        # The slot's wall clock covers every attempt,
                        # not just the one that answered.
                        wall_seconds=time.perf_counter() - wall_started,
                    ),
                    error=None,
                )
            return outcome
        except Exception as exc:
            metrics = ServiceMetrics(
                query=name,
                fingerprint="",
                pipeline=pipeline or self._pipeline,
                plan_cache_hit=False,
                optimize_seconds=0.0,
                execute_seconds=0.0,
                metered_cpu=0.0,
                output_rows=0,
                filter_cache_hits=0,
                filter_cache_misses=0,
                retries=attempts,
                error=f"{type(exc).__name__}: {exc}",
                wall_seconds=time.perf_counter() - wall_started,
            )
            if attempts:
                with self._lock:
                    self._stats.retries += attempts
            return ServiceResult(result=None, metrics=metrics, error=exc)

    def _ensure_batch_pool(self, workers: int) -> ThreadPoolExecutor:
        """The persistent batch pool, at least ``workers`` wide."""
        with self._batch_pool_lock:
            if self._closed:
                raise ServiceClosed(
                    "batch refused: this QueryService is closed"
                )
            if self._batch_pool is None or self._batch_pool_width < workers:
                retired = self._batch_pool
                self._batch_pool = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix=f"svc-{self._database.name}",
                )
                self._batch_pool_width = workers
                if retired is not None:
                    # In-flight batches on the narrower pool finish;
                    # new submissions land on the wider one.
                    retired.shutdown(wait=False)
            return self._batch_pool

    def close(self) -> None:
        """Shut down the service (terminal, idempotent, concurrency-safe).

        In-flight :meth:`execute` calls complete normally and batch
        slots already submitted drain on the retired pool; everything
        that arrives *after* close — a new ``execute``, a new batch, or
        the unsubmitted tail of a batch racing this call — is refused
        with a typed :class:`~repro.errors.ServiceClosed` instead of a
        dead pool's ``RuntimeError``.  Closing twice (or from two
        threads at once) is a no-op; the pool is shut down exactly
        once, outside the lock, waiting for its in-flight work.
        """
        with self._batch_pool_lock:
            self._closed = True
            retired = self._batch_pool
            self._batch_pool = None
            self._batch_pool_width = 0
        if retired is not None:
            retired.shutdown(wait=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def explain(self, sql: str, pipeline: str | None = None) -> str:
        """Render the plan ``sql`` would run, with bitvector annotations.

        Goes through the plan cache like :meth:`execute` (an explain
        warms the cache for the real query).  The rendered tree shows
        the constants the plan was optimized with; the header lists the
        parameters of *this* call.
        """
        pipeline = pipeline or self._pipeline
        entry, fingerprint, _overrides, hit = self._prepare(sql, pipeline)
        params = ", ".join(
            f"?{i}={value!r}" for i, value in enumerate(fingerprint.parameters)
        )
        dictionaries = self._database.dictionary_cache_info()
        zone_maps_info = self._database.zone_map_cache_info()
        stats = self.stats()
        header = [
            f"-- fingerprint {entry.fingerprint}  plan cache {'HIT' if hit else 'MISS'}",
            f"-- pipeline {pipeline}  estimated C_out {entry.estimated_cout:.1f}"
            f"  optimize {entry.optimize_seconds * 1e3:.2f} ms",
            f"-- parameters: {params or '(none)'}",
            f"-- filter cache: {len(self.filter_cache)} filters / "
            f"{self.filter_cache.size_bits()} bits, "
            f"{self.filter_cache.build_seconds_saved * 1e3:.2f} ms build amortized, "
            f"{self.filter_cache.builds_deduped} builds deduped",
            f"-- filter residency: {self.filter_cache.resident_bytes()} bytes "
            + "("
            + (
                ", ".join(
                    f"{mode}: {count}"
                    for mode, count in sorted(
                        self.filter_cache.mode_summary().items()
                    )
                )
                or "empty"
            )
            + ")",
            f"-- selections: {stats.total_selection_bytes} bytes resident "
            f"vs {stats.total_selection_bytes_dense} dense so far"
            + (
                f", {stats.total_morsels_band_searched} morsels band-searched"
                if stats.total_morsels_band_searched
                else ""
            ),
            f"-- dictionary indexes: {dictionaries['entries']} columns resident "
            f"({dictionaries['builds']} builds / {dictionaries['lookups']} lookups)",
            f"-- parallel execution: parallelism={self._executor.parallelism} "
            f"morsel_rows={self._executor.morsel_rows}"
            + (
                f" adaptive_morsels="
                f"{'on' if self._executor.adaptive_morsels else 'off'} "
                f"({stats.total_filter_builds_parallel} partitioned filter "
                f"builds, {stats.total_filter_build_seconds * 1e3:.2f} ms "
                f"build phase)"
                if self._executor.parallelism > 1
                else " (serial)"
            ),
            (
                f"-- zone maps: on — {zone_maps_info['entries']} synopses "
                f"resident ({zone_maps_info['builds']} builds), "
                f"{stats.total_morsels_pruned} morsels / "
                f"{stats.total_rows_skipped} rows pruned so far"
                if self._executor.zone_maps
                else "-- zone maps: off"
            ),
            f"-- resilience: deadline="
            + (
                f"{self._deadline_seconds:g}s"
                if self._deadline_seconds is not None
                else "off"
            )
            + f" budget={'on' if self._budget is not None else 'off'}"
            f" degrade={self._degrade}"
            f" retry={'on' if self._retry_policy is not None else 'off'}"
            f" ({stats.timeouts} timeouts, {stats.degradations} "
            f"degradations, {stats.failures} failures, "
            f"{stats.retries} retries)",
        ]
        return "\n".join(header) + "\n" + format_plan(entry.plan)

    def stats(self) -> ServiceStats:
        """Snapshot of service-level aggregates.

        The snapshot's ``telemetry`` field carries the latency/row
        histogram summaries (count/mean/p50/p95/p99 per histogram) from
        the service's :class:`repro.obs.ServiceTelemetry` registry.
        """
        with self._lock:
            snapshot = self._stats.snapshot()
        snapshot.telemetry = self.telemetry.snapshot()
        return snapshot

    def telemetry_snapshot(self) -> dict:
        """Histogram summaries keyed by name (execute/optimize/filter-
        build/morsel-task latency, output rows): count, total, mean,
        min, max, and p50/p95/p99 quantile estimates.  The morsel-task
        histogram fills only while a tracer is armed; everything else
        is always on."""
        return self.telemetry.snapshot()

    def explain_analyze(
        self,
        sql: str,
        name: str = "explain_analyze",
        pipeline: str | None = None,
    ) -> str:
        """Execute ``sql`` under a fresh tracer and render the profile.

        The plan tree is annotated per node with *actual* rows,
        inclusive wall time, and metered CPU next to the optimizer's
        cardinality estimate — the standard EXPLAIN ANALYZE contract.
        The header summarizes the call (wall/optimize/execute split,
        plan-cache outcome, pruning and filter-build counters) and the
        trace (span count per name).  Tracing is armed for this call
        only; results are byte-identical to a plain :meth:`execute`.
        """
        pipeline = pipeline or self._pipeline
        tracer = Tracer(telemetry=self.telemetry)
        outcome = self.execute(sql, name=name, pipeline=pipeline, tracer=tracer)
        result = outcome.result
        metrics = outcome.metrics
        entry, fingerprint, _overrides, _hit = self._prepare(sql, pipeline)

        # Optimizer estimates, re-derived with the same model the
        # pipelines cost plans with (cold path — one parse + bind).
        from repro.cost.cout import EstimatedCardModel
        from repro.stats.estimator import CardinalityEstimator

        statement = parse_select(sql)
        spec = bind_select(self._database, statement, name)
        model = EstimatedCardModel(
            CardinalityEstimator(self._database, spec.alias_tables)
        )
        executed = {node.node_id: node for node in result.metrics.nodes}
        annotations: dict[int, str] = {}
        for node in entry.plan.walk():
            record = executed.get(node.node_id)
            try:
                estimate = f"{model.rows_out(node):.0f}"
            except Exception:
                estimate = "n/a"
            if record is None:
                annotations[node.node_id] = f"(est {estimate} rows, not run)"
                continue
            annotations[node.node_id] = (
                f"actual {record.rows_out} rows in "
                f"{record.wall_seconds * 1e3:.2f} ms"
                f" (cpu {record.cpu():.0f}, est {estimate} rows)"
            )

        span_counts: dict[str, int] = {}
        for span in tracer.spans():
            span_counts[span.name] = span_counts.get(span.name, 0) + 1
        morsels = tracer.spans("morsel")
        header = [
            f"-- EXPLAIN ANALYZE {metrics.query}  pipeline {pipeline}"
            f"  plan cache {'HIT' if metrics.plan_cache_hit else 'MISS'}",
            f"-- wall {metrics.wall_seconds * 1e3:.2f} ms = optimize "
            f"{metrics.optimize_seconds * 1e3:.2f} ms + execute "
            f"{metrics.execute_seconds * 1e3:.2f} ms; "
            f"{metrics.output_rows} rows out",
            f"-- pruning: {metrics.morsels_pruned} morsels pruned, "
            f"{metrics.morsels_short_circuited} short-circuited, "
            f"{metrics.morsels_band_searched} band-searched, "
            f"{metrics.rows_skipped} rows skipped",
            f"-- filters: {metrics.filter_cache_hits} cache hits / "
            f"{metrics.filter_cache_misses} misses, "
            f"{metrics.filter_build_seconds * 1e3:.2f} ms built"
            + (
                f" ({metrics.filter_builds_parallel} partitioned)"
                if metrics.filter_builds_parallel
                else ""
            ),
            "-- spans: "
            + (
                ", ".join(
                    f"{span_name}={count}"
                    for span_name, count in sorted(span_counts.items())
                )
                or "(none)"
            )
            + (f", {tracer.dropped} dropped" if tracer.dropped else ""),
        ]
        if morsels:
            total = sum(span.duration for span in morsels)
            header.append(
                f"-- morsel tasks: {len(morsels)} spanning "
                f"{total * 1e3:.2f} ms of worker time"
            )
        return "\n".join(header) + "\n" + format_plan(
            entry.plan, annotations=annotations
        )

    def invalidate(self) -> None:
        """Drop every cached plan and filter (e.g. after a data reload)."""
        with self._lock:
            self.plan_cache.clear()
            self.filter_cache.clear()
            self._stats.invalidations += 1
            self._schema_version = self._database.schema_version

    # ------------------------------------------------------------------
    # Cache machinery
    # ------------------------------------------------------------------

    def _prepare(
        self, sql: str, pipeline: str,
        context: ExecutionContext | None = None,
        tracer: Tracer | None = None,
    ) -> tuple[CachedPlan, QueryFingerprint, dict, bool]:
        """Fingerprint ``sql`` and return an executable cached entry.

        The hit path never parses: it tokenizes, looks up the plan, and
        substitutes this query's constants into the per-alias predicate
        templates.  ``context`` makes a cache-miss optimization
        abortable under the query's deadline; an aborted build is never
        published, so the cache holds only completed plans.
        """
        self._check_schema_version()
        fingerprint = fingerprint_sql(sql)
        key = (fingerprint.text, pipeline)
        entry = self.plan_cache.get(key)
        hit = entry is not None
        if tracer is not None:
            tracer.event(
                "plan_cache", hit=hit, fingerprint=fingerprint.digest
            )
        if entry is None:
            # Read the generation before the (slow) build: if an
            # invalidation lands mid-optimize, the put is dropped and
            # the possibly-stale plan serves only this one request.
            generation = self.plan_cache.generation
            entry = self._build_entry(
                sql, fingerprint, pipeline, context, tracer
            )
            self.plan_cache.put(key, entry, generation=generation)
        if entry.num_parameters != fingerprint.num_parameters:
            raise ServiceError(
                f"fingerprint {entry.fingerprint} expects "
                f"{entry.num_parameters} parameters, got "
                f"{fingerprint.num_parameters}"
            )
        overrides = {
            alias: substitute_parameters(template, fingerprint.parameters)
            for alias, template in entry.template_predicates.items()
        }
        return entry, fingerprint, overrides, hit

    def _build_entry(
        self,
        sql: str,
        fingerprint: QueryFingerprint,
        pipeline: str,
        context: ExecutionContext | None = None,
        tracer: Tracer | None = None,
    ) -> CachedPlan:
        """Cache-miss path: full parse → bind → optimize."""

        def parse_and_bind():
            statement = parse_select(sql)
            template_statement, parameters = parameterize_statement(statement)
            if parameters != fingerprint.parameters:
                raise ServiceError(
                    "parameter extraction mismatch between token stream "
                    f"and AST ({parameters!r} vs {fingerprint.parameters!r})"
                )
            name = f"q_{fingerprint.digest}"
            spec = bind_select(self._database, statement, name)
            template_spec = bind_select(
                self._database, template_statement, name
            )
            return spec, template_spec

        if tracer is None:
            spec, template_spec = parse_and_bind()
        else:
            with tracer.span("parse_bind", fingerprint=fingerprint.digest):
                spec, template_spec = parse_and_bind()
        optimized = optimize_query(
            self._database, spec, pipeline, lambda_thresh=self._lambda_thresh,
            # Filter selection discounts build cost by the executor
            # parallelism these plans will actually run at (the
            # partitioned build pipeline).
            build_parallelism=self._executor.parallelism,
            context=context,
            tracer=tracer,
        )
        return CachedPlan(
            fingerprint=fingerprint.digest,
            pipeline=pipeline,
            plan=optimized.plan,
            template_predicates=dict(template_spec.local_predicates),
            num_parameters=fingerprint.num_parameters,
            estimated_cout=optimized.estimated_cout,
            signature=optimized.signature,
            optimize_seconds=optimized.optimize_seconds,
        )

    def _check_schema_version(self) -> None:
        """Drop both caches when the catalog has changed underneath us."""
        with self._lock:
            if self._database.schema_version != self._schema_version:
                self.plan_cache.clear()
                self.filter_cache.clear()
                self._schema_version = self._database.schema_version
                self._stats.invalidations += 1
