"""Bounded retry with decorrelated-jitter backoff for transient errors.

The service's batch path (:meth:`repro.service.QueryService.run_many`)
may absorb a *transient* failure — a fault the next attempt has every
reason to survive — by re-running the statement a bounded number of
times.  Two disciplines keep this safe in a serving tier:

* **Whitelist, not blacklist.**  Only exception types the caller
  explicitly declared transient are retried, and *policy* errors
  (:class:`~repro.errors.ResilienceError`: deadlines, budgets,
  cancellation) are never retried even if a whitelisted type appears in
  their cause chain — retrying a query that just blew its deadline only
  doubles the damage.  Because the engine wraps worker failures in
  :class:`~repro.errors.MorselTaskError`, the whitelist check walks the
  ``__cause__`` chain to see the original exception.
* **Decorrelated jitter.**  Synchronized retries from a batch of
  workers re-create the very contention that failed them; each delay is
  drawn as ``min(cap, uniform(base, previous * 3))`` from a seeded
  stream (:func:`repro.util.rng.derive_rng`), so backoff is spread out
  yet exactly reproducible in tests.
* **Deadline-aware backoff.**  A retry loop that carries a
  :class:`~repro.engine.context.Deadline` never sleeps past it: a
  backoff the remaining budget cannot cover raises
  :class:`~repro.errors.QueryTimeout` at once instead of burning the
  deadline asleep.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable

from repro.engine.context import Deadline
from repro.errors import QueryTimeout, ResilienceError
from repro.testing.faults import TransientFault
from repro.util.rng import derive_rng


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How many times, for which errors, and with what backoff.

    ``max_attempts`` counts *total* attempts (1 = no retries).  The
    default whitelist contains only
    :class:`~repro.testing.faults.TransientFault` — the injected
    transient condition the chaos suite exercises; deployments extend
    ``retryable`` with their own transient types.
    """

    max_attempts: int = 3
    base_seconds: float = 0.005
    cap_seconds: float = 0.25
    seed: int = 0
    retryable: tuple[type, ...] = (TransientFault,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether one more attempt is allowed to absorb ``exc``.

        Walks the ``__cause__`` chain (the engine wraps worker errors
        with morsel context), but refuses outright when any link is a
        :class:`~repro.errors.ResilienceError` — policy enforcement is
        final.
        """
        seen: set[int] = set()
        node: BaseException | None = exc
        matched = False
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            if isinstance(node, ResilienceError):
                return False
            if isinstance(node, self.retryable):
                matched = True
            node = node.__cause__
        return matched

    def call(
        self,
        fn: Callable[[], object],
        sleep: Callable[[float], None] = time.sleep,
        deadline: Deadline | None = None,
    ) -> tuple[object, int]:
        """Run ``fn`` with retries; return ``(result, retries_used)``.

        Non-retryable failures (and the last allowed attempt's failure)
        propagate unchanged.  The jitter stream is derived fresh per
        call, so one statement's retries never perturb another's.

        With a ``deadline``, every backoff sleep is checked against
        :meth:`~repro.engine.context.Deadline.remaining` *before* it is
        taken: a sleep the remaining budget cannot cover raises
        :class:`~repro.errors.QueryTimeout` immediately (chaining the
        attempt's failure as ``__cause__``) rather than burning the
        budget asleep only to time out on the next attempt anyway.
        """
        rng = derive_rng(self.seed, "retry:backoff")
        previous = self.base_seconds
        attempt = 0
        while True:
            try:
                return fn(), attempt
            except Exception as exc:
                attempt += 1
                if attempt >= self.max_attempts or not self.is_retryable(exc):
                    raise
                previous = min(
                    self.cap_seconds,
                    float(rng.uniform(self.base_seconds, previous * 3)),
                )
                if deadline is not None and previous >= deadline.remaining():
                    raise QueryTimeout(
                        f"retry backoff of {previous:.3f}s exceeds the "
                        f"remaining deadline of {deadline.remaining():.3f}s "
                        f"(after {attempt} failed attempt(s))"
                    ) from exc
                sleep(previous)
