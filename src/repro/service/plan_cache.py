"""LRU plan cache keyed by query fingerprint.

A cache entry holds everything needed to answer a structurally
identical query without touching the parser, binder, or optimizer
again: the optimized physical plan (push-down applied, aggregate
attached) and, per relation alias, the *template* local predicate whose
constants are :class:`~repro.expr.expressions.Parameter` placeholders.
On a hit the service substitutes the new query's constants into the
templates and executes the shared plan with per-execution predicate
overrides — the cached tree itself is never mutated, so hits are safe
under concurrency.

Classic plan-cache caveat (documented, by design): the join order and
filter choices were optimized for the *first-seen* constants; later
parameter values reuse that plan even if a different order would have
been marginally better for them.
"""

from __future__ import annotations

import dataclasses

from repro.expr.expressions import Expression
from repro.plan.nodes import PlanNode
from repro.util.lru import LruCache


@dataclasses.dataclass
class CachedPlan:
    """One reusable optimized plan plus its parameter template."""

    fingerprint: str
    pipeline: str
    plan: PlanNode
    template_predicates: dict[str, Expression]
    num_parameters: int
    estimated_cout: float
    signature: str
    optimize_seconds: float  # planning cost paid once, on the miss
    hits: int = 0


class PlanCache(LruCache):
    """Bounded, thread-safe LRU mapping fingerprint keys to plans.

    Inherits the generation guard from :class:`~repro.util.lru.LruCache`:
    the service reads :attr:`generation` before an optimize and passes
    it to :meth:`put`, so a plan built while an invalidation raced by is
    used for its own request but never published.
    """

    def __init__(self, capacity: int = 128) -> None:
        super().__init__(capacity)

    def get(self, key: tuple) -> CachedPlan | None:
        entry = super().get(key)
        if entry is not None:
            entry.hits += 1
        return entry
