"""`asyncio` facade over :class:`QueryService` with admission control.

:class:`AsyncQueryService` is the overload-safe front door the ROADMAP's
"millions of users" north star asks for: an awaitable ``execute`` whose
concurrency is bounded by a fixed pool of executor threads, fronted by
an :class:`~repro.service.admission.AdmissionController` (bounded
priority queue, per-client token buckets, deadline shed-on-arrival,
per-fingerprint failure-rate breakers).  Under load beyond capacity the
service keeps answering a capacity's worth of traffic at predictable
latency and refuses the rest in microseconds with a typed
:class:`~repro.errors.QueryShed` carrying a retry-after hint — it never
queues unbounded work.

Event-loop discipline:

* Admission decisions and dispatch run *on the event loop thread* —
  they are pure bookkeeping (microseconds), so sheds return fast even
  while every executor thread is busy.
* Query execution runs on a private ``ThreadPoolExecutor`` exactly
  ``max_concurrency`` wide; the underlying (thread-safe)
  :class:`QueryService` keeps its plan/filter caches shared across all
  in-flight queries.
* The request's :class:`~repro.engine.context.Deadline` starts at
  *arrival*, before queueing, and is handed to the engine's cooperative
  checkpoints — a query consumes its deadline while waiting, and a
  ticket that out-waits its deadline is shed at dispatch instead of
  burning an executor slot.

One :class:`AsyncQueryService` belongs to one event loop; drive it from
the loop that first awaits it.  ``close()`` is graceful and idempotent:
queued admissions are cancelled with a typed
:class:`~repro.errors.ServiceClosed`, in-flight queries finish, and
later submissions are refused.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

from repro.engine.context import Deadline
from repro.errors import QueryShed, ServiceClosed, ServiceError
from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionRequest,
)
from repro.service.service import QueryService, ServiceResult
from repro.sql.parameterize import fingerprint_sql


class AsyncQueryService:
    """Awaitable, admission-controlled query serving.

    Parameters
    ----------
    database:
        Build a private :class:`QueryService` over this database
        (``**service_kwargs`` pass through — ``parallelism``,
        ``deadline_seconds``, ``tracer``, ...).  Mutually exclusive
        with ``service``.
    service:
        Adopt an existing (already configured) :class:`QueryService`.
        The caller keeps ownership: :meth:`close` closes it only when
        this facade created it.
    max_concurrency:
        Executor threads — the number of queries running at once.  This
        is the capacity every admission policy is anchored to.
    admission:
        An :class:`~repro.service.admission.AdmissionConfig`; defaults
        are sized for small deployments (queue of 32, no quotas).
    clock:
        Monotonic clock injected into the admission controller (tests
        substitute a fake one).
    """

    def __init__(
        self,
        database=None,
        *,
        service: QueryService | None = None,
        max_concurrency: int = 4,
        admission: AdmissionConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        **service_kwargs,
    ) -> None:
        if (database is None) == (service is None):
            raise ServiceError(
                "pass exactly one of database= or service= to "
                "AsyncQueryService"
            )
        self._owns_service = service is None
        self.service = (
            QueryService(database, **service_kwargs)
            if service is None
            else service
        )
        if not self._owns_service and service_kwargs:
            raise ServiceError(
                "service_kwargs apply only when AsyncQueryService builds "
                "its own QueryService"
            )
        self.admission = AdmissionController(
            max_concurrency,
            config=admission,
            clock=clock,
            telemetry=self.service.telemetry,
        )
        self.max_concurrency = self.admission.max_concurrency
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_concurrency,
            thread_name_prefix="svc-admit",
        )
        self._closed = False
        self._sequence = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    async def execute(
        self,
        sql: str,
        name: str | None = None,
        *,
        client: str = "default",
        priority: str = "normal",
        pipeline: str | None = None,
        deadline_seconds: float | None = None,
    ) -> ServiceResult:
        """Admit, queue, and execute ``sql``; await the answer.

        ``client`` selects the token bucket charged for this query and
        ``priority`` its queue class (``"interactive"`` / ``"normal"``
        / ``"batch"``).  ``deadline_seconds`` starts the wall-clock at
        *arrival* (``None`` inherits the underlying service default):
        time spent queued counts against it, the admission controller
        sheds on arrival when the remaining budget cannot cover the
        estimated wait plus one execution, and the engine's cooperative
        checkpoints enforce whatever remains during the run.

        Raises :class:`~repro.errors.QueryShed` (typed, with
        ``reason`` and ``retry_after``) when admission refuses, and
        :class:`~repro.errors.ServiceClosed` after :meth:`close`.
        """
        if self._closed:
            raise ServiceClosed(
                f"query {name or 'query'!r} refused: service is closed"
            )
        loop = asyncio.get_running_loop()
        if name is None:
            self._sequence += 1
            name = f"async_{self._sequence}"
        seconds = (
            self.service.deadline_seconds
            if deadline_seconds is None
            else deadline_seconds
        )
        deadline = Deadline.after(seconds) if seconds is not None else None
        fingerprint = fingerprint_sql(sql)
        request = AdmissionRequest(
            name=name,
            client=client,
            priority=priority,
            fingerprint=fingerprint.digest,
            deadline=deadline,
        )
        try:
            ticket = self.admission.admit(request)
        except QueryShed as shed:
            self._record_shed(name, shed)
            raise
        ticket.waiter = loop.create_future()
        self._dispatch()
        try:
            await ticket.waiter
        except QueryShed as shed:
            self._record_shed(name, shed)
            raise
        # Dispatched: the ticket owns an execution slot until released.
        try:
            outcome = await loop.run_in_executor(
                self._pool,
                self._run_sync,
                sql,
                name,
                pipeline,
                deadline,
            )
        except BaseException:
            self.admission.release(ticket, "error")
            raise
        else:
            self.admission.release(ticket, "ok")
            return outcome
        finally:
            self._dispatch()

    def _run_sync(self, sql, name, pipeline, deadline) -> ServiceResult:
        return self.service.execute(
            sql, name=name, pipeline=pipeline, deadline_seconds=deadline
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        """Move queued tickets into free execution slots.

        Runs on the event loop thread (called after every admission and
        every completion), so waiter futures are always resolved on
        their own loop.  Tickets carrying a ``dequeue_error`` — an
        expired deadline or an injected ``service.dequeue`` fault — get
        the typed error delivered and their slot released immediately.
        """
        while True:
            ticket = self.admission.next_ready()
            if ticket is None:
                return
            waiter = ticket.waiter
            error = ticket.dequeue_error
            if error is not None:
                self.admission.release(ticket, "shed")
                if waiter is not None and not waiter.done():
                    waiter.set_exception(error)
                continue
            if waiter is None or waiter.done():
                # The caller abandoned the wait (e.g. asyncio timeout
                # cancelled it); give the slot straight back.
                self.admission.release(ticket, "shed")
                continue
            waiter.set_result(ticket)

    def _record_shed(self, name: str, shed: QueryShed) -> None:
        tracer = self.service.tracer
        if tracer is not None:
            tracer.event(
                "resilience.shed",
                query=name,
                reason=shed.reason,
                retry_after=shed.retry_after,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self):
        """The underlying :meth:`QueryService.stats` snapshot."""
        return self.service.stats()

    def admission_stats(self):
        """Snapshot of the admission counters (sheds by reason, queue
        depth high-water mark, wait time, breaker trips)."""
        return self.admission.stats()

    def telemetry_snapshot(self) -> dict:
        """Histogram summaries including ``admission_wait_seconds`` and
        ``queue_depth`` (see :meth:`QueryService.telemetry_snapshot`)."""
        return self.service.telemetry_snapshot()

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    async def close(self) -> None:
        """Graceful, idempotent shutdown.

        New submissions are refused with
        :class:`~repro.errors.ServiceClosed`; queued admissions are
        cancelled with the same typed error (never an opaque pool
        ``RuntimeError``); queries already executing drain to
        completion before the executor pool is torn down.  The
        underlying :class:`QueryService` is closed only if this facade
        created it.
        """
        self._closed = True
        cancelled = self.admission.close()
        for ticket in cancelled:
            waiter = ticket.waiter
            if waiter is not None and not waiter.done():
                waiter.set_exception(
                    ServiceClosed(
                        f"query {ticket.request.name!r} cancelled: service "
                        "closed while it was queued"
                    )
                )
        while self.admission.running:
            await asyncio.sleep(0.005)
        self._pool.shutdown(wait=True)
        if self._owns_service:
            self.service.close()

    async def __aenter__(self) -> "AsyncQueryService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
