"""Per-query and service-level metrics for :class:`QueryService`.

Every served query produces a :class:`ServiceMetrics` record; the
service folds them into a running :class:`ServiceStats` aggregate
(thread-safe — the fold happens under the service's lock).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class ServiceMetrics:
    """What one query cost the service.

    ``optimize_seconds`` is the full optimize-path latency of this call:
    fingerprinting plus — on a plan-cache miss — parsing, binding, and
    optimization.  On a hit it collapses to fingerprint + lookup +
    parameter substitution, which is the speedup the plan cache buys.
    """

    query: str
    fingerprint: str
    pipeline: str
    plan_cache_hit: bool
    optimize_seconds: float
    execute_seconds: float
    metered_cpu: float
    output_rows: int
    filter_cache_hits: int
    filter_cache_misses: int
    # Wall-clock for the whole service call, end to end: optimize +
    # execute + (for run_many slots) every retry attempt.  Carried on
    # every record — including the error records batch isolation builds
    # — so batch telemetry never needs re-timing by callers.
    wall_seconds: float = 0.0
    # Zero-copy execution accounting (repro.engine.metrics): columns
    # actually gathered and join-key encodings served by the
    # table-resident dictionary indexes.
    rows_copied: int = 0
    bytes_gathered: int = 0
    dictionary_hits: int = 0
    dictionary_misses: int = 0
    # Zone-map data skipping (repro.storage.zonemaps): whole morsels
    # proven non-qualifying and dropped before any row was read, plus
    # morsels proven all-qualifying and kept whole without row-wise
    # evaluation (the constant-morsel short-circuit).
    morsels_pruned: int = 0
    rows_skipped: int = 0
    morsels_short_circuited: int = 0
    # Clustered band search: morsels answered by binary-searching a
    # sorted column to the predicate's value band (no per-morsel
    # checks, no row-wise evaluation).
    morsels_band_searched: int = 0
    # Succinct selection state (repro.engine.relation): bytes of
    # selection structures created during execution vs. the dense
    # int64 position vectors they replace, and the bytes resident in
    # the shared filter cache after this query.
    selection_bytes: int = 0
    selection_bytes_dense: int = 0
    filter_bytes_resident: int = 0
    # Parallel build-side pipeline (repro.engine.executor): filters
    # constructed via partition-build-then-merge, and the wall-clock
    # the query spent building filters (cache hits cost nothing).
    filter_builds_parallel: int = 0
    filter_build_seconds: float = 0.0
    # Resilience accounting (repro.engine.context).  ``degraded`` marks
    # a query whose parallel run breached its ResourceBudget and was
    # re-run on the serial fallback executor; ``retries`` counts the
    # extra attempts the batch retry policy spent before this answer;
    # ``error`` is ``"TypeName: message"`` for a query that failed (set
    # only on the error records run_many builds for isolated failures).
    degraded: bool = False
    retries: int = 0
    error: str | None = None


@dataclasses.dataclass
class ServiceStats:
    """Running aggregate over every query the service has answered."""

    queries: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    filter_cache_hits: int = 0
    filter_cache_misses: int = 0
    invalidations: int = 0
    total_optimize_seconds: float = 0.0
    total_execute_seconds: float = 0.0
    total_wall_seconds: float = 0.0
    total_metered_cpu: float = 0.0
    total_rows_copied: int = 0
    total_bytes_gathered: int = 0
    dictionary_hits: int = 0
    dictionary_misses: int = 0
    total_morsels_pruned: int = 0
    total_rows_skipped: int = 0
    total_morsels_short_circuited: int = 0
    total_morsels_band_searched: int = 0
    total_selection_bytes: int = 0
    total_selection_bytes_dense: int = 0
    # Point-in-time, not a sum: the filter cache footprint after the
    # most recently folded query.
    filter_bytes_resident: int = 0
    total_filter_builds_parallel: int = 0
    total_filter_build_seconds: float = 0.0
    # Resilience aggregates.  ``failures`` / ``timeouts`` are counted
    # by the service when an execution raises (no ServiceMetrics is
    # folded for those); ``degradations`` and ``retries`` fold from the
    # per-query records of answers that did come back.
    failures: int = 0
    timeouts: int = 0
    degradations: int = 0
    retries: int = 0
    # Latency/row histogram snapshots (repro.obs.ServiceTelemetry),
    # attached by QueryService.stats() at snapshot time — never folded,
    # the telemetry registry is the live aggregate.
    telemetry: dict = dataclasses.field(default_factory=dict)

    def fold(self, metrics: ServiceMetrics) -> None:
        self.queries += 1
        if metrics.plan_cache_hit:
            self.plan_cache_hits += 1
        else:
            self.plan_cache_misses += 1
        self.filter_cache_hits += metrics.filter_cache_hits
        self.filter_cache_misses += metrics.filter_cache_misses
        self.total_optimize_seconds += metrics.optimize_seconds
        self.total_execute_seconds += metrics.execute_seconds
        self.total_wall_seconds += metrics.wall_seconds
        self.total_metered_cpu += metrics.metered_cpu
        self.total_rows_copied += metrics.rows_copied
        self.total_bytes_gathered += metrics.bytes_gathered
        self.dictionary_hits += metrics.dictionary_hits
        self.dictionary_misses += metrics.dictionary_misses
        self.total_morsels_pruned += metrics.morsels_pruned
        self.total_rows_skipped += metrics.rows_skipped
        self.total_morsels_short_circuited += metrics.morsels_short_circuited
        self.total_morsels_band_searched += metrics.morsels_band_searched
        self.total_selection_bytes += metrics.selection_bytes
        self.total_selection_bytes_dense += metrics.selection_bytes_dense
        self.filter_bytes_resident = metrics.filter_bytes_resident
        self.total_filter_builds_parallel += metrics.filter_builds_parallel
        self.total_filter_build_seconds += metrics.filter_build_seconds
        if metrics.degraded:
            self.degradations += 1
        self.retries += metrics.retries

    @property
    def plan_cache_hit_rate(self) -> float:
        if not self.queries:
            return 0.0
        return self.plan_cache_hits / self.queries

    def snapshot(self) -> "ServiceStats":
        return dataclasses.replace(self)
