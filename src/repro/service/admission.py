"""Admission control for the service front-end: queueing, quotas, shedding.

The serving tier's overload contract is the dual of the engine's
resilience contract (PR 7): where :class:`~repro.engine.context.Deadline`
bounds how long one *accepted* query may run, admission control bounds
how much work the service *accepts* in the first place.  Under offered
load beyond capacity, the correct behavior is not "queue everything and
miss every deadline" but "serve a capacity's worth predictably and
refuse the rest in microseconds, with an honest retry hint".

Four cooperating policies, composed by :class:`AdmissionController`:

* **Bounded priority queue.**  Arriving queries wait in a heap ordered
  by priority class (``"interactive"`` < ``"normal"`` < ``"batch"``)
  then arrival order.  The queue is bounded, and lower priority classes
  are refused at *watermarks* below the full capacity — when the
  execution slots are all occupied, background work sheds first and
  interactive traffic keeps its headroom.
* **Per-client token buckets.**  Each client refills
  ``quota_rate`` tokens/second up to ``quota_burst``; a query that
  finds the bucket empty sheds with the exact time the next token
  accrues as its retry hint.  One greedy client cannot starve the rest.
* **Deadline-aware shed-on-arrival.**  A queued query consumes its own
  deadline while waiting, so the controller estimates queue wait from
  an EWMA of observed service times and refuses on arrival any query
  whose remaining :meth:`~repro.engine.context.Deadline.remaining`
  cannot cover the estimated wait plus one execution — shedding in
  microseconds beats timing out after burning a slot.  The estimate is
  re-checked at dispatch: a ticket whose deadline expired while queued
  is shed instead of dispatched.
* **Per-fingerprint failure-rate breaker.**  A sliding window of recent
  outcomes per query fingerprint; when the failure rate crosses the
  threshold the breaker opens and admissions of that fingerprint shed
  for a cooldown, then a single half-open probe decides between closing
  and re-opening.  This stops retry storms: a query shape that is
  currently failing cannot keep re-entering the queue at full rate.

Everything is synchronous, lock-protected, and clock-injectable, so the
policies are unit-testable without an event loop; the
:class:`~repro.service.async_service.AsyncQueryService` facade drives
the controller from asyncio.  Two fault sites (``"service.admit"``,
``"service.dequeue"`` — see :mod:`repro.testing.faults`) make overload
behavior chaos-testable deterministically.
"""

from __future__ import annotations

import dataclasses
import heapq
import threading
import time
from collections import deque
from typing import Callable, Mapping

from repro.engine.context import Deadline
from repro.errors import QueryShed, ServiceClosed, ServiceError
from repro.testing.faults import fault_point

#: Priority classes, lowest rank dispatches first.
PRIORITIES: dict[str, int] = {
    "interactive": 0,
    "normal": 1,
    "batch": 2,
}

#: Fraction of the queue capacity a class may fill before it sheds.
#: Interactive traffic may use the whole queue; batch work is refused
#: once the queue is half full so bursts of low-value work never crowd
#: out latency-sensitive clients.
DEFAULT_WATERMARKS: dict[str, float] = {
    "interactive": 1.0,
    "normal": 0.85,
    "batch": 0.5,
}

#: Retry hint floor: never tell a client to retry in less than this.
_MIN_RETRY_AFTER = 0.001


class TokenBucket:
    """Thread-safe token bucket: ``rate`` tokens/second up to ``burst``.

    >>> bucket = TokenBucket(rate=10.0, burst=2.0, clock=lambda: 0.0)
    >>> bucket.try_acquire(), bucket.try_acquire()
    (None, None)
    >>> round(bucket.try_acquire(), 3)  # empty: seconds until a token
    0.1
    """

    __slots__ = ("rate", "burst", "_tokens", "_last", "_clock", "_lock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ServiceError("token bucket rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> float | None:
        """Take ``tokens`` if available; else seconds until they accrue.

        Returns ``None`` on success (the tokens are consumed), or the
        wait in seconds a caller should back off before retrying — the
        retry-after hint a quota shed carries.
        """
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return None
            return (tokens - self._tokens) / self.rate


class FailureRateBreaker:
    """Sliding-window failure-rate breaker for one query fingerprint.

    States: *closed* (admitting, counting outcomes), *open* (shedding
    until the cooldown elapses), *half-open* (one probe in flight; its
    outcome closes or re-opens the breaker).  Not internally locked —
    the :class:`AdmissionController` serializes all calls under its own
    lock.
    """

    __slots__ = (
        "window", "min_samples", "failure_threshold", "cooldown_seconds",
        "trips", "_outcomes", "_state", "_opened_at", "_probe_inflight",
        "_clock",
    )

    def __init__(
        self,
        window: int = 16,
        min_samples: int = 8,
        failure_threshold: float = 0.5,
        cooldown_seconds: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.window = int(window)
        self.min_samples = int(min_samples)
        self.failure_threshold = float(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self.trips = 0
        self._outcomes: deque[bool] = deque(maxlen=self.window)
        self._state = "closed"
        self._opened_at = 0.0
        self._probe_inflight = False
        self._clock = clock

    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> float | None:
        """``None`` to admit, else the retry-after hint of a shed.

        An open breaker whose cooldown has elapsed transitions to
        half-open and admits exactly one probe; further admissions shed
        until the probe's outcome is recorded.
        """
        if self._state == "closed":
            return None
        if self._state == "open":
            remaining = self._opened_at + self.cooldown_seconds - self._clock()
            if remaining > 0:
                return max(remaining, _MIN_RETRY_AFTER)
            self._state = "half_open"
            self._probe_inflight = False
        if self._probe_inflight:
            return max(self.cooldown_seconds, _MIN_RETRY_AFTER)
        self._probe_inflight = True
        return None

    def record(self, ok: bool) -> None:
        """Fold one execution outcome (sheds are never recorded)."""
        if self._state == "half_open":
            self._probe_inflight = False
            if ok:
                self._state = "closed"
                self._outcomes.clear()
            else:
                self._trip()
            return
        if self._state == "open":
            # A straggler admitted before the trip; the window restarts
            # from the half-open probe, so its outcome is moot.
            return
        self._outcomes.append(ok)
        if len(self._outcomes) >= self.min_samples:
            failures = sum(1 for outcome in self._outcomes if not outcome)
            if failures / len(self._outcomes) >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        self._state = "open"
        self._opened_at = self._clock()
        self.trips += 1
        self._outcomes.clear()


@dataclasses.dataclass(frozen=True)
class AdmissionConfig:
    """Tunables for one :class:`AdmissionController`.

    ``quota_rate`` / ``quota_burst`` apply to every client without an
    entry in ``client_quotas`` (``quota_rate=None`` disables quotas for
    such clients).  Watermarks map priority class to the fraction of
    ``queue_capacity`` that class may fill while the execution slots
    are saturated; unknown classes are rejected at admission.
    """

    queue_capacity: int = 32
    watermarks: Mapping[str, float] = dataclasses.field(
        default_factory=lambda: dict(DEFAULT_WATERMARKS)
    )
    quota_rate: float | None = None
    quota_burst: float = 8.0
    client_quotas: Mapping[str, tuple[float, float]] = dataclasses.field(
        default_factory=dict
    )
    breaker_window: int = 16
    breaker_min_samples: int = 8
    breaker_failure_threshold: float = 0.5
    breaker_cooldown_seconds: float = 1.0
    shed_on_arrival: bool = True
    #: EWMA weight for the observed-service-time estimate.
    service_time_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ServiceError("queue_capacity must be >= 1")
        for priority, watermark in self.watermarks.items():
            if priority not in PRIORITIES:
                raise ServiceError(
                    f"unknown priority class {priority!r}; expected one of "
                    f"{sorted(PRIORITIES)}"
                )
            if not 0.0 < watermark <= 1.0:
                raise ServiceError(
                    f"watermark for {priority!r} must be in (0, 1]"
                )
        if not 0.0 < self.breaker_failure_threshold <= 1.0:
            raise ServiceError("breaker_failure_threshold must be in (0, 1]")
        if self.breaker_min_samples < 1 or self.breaker_window < self.breaker_min_samples:
            raise ServiceError(
                "breaker_window must be >= breaker_min_samples >= 1"
            )


@dataclasses.dataclass
class AdmissionRequest:
    """What the controller knows about one arriving query."""

    name: str
    client: str = "default"
    priority: str = "normal"
    fingerprint: str = ""
    deadline: Deadline | None = None


class Ticket:
    """One admitted query's place in the queue.

    ``waiter`` is an opaque slot for the async facade (it stores the
    ``asyncio.Future`` resolved at dispatch); the controller never
    touches it.  ``dequeue_error`` carries a typed error decided *at
    dispatch* (an expired deadline, or an injected ``service.dequeue``
    fault) — the dispatcher delivers it to the waiter and releases the
    slot, so a doomed ticket never occupies an executor.
    """

    __slots__ = (
        "request", "seq", "enqueued_at", "dispatched_at", "state",
        "waiter", "dequeue_error", "wait_seconds",
    )

    def __init__(self, request: AdmissionRequest, seq: int, now: float) -> None:
        self.request = request
        self.seq = seq
        self.enqueued_at = now
        self.dispatched_at: float | None = None
        self.state = "queued"
        self.waiter = None
        self.dequeue_error: BaseException | None = None
        self.wait_seconds = 0.0


@dataclasses.dataclass
class AdmissionStats:
    """Counters the controller keeps (snapshot with :meth:`snapshot`)."""

    submitted: int = 0
    admitted: int = 0
    dispatched: int = 0
    completed: int = 0
    failures: int = 0
    sheds: int = 0
    shed_quota: int = 0
    shed_queue: int = 0
    shed_deadline: int = 0
    shed_breaker: int = 0
    cancelled_on_close: int = 0
    breaker_trips: int = 0
    max_queue_depth: int = 0
    total_wait_seconds: float = 0.0

    @property
    def shed_rate(self) -> float:
        return self.sheds / self.submitted if self.submitted else 0.0

    def snapshot(self) -> "AdmissionStats":
        return dataclasses.replace(self)


class AdmissionController:
    """Composes queue, quotas, deadline shedding, and breakers.

    Thread-safe and event-loop-agnostic: :meth:`admit` /
    :meth:`next_ready` / :meth:`release` may be called from any thread.
    ``telemetry`` (a :class:`repro.obs.ServiceTelemetry`) receives
    ``queue_depth`` on every admission and ``admission_wait_seconds``
    on every dispatch.
    """

    def __init__(
        self,
        max_concurrency: int,
        config: AdmissionConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        telemetry=None,
    ) -> None:
        if max_concurrency < 1:
            raise ServiceError("max_concurrency must be >= 1")
        self.max_concurrency = int(max_concurrency)
        self.config = config if config is not None else AdmissionConfig()
        self._clock = clock
        self._telemetry = telemetry
        self._lock = threading.Lock()
        self._heap: list[tuple[int, int, Ticket]] = []
        self._seq = 0
        self._queued = 0
        self._running = 0
        self._closed = False
        self._buckets: dict[str, TokenBucket] = {}
        self._breakers: dict[str, FailureRateBreaker] = {}
        self._service_seconds: float | None = None
        self._stats = AdmissionStats()

    # -- introspection --------------------------------------------------

    @property
    def running(self) -> int:
        return self._running

    @property
    def queued(self) -> int:
        return self._queued

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def occupancy(self) -> float:
        """Execution-slot occupancy in [0, 1] — the morsel-pool feed."""
        return self._running / self.max_concurrency

    @property
    def estimated_service_seconds(self) -> float | None:
        """EWMA of observed per-query service time (``None`` cold)."""
        return self._service_seconds

    def stats(self) -> AdmissionStats:
        with self._lock:
            return self._stats.snapshot()

    def estimated_wait_seconds(self) -> float:
        """Coarse queue-wait estimate for a query arriving now."""
        with self._lock:
            return self._estimated_wait_locked()

    def _estimated_wait_locked(self) -> float:
        est = self._service_seconds
        if est is None:
            return 0.0
        backlog = self._queued + self._running - self.max_concurrency + 1
        if backlog <= 0:
            return 0.0
        return est * backlog / self.max_concurrency

    # -- admission ------------------------------------------------------

    def admit(self, request: AdmissionRequest) -> Ticket:
        """Admit ``request`` into the queue or refuse it, in microseconds.

        Raises :class:`~repro.errors.ServiceClosed` after :meth:`close`,
        or :class:`~repro.errors.QueryShed` (with ``reason`` and a
        ``retry_after`` hint) when a policy refuses.  Policy order:
        breaker, queue watermark, deadline shed-on-arrival, and the
        client quota *last* — a query refused by queue state never
        burns one of its client's tokens.
        """
        fault_point("service.admit")
        rank = PRIORITIES.get(request.priority)
        if rank is None:
            raise ServiceError(
                f"unknown priority {request.priority!r}; expected one of "
                f"{sorted(PRIORITIES)}"
            )
        with self._lock:
            self._stats.submitted += 1
            if self._closed:
                raise ServiceClosed(
                    f"query {request.name!r} refused: service is closed"
                )
            retry_after = self._breaker_allow_locked(request.fingerprint)
            if retry_after is not None:
                self._stats.sheds += 1
                self._stats.shed_breaker += 1
                raise QueryShed(
                    f"query {request.name!r} shed: breaker open for "
                    f"fingerprint {request.fingerprint or '(none)'} "
                    f"(retry in {retry_after:.3f}s)",
                    reason="breaker",
                    retry_after=retry_after,
                )
            capacity = self.config.queue_capacity
            watermark = self.config.watermarks.get(request.priority, 1.0)
            limit = max(1, int(watermark * capacity))
            saturated = self._running >= self.max_concurrency
            if self._queued >= capacity or (saturated and self._queued >= limit):
                hint = max(self._estimated_wait_locked(), _MIN_RETRY_AFTER)
                self._stats.sheds += 1
                self._stats.shed_queue += 1
                raise QueryShed(
                    f"query {request.name!r} shed: admission queue at "
                    f"{self._queued}/{capacity} (class {request.priority!r} "
                    f"limit {limit}, retry in {hint:.3f}s)",
                    reason="queue",
                    retry_after=hint,
                )
            if self.config.shed_on_arrival and request.deadline is not None:
                est = self._service_seconds
                wait = self._estimated_wait_locked()
                if est is not None and wait + est >= request.deadline.remaining():
                    hint = max(wait, _MIN_RETRY_AFTER)
                    self._stats.sheds += 1
                    self._stats.shed_deadline += 1
                    raise QueryShed(
                        f"query {request.name!r} shed on arrival: estimated "
                        f"wait {wait:.3f}s + service {est:.3f}s exceeds the "
                        f"remaining deadline "
                        f"{request.deadline.remaining():.3f}s",
                        reason="deadline",
                        retry_after=hint,
                    )
            retry_after = self._quota_acquire_locked(request.client)
            if retry_after is not None:
                self._stats.sheds += 1
                self._stats.shed_quota += 1
                raise QueryShed(
                    f"query {request.name!r} shed: client "
                    f"{request.client!r} is out of quota (retry in "
                    f"{retry_after:.3f}s)",
                    reason="quota",
                    retry_after=max(retry_after, _MIN_RETRY_AFTER),
                )
            now = self._clock()
            ticket = Ticket(request, self._seq, now)
            self._seq += 1
            heapq.heappush(self._heap, (rank, ticket.seq, ticket))
            self._queued += 1
            self._stats.admitted += 1
            if self._queued > self._stats.max_queue_depth:
                self._stats.max_queue_depth = self._queued
            depth = self._queued
        if self._telemetry is not None:
            self._telemetry.record("queue_depth", depth)
        return ticket

    def _breaker_allow_locked(self, fingerprint: str) -> float | None:
        if not fingerprint:
            return None
        breaker = self._breakers.get(fingerprint)
        if breaker is None:
            return None
        before = breaker.trips
        allowed = breaker.allow()
        self._stats.breaker_trips += breaker.trips - before
        return allowed

    def _quota_acquire_locked(self, client: str) -> float | None:
        quota = self.config.client_quotas.get(client)
        if quota is None:
            if self.config.quota_rate is None:
                return None
            quota = (self.config.quota_rate, self.config.quota_burst)
        bucket = self._buckets.get(client)
        if bucket is None:
            rate, burst = quota
            bucket = TokenBucket(rate, burst, clock=self._clock)
            self._buckets[client] = bucket
        return bucket.try_acquire()

    # -- dispatch -------------------------------------------------------

    def next_ready(self) -> Ticket | None:
        """Pop the best queued ticket if an execution slot is free.

        The popped ticket is counted as running; the caller *must*
        balance every returned ticket with :meth:`release`.  A ticket
        whose deadline expired while it queued — or whose
        ``service.dequeue`` fault fired — comes back with
        ``dequeue_error`` set instead of being silently dropped, so the
        dispatcher can deliver the typed error and immediately release
        the slot.
        """
        with self._lock:
            if self._running >= self.max_concurrency:
                return None
            ticket = None
            while self._heap:
                _, _, candidate = heapq.heappop(self._heap)
                if candidate.state == "queued":
                    ticket = candidate
                    break
            if ticket is None:
                return None
            self._queued -= 1
            self._running += 1
            now = self._clock()
            ticket.dispatched_at = now
            ticket.wait_seconds = max(now - ticket.enqueued_at, 0.0)
            ticket.state = "dispatched"
            self._stats.dispatched += 1
            self._stats.total_wait_seconds += ticket.wait_seconds
            try:
                fault_point("service.dequeue")
            except BaseException as exc:  # noqa: BLE001 - delivered typed
                ticket.dequeue_error = exc
                return ticket
            deadline = ticket.request.deadline
            if deadline is not None and deadline.expired():
                self._stats.sheds += 1
                self._stats.shed_deadline += 1
                ticket.dequeue_error = QueryShed(
                    f"query {ticket.request.name!r} shed at dispatch: "
                    f"deadline expired after {ticket.wait_seconds:.3f}s "
                    "in the admission queue",
                    reason="deadline",
                    retry_after=max(
                        self._estimated_wait_locked(), _MIN_RETRY_AFTER
                    ),
                )
                return ticket
        if self._telemetry is not None:
            self._telemetry.record(
                "admission_wait_seconds", ticket.wait_seconds
            )
        return ticket

    def release(self, ticket: Ticket, outcome: str) -> None:
        """Return ``ticket``'s slot; ``outcome`` is ``"ok"``/``"error"``/``"shed"``.

        Execution outcomes (``"ok"``/``"error"``) feed the ticket's
        fingerprint breaker and — on success — the service-time EWMA;
        ``"shed"`` releases the slot without polluting either (a shed
        says nothing about the query's health).
        """
        if outcome not in ("ok", "error", "shed"):
            raise ServiceError(f"unknown release outcome {outcome!r}")
        with self._lock:
            if ticket.state == "released":
                return
            ticket.state = "released"
            self._running -= 1
            if outcome == "shed":
                return
            if outcome == "ok":
                self._stats.completed += 1
                if ticket.dispatched_at is not None:
                    observed = self._clock() - ticket.dispatched_at
                    alpha = self.config.service_time_alpha
                    if self._service_seconds is None:
                        self._service_seconds = observed
                    else:
                        self._service_seconds += alpha * (
                            observed - self._service_seconds
                        )
            else:
                self._stats.failures += 1
            fingerprint = ticket.request.fingerprint
            if fingerprint:
                breaker = self._breakers.get(fingerprint)
                if breaker is None:
                    breaker = FailureRateBreaker(
                        window=self.config.breaker_window,
                        min_samples=self.config.breaker_min_samples,
                        failure_threshold=self.config.breaker_failure_threshold,
                        cooldown_seconds=self.config.breaker_cooldown_seconds,
                        clock=self._clock,
                    )
                    self._breakers[fingerprint] = breaker
                before = breaker.trips
                breaker.record(outcome == "ok")
                self._stats.breaker_trips += breaker.trips - before

    def breaker_state(self, fingerprint: str) -> str:
        """The breaker state for ``fingerprint`` (``"closed"`` if none)."""
        with self._lock:
            breaker = self._breakers.get(fingerprint)
            return breaker.state if breaker is not None else "closed"

    # -- shutdown -------------------------------------------------------

    def close(self) -> list[Ticket]:
        """Refuse new admissions and drain the queue (idempotent).

        Returns the tickets that were still queued, each already marked
        ``"cancelled"`` — the caller delivers the typed
        :class:`~repro.errors.ServiceClosed` to their waiters.  Running
        tickets are untouched; they complete and release normally.
        """
        with self._lock:
            if self._closed and not self._heap:
                return []
            self._closed = True
            cancelled = []
            while self._heap:
                _, _, ticket = heapq.heappop(self._heap)
                if ticket.state == "queued":
                    ticket.state = "cancelled"
                    cancelled.append(ticket)
            self._queued = 0
            self._stats.cancelled_on_close += len(cancelled)
            return cancelled
