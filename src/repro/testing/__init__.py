"""Deterministic testing utilities (fault injection).

Not imported by any engine module at runtime beyond the zero-cost
:func:`repro.testing.faults.fault_point` hook — this package exists for
the chaos suite and the robustness benchmark.
"""

from repro.testing.faults import (
    ENGINE_SITES,
    REGISTERED_SITES,
    FaultPlan,
    InjectedFault,
    TransientFault,
    fault_point,
    inject,
)

__all__ = [
    "ENGINE_SITES",
    "REGISTERED_SITES",
    "FaultPlan",
    "InjectedFault",
    "TransientFault",
    "fault_point",
    "inject",
]
