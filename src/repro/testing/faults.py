"""Seeded, deterministic fault injection for the execution tier.

The chaos suite needs to prove a *negative*: that no failure at any
internal boundary can poison shared state (worker pool, plan cache,
bitvector filter cache) for the queries that follow.  That requires
failures that are (a) injectable at named internal sites, (b) exactly
reproducible run-to-run, and (c) free when disabled — production code
paths must not slow down for a testing facility.

Registered sites (the engine's ``fault_point(site)`` calls):

========================  =====================================================
``"pool.submit"``         one batch submission to the shared morsel pool
                          (:func:`repro.engine.parallel.run_morsel_tasks`)
``"morsel.task"``         one morsel worker task, in dispatch order
                          (:meth:`repro.engine.executor.Executor._map_morsels`)
``"filter.build_partition"``  one partition of a partitioned bitvector filter
                          build (executor fan-out and the serial
                          :meth:`~repro.filters.base.BitvectorFilter.build_partitioned`)
``"cache.publish"``       publication of a built filter into the
                          :class:`~repro.filters.cache.BitvectorFilterCache`
``"service.admit"``       one admission decision in the service front-end
                          (:meth:`repro.service.admission.AdmissionController.admit`)
``"service.dequeue"``     dispatch of one queued admission ticket
                          (:meth:`repro.service.admission.AdmissionController.next_ready`)
========================  =====================================================

Each site keeps an invocation counter; rules trigger on exact
invocation indices (``raise_at(site, invocation=N)``) or on a seeded
per-site Bernoulli draw (``raise_with_probability``), so a given
``(FaultPlan(seed), workload)`` pair always fires the same faults.

Zero overhead when disabled: :func:`fault_point` is one module-global
load and a ``None`` test.  Plans are installed process-wide with
:func:`inject` (a context manager), mirroring how a chaos test wraps
one query.

>>> plan = FaultPlan(seed=7).raise_at("morsel.task", invocation=2)
>>> with inject(plan):
...     fault_point("morsel.task")  # invocation 0: no fire
...     fault_point("morsel.task")  # invocation 1: no fire
...     try:
...         fault_point("morsel.task")  # invocation 2: fires
...     except InjectedFault:
...         print("fired")
fired
>>> fault_point("morsel.task")  # uninstalled: free no-op
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
import time

from repro.errors import ReproError
from repro.util.rng import derive_rng

#: Sites the engine currently registers; plans may name others (they
#: simply never fire), but tests iterate this tuple for coverage.
REGISTERED_SITES = (
    "pool.submit",
    "morsel.task",
    "filter.build_partition",
    "cache.publish",
    "service.admit",
    "service.dequeue",
)

#: The subset of sites reached by a plain (non-admission-controlled)
#: ``Executor`` / ``QueryService`` execution; the ``service.*`` sites
#: fire only on the admission-controlled async path
#: (:class:`repro.service.AsyncQueryService`).
ENGINE_SITES = tuple(
    site for site in REGISTERED_SITES if not site.startswith("service.")
)


class InjectedFault(ReproError):
    """A deliberately injected failure (chaos testing only)."""


class TransientFault(InjectedFault):
    """An injected failure modeling a transient condition.

    The retry whitelist in :class:`repro.service.retry.RetryPolicy`
    examples uses this type: it is the kind of error a bounded
    backoff-and-retry is allowed to absorb.
    """


@dataclasses.dataclass(frozen=True)
class FaultRecord:
    """One fired fault, for post-run assertions."""

    site: str
    invocation: int
    action: str
    detail: str


class _Rule:
    """One trigger: exact invocations and/or a seeded probability."""

    __slots__ = ("action", "invocations", "probability", "exc_type",
                 "message", "seconds", "max_fires", "fires")

    def __init__(
        self,
        action: str,
        invocations: frozenset[int],
        probability: float,
        exc_type: type,
        message: str | None,
        seconds: float,
        max_fires: int | None,
    ) -> None:
        self.action = action
        self.invocations = invocations
        self.probability = probability
        self.exc_type = exc_type
        self.message = message
        self.seconds = seconds
        self.max_fires = max_fires
        self.fires = 0


class FaultPlan:
    """A deterministic schedule of failures and stalls by site.

    Thread-safe: site counters and rule bookkeeping are updated under
    one lock; the injected action (raise / sleep) runs outside it.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._rules: dict[str, list[_Rule]] = {}
        self._rngs: dict[str, object] = {}
        self.fired: list[FaultRecord] = []

    # -- rule registration (chainable) ---------------------------------

    def raise_at(
        self,
        site: str,
        invocation: int = 0,
        exc_type: type = InjectedFault,
        message: str | None = None,
    ) -> "FaultPlan":
        """Raise ``exc_type`` at the ``invocation``-th hit of ``site``."""
        self._rules.setdefault(site, []).append(
            _Rule("raise", frozenset({invocation}), 0.0, exc_type,
                  message, 0.0, None)
        )
        return self

    def stall_at(
        self, site: str, invocation: int = 0, seconds: float = 0.05
    ) -> "FaultPlan":
        """Sleep ``seconds`` at the ``invocation``-th hit of ``site``
        (models a stalled worker; pairs with deadlines)."""
        self._rules.setdefault(site, []).append(
            _Rule("stall", frozenset({invocation}), 0.0, InjectedFault,
                  None, float(seconds), None)
        )
        return self

    def raise_with_probability(
        self,
        site: str,
        probability: float,
        exc_type: type = InjectedFault,
        message: str | None = None,
        max_fires: int | None = None,
    ) -> "FaultPlan":
        """Raise on a seeded per-invocation Bernoulli draw.

        Draws come from a per-site stream derived from the plan seed
        (:func:`repro.util.rng.derive_rng`), consumed in invocation
        order — same seed, same workload, same firings.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        self._rules.setdefault(site, []).append(
            _Rule("raise", frozenset(), float(probability), exc_type,
                  message, 0.0, max_fires)
        )
        return self

    # -- engine-facing --------------------------------------------------

    def fire(self, site: str) -> None:
        """Called by :func:`fault_point`; performs any matching action."""
        action = None
        with self._lock:
            invocation = self._counts.get(site, 0)
            self._counts[site] = invocation + 1
            for rule in self._rules.get(site, ()):
                if rule.max_fires is not None and rule.fires >= rule.max_fires:
                    continue
                matched = invocation in rule.invocations
                if not matched and rule.probability > 0.0:
                    rng = self._rngs.get(site)
                    if rng is None:
                        rng = derive_rng(self.seed, f"fault:{site}")
                        self._rngs[site] = rng
                    matched = float(rng.random()) < rule.probability
                if matched:
                    rule.fires += 1
                    detail = rule.message or (
                        f"injected {rule.action} at {site}#{invocation}"
                    )
                    self.fired.append(
                        FaultRecord(site, invocation, rule.action, detail)
                    )
                    action = rule
                    break
        if action is None:
            return
        if action.action == "stall":
            time.sleep(action.seconds)
            return
        detail = action.message or (
            f"injected fault at site {site!r} (invocation "
            f"{self.fired[-1].invocation})"
        )
        raise action.exc_type(detail)

    # -- introspection --------------------------------------------------

    def count(self, site: str) -> int:
        """Invocations of ``site`` observed so far."""
        with self._lock:
            return self._counts.get(site, 0)

    @property
    def total_fired(self) -> int:
        with self._lock:
            return len(self.fired)


_active: FaultPlan | None = None
_install_lock = threading.Lock()


def install(plan: FaultPlan) -> None:
    """Arm ``plan`` process-wide (prefer the :func:`inject` manager)."""
    global _active
    with _install_lock:
        if _active is not None:
            raise RuntimeError("a fault plan is already installed")
        _active = plan


def uninstall() -> None:
    """Disarm any installed plan (idempotent)."""
    global _active
    with _install_lock:
        _active = None


@contextlib.contextmanager
def inject(plan: FaultPlan):
    """Arm ``plan`` for the duration of the block, then disarm."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def fault_point(site: str) -> None:
    """Hot-path hook: no-op unless a plan is installed.

    Engine code calls this at the registered sites; the disabled cost
    is one global load and a ``None`` comparison.
    """
    plan = _active
    if plan is not None:
        plan.fire(site)
