"""Recursive-descent parser producing an unbound SELECT AST.

Grammar (informal)::

    select     := SELECT item (',' item)*
                  FROM table_ref (',' table_ref)*
                  [WHERE expr]
                  [GROUP BY column (',' column)*]
                  [HAVING expr]
                  [ORDER BY order_key (',' order_key)*]
                  [LIMIT number]
    item       := agg_call [AS name] | column
    agg_call   := agg '(' (column | '*') ')'
    table_ref  := name [AS? name]
    order_key  := (agg_call | column) [ASC | DESC]
    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := unary (AND unary)*
    unary      := NOT unary | '(' expr ')' | predicate
    predicate  := operand ( cmp operand
                          | [NOT] BETWEEN literal AND literal
                          | [NOT] IN '(' literal (',' literal)* ')'
                          | [NOT] LIKE string )
    operand    := qualified_column | literal

Inside a HAVING expression an operand may also be an aggregate call
(``agg_call``), which refers to the aggregate-output domain.
"""

from __future__ import annotations

import dataclasses

from repro.errors import SqlError
from repro.sql.lexer import Token, tokenize


@dataclasses.dataclass(frozen=True)
class RawColumn:
    """Possibly-qualified column name: ``qualifier.name`` or ``name``."""

    qualifier: str | None
    name: str


@dataclasses.dataclass(frozen=True)
class RawLiteral:
    value: object


@dataclasses.dataclass(frozen=True)
class RawComparison:
    op: str
    left: object
    right: object


@dataclasses.dataclass(frozen=True)
class RawBetween:
    operand: RawColumn
    low: RawLiteral
    high: RawLiteral
    negated: bool


@dataclasses.dataclass(frozen=True)
class RawIn:
    operand: RawColumn
    values: tuple[object, ...]
    negated: bool


@dataclasses.dataclass(frozen=True)
class RawLike:
    operand: RawColumn
    pattern: str
    negated: bool


@dataclasses.dataclass(frozen=True)
class RawAnd:
    operands: tuple[object, ...]


@dataclasses.dataclass(frozen=True)
class RawOr:
    operands: tuple[object, ...]


@dataclasses.dataclass(frozen=True)
class RawNot:
    operand: object


@dataclasses.dataclass(frozen=True)
class RawAggregate:
    """An aggregate call used as an operand (HAVING / ORDER BY only)."""

    function: str
    argument: RawColumn | None  # None => COUNT(*)


@dataclasses.dataclass(frozen=True)
class RawOrderKey:
    """One ORDER BY key: a column or aggregate call plus direction."""

    target: object              # RawColumn | RawAggregate
    ascending: bool


@dataclasses.dataclass(frozen=True)
class SelectItem:
    """Either an aggregate (function set) or a bare column."""

    function: str | None       # None => bare column
    argument: RawColumn | None # None with function => COUNT(*)
    alias: str | None


@dataclasses.dataclass(frozen=True)
class TableRef:
    table: str
    alias: str


@dataclasses.dataclass(frozen=True)
class SelectStatement:
    items: tuple[SelectItem, ...]
    tables: tuple[TableRef, ...]
    where: object | None
    group_by: tuple[RawColumn, ...]
    having: object | None = None
    order_by: tuple[RawOrderKey, ...] = ()
    limit: int | None = None


_AGGREGATE_KEYWORDS = ("count", "sum", "min", "max", "avg")


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0
        self._in_having = False

    # -- token plumbing -------------------------------------------------

    def _peek(self) -> Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _eof_position(self) -> int | None:
        if self._tokens:
            last = self._tokens[-1]
            return last.position + len(last.text)
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise SqlError("unexpected end of input", self._eof_position())
        self._index += 1
        return token

    def _accept_keyword(self, word: str) -> bool:
        token = self._peek()
        if token is not None and token.is_keyword(word):
            self._index += 1
            return True
        return False

    def _expect_keyword(self, word: str) -> Token:
        token = self._next()
        if not token.is_keyword(word):
            raise SqlError(
                f"expected {word.upper()}, got {token.text!r}", token.position
            )
        return token

    def _accept(self, kind: str) -> Token | None:
        token = self._peek()
        if token is not None and token.kind == kind:
            self._index += 1
            return token
        return None

    def _expect(self, kind: str) -> Token:
        token = self._next()
        if token.kind != kind:
            raise SqlError(f"expected {kind}, got {token.text!r}", token.position)
        return token

    # -- grammar --------------------------------------------------------

    def parse(self) -> SelectStatement:
        self._expect_keyword("select")
        items = [self._select_item()]
        while self._accept("comma"):
            items.append(self._select_item())
        self._expect_keyword("from")
        tables = [self._table_ref()]
        while self._accept("comma"):
            tables.append(self._table_ref())
        where = None
        if self._accept_keyword("where"):
            where = self._expr()
        group_by: list[RawColumn] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._qualified_column())
            while self._accept("comma"):
                group_by.append(self._qualified_column())
        having = None
        if self._accept_keyword("having"):
            self._in_having = True
            try:
                having = self._expr()
            finally:
                self._in_having = False
        order_by: list[RawOrderKey] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._order_key())
            while self._accept("comma"):
                order_by.append(self._order_key())
        limit = None
        if self._accept_keyword("limit"):
            limit = self._limit_count()
        trailing = self._peek()
        if trailing is not None:
            raise SqlError(
                f"unexpected trailing input {trailing.text!r}", trailing.position
            )
        return SelectStatement(
            items=tuple(items),
            tables=tuple(tables),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
        )

    def _at_aggregate_call(self) -> bool:
        token = self._peek()
        return (
            token is not None
            and token.kind == "keyword"
            and token.text in _AGGREGATE_KEYWORDS
        )

    def _aggregate_call(self) -> RawAggregate:
        function = self._next().text
        self._expect("lparen")
        if self._accept("star"):
            argument = None
        else:
            argument = self._qualified_column()
        self._expect("rparen")
        return RawAggregate(function=function, argument=argument)

    def _select_item(self) -> SelectItem:
        if self._at_aggregate_call():
            call = self._aggregate_call()
            alias = self._optional_alias()
            return SelectItem(
                function=call.function, argument=call.argument, alias=alias
            )
        column = self._qualified_column()
        alias = self._optional_alias()
        return SelectItem(function=None, argument=column, alias=alias)

    def _order_key(self) -> RawOrderKey:
        target: object
        if self._at_aggregate_call():
            target = self._aggregate_call()
        else:
            target = self._qualified_column()
        ascending = True
        if self._accept_keyword("asc"):
            ascending = True
        elif self._accept_keyword("desc"):
            ascending = False
        return RawOrderKey(target=target, ascending=ascending)

    def _limit_count(self) -> int:
        token = self._next()
        if token.kind != "number" or "." in token.text:
            raise SqlError(
                f"LIMIT expects an integer count, got {token.text!r}",
                token.position,
            )
        count = int(token.text)
        if count < 0:
            raise SqlError(
                f"LIMIT count must be non-negative, got {token.text!r}",
                token.position,
            )
        return count

    def _optional_alias(self) -> str | None:
        if self._accept_keyword("as"):
            return self._expect("identifier").text
        token = self._peek()
        if token is not None and token.kind == "identifier":
            self._index += 1
            return token.text
        return None

    def _table_ref(self) -> TableRef:
        table = self._expect("identifier").text
        if self._accept_keyword("as"):
            alias = self._expect("identifier").text
        else:
            token = self._peek()
            if token is not None and token.kind == "identifier":
                alias = self._next().text
            else:
                alias = table
        return TableRef(table=table, alias=alias)

    def _qualified_column(self) -> RawColumn:
        first = self._expect("identifier").text
        if self._accept("dot"):
            second = self._expect("identifier").text
            return RawColumn(qualifier=first, name=second)
        return RawColumn(qualifier=None, name=first)

    # expressions

    def _expr(self) -> object:
        return self._or_expr()

    def _or_expr(self) -> object:
        operands = [self._and_expr()]
        while self._accept_keyword("or"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return RawOr(tuple(operands))

    def _and_expr(self) -> object:
        operands = [self._unary()]
        while self._accept_keyword("and"):
            operands.append(self._unary())
        if len(operands) == 1:
            return operands[0]
        return RawAnd(tuple(operands))

    def _unary(self) -> object:
        if self._accept_keyword("not"):
            return RawNot(self._unary())
        if self._accept("lparen"):
            inner = self._expr()
            self._expect("rparen")
            return inner
        return self._predicate()

    def _predicate(self) -> object:
        anchor = self._peek()
        left = self._operand()
        negated = self._accept_keyword("not")
        if self._accept_keyword("between"):
            low = self._literal()
            self._expect_keyword("and")
            high = self._literal()
            if not isinstance(left, RawColumn):
                raise SqlError(
                    f"BETWEEN requires a column operand, got {anchor.text!r}",
                    anchor.position,
                )
            return RawBetween(left, low, high, negated)
        if self._accept_keyword("in"):
            self._expect("lparen")
            values = [self._literal().value]
            while self._accept("comma"):
                values.append(self._literal().value)
            self._expect("rparen")
            if not isinstance(left, RawColumn):
                raise SqlError(
                    f"IN requires a column operand, got {anchor.text!r}",
                    anchor.position,
                )
            return RawIn(left, tuple(values), negated)
        if self._accept_keyword("like"):
            pattern = self._expect("string").text
            if not isinstance(left, RawColumn):
                raise SqlError(
                    f"LIKE requires a column operand, got {anchor.text!r}",
                    anchor.position,
                )
            return RawLike(left, pattern, negated)
        if negated:
            follower = self._peek()
            if follower is None:
                raise SqlError(
                    "NOT must precede BETWEEN / IN / LIKE", self._eof_position()
                )
            raise SqlError(
                f"NOT must precede BETWEEN / IN / LIKE, got {follower.text!r}",
                follower.position,
            )
        op_token = self._expect("op")
        right = self._operand()
        return RawComparison(op=op_token.text, left=left, right=right)

    def _operand(self) -> object:
        token = self._peek()
        if token is None:
            raise SqlError("unexpected end of input", self._eof_position())
        if self._in_having and self._at_aggregate_call():
            return self._aggregate_call()
        if token.kind == "identifier":
            return self._qualified_column()
        return self._literal()

    def _literal(self) -> RawLiteral:
        token = self._next()
        if token.kind == "number":
            text = token.text
            value: object = float(text) if "." in text else int(text)
            return RawLiteral(value)
        if token.kind == "string":
            return RawLiteral(token.text)
        raise SqlError(f"expected literal, got {token.text!r}", token.position)


def parse_select(sql: str) -> SelectStatement:
    """Parse SQL text into an unbound SELECT AST."""
    return _Parser(tokenize(sql)).parse()
