"""Minimal SQL front-end.

Covers the decision-support subset the paper's experiments need:
``SELECT`` with aggregates, implicit-join ``FROM`` lists with aliases,
``WHERE`` conjunctions of equi-joins and column-vs-literal predicates
(``=, <>, <, <=, >, >=, BETWEEN, IN, LIKE``, plus ``OR``/``NOT``
sub-expressions on a single table), and ``GROUP BY``.

``parse_query`` goes from SQL text to a bound
:class:`repro.query.spec.QuerySpec` validated against a database.
"""

from repro.sql.lexer import tokenize, Token
from repro.sql.parser import parse_select, SelectStatement
from repro.sql.binder import bind_select, parse_query
from repro.sql.parameterize import (
    QueryFingerprint,
    fingerprint_sql,
    parameterize_statement,
)

__all__ = [
    "tokenize",
    "Token",
    "parse_select",
    "SelectStatement",
    "bind_select",
    "parse_query",
    "QueryFingerprint",
    "fingerprint_sql",
    "parameterize_statement",
]
