"""SQL tokenizer."""

from __future__ import annotations

import dataclasses

from repro.errors import SqlError

KEYWORDS = {
    "select", "from", "where", "and", "or", "not", "as", "group", "by",
    "between", "in", "like", "count", "sum", "min", "max", "avg",
    "having", "order", "limit", "asc", "desc",
}

_PUNCTUATION = {
    "(": "lparen",
    ")": "rparen",
    ",": "comma",
    "*": "star",
    ".": "dot",
}

_OPERATOR_CHARS = "<>=!"


@dataclasses.dataclass(frozen=True)
class Token:
    """One lexical token: kind, normalized text, source offset."""

    kind: str       # keyword | identifier | number | string | op | punctuation
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word


def tokenize(sql: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SqlError` on bad input."""
    tokens: list[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql[i: i + 2] == "--":
            newline = sql.find("\n", i)
            i = length if newline < 0 else newline + 1
            continue
        if ch == "'":
            end = i + 1
            parts: list[str] = []
            while True:
                if end >= length:
                    raise SqlError("unterminated string literal", i)
                if sql[end] == "'":
                    if end + 1 < length and sql[end + 1] == "'":
                        parts.append("'")
                        end += 2
                        continue
                    break
                parts.append(sql[end])
                end += 1
            tokens.append(Token("string", "".join(parts), i))
            i = end + 1
            continue
        if ch.isdigit() or (
            ch == "-" and i + 1 < length and sql[i + 1].isdigit() and _prev_is_value_boundary(tokens)
        ):
            end = i + 1
            seen_dot = False
            while end < length and (sql[end].isdigit() or (sql[end] == "." and not seen_dot)):
                if sql[end] == ".":
                    # do not consume a trailing dot (qualified names)
                    if end + 1 >= length or not sql[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token("number", sql[i:end], i))
            i = end
            continue
        if ch.isalpha() or ch == "_":
            end = i + 1
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[i:end]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, i))
            else:
                tokens.append(Token("identifier", word, i))
            i = end
            continue
        if ch in _OPERATOR_CHARS:
            two = sql[i: i + 2]
            if two in ("<=", ">=", "<>", "!="):
                text = "<>" if two == "!=" else two
                tokens.append(Token("op", text, i))
                i += 2
            elif ch in "<>=":
                tokens.append(Token("op", ch, i))
                i += 1
            else:
                raise SqlError(f"unexpected character {ch!r}", i)
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(_PUNCTUATION[ch], ch, i))
            i += 1
            continue
        raise SqlError(f"unexpected character {ch!r}", i)
    return tokens


def _prev_is_value_boundary(tokens: list[Token]) -> bool:
    """Heuristic: a ``-`` starts a negative number literal only after an
    operator, comma, or opening parenthesis."""
    if not tokens:
        return True
    return tokens[-1].kind in ("op", "comma", "lparen", "keyword")
