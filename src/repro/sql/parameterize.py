"""Query fingerprinting: extract literal constants into parameters.

Decision-support traffic re-issues structurally identical queries with
different constants.  This module computes a *fingerprint* — a canonical
rendering of the query with every literal replaced by a ``?N`` marker —
so the service layer's plan cache (:mod:`repro.service`) can recognize
repeats without re-optimizing.

Normalization rules (documented for cache-key stability; see
``docs/ARCHITECTURE.md``):

* whitespace, SQL comments, and keyword case are irrelevant (the lexer
  discards them);
* number and string literals are replaced by positional ``?N`` markers,
  in source order, and collected as parameters;
* ``LIKE`` patterns are **not** parameterized — a pattern change alters
  selectivity structure, so it stays part of the fingerprint;
* ``HAVING`` literals and the ``LIMIT`` count are **not** parameterized
  either: cached plan templates bake the HAVING predicate and top-k
  operator into the plan tree, and only per-alias scan predicates can
  be overridden at execution time;
* identifiers (table names, aliases, columns) are significant and
  case-sensitive; ``x IN (1, 2)`` and ``x IN (1, 2, 3)`` differ (the
  marker count is part of the shape).

Two views of the same extraction are produced:

* :func:`fingerprint_sql` works on the token stream only — the cheap
  path a cache *hit* takes (no recursive-descent parse, no binding);
* :func:`parameterize_statement` rewrites a parsed
  :class:`~repro.sql.parser.SelectStatement`, replacing literal values
  with :class:`~repro.expr.expressions.Parameter` placeholders — the
  path a cache *miss* takes to build the reusable plan template.

Both walk literals in source order, so marker indices agree.
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.errors import SqlError
from repro.expr.expressions import Parameter
from repro.sql.lexer import Token, tokenize
from repro.sql.parser import (
    RawBetween,
    RawComparison,
    RawIn,
    RawLike,
    RawLiteral,
    RawAnd,
    RawNot,
    RawOr,
    SelectStatement,
)


@dataclasses.dataclass(frozen=True)
class QueryFingerprint:
    """Canonical shape of a query plus its extracted constants."""

    text: str
    parameters: tuple[object, ...]

    @property
    def digest(self) -> str:
        """Stable short hash of the canonical text."""
        return hashlib.sha256(self.text.encode("utf-8")).hexdigest()[:16]

    @property
    def num_parameters(self) -> int:
        return len(self.parameters)


def fingerprint_sql(sql: str) -> QueryFingerprint:
    """Fingerprint SQL text from its token stream alone.

    >>> a = fingerprint_sql("SELECT COUNT(*) FROM t WHERE t.x = 5")
    >>> b = fingerprint_sql("select count(*)  from t where t.x = 99")
    >>> a.text == b.text
    True
    >>> (a.parameters, b.parameters)
    ((5,), (99,))
    """
    tokens = tokenize(sql)
    rendered: list[str] = []
    parameters: list[object] = []
    previous: Token | None = None
    in_having = False
    for token in tokens:
        if token.is_keyword("having"):
            in_having = True
        elif token.kind == "keyword" and token.text in ("order", "limit"):
            in_having = False
        if token.kind in ("number", "string"):
            keep_literal = in_having or (
                previous is not None
                and (
                    previous.is_keyword("like")
                    or previous.is_keyword("limit")
                )
            )
            if keep_literal:
                # LIKE patterns, HAVING constants, and the LIMIT count
                # stay literal (see module docstring).
                if token.kind == "string":
                    escaped = token.text.replace("'", "''")
                    rendered.append(f"'{escaped}'")
                else:
                    rendered.append(token.text)
            else:
                rendered.append(f"?{len(parameters)}")
                parameters.append(_literal_value(token))
        else:
            rendered.append(token.text)
        previous = token
    if not rendered:
        raise SqlError("empty query")
    return QueryFingerprint(text=" ".join(rendered), parameters=tuple(parameters))


def _literal_value(token: Token) -> object:
    if token.kind == "string":
        return token.text
    return float(token.text) if "." in token.text else int(token.text)


def parameterize_statement(
    statement: SelectStatement,
) -> tuple[SelectStatement, tuple[object, ...]]:
    """Replace the literals of a parsed statement with placeholders.

    Returns ``(template, parameters)`` where every literal value in the
    template's WHERE clause is a :class:`Parameter` whose index points
    into ``parameters``.  The walk visits literals in source order, so
    the indices line up with :func:`fingerprint_sql` on the same query.
    """
    parameters: list[object] = []

    def marker(value: object) -> Parameter:
        parameter = Parameter(len(parameters))
        parameters.append(value)
        return parameter

    def rewrite(raw: object) -> object:
        if isinstance(raw, RawLiteral):
            return RawLiteral(marker(raw.value))
        if isinstance(raw, RawComparison):
            return RawComparison(raw.op, rewrite(raw.left), rewrite(raw.right))
        if isinstance(raw, RawBetween):
            return RawBetween(
                raw.operand,
                RawLiteral(marker(raw.low.value)),
                RawLiteral(marker(raw.high.value)),
                raw.negated,
            )
        if isinstance(raw, RawIn):
            return RawIn(
                raw.operand,
                tuple(marker(value) for value in raw.values),
                raw.negated,
            )
        if isinstance(raw, RawLike):
            return raw  # patterns are part of the fingerprint
        if isinstance(raw, RawAnd):
            return RawAnd(tuple(rewrite(operand) for operand in raw.operands))
        if isinstance(raw, RawOr):
            return RawOr(tuple(rewrite(operand) for operand in raw.operands))
        if isinstance(raw, RawNot):
            return RawNot(rewrite(raw.operand))
        return raw  # RawColumn and anything literal-free

    where = rewrite(statement.where) if statement.where is not None else None
    # HAVING / ORDER BY / LIMIT pass through unchanged: their constants
    # stay baked into the cached plan (see module docstring), matching
    # fingerprint_sql, which leaves those token spans literal.
    template = SelectStatement(
        items=statement.items,
        tables=statement.tables,
        where=where,
        group_by=statement.group_by,
        having=statement.having,
        order_by=statement.order_by,
        limit=statement.limit,
    )
    return template, tuple(parameters)
