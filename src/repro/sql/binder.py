"""Bind a parsed SELECT against a database catalog → :class:`QuerySpec`.

Binding resolves unqualified column names (unique owner wins), splits
the WHERE conjunction into equi-join predicates (column = column across
two relations) and per-relation local predicates, and validates that
every reference exists.
"""

from __future__ import annotations

from repro.errors import SqlError
from repro.expr.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Like,
    Literal,
    Not,
    Or,
    combine_and,
    referenced_aliases,
)
from repro.query.spec import (
    OUTPUT_ALIAS,
    Aggregate,
    JoinPredicate,
    OrderKey,
    QuerySpec,
    RelationRef,
)
from repro.sql.parser import (
    RawAggregate,
    RawAnd,
    RawBetween,
    RawColumn,
    RawComparison,
    RawIn,
    RawLike,
    RawLiteral,
    RawNot,
    RawOr,
    SelectStatement,
    parse_select,
)
from repro.storage.database import Database


def parse_query(database: Database, sql: str, name: str = "query") -> QuerySpec:
    """Parse and bind SQL text into a validated :class:`QuerySpec`."""
    statement = parse_select(sql)
    return bind_select(database, statement, name)


def bind_select(
    database: Database, statement: SelectStatement, name: str = "query"
) -> QuerySpec:
    binder = _Binder(database, statement)
    spec = binder.bind(name)
    spec.validate_against(database)
    return spec


class _Binder:
    def __init__(self, database: Database, statement: SelectStatement) -> None:
        self._database = database
        self._statement = statement
        self._alias_tables: dict[str, str] = {}
        for ref in statement.tables:
            if ref.alias in self._alias_tables:
                raise SqlError(f"duplicate alias {ref.alias!r}")
            if not database.catalog.has_table(ref.table):
                raise SqlError(f"unknown table {ref.table!r}")
            self._alias_tables[ref.alias] = ref.table

    # ------------------------------------------------------------------
    # Column resolution
    # ------------------------------------------------------------------

    def _resolve(self, column: RawColumn) -> ColumnRef:
        if column.qualifier is not None:
            if column.qualifier not in self._alias_tables:
                raise SqlError(f"unknown alias {column.qualifier!r}")
            table = self._alias_tables[column.qualifier]
            schema = self._database.catalog.schema(table)
            if not schema.has_column(column.name):
                raise SqlError(
                    f"unknown column {column.qualifier}.{column.name}"
                )
            return ColumnRef(column.qualifier, column.name)
        owners = [
            alias
            for alias, table in self._alias_tables.items()
            if self._database.catalog.schema(table).has_column(column.name)
        ]
        if not owners:
            raise SqlError(f"unknown column {column.name!r}")
        if len(owners) > 1:
            raise SqlError(
                f"ambiguous column {column.name!r} (in {sorted(owners)})"
            )
        return ColumnRef(owners[0], column.name)

    # ------------------------------------------------------------------
    # Expression conversion
    # ------------------------------------------------------------------

    def _convert(self, raw: object, resolver=None) -> Expression:
        resolve = resolver if resolver is not None else self._resolve
        if isinstance(raw, RawComparison):
            left = self._convert_operand(raw.left, resolver)
            right = self._convert_operand(raw.right, resolver)
            return Comparison(raw.op, left, right)
        if isinstance(raw, RawBetween):
            expr: Expression = Between(
                resolve(raw.operand),
                Literal(raw.low.value),
                Literal(raw.high.value),
            )
            return Not(expr) if raw.negated else expr
        if isinstance(raw, RawIn):
            expr = InList(resolve(raw.operand), raw.values)
            return Not(expr) if raw.negated else expr
        if isinstance(raw, RawLike):
            expr = Like(resolve(raw.operand), raw.pattern)
            return Not(expr) if raw.negated else expr
        if isinstance(raw, RawAnd):
            return And(
                tuple(self._convert(operand, resolver) for operand in raw.operands)
            )
        if isinstance(raw, RawOr):
            return Or(
                tuple(self._convert(operand, resolver) for operand in raw.operands)
            )
        if isinstance(raw, RawNot):
            return Not(self._convert(raw.operand, resolver))
        raise SqlError(f"unsupported expression {raw!r}")

    def _convert_operand(self, raw: object, resolver=None) -> Expression:
        resolve = resolver if resolver is not None else self._resolve
        if isinstance(raw, (RawColumn, RawAggregate)):
            return resolve(raw)
        if isinstance(raw, RawLiteral):
            return Literal(raw.value)
        raise SqlError(f"unsupported operand {raw!r}")

    # ------------------------------------------------------------------
    # WHERE decomposition
    # ------------------------------------------------------------------

    def _flatten_conjuncts(self, raw: object) -> list[object]:
        if isinstance(raw, RawAnd):
            flattened: list[object] = []
            for operand in raw.operands:
                flattened.extend(self._flatten_conjuncts(operand))
            return flattened
        return [raw]

    @staticmethod
    def _is_join_conjunct(raw: object) -> bool:
        return (
            isinstance(raw, RawComparison)
            and raw.op == "="
            and isinstance(raw.left, RawColumn)
            and isinstance(raw.right, RawColumn)
        )

    def bind(self, name: str) -> QuerySpec:
        statement = self._statement
        joins: list[JoinPredicate] = []
        locals_by_alias: dict[str, list[Expression]] = {}

        if statement.where is not None:
            for conjunct in self._flatten_conjuncts(statement.where):
                if self._is_join_conjunct(conjunct):
                    assert isinstance(conjunct, RawComparison)
                    left = self._resolve(conjunct.left)   # type: ignore[arg-type]
                    right = self._resolve(conjunct.right) # type: ignore[arg-type]
                    if left.alias != right.alias:
                        joins.append(
                            JoinPredicate(
                                left.alias, (left.column,),
                                right.alias, (right.column,),
                            )
                        )
                        continue
                expression = self._convert(conjunct)
                aliases = referenced_aliases(expression)
                if len(aliases) != 1:
                    raise SqlError(
                        "non-equi-join predicate spans multiple relations: "
                        f"{expression}"
                    )
                locals_by_alias.setdefault(next(iter(aliases)), []).append(
                    expression
                )

        aggregates: list[Aggregate] = []
        group_by = tuple(self._resolve(column) for column in statement.group_by)
        group_set = set(group_by)
        has_aggregate_items = any(
            item.function is not None for item in statement.items
        )
        select_columns: list[ColumnRef] = []
        alias_columns: dict[str, ColumnRef] = {}
        for item in statement.items:
            if item.function is not None:
                argument = (
                    self._resolve(item.argument) if item.argument is not None else None
                )
                label = item.alias or None
                aggregates.append(
                    Aggregate(function=item.function, argument=argument, label=label)
                )
            else:
                assert item.argument is not None
                resolved = self._resolve(item.argument)
                if has_aggregate_items or group_set:
                    if resolved not in group_set:
                        raise SqlError(
                            f"bare column {resolved} must appear in GROUP BY"
                        )
                else:
                    select_columns.append(resolved)
                    if item.alias is not None:
                        alias_columns[item.alias] = resolved
        self._aggregates = aggregates
        self._group_set = group_set
        self._alias_columns = alias_columns

        having = None
        if statement.having is not None:
            if not aggregates:
                raise SqlError("HAVING requires an aggregate output")
            having = self._convert(statement.having, self._resolve_output)

        order_by = tuple(
            self._bind_order_key(key, bool(aggregates))
            for key in statement.order_by
        )

        local_predicates = {
            alias: combined
            for alias, expressions in locals_by_alias.items()
            if (combined := combine_and(expressions)) is not None
        }
        return QuerySpec(
            name=name,
            relations=tuple(
                RelationRef(ref.alias, ref.table) for ref in statement.tables
            ),
            join_predicates=tuple(joins),
            local_predicates=local_predicates,
            aggregates=tuple(aggregates),
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=statement.limit,
            select_columns=tuple(select_columns),
        )

    # ------------------------------------------------------------------
    # Output-domain resolution (HAVING / ORDER BY)
    # ------------------------------------------------------------------

    def _output_aggregate(self, raw: RawAggregate) -> Aggregate:
        """Match an aggregate call to a SELECT aggregate, or introduce a
        hidden aggregate that is computed then dropped from the output."""
        argument = (
            self._resolve(raw.argument) if raw.argument is not None else None
        )
        for aggregate in self._aggregates:
            if aggregate.function == raw.function and aggregate.argument == argument:
                return aggregate
        hidden = Aggregate(
            function=raw.function, argument=argument, hidden=True
        )
        self._aggregates.append(hidden)
        return hidden

    def _resolve_output(self, raw: object) -> ColumnRef:
        """Resolve a HAVING/ORDER BY operand to an aggregate-output
        column reference (alias ``$out``, column = output label)."""
        if isinstance(raw, RawAggregate):
            return ColumnRef(OUTPUT_ALIAS, self._output_aggregate(raw).output_label)
        if isinstance(raw, RawColumn):
            if raw.qualifier is None:
                for aggregate in self._aggregates:
                    if not aggregate.hidden and aggregate.label == raw.name:
                        return ColumnRef(OUTPUT_ALIAS, aggregate.output_label)
            resolved = self._resolve(raw)
            if resolved not in self._group_set:
                raise SqlError(
                    f"column {resolved} must appear in GROUP BY to be "
                    "referenced after grouping"
                )
            return ColumnRef(OUTPUT_ALIAS, f"{resolved.alias}.{resolved.column}")
        raise SqlError(f"unsupported operand {raw!r} in HAVING/ORDER BY")

    def _bind_order_key(self, raw_key, aggregate_output: bool) -> OrderKey:
        target = raw_key.target
        if aggregate_output:
            resolved = self._resolve_output(target)
            return OrderKey(target=resolved.column, ascending=raw_key.ascending)
        if isinstance(target, RawAggregate):
            raise SqlError(
                "ORDER BY aggregate requires an aggregate SELECT list"
            )
        assert isinstance(target, RawColumn)
        if target.qualifier is None and target.name in self._alias_columns:
            return OrderKey(
                target=self._alias_columns[target.name],
                ascending=raw_key.ascending,
            )
        return OrderKey(target=self._resolve(target), ascending=raw_key.ascending)
