"""Vectorized evaluation of predicate expressions.

The evaluator operates over a *column provider*: a callable mapping
``(alias, column)`` to a numpy array.  All relations in scope must have
the same row count (the executor guarantees this by construction).
"""

from __future__ import annotations

import re
from typing import Callable

import numpy as np

from repro.errors import ExecutionError
from repro.expr.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Like,
    Literal,
    Not,
    Or,
)

ColumnProvider = Callable[[str, str], np.ndarray]


def like_to_regex(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern to an anchored regular expression.

    ``%`` matches any run of characters, ``_`` matches one character,
    everything else is literal.
    """
    parts: list[str] = []
    for character in pattern:
        if character == "%":
            parts.append(".*")
        elif character == "_":
            parts.append(".")
        else:
            parts.append(re.escape(character))
    return re.compile("^" + "".join(parts) + "$")


def _eval_value(expression: Expression, provider: ColumnProvider,
                num_rows: int) -> np.ndarray | object:
    """Evaluate a value expression: column arrays or scalar literals."""
    if isinstance(expression, ColumnRef):
        return provider(expression.alias, expression.column)
    if isinstance(expression, Literal):
        return expression.value
    raise ExecutionError(f"expected value expression, got {type(expression).__name__}")


def _compare(op: str, left, right) -> np.ndarray:
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _match_like(values: np.ndarray, pattern: str) -> np.ndarray:
    regex = like_to_regex(pattern)
    # Object arrays of Python strings: a list-comprehension match is the
    # practical vectorization here; LIKE predicates in the workloads
    # target dimension tables, which are small.
    return np.fromiter(
        (regex.match(value) is not None for value in values),
        dtype=bool,
        count=len(values),
    )


def evaluate_predicate(
    expression: Expression, provider: ColumnProvider, num_rows: int
) -> np.ndarray:
    """Evaluate a boolean expression to a boolean mask of ``num_rows``."""
    if isinstance(expression, Comparison):
        left = _eval_value(expression.left, provider, num_rows)
        right = _eval_value(expression.right, provider, num_rows)
        result = _compare(expression.op, left, right)
        if np.isscalar(result) or result.shape == ():
            return np.full(num_rows, bool(result))
        return np.asarray(result, dtype=bool)
    if isinstance(expression, Between):
        operand = _eval_value(expression.operand, provider, num_rows)
        low = _eval_value(expression.low, provider, num_rows)
        high = _eval_value(expression.high, provider, num_rows)
        return np.asarray((operand >= low) & (operand <= high), dtype=bool)
    if isinstance(expression, InList):
        operand = _eval_value(expression.operand, provider, num_rows)
        if not expression.values:
            return np.zeros(num_rows, dtype=bool)
        values = np.asarray(list(expression.values))
        if (
            isinstance(operand, np.ndarray)
            and operand.dtype.kind in "iufb"
            and values.dtype.kind in "iufb"
            and (
                operand.dtype.kind == "f"
                or np.result_type(operand.dtype, values.dtype).kind in "iub"
            )
        ):
            # One sorted-membership pass instead of a full-column
            # comparison per list element.  Guarded against integer
            # operands whose comparison with the value array would
            # promote to float64 (e.g. int64 vs uint64) — float
            # rounding near 2**63 would fabricate matches the exact
            # per-value loop never produces.
            return np.isin(operand, values)
        result = np.zeros(num_rows, dtype=bool)
        for value in expression.values:
            result |= np.asarray(operand == value, dtype=bool)
        return result
    if isinstance(expression, Like):
        operand = _eval_value(expression.operand, provider, num_rows)
        if not isinstance(operand, np.ndarray):
            raise ExecutionError("LIKE requires a column operand")
        return _match_like(operand, expression.pattern)
    if isinstance(expression, And):
        result = np.ones(num_rows, dtype=bool)
        for operand in expression.operands:
            result &= evaluate_predicate(operand, provider, num_rows)
        return result
    if isinstance(expression, Or):
        result = np.zeros(num_rows, dtype=bool)
        for operand in expression.operands:
            result |= evaluate_predicate(operand, provider, num_rows)
        return result
    if isinstance(expression, Not):
        return ~evaluate_predicate(expression.operand, provider, num_rows)
    raise ExecutionError(
        f"cannot evaluate {type(expression).__name__} as a predicate"
    )
