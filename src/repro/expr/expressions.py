"""Predicate expression trees.

Expressions reference columns as ``(alias, column)`` pairs, where the
alias names a relation instance in the query (so self-joins work).  The
workload queries only need conjunctions of simple predicates, but the
tree supports OR/NOT so tests can exercise the general evaluator.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

_COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")


class Expression:
    """Base class for scalar boolean/value expressions."""

    def children(self) -> tuple["Expression", ...]:
        return ()

    def walk(self) -> Iterator["Expression"]:
        yield self
        for child in self.children():
            yield from child.walk()


@dataclasses.dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a column of a relation instance: ``alias.column``."""

    alias: str
    column: str

    def __str__(self) -> str:
        return f"{self.alias}.{self.column}"


@dataclasses.dataclass(frozen=True)
class Parameter:
    """Placeholder for an extracted literal constant.

    Stored *as a value* inside :class:`Literal` / :class:`InList` (it is
    not an :class:`Expression` itself).  Query fingerprinting
    (:mod:`repro.sql.parameterize`) replaces constants with parameters
    so structurally identical queries share one cached plan; the service
    layer substitutes fresh constants back in before execution with
    :func:`substitute_parameters`.
    """

    index: int

    def __str__(self) -> str:
        return f"?{self.index}"


@dataclasses.dataclass(frozen=True)
class Literal(Expression):
    """A constant (int, float, or str)."""

    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclasses.dataclass(frozen=True)
class Comparison(Expression):
    """Binary comparison: ``left op right``."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclasses.dataclass(frozen=True)
class Between(Expression):
    """Range predicate: ``operand BETWEEN low AND high`` (inclusive)."""

    operand: Expression
    low: Expression
    high: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, self.low, self.high)

    def __str__(self) -> str:
        return f"{self.operand} BETWEEN {self.low} AND {self.high}"


@dataclasses.dataclass(frozen=True)
class InList(Expression):
    """Membership predicate: ``operand IN (v1, v2, ...)``."""

    operand: Expression
    values: tuple[object, ...]

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        rendered = ", ".join(str(Literal(v)) for v in self.values)
        return f"{self.operand} IN ({rendered})"


@dataclasses.dataclass(frozen=True)
class Like(Expression):
    """SQL LIKE over text columns: ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: str

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"{self.operand} LIKE '{self.pattern}'"


@dataclasses.dataclass(frozen=True)
class And(Expression):
    """Conjunction of two or more predicates."""

    operands: tuple[Expression, ...]

    def children(self) -> tuple[Expression, ...]:
        return self.operands

    def __str__(self) -> str:
        return " AND ".join(f"({operand})" for operand in self.operands)


@dataclasses.dataclass(frozen=True)
class Or(Expression):
    """Disjunction of two or more predicates."""

    operands: tuple[Expression, ...]

    def children(self) -> tuple[Expression, ...]:
        return self.operands

    def __str__(self) -> str:
        return " OR ".join(f"({operand})" for operand in self.operands)


@dataclasses.dataclass(frozen=True)
class Not(Expression):
    """Negation."""

    operand: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


# ----------------------------------------------------------------------
# Convenience constructors and analysis helpers
# ----------------------------------------------------------------------


def col(alias: str, column: str) -> ColumnRef:
    """Shorthand for :class:`ColumnRef`."""
    return ColumnRef(alias, column)


def lit(value: object) -> Literal:
    """Shorthand for :class:`Literal`."""
    return Literal(value)


def conjuncts(expression: Expression | None) -> list[Expression]:
    """Flatten nested ANDs into a list of conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, And):
        result: list[Expression] = []
        for operand in expression.operands:
            result.extend(conjuncts(operand))
        return result
    return [expression]


def combine_and(expressions: list[Expression]) -> Expression | None:
    """Combine a list of predicates into one AND (or None if empty)."""
    expressions = [e for e in expressions if e is not None]
    if not expressions:
        return None
    if len(expressions) == 1:
        return expressions[0]
    return And(tuple(expressions))


def substitute_parameters(
    expression: Expression, values: tuple[object, ...] | list[object]
) -> Expression:
    """Replace every :class:`Parameter` placeholder with its constant.

    Returns a new tree; the input is never mutated (cached plan
    templates are shared across threads).  Values without placeholders
    pass through unchanged, so the function is safe to call on
    non-templated predicates.
    """

    def value_of(value: object) -> object:
        if isinstance(value, Parameter):
            return values[value.index]
        return value

    def rebuild(node: Expression) -> Expression:
        if isinstance(node, Literal):
            return Literal(value_of(node.value))
        if isinstance(node, ColumnRef):
            return node
        if isinstance(node, Comparison):
            return Comparison(node.op, rebuild(node.left), rebuild(node.right))
        if isinstance(node, Between):
            return Between(
                rebuild(node.operand), rebuild(node.low), rebuild(node.high)
            )
        if isinstance(node, InList):
            return InList(
                rebuild(node.operand),
                tuple(value_of(value) for value in node.values),
            )
        if isinstance(node, Like):
            return Like(rebuild(node.operand), node.pattern)
        if isinstance(node, And):
            return And(tuple(rebuild(operand) for operand in node.operands))
        if isinstance(node, Or):
            return Or(tuple(rebuild(operand) for operand in node.operands))
        if isinstance(node, Not):
            return Not(rebuild(node.operand))
        raise TypeError(f"cannot substitute into {type(node).__name__}")

    return rebuild(expression)


def structural_key(
    expression: Expression | None, include_aliases: bool = True
) -> object:
    """Hashable nested-tuple encoding of an expression's structure.

    With ``include_aliases=False`` column references drop their relation
    alias, so ``c.c_region = 'ASIA'`` and ``cust.c_region = 'ASIA'``
    encode identically — the normalization the bitvector filter cache
    (:mod:`repro.filters.cache`) relies on to share filters across
    queries that alias the same table differently.
    """
    if expression is None:
        return None

    def encode(node: Expression) -> object:
        if isinstance(node, ColumnRef):
            if include_aliases:
                return ("col", node.alias, node.column)
            return ("col", node.column)
        if isinstance(node, Literal):
            return ("lit", node.value)
        if isinstance(node, Comparison):
            return ("cmp", node.op, encode(node.left), encode(node.right))
        if isinstance(node, Between):
            return (
                "between",
                encode(node.operand),
                encode(node.low),
                encode(node.high),
            )
        if isinstance(node, InList):
            return ("in", encode(node.operand), node.values)
        if isinstance(node, Like):
            return ("like", encode(node.operand), node.pattern)
        if isinstance(node, And):
            return ("and", tuple(encode(operand) for operand in node.operands))
        if isinstance(node, Or):
            return ("or", tuple(encode(operand) for operand in node.operands))
        if isinstance(node, Not):
            return ("not", encode(node.operand))
        raise TypeError(f"cannot encode {type(node).__name__}")

    return encode(expression)


def referenced_columns(expression: Expression) -> set[tuple[str, str]]:
    """All ``(alias, column)`` pairs referenced by an expression."""
    return {
        (node.alias, node.column)
        for node in expression.walk()
        if isinstance(node, ColumnRef)
    }


def referenced_aliases(expression: Expression) -> set[str]:
    """All relation aliases referenced by an expression."""
    return {alias for alias, _ in referenced_columns(expression)}
