"""Predicate expression trees.

Expressions reference columns as ``(alias, column)`` pairs, where the
alias names a relation instance in the query (so self-joins work).  The
workload queries only need conjunctions of simple predicates, but the
tree supports OR/NOT so tests can exercise the general evaluator.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

_COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")


class Expression:
    """Base class for scalar boolean/value expressions."""

    def children(self) -> tuple["Expression", ...]:
        return ()

    def walk(self) -> Iterator["Expression"]:
        yield self
        for child in self.children():
            yield from child.walk()


@dataclasses.dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a column of a relation instance: ``alias.column``."""

    alias: str
    column: str

    def __str__(self) -> str:
        return f"{self.alias}.{self.column}"


@dataclasses.dataclass(frozen=True)
class Literal(Expression):
    """A constant (int, float, or str)."""

    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclasses.dataclass(frozen=True)
class Comparison(Expression):
    """Binary comparison: ``left op right``."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclasses.dataclass(frozen=True)
class Between(Expression):
    """Range predicate: ``operand BETWEEN low AND high`` (inclusive)."""

    operand: Expression
    low: Expression
    high: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, self.low, self.high)

    def __str__(self) -> str:
        return f"{self.operand} BETWEEN {self.low} AND {self.high}"


@dataclasses.dataclass(frozen=True)
class InList(Expression):
    """Membership predicate: ``operand IN (v1, v2, ...)``."""

    operand: Expression
    values: tuple[object, ...]

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        rendered = ", ".join(str(Literal(v)) for v in self.values)
        return f"{self.operand} IN ({rendered})"


@dataclasses.dataclass(frozen=True)
class Like(Expression):
    """SQL LIKE over text columns: ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: str

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"{self.operand} LIKE '{self.pattern}'"


@dataclasses.dataclass(frozen=True)
class And(Expression):
    """Conjunction of two or more predicates."""

    operands: tuple[Expression, ...]

    def children(self) -> tuple[Expression, ...]:
        return self.operands

    def __str__(self) -> str:
        return " AND ".join(f"({operand})" for operand in self.operands)


@dataclasses.dataclass(frozen=True)
class Or(Expression):
    """Disjunction of two or more predicates."""

    operands: tuple[Expression, ...]

    def children(self) -> tuple[Expression, ...]:
        return self.operands

    def __str__(self) -> str:
        return " OR ".join(f"({operand})" for operand in self.operands)


@dataclasses.dataclass(frozen=True)
class Not(Expression):
    """Negation."""

    operand: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


# ----------------------------------------------------------------------
# Convenience constructors and analysis helpers
# ----------------------------------------------------------------------


def col(alias: str, column: str) -> ColumnRef:
    """Shorthand for :class:`ColumnRef`."""
    return ColumnRef(alias, column)


def lit(value: object) -> Literal:
    """Shorthand for :class:`Literal`."""
    return Literal(value)


def conjuncts(expression: Expression | None) -> list[Expression]:
    """Flatten nested ANDs into a list of conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, And):
        result: list[Expression] = []
        for operand in expression.operands:
            result.extend(conjuncts(operand))
        return result
    return [expression]


def combine_and(expressions: list[Expression]) -> Expression | None:
    """Combine a list of predicates into one AND (or None if empty)."""
    expressions = [e for e in expressions if e is not None]
    if not expressions:
        return None
    if len(expressions) == 1:
        return expressions[0]
    return And(tuple(expressions))


def referenced_columns(expression: Expression) -> set[tuple[str, str]]:
    """All ``(alias, column)`` pairs referenced by an expression."""
    return {
        (node.alias, node.column)
        for node in expression.walk()
        if isinstance(node, ColumnRef)
    }


def referenced_aliases(expression: Expression) -> set[str]:
    """All relation aliases referenced by an expression."""
    return {alias for alias, _ in referenced_columns(expression)}
