"""Scalar predicate expressions with vectorized evaluation."""

from repro.expr.expressions import (
    Expression,
    ColumnRef,
    Literal,
    Comparison,
    Between,
    InList,
    Like,
    And,
    Or,
    Not,
    Parameter,
    col,
    lit,
    conjuncts,
    referenced_columns,
    substitute_parameters,
    structural_key,
)
from repro.expr.eval import evaluate_predicate, like_to_regex

__all__ = [
    "Expression",
    "ColumnRef",
    "Literal",
    "Comparison",
    "Between",
    "InList",
    "Like",
    "And",
    "Or",
    "Not",
    "Parameter",
    "col",
    "lit",
    "conjuncts",
    "referenced_columns",
    "substitute_parameters",
    "structural_key",
    "evaluate_predicate",
    "like_to_regex",
]
