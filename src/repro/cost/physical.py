"""Expected CPU cost of a plan under the Section 6.3 model.

CPU is a weighted sum of per-tuple work: scanning, hash-table build,
probe, output materialization, bitvector creation and checks, and the
final aggregation.  The weights live in
:class:`repro.cost.constants.CostConstants` and are shared with the
executor's metered CPU, so estimated and measured costs are directly
comparable.
"""

from __future__ import annotations

from repro.cost.constants import CostConstants, DEFAULT_COSTS
from repro.cost.cout import CardinalityModel
from repro.errors import PlanError
from repro.plan.nodes import (
    AggregateNode,
    FilterNode,
    HashJoinNode,
    PlanNode,
    ScanNode,
)
from repro.stats.estimator import CardinalityEstimator


def estimated_cpu(
    plan: PlanNode,
    model: CardinalityModel,
    estimator: CardinalityEstimator,
    constants: CostConstants = DEFAULT_COSTS,
) -> float:
    """Expected CPU of ``plan`` given a cardinality model.

    Scan-level bitvector checks are charged at the scan's pre-filter
    cardinality (a slight over-estimate when several filters stack; the
    executor meters the exact diminishing sequence).
    """
    total = 0.0
    for node in plan.walk():
        if isinstance(node, ScanNode):
            raw_rows = estimator.table_rows(node.alias)
            after_predicate = estimator.base_cardinality(node.alias, node.predicate)
            total += raw_rows * constants.scan
            total += (
                after_predicate
                * constants.filter_check
                * len(node.applied_bitvectors)
            )
        elif isinstance(node, HashJoinNode):
            build_rows = model.rows_out(node.build)
            probe_rows = model.rows_out(node.probe)
            output_rows = model.rows_out(node)
            total += build_rows * constants.build
            if node.creates_bitvector:
                total += build_rows * constants.filter_insert
            total += probe_rows * constants.probe
            total += output_rows * constants.output
        elif isinstance(node, FilterNode):
            input_rows = model.rows_out(node.child)
            total += (
                input_rows * constants.filter_check * len(node.applied_bitvectors)
            )
        elif isinstance(node, AggregateNode):
            total += model.rows_out(node.child) * constants.aggregate
        else:
            raise PlanError(f"cannot cost node {node.label}")
    return total
