"""True-cardinality cost model: execute the plan, read off exact sizes.

The paper's theorems (4.1-5.4) are statements about ``Cout`` computed
over *actual* cardinalities with no-false-positive bitvector filters.
Validating them therefore requires exact intermediate sizes, which we
obtain by running the real executor with :class:`ExactFilter` and using
the recorded per-node output counts.
"""

from __future__ import annotations

from repro.engine.executor import Executor
from repro.engine.metrics import ExecutionMetrics
from repro.plan.nodes import PlanNode
from repro.storage.database import Database


class TrueCardModel:
    """Cardinality model backed by an actual execution's metrics."""

    def __init__(self, metrics: ExecutionMetrics) -> None:
        self._metrics = metrics

    def rows_out(self, node: PlanNode) -> float:
        return float(self._metrics.rows_out(node.node_id))


def true_cout(plan: PlanNode, database: Database,
              filter_kind: str = "exact") -> float:
    """Execute ``plan`` and return its exact ``Cout``.

    Uses exact bitvector filters by default so the no-false-positive
    assumption of the analysis holds.
    """
    from repro.cost.cout import cout  # local import to avoid cycles

    executor = Executor(database, filter_kind=filter_kind)
    result = executor.execute(plan)
    return cout(plan, TrueCardModel(result.metrics))
