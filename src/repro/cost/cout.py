"""The ``Cout`` cost function (paper Section 3.3) over physical plans.

``Cout`` sums intermediate result sizes::

    Cout(T) = |T|                            if T is a base table
    Cout(T) = |T| + Cout(T1) + Cout(T2)      if T = T1 join T2

where ``|T|`` already reflects bitvector filters — both at base tables
(scans reduced by pushed-down filters) and at join results (residual
filters).  The function is parameterized by a
:class:`CardinalityModel`, so the same code scores plans with estimated
cardinalities (planning) or true cardinalities (theorem validation).
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import PlanError
from repro.plan.nodes import (
    AggregateNode,
    BitvectorDef,
    FilterNode,
    HashJoinNode,
    PlanNode,
    ScanNode,
    TopKNode,
)
from repro.stats.estimator import CardinalityEstimator


class CardinalityModel(Protocol):
    """Anything that can report the output cardinality of a plan node."""

    def rows_out(self, node: PlanNode) -> float:
        """Output rows of ``node`` (after its applied bitvector filters)."""
        ...


def cout(plan: PlanNode, model: CardinalityModel) -> float:
    """Compute ``Cout`` of a plan under a cardinality model.

    A residual :class:`FilterNode` and the join it wraps count as one
    intermediate result — the join's size *after* the residual filters,
    matching the paper's convention that ``|T|`` reflects applied
    bitvector filters.  The final aggregate is not an intermediate
    result and contributes nothing.
    """
    if isinstance(plan, (AggregateNode, TopKNode)):
        return cout(plan.child, model)
    if isinstance(plan, FilterNode):
        inner = plan.child
        if not isinstance(inner, HashJoinNode):
            raise PlanError("residual filter must wrap a hash join")
        return (
            model.rows_out(plan)
            + cout(inner.build, model)
            + cout(inner.probe, model)
        )
    if isinstance(plan, HashJoinNode):
        return (
            model.rows_out(plan)
            + cout(plan.build, model)
            + cout(plan.probe, model)
        )
    if isinstance(plan, ScanNode):
        return model.rows_out(plan)
    raise PlanError(f"cannot cost node {plan.label}")


class EstimatedCardModel:
    """Cardinality model backed by table statistics.

    The estimation strategy is the one the paper's host optimizer uses:
    bitvector filters behave like semi-joins, with distinct-value
    containment deciding survival fractions:

    * a scan's output is its filtered base cardinality times the
      survival fraction of each pushed-down bitvector;
    * a hash join whose own bitvector reached its probe subtree outputs
      ``probe_rows x avg_matches_per_surviving_tuple`` (for a key join
      into the build side this is exactly ``probe_rows``);
    * a hash join without a bitvector uses the standard
      ``|B| x |P| / max(ndv)`` formula.
    """

    def __init__(
        self, estimator: CardinalityEstimator, bitvector_aware: bool = True
    ) -> None:
        """``bitvector_aware=False`` reproduces a blind optimizer's view:
        pushed-down filters are ignored and joins always use the
        standard ``|B| x |P| / max(ndv)`` formula — the costing mode of
        the paper's baseline (its snowflake heuristics "neglect the
        impact of bitvector filters")."""
        self._estimator = estimator
        self._aware = bitvector_aware
        self._cache: dict[int, float] = {}

    # ------------------------------------------------------------------
    # CardinalityModel interface
    # ------------------------------------------------------------------

    def rows_out(self, node: PlanNode) -> float:
        cached = self._cache.get(node.node_id)
        if cached is not None:
            return cached
        rows = self._compute(node)
        self._cache[node.node_id] = rows
        return rows

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _compute(self, node: PlanNode) -> float:
        if isinstance(node, ScanNode):
            rows = self._estimator.base_cardinality(node.alias, node.predicate)
            if self._aware:
                for bitvector in node.applied_bitvectors:
                    rows *= self._survival(bitvector, probe_rows=rows)
            return max(1.0, rows)
        if isinstance(node, FilterNode):
            rows = self.rows_out(node.child)
            if self._aware:
                for bitvector in node.applied_bitvectors:
                    rows *= self._survival(bitvector, probe_rows=rows)
            return max(1.0, rows)
        if isinstance(node, HashJoinNode):
            return self._join_rows(node)
        if isinstance(node, AggregateNode):
            return self.rows_out(node.child)
        if isinstance(node, TopKNode):
            rows = self.rows_out(node.child)
            if node.limit is not None:
                rows = min(rows, float(node.limit))
            return max(1.0, rows)
        raise PlanError(f"cannot estimate node {node.label}")

    def _join_rows(self, node: HashJoinNode) -> float:
        build_rows = self.rows_out(node.build)
        probe_rows = self.rows_out(node.probe)
        if self._aware and node.creates_bitvector:
            # The probe subtree already reflects this join's semi-join
            # reduction (Algorithm 1 always lands the filter inside the
            # probe side).  Each surviving probe tuple matches
            # |B| / ndv(build key) build tuples on average, at least 1.
            build_ndv = self._build_key_ndv(node, build_rows)
            matches_per_tuple = max(1.0, build_rows / max(build_ndv, 1.0))
            return max(1.0, probe_rows * matches_per_tuple)
        selectivity = 1.0
        for (build_alias, build_col), (probe_alias, probe_col) in zip(
            node.build_keys, node.probe_keys
        ):
            ndv_build = self._estimator.column_distinct(build_alias, build_col)
            ndv_probe = self._estimator.column_distinct(probe_alias, probe_col)
            selectivity *= 1.0 / max(ndv_build, ndv_probe, 1.0)
        return max(1.0, build_rows * probe_rows * selectivity)

    def _build_key_ndv(self, node: HashJoinNode, build_rows: float) -> float:
        ndv = 1.0
        for build_alias, build_col in node.build_keys:
            ndv *= self._estimator.column_distinct(build_alias, build_col)
        return min(ndv, max(build_rows, 1.0))

    def _survival(self, bitvector: BitvectorDef, probe_rows: float) -> float:
        """Fraction of probe tuples surviving ``bitvector``.

        Distinct-value containment: the build side retains
        ``min(raw ndv, build subplan rows)`` distinct keys; a probe
        tuple survives with probability ``build ndv / probe ndv``.
        """
        build_rows = self.rows_out(bitvector.source_join.build)
        survival = 1.0
        for (build_alias, build_col), (probe_alias, probe_col) in zip(
            bitvector.build_keys, bitvector.probe_keys
        ):
            ndv_build_raw = self._estimator.column_distinct(build_alias, build_col)
            ndv_build = min(ndv_build_raw, max(build_rows, 1.0))
            ndv_probe_raw = self._estimator.column_distinct(probe_alias, probe_col)
            ndv_probe = min(ndv_probe_raw, max(probe_rows, 1.0))
            survival *= min(1.0, ndv_build / max(ndv_probe, 1.0))
        return max(1e-9, survival)
