"""Cost models.

* :mod:`repro.cost.constants` — per-tuple CPU weights shared by the
  executor's metered CPU and the optimizer's physical cost estimates.
* :mod:`repro.cost.cout` — the paper's ``Cout`` (sum of intermediate
  result sizes, Section 3.3) over a physical plan, parameterized by a
  cardinality model (estimated or true).
* :mod:`repro.cost.truecard` — exact cardinalities obtained by actually
  executing the plan with exact filters; used to validate the theorems.
* :mod:`repro.cost.physical` — expected CPU of a plan under the
  Section 6.3 cost model.
"""

from repro.cost.constants import CostConstants, DEFAULT_COSTS
from repro.cost.cout import CardinalityModel, EstimatedCardModel, cout
from repro.cost.physical import estimated_cpu

__all__ = [
    "CostConstants",
    "DEFAULT_COSTS",
    "CardinalityModel",
    "EstimatedCardModel",
    "cout",
    "estimated_cpu",
]
