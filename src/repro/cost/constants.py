"""Per-tuple CPU cost constants.

The paper's Section 6.3 models a hash join's CPU as build + probe +
output components, plus filter creation and per-tuple filter checks, and
derives the elimination threshold ``lambda_thresh`` from the ratio of
the filter-check cost ``Cf`` to the probe cost ``Cp``.

A note on the paper's formula: the text defines lambda as the fraction
of tuples the filter *eliminates* but then writes the surviving probe
cost as ``gp(lambda |S|)``; the two cannot both hold.  We implement the
physically consistent version: a bitvector filter pays
``Cf`` per probe-side tuple checked (plus a small creation cost per
build tuple) and saves ``Cp`` (and downstream work) for every tuple it
eliminates, so it wins when the elimination fraction exceeds roughly
``Cf / Cp``.  The constants below put that break-even near 10%
elimination — the crossover the paper measures in Figure 7 — and the
default planning threshold at 5%, the value the paper deploys.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class CostConstants:
    """Per-tuple CPU weights (arbitrary units; only ratios matter)."""

    scan: float = 0.2           # read + local predicate evaluation
    build: float = 1.5          # insert one tuple into a hash table
    probe: float = 1.0          # probe the hash table with one tuple
    output: float = 0.5         # materialize one join output tuple
    filter_check: float = 0.09  # test one tuple against a bitvector (Cf)
    filter_insert: float = 0.25 # add one build tuple to a bitvector
    aggregate: float = 0.3      # fold one tuple into the aggregate
    topk: float = 0.4           # rank one tuple in an ORDER BY ... LIMIT sort

    @property
    def break_even_elimination(self) -> float:
        """Elimination fraction where a filter's check cost is repaid by
        probe savings alone (ignoring downstream cascades): Cf / Cp."""
        return self.filter_check / self.probe


DEFAULT_COSTS = CostConstants()

# The deployed threshold from the paper (Section 7.3): create a
# bitvector only if it is estimated to eliminate at least this fraction
# of probe-side tuples.  "Empirically, we find 5% to be a good
# threshold."
DEFAULT_LAMBDA_THRESH = 0.05
