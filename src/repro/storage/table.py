"""Columnar table: named numpy arrays of equal length."""

from __future__ import annotations

import numpy as np

from repro.errors import DataError, SchemaError
from repro.storage.partition import DEFAULT_MORSEL_ROWS, Morsel, partition_table
from repro.storage.schema import ColumnDef, TableSchema
from repro.storage.types import ColumnType, coerce_to_type, infer_column_type
from repro.util.keycodes import single_table_codes


class Table:
    """An immutable in-memory columnar table.

    Columns are numpy arrays; all columns share the same length.  The
    table knows its :class:`~repro.storage.schema.TableSchema` so key
    lookups and type checks are cheap.

    Construction validates lengths and coerces each column to the
    storage dtype of its declared type.
    """

    def __init__(self, schema: TableSchema, columns: dict[str, np.ndarray]) -> None:
        missing = set(schema.column_names) - set(columns)
        extra = set(columns) - set(schema.column_names)
        if missing:
            raise DataError(f"table {schema.name!r}: missing columns {sorted(missing)}")
        if extra:
            raise DataError(f"table {schema.name!r}: unexpected columns {sorted(extra)}")

        self.schema = schema
        self._columns: dict[str, np.ndarray] = {}
        num_rows: int | None = None
        for column_def in schema.columns:
            values = np.asarray(columns[column_def.name])
            if values.ndim != 1:
                raise DataError(
                    f"column {column_def.name!r} of {schema.name!r} must be 1-D"
                )
            if num_rows is None:
                num_rows = len(values)
            elif len(values) != num_rows:
                raise DataError(
                    f"ragged columns in table {schema.name!r}: "
                    f"{column_def.name!r} has {len(values)} rows, expected {num_rows}"
                )
            self._columns[column_def.name] = coerce_to_type(
                values, column_def.column_type
            )
        self._num_rows = num_rows or 0
        # Partitioning is logical (row ranges over immutable arrays), so
        # morsel lists are tiny and cached per requested shape.
        self._partitions: dict[tuple[int, int], tuple[Morsel, ...]] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        name: str,
        columns: dict[str, np.ndarray],
        key: tuple[str, ...] = (),
    ) -> "Table":
        """Build a table inferring column types from the arrays."""
        defs = tuple(
            ColumnDef(col_name, infer_column_type(np.asarray(values)))
            for col_name, values in columns.items()
        )
        schema = TableSchema(name=name, columns=defs, key=key)
        return cls(schema, columns)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> tuple[str, ...]:
        return self.schema.column_names

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r} in table {self.name!r}"
            ) from None

    def column_type(self, name: str) -> ColumnType:
        return self.schema.column_type(name)

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------

    def morsels(
        self,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
        min_morsels: int = 1,
    ) -> tuple[Morsel, ...]:
        """Row-range morsels covering this table.

        Purely logical: each :class:`~repro.storage.partition.Morsel`
        is a ``[start, stop)`` range over the table's immutable column
        arrays.  Scans slice both the base columns and any
        table-resident dictionary codes by the same range, so every
        partition reuses the shared per-column artifacts instead of
        rebuilding them.  The morsel list for a given shape is computed
        once and cached (the table is immutable).
        """
        key = (int(morsel_rows), int(min_morsels))
        cached = self._partitions.get(key)
        if cached is None:
            cached = partition_table(
                self.name, self._num_rows, morsel_rows, min_morsels
            )
            self._partitions[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Row-set operations (return new tables)
    # ------------------------------------------------------------------

    def take(self, indices: np.ndarray) -> "Table":
        """Return a new table with rows gathered by ``indices``."""
        return Table(
            self.schema,
            {name: values[indices] for name, values in self._columns.items()},
        )

    def filter(self, mask: np.ndarray) -> "Table":
        """Return a new table keeping rows where ``mask`` is True."""
        if len(mask) != self._num_rows:
            raise DataError(
                f"mask length {len(mask)} != row count {self._num_rows}"
            )
        return self.take(np.flatnonzero(mask))

    def head(self, count: int) -> "Table":
        """Return the first ``count`` rows (for debugging / examples)."""
        return self.take(np.arange(min(count, self._num_rows)))

    # ------------------------------------------------------------------
    # Integrity checks
    # ------------------------------------------------------------------

    def validate_key(self) -> None:
        """Raise :class:`DataError` if declared key values are not unique."""
        if not self.schema.key or self._num_rows == 0:
            return
        codes = single_table_codes([self.column(c) for c in self.schema.key])
        if len(np.unique(codes)) != self._num_rows:
            raise DataError(
                f"table {self.name!r}: duplicate values in key {self.schema.key}"
            )

    def rows(self, limit: int | None = None) -> list[tuple]:
        """Materialize rows as tuples (testing/debugging helper)."""
        stop = self._num_rows if limit is None else min(limit, self._num_rows)
        names = self.column_names
        return [
            tuple(self._columns[name][i] for name in names) for i in range(stop)
        ]

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={self._num_rows}, "
            f"columns={list(self.column_names)})"
        )
