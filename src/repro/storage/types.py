"""Column type model.

Types are deliberately small: decision-support benchmark schemas are
dominated by integer surrogate keys, numeric measures, dates (stored as
integer day numbers, as TPC-DS does with ``d_date_sk``) and short
strings used in predicates.
"""

from __future__ import annotations

import enum

import numpy as np


class ColumnType(enum.Enum):
    """Logical column types supported by the storage engine."""

    INT64 = "int64"
    FLOAT64 = "float64"
    TEXT = "text"

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used to store this logical type."""
        if self is ColumnType.INT64:
            return np.dtype(np.int64)
        if self is ColumnType.FLOAT64:
            return np.dtype(np.float64)
        return np.dtype(object)

    @property
    def is_numeric(self) -> bool:
        return self in (ColumnType.INT64, ColumnType.FLOAT64)


def infer_column_type(values: np.ndarray) -> ColumnType:
    """Infer the logical type of an array of values."""
    kind = values.dtype.kind
    if kind in ("i", "u", "b"):
        return ColumnType.INT64
    if kind == "f":
        return ColumnType.FLOAT64
    if kind in ("U", "S", "O"):
        return ColumnType.TEXT
    raise TypeError(f"unsupported dtype for storage: {values.dtype}")


def coerce_to_type(values: np.ndarray, column_type: ColumnType) -> np.ndarray:
    """Coerce ``values`` to the storage dtype of ``column_type``.

    Text columns are stored as object arrays of Python strings so that
    variable-length values do not pay fixed-width ``<U`` storage costs.
    """
    if column_type is ColumnType.TEXT:
        if values.dtype == object:
            return values
        return values.astype(object)
    return values.astype(column_type.numpy_dtype, copy=False)
