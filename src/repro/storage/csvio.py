"""CSV import/export for tables.

Round-tripping through CSV lets examples persist generated workloads and
lets users load their own data into the engine.
"""

from __future__ import annotations

import csv
import pathlib

import numpy as np

from repro.errors import DataError
from repro.storage.schema import TableSchema
from repro.storage.table import Table
from repro.storage.types import ColumnType


def table_to_csv(table: Table, path: str | pathlib.Path) -> None:
    """Write ``table`` to ``path`` with a header row."""
    path = pathlib.Path(path)
    names = table.column_names
    columns = [table.column(n) for n in names]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for i in range(table.num_rows):
            writer.writerow([columns[j][i] for j in range(len(names))])


def table_from_csv(schema: TableSchema, path: str | pathlib.Path) -> Table:
    """Read a table matching ``schema`` from a CSV file with header."""
    path = pathlib.Path(path)
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"empty CSV file: {path}") from None
        if tuple(header) != schema.column_names:
            raise DataError(
                f"CSV header {header} does not match schema "
                f"{list(schema.column_names)}"
            )
        raw_rows = list(reader)

    columns: dict[str, np.ndarray] = {}
    for index, column_def in enumerate(schema.columns):
        raw = [row[index] for row in raw_rows]
        if column_def.column_type is ColumnType.INT64:
            columns[column_def.name] = np.array([int(v) for v in raw], dtype=np.int64)
        elif column_def.column_type is ColumnType.FLOAT64:
            columns[column_def.name] = np.array(
                [float(v) for v in raw], dtype=np.float64
            )
        else:
            columns[column_def.name] = np.array(raw, dtype=object)
    if not raw_rows:
        for column_def in schema.columns:
            columns[column_def.name] = np.array(
                [], dtype=column_def.column_type.numpy_dtype
            )
    return Table(schema, columns)
