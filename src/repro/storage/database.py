"""Database: catalog + table data + (lazily computed) statistics."""

from __future__ import annotations

import threading

from repro.errors import DataError, SchemaError
from repro.storage.catalog import Catalog
from repro.storage.partition import DEFAULT_MORSEL_ROWS, Morsel
from repro.storage.schema import ForeignKey
from repro.storage.table import Table
from repro.storage.zonemaps import ColumnZoneMap
from repro.util.keycodes import ColumnDictionary


class Database:
    """A named collection of tables with a shared catalog.

    This is the single object the SQL binder, optimizer, and executor
    all take as their view of the world.
    """

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self.catalog = Catalog()
        self._tables: dict[str, Table] = {}
        self._stats_cache: dict[str, object] = {}
        self._schema_version = 0
        # Table-resident dictionary indexes: one cached factorization
        # per (table, column), built on first use.  Tables are
        # immutable and never replaced in-place, so entries only leave
        # via explicit invalidate_dictionaries() (see dictionary()).
        self._dictionaries: dict[tuple[str, str], ColumnDictionary] = {}
        self._dictionary_lock = threading.Lock()
        # Single-flight coordination: one Event per key currently being
        # factorized, so concurrent requesters wait instead of building
        # duplicates (see dictionary()).
        self._dictionary_pending: dict[tuple[str, str], threading.Event] = {}
        self.dictionary_builds = 0
        self.dictionary_lookups = 0
        # Zone maps: per-(table, column, morsel shape) min/max synopses
        # (see repro.storage.zonemaps), built lazily with the same
        # single-flight discipline as dictionaries and invalidated
        # alongside them — both are derived column artifacts.
        self._zone_maps: dict[tuple[str, str, int, int], ColumnZoneMap] = {}
        self._zone_map_lock = threading.Lock()
        self._zone_map_pending: dict[
            tuple[str, str, int, int], threading.Event
        ] = {}
        self.zone_map_builds = 0
        self.zone_map_lookups = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def add_table(self, table: Table, validate_key: bool = True) -> None:
        self.catalog.add_schema(table.schema)
        if validate_key:
            table.validate_key()
        self._tables[table.name] = table
        self._schema_version += 1

    def add_foreign_key(self, foreign_key: ForeignKey) -> None:
        self.catalog.add_foreign_key(foreign_key)
        self._schema_version += 1

    @property
    def schema_version(self) -> int:
        """Monotonic counter bumped on every catalog change.

        Consumers that cache artifacts derived from the catalog (plans,
        bitvector filters — see :class:`repro.service.QueryService`)
        compare versions to decide when to invalidate.
        """
        return self._schema_version

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def total_rows(self) -> int:
        return sum(t.num_rows for t in self._tables.values())

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------

    def morsels(
        self,
        table_name: str,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
        min_morsels: int = 1,
    ) -> tuple[Morsel, ...]:
        """Row-range morsels of one table (see :meth:`Table.morsels`).

        The database is the object the executor already holds, so this
        is the entry point parallel scans partition through.
        """
        return self.table(table_name).morsels(morsel_rows, min_morsels)

    # ------------------------------------------------------------------
    # Dictionary indexes
    # ------------------------------------------------------------------

    def dictionary(self, table_name: str, column_name: str) -> ColumnDictionary:
        """Cached factorization of one stored column.

        The first call factorizes the column (one ``np.unique`` pass);
        every later call — any join, bitvector probe, or group-by that
        touches the column, from any thread — reuses the sorted distinct
        values and per-row codes.  Tables are immutable and cannot be
        re-registered (the catalog rejects duplicates), so entries never
        go stale in-place; a data reload that swaps databases or tables
        must call :meth:`invalidate_dictionaries`, mirroring
        :meth:`invalidate_stats`.

        Construction is *single-flight*: factorization runs outside the
        lock (it is the slow part), but concurrent requesters of the
        same key wait on the in-flight build instead of duplicating it,
        so ``dictionary_builds`` counts exactly one build per resident
        entry — the invariant the morsel workers rely on when they all
        hit one fact-table column at once.
        """
        key = (table_name, column_name)
        with self._dictionary_lock:
            self.dictionary_lookups += 1
        while True:
            with self._dictionary_lock:
                cached = self._dictionaries.get(key)
                if cached is not None:
                    return cached
                pending = self._dictionary_pending.get(key)
                if pending is None:
                    pending = threading.Event()
                    self._dictionary_pending[key] = pending
                    is_builder = True
                else:
                    is_builder = False
            if not is_builder:
                # Another thread owns the build; wait, then re-check the
                # cache (looping covers an invalidation racing the
                # publish, in which case this thread becomes the
                # builder on the next pass).
                pending.wait()
                continue
            try:
                built = ColumnDictionary.build(
                    self.table(table_name).column(column_name)
                )
            except BaseException:
                with self._dictionary_lock:
                    self._dictionary_pending.pop(key, None)
                pending.set()
                raise
            with self._dictionary_lock:
                self._dictionaries[key] = built
                self.dictionary_builds += 1
                self._dictionary_pending.pop(key, None)
            pending.set()
            return built

    def dictionary_cache_info(self) -> dict[str, int]:
        """Counters for observability (explain output, tests)."""
        with self._dictionary_lock:
            return {
                "entries": len(self._dictionaries),
                "builds": self.dictionary_builds,
                "lookups": self.dictionary_lookups,
            }

    def invalidate_dictionaries(self, table_name: str | None = None) -> None:
        """Drop cached dictionaries (and the zone maps derived from the
        same columns — both synopses share one invalidation lifecycle)."""
        with self._dictionary_lock:
            if table_name is None:
                self._dictionaries.clear()
            else:
                for key in [k for k in self._dictionaries if k[0] == table_name]:
                    del self._dictionaries[key]
        self.invalidate_zone_maps(table_name)

    # ------------------------------------------------------------------
    # Zone maps
    # ------------------------------------------------------------------

    def zone_map(
        self,
        table_name: str,
        column_name: str,
        morsel_rows: int = DEFAULT_MORSEL_ROWS,
        min_morsels: int = 1,
    ) -> ColumnZoneMap:
        """Cached per-morsel min/max synopsis of one stored column.

        Keyed by the *morsel shape* ``(morsel_rows, min_morsels)`` so
        the bounds always describe exactly the row ranges the executor
        dispatches (see :meth:`Table.morsels` — the morsel list for a
        shape is itself cached and deterministic).  Construction is
        single-flight, mirroring :meth:`dictionary`: one vectorized
        pass per resident entry no matter how many morsel workers ask
        at once.  Entries leave only via
        :meth:`invalidate_zone_maps` / :meth:`invalidate_dictionaries`.
        """
        key = (table_name, column_name, int(morsel_rows), int(min_morsels))
        with self._zone_map_lock:
            self.zone_map_lookups += 1
        while True:
            with self._zone_map_lock:
                cached = self._zone_maps.get(key)
                if cached is not None:
                    return cached
                pending = self._zone_map_pending.get(key)
                if pending is None:
                    pending = threading.Event()
                    self._zone_map_pending[key] = pending
                    is_builder = True
                else:
                    is_builder = False
            if not is_builder:
                # Wait for the in-flight build, then re-check (covers an
                # invalidation racing the publish — the waiter becomes
                # the builder on its next pass).
                pending.wait()
                continue
            try:
                table = self.table(table_name)
                ranges = [
                    (morsel.start, morsel.stop)
                    for morsel in table.morsels(
                        int(morsel_rows), int(min_morsels)
                    )
                ]
                built = ColumnZoneMap.build(table.column(column_name), ranges)
            except BaseException:
                with self._zone_map_lock:
                    self._zone_map_pending.pop(key, None)
                pending.set()
                raise
            with self._zone_map_lock:
                self._zone_maps[key] = built
                self.zone_map_builds += 1
                self._zone_map_pending.pop(key, None)
            pending.set()
            return built

    def zone_map_if_built(
        self,
        table_name: str,
        column_name: str,
        morsel_rows: int | None = None,
        min_morsels: int | None = None,
    ) -> ColumnZoneMap | None:
        """An already-resident zone map for the column, or ``None``.

        A *peek*: never triggers construction, so planning-time
        consumers (the cardinality estimator, cost-based filter
        selection) can exploit synopses the executor has built without
        ever paying an O(rows) pass inside the optimizer.  Each shape
        argument given constrains the match (a partially specified
        shape never falls back to a differently-shaped entry — bounds
        of mismatched shapes do not align); among the remaining
        candidates the smallest shape key wins (deterministic across
        calls).
        """
        with self._zone_map_lock:
            candidates = sorted(
                key
                for key in self._zone_maps
                if key[0] == table_name
                and key[1] == column_name
                and (morsel_rows is None or key[2] == int(morsel_rows))
                and (min_morsels is None or key[3] == int(min_morsels))
            )
            if not candidates:
                return None
            return self._zone_maps[candidates[0]]

    def zone_map_cache_info(self) -> dict[str, int]:
        """Counters for observability (explain output, tests)."""
        with self._zone_map_lock:
            return {
                "entries": len(self._zone_maps),
                "builds": self.zone_map_builds,
                "lookups": self.zone_map_lookups,
            }

    def invalidate_zone_maps(self, table_name: str | None = None) -> None:
        with self._zone_map_lock:
            if table_name is None:
                self._zone_maps.clear()
            else:
                for key in [k for k in self._zone_maps if k[0] == table_name]:
                    del self._zone_maps[key]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self, table_name: str):
        """Return (building on first use) statistics for a table.

        Import is deferred to avoid a circular dependency between the
        storage and stats packages.
        """
        if table_name not in self._stats_cache:
            from repro.stats.statistics import TableStatistics

            self._stats_cache[table_name] = TableStatistics.collect(
                self.table(table_name)
            )
        return self._stats_cache[table_name]

    def invalidate_stats(self, table_name: str | None = None) -> None:
        if table_name is None:
            self._stats_cache.clear()
        else:
            self._stats_cache.pop(table_name, None)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def validate_foreign_keys(self) -> None:
        """Check that every FK value appears in the referenced key.

        Raises :class:`DataError` on the first violation found.  Used by
        workload-generator tests to guarantee referential integrity.
        """
        import numpy as np

        from repro.util.keycodes import joint_codes

        for fk in self.catalog.foreign_keys:
            child = self.table(fk.child_table)
            parent = self.table(fk.parent_table)
            if child.num_rows == 0:
                continue
            child_cols = [child.column(c) for c in fk.child_columns]
            parent_cols = [parent.column(c) for c in fk.parent_columns]
            child_codes, parent_codes = joint_codes(child_cols, parent_cols)
            missing = ~np.isin(child_codes, parent_codes)
            if missing.any():
                raise DataError(
                    f"foreign key violation: {fk.child_table}{fk.child_columns} "
                    f"-> {fk.parent_table}{fk.parent_columns}: "
                    f"{int(missing.sum())} dangling rows"
                )

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={len(self._tables)})"
