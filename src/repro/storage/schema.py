"""Schema objects: column definitions, table schemas, foreign keys.

The optimizer's star/snowflake analysis (paper Sections 4-6) hinges on
knowing which joins are *key joins*: ``R1 -> R2`` holds when the join
columns form a unique key of ``R2`` (Table 1 in the paper).  Schemas
therefore carry unique-key declarations, and the catalog carries foreign
keys so PKFK joins can be recognized without guessing.
"""

from __future__ import annotations

import dataclasses

from repro.errors import SchemaError
from repro.storage.types import ColumnType


@dataclasses.dataclass(frozen=True)
class ColumnDef:
    """A named, typed column."""

    name: str
    column_type: ColumnType

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")


@dataclasses.dataclass(frozen=True)
class TableSchema:
    """Schema of one table: ordered columns plus an optional unique key.

    ``key`` lists the columns of the table's primary (unique) key; an
    empty tuple means the table has no declared key.  Multi-column keys
    are supported.
    """

    name: str
    columns: tuple[ColumnDef, ...]
    key: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid table name: {self.name!r}")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        for key_col in self.key:
            if key_col not in names:
                raise SchemaError(
                    f"key column {key_col!r} not in table {self.name!r}"
                )

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def column_type(self, name: str) -> ColumnType:
        for column in self.columns:
            if column.name == name:
                return column.column_type
        raise SchemaError(f"unknown column {name!r} in table {self.name!r}")

    def is_key(self, columns: tuple[str, ...]) -> bool:
        """True when ``columns`` is a superset of the declared unique key.

        If the join columns include the full unique key, the join output
        is still at most one row per probe tuple, so key-join reasoning
        (the paper's ``R1 -> R2``) applies.
        """
        if not self.key:
            return False
        return set(self.key).issubset(set(columns))


@dataclasses.dataclass(frozen=True)
class ForeignKey:
    """A declared foreign key ``child(child_columns) -> parent(parent_columns)``.

    ``parent_columns`` must be the parent's unique key for the reference
    to constitute a PKFK relationship.
    """

    child_table: str
    child_columns: tuple[str, ...]
    parent_table: str
    parent_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.child_columns) != len(self.parent_columns):
            raise SchemaError(
                "foreign key column count mismatch: "
                f"{self.child_columns} vs {self.parent_columns}"
            )
        if not self.child_columns:
            raise SchemaError("foreign key requires at least one column")
