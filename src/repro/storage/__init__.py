"""In-memory columnar storage engine.

The storage substrate the paper relies on (SQL Server's column stores /
B+-trees) is replaced by a minimal but real columnar engine: tables hold
``numpy`` arrays per column, schemas declare unique keys and foreign
keys, and a catalog ties tables together so the optimizer can detect
PKFK joins.
"""

from repro.storage.types import ColumnType, infer_column_type
from repro.storage.partition import (
    DEFAULT_MORSEL_ROWS,
    Morsel,
    morsel_ranges,
    partition_table,
)
from repro.storage.table import Table
from repro.storage.zonemaps import ColumnZoneMap, MorselBounds
from repro.storage.schema import ColumnDef, TableSchema, ForeignKey
from repro.storage.catalog import Catalog
from repro.storage.database import Database
from repro.storage.csvio import table_to_csv, table_from_csv

__all__ = [
    "ColumnType",
    "infer_column_type",
    "DEFAULT_MORSEL_ROWS",
    "Morsel",
    "morsel_ranges",
    "partition_table",
    "Table",
    "ColumnZoneMap",
    "MorselBounds",
    "ColumnDef",
    "TableSchema",
    "ForeignKey",
    "Catalog",
    "Database",
    "table_to_csv",
    "table_from_csv",
]
