"""Horizontal partitioning: row-range morsels over stored tables.

A *morsel* is a contiguous row range of one table — the scheduling unit
of the parallel executor (Leis et al., "Morsel-Driven Parallelism",
SIGMOD 2014).  Partitioning is purely logical: no data moves, a morsel
is just ``[start, stop)`` over the table's immutable column arrays, so
every derived artifact (dictionary codes, selection vectors, zone-map
style statistics) is shared by slicing rather than rebuilt per
partition.

:func:`morsel_ranges` is the one splitting policy, shared by
:meth:`repro.storage.table.Table.morsels` (base-table scans) and the
executor's intermediate-relation splits, so tuning the morsel shape
happens in one place.
"""

from __future__ import annotations

import dataclasses

# Target rows per morsel when the caller does not override it.  Large
# enough that per-morsel Python dispatch is noise next to the numpy
# kernels run on the range, small enough that a fact table splits into
# useful parallel work.
DEFAULT_MORSEL_ROWS = 65536

# Never split below this many rows per morsel: tiny morsels pay more in
# scheduling than their kernels cost.
MIN_MORSEL_ROWS = 1024

# Below this row count a parallel region is processed serially even at
# parallelism > 1: per-morsel dispatch would cost more than the numpy
# kernels it splits.  Shared by the executor (which enforces it) and
# the estimator's build-parallelism discount (which must predict it).
MIN_PARALLEL_ROWS = 8192


def morsel_ranges(
    num_rows: int,
    morsel_rows: int = DEFAULT_MORSEL_ROWS,
    min_morsels: int = 1,
) -> list[tuple[int, int]]:
    """Split ``[0, num_rows)`` into contiguous, balanced row ranges.

    Precedence of the three sizing inputs, strongest first:

    1. ``num_rows`` — there are never more ranges than rows (each range
       holds at least one row), and an empty input yields no ranges;
    2. ``min_morsels`` — an explicit demand for parallelism (one morsel
       per worker) is honored even when the :data:`MIN_MORSEL_ROWS`
       floor would prefer fewer, larger morsels: the caller knows it
       has workers to feed, and under-splitting would idle them;
    3. ``morsel_rows`` — the target size; the split it implies is
       clamped so no range drops below :data:`MIN_MORSEL_ROWS` (tiny
       morsels pay more in scheduling than their kernels cost).

    Ranges are balanced to within one row so no worker inherits a
    remainder-sized straggler.

    >>> morsel_ranges(10_000, morsel_rows=4096)
    [(0, 3334), (3334, 6667), (6667, 10000)]
    >>> morsel_ranges(10, morsel_rows=4)  # too small to split
    [(0, 10)]
    >>> morsel_ranges(4096, morsel_rows=16)  # floor caps the target split
    [(0, 1024), (1024, 2048), (2048, 3072), (3072, 4096)]
    >>> morsel_ranges(4096, morsel_rows=4096, min_morsels=8)  # workers win
    [(0, 512), (512, 1024), (1024, 1536), (1536, 2048), (2048, 2560), (2560, 3072), (3072, 3584), (3584, 4096)]
    >>> morsel_ranges(3, morsel_rows=4096, min_morsels=8)  # never > num_rows
    [(0, 1), (1, 2), (2, 3)]
    >>> morsel_ranges(0)
    []
    """
    if num_rows <= 0:
        return []
    morsel_rows = max(int(morsel_rows), 1)
    count = -(-num_rows // morsel_rows)  # ceil division
    count = min(count, max(num_rows // MIN_MORSEL_ROWS, 1))
    if min_morsels > count:
        # The explicit worker demand overrides the size floor (but can
        # never exceed one row per range).
        count = min(min_morsels, num_rows)
    base, extra = divmod(num_rows, count)
    ranges: list[tuple[int, int]] = []
    start = 0
    for index in range(count):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


@dataclasses.dataclass(frozen=True)
class Morsel:
    """One contiguous row range of a named table."""

    table_name: str
    index: int
    start: int
    stop: int

    @property
    def num_rows(self) -> int:
        return self.stop - self.start

    def __repr__(self) -> str:
        return (
            f"Morsel({self.table_name!r}[{self.index}], "
            f"rows {self.start}:{self.stop})"
        )


def partition_table(
    table_name: str,
    num_rows: int,
    morsel_rows: int = DEFAULT_MORSEL_ROWS,
    min_morsels: int = 1,
) -> tuple[Morsel, ...]:
    """Morsels covering a table of ``num_rows`` rows."""
    return tuple(
        Morsel(table_name, index, start, stop)
        for index, (start, stop) in enumerate(
            morsel_ranges(num_rows, morsel_rows, min_morsels)
        )
    )


# Adaptive sizing aims each morsel at this much wall-clock: long enough
# that dispatch is noise, short enough that a straggler cannot idle the
# other workers for a visible fraction of the pipeline.
TARGET_MORSEL_SECONDS = 0.004

# Adaptation never grows a morsel beyond this multiple of the
# configured size (under-splitting would starve the worker pool on the
# next, possibly slower, pipeline stage).
MAX_ADAPT_FACTOR = 8

# Each new observation first decays the running totals by this factor,
# so a pipeline's later regions are sized mostly by their own recent
# morsels rather than by a much cheaper (or costlier) earlier operator.
# Throughput and selectivity are ratios of the decayed totals, so the
# decay is invisible while the workload is uniform.
OBSERVATION_DECAY = 0.75


class AdaptiveMorselSizer:
    """Per-pipeline morsel sizing from observed per-morsel work.

    The executor hands every parallel region's first few morsels out at
    the configured ``morsel_rows``; each completed morsel reports its
    row count, wall time, and surviving rows here, and later splits ask
    :meth:`morsel_rows` for a better size.  The policy has two inputs:

    * **throughput** — recency-weighted rows/second (totals decay by
      :data:`OBSERVATION_DECAY` per observation, so a later, very
      different operator re-anchors the proposal within a few of its
      own morsels); the proposed size targets
      :data:`TARGET_MORSEL_SECONDS` of work per morsel, so cheap
      full-scan kernels get large morsels (less dispatch overhead) and
      expensive ones get small morsels;
    * **selectivity** — surviving-row fraction; selective pipelines are
      scaled further down (their cost is skew-prone, and small morsels
      load-balance the skew across workers), full scans stay at the
      throughput target.

    The result is clamped to ``[MIN_MORSEL_ROWS, MAX_ADAPT_FACTOR *
    base]`` and then fed through :func:`morsel_ranges`, so the existing
    ``min_morsels`` > :data:`MIN_MORSEL_ROWS` precedence is untouched.
    Sizing only moves *where* ranges are cut, never which rows a region
    covers, so adapted execution stays byte-identical to static
    execution.  Instances are not thread-safe: the executor observes
    only on the main thread, after each morsel barrier.
    """

    __slots__ = (
        "base_morsel_rows",
        "sample_morsels",
        "_rows",
        "_seconds",
        "_rows_out",
        "_observed",
    )

    def __init__(
        self, base_morsel_rows: int = DEFAULT_MORSEL_ROWS,
        sample_morsels: int = 2,
    ) -> None:
        self.base_morsel_rows = max(int(base_morsel_rows), 1)
        self.sample_morsels = max(int(sample_morsels), 1)
        self._rows = 0
        self._seconds = 0.0
        self._rows_out = 0
        self._observed = 0

    def observe(
        self, rows: int, seconds: float, rows_out: int | None = None
    ) -> None:
        """Record one completed morsel's work (recency-weighted)."""
        self._rows = self._rows * OBSERVATION_DECAY + int(rows)
        self._seconds = self._seconds * OBSERVATION_DECAY + float(seconds)
        # Join fan-out can emit more rows than it read; selectivity is
        # a survival fraction, so cap the contribution at the input.
        self._rows_out = self._rows_out * OBSERVATION_DECAY + (
            min(int(rows_out), rows) if rows_out is not None else rows
        )
        self._observed += 1

    @property
    def calibrated(self) -> bool:
        """Whether enough morsels were observed to trust the proposal."""
        return self._observed >= self.sample_morsels

    @property
    def observed_morsels(self) -> int:
        return self._observed

    def selectivity(self) -> float:
        if self._rows <= 0:
            return 1.0
        return self._rows_out / self._rows

    def morsel_rows(self) -> int:
        """The current size proposal (the configured size until
        calibrated)."""
        if not self.calibrated or self._rows <= 0:
            return self.base_morsel_rows
        ceiling = self.base_morsel_rows * MAX_ADAPT_FACTOR
        if self._seconds <= 0.0:
            # Too fast to measure: dispatch overhead dominates, so take
            # the largest morsels the clamp allows.
            proposal = ceiling
        else:
            throughput = self._rows / self._seconds
            proposal = throughput * TARGET_MORSEL_SECONDS
            proposal *= 0.5 + 0.5 * self.selectivity()
        return int(round(min(max(proposal, MIN_MORSEL_ROWS), ceiling)))

    def __repr__(self) -> str:
        return (
            f"AdaptiveMorselSizer(base={self.base_morsel_rows}, "
            f"observed={self._observed}, proposal={self.morsel_rows()})"
        )
