"""Horizontal partitioning: row-range morsels over stored tables.

A *morsel* is a contiguous row range of one table — the scheduling unit
of the parallel executor (Leis et al., "Morsel-Driven Parallelism",
SIGMOD 2014).  Partitioning is purely logical: no data moves, a morsel
is just ``[start, stop)`` over the table's immutable column arrays, so
every derived artifact (dictionary codes, selection vectors, zone-map
style statistics) is shared by slicing rather than rebuilt per
partition.

:func:`morsel_ranges` is the one splitting policy, shared by
:meth:`repro.storage.table.Table.morsels` (base-table scans) and the
executor's intermediate-relation splits, so tuning the morsel shape
happens in one place.
"""

from __future__ import annotations

import dataclasses

# Target rows per morsel when the caller does not override it.  Large
# enough that per-morsel Python dispatch is noise next to the numpy
# kernels run on the range, small enough that a fact table splits into
# useful parallel work.
DEFAULT_MORSEL_ROWS = 65536

# Never split below this many rows per morsel: tiny morsels pay more in
# scheduling than their kernels cost.
MIN_MORSEL_ROWS = 1024


def morsel_ranges(
    num_rows: int,
    morsel_rows: int = DEFAULT_MORSEL_ROWS,
    min_morsels: int = 1,
) -> list[tuple[int, int]]:
    """Split ``[0, num_rows)`` into contiguous, balanced row ranges.

    Precedence of the three sizing inputs, strongest first:

    1. ``num_rows`` — there are never more ranges than rows (each range
       holds at least one row), and an empty input yields no ranges;
    2. ``min_morsels`` — an explicit demand for parallelism (one morsel
       per worker) is honored even when the :data:`MIN_MORSEL_ROWS`
       floor would prefer fewer, larger morsels: the caller knows it
       has workers to feed, and under-splitting would idle them;
    3. ``morsel_rows`` — the target size; the split it implies is
       clamped so no range drops below :data:`MIN_MORSEL_ROWS` (tiny
       morsels pay more in scheduling than their kernels cost).

    Ranges are balanced to within one row so no worker inherits a
    remainder-sized straggler.

    >>> morsel_ranges(10_000, morsel_rows=4096)
    [(0, 3334), (3334, 6667), (6667, 10000)]
    >>> morsel_ranges(10, morsel_rows=4)  # too small to split
    [(0, 10)]
    >>> morsel_ranges(4096, morsel_rows=16)  # floor caps the target split
    [(0, 1024), (1024, 2048), (2048, 3072), (3072, 4096)]
    >>> morsel_ranges(4096, morsel_rows=4096, min_morsels=8)  # workers win
    [(0, 512), (512, 1024), (1024, 1536), (1536, 2048), (2048, 2560), (2560, 3072), (3072, 3584), (3584, 4096)]
    >>> morsel_ranges(3, morsel_rows=4096, min_morsels=8)  # never > num_rows
    [(0, 1), (1, 2), (2, 3)]
    >>> morsel_ranges(0)
    []
    """
    if num_rows <= 0:
        return []
    morsel_rows = max(int(morsel_rows), 1)
    count = -(-num_rows // morsel_rows)  # ceil division
    count = min(count, max(num_rows // MIN_MORSEL_ROWS, 1))
    if min_morsels > count:
        # The explicit worker demand overrides the size floor (but can
        # never exceed one row per range).
        count = min(min_morsels, num_rows)
    base, extra = divmod(num_rows, count)
    ranges: list[tuple[int, int]] = []
    start = 0
    for index in range(count):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


@dataclasses.dataclass(frozen=True)
class Morsel:
    """One contiguous row range of a named table."""

    table_name: str
    index: int
    start: int
    stop: int

    @property
    def num_rows(self) -> int:
        return self.stop - self.start

    def __repr__(self) -> str:
        return (
            f"Morsel({self.table_name!r}[{self.index}], "
            f"rows {self.start}:{self.stop})"
        )


def partition_table(
    table_name: str,
    num_rows: int,
    morsel_rows: int = DEFAULT_MORSEL_ROWS,
    min_morsels: int = 1,
) -> tuple[Morsel, ...]:
    """Morsels covering a table of ``num_rows`` rows."""
    return tuple(
        Morsel(table_name, index, start, stop)
        for index, (start, stop) in enumerate(
            morsel_ranges(num_rows, morsel_rows, min_morsels)
        )
    )
