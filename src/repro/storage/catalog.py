"""Catalog: the set of table schemas plus declared foreign keys."""

from __future__ import annotations

from repro.errors import SchemaError
from repro.storage.schema import ForeignKey, TableSchema


class Catalog:
    """Registry of table schemas and foreign keys.

    The catalog answers the two questions the optimizer keeps asking:

    * is this equi-join a *key join* into table ``T`` (``R -> T``)?
    * is there a declared foreign key backing that join (a PKFK join)?
    """

    def __init__(self) -> None:
        self._schemas: dict[str, TableSchema] = {}
        self._foreign_keys: list[ForeignKey] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def add_schema(self, schema: TableSchema) -> None:
        if schema.name in self._schemas:
            raise SchemaError(f"duplicate table {schema.name!r}")
        self._schemas[schema.name] = schema

    def add_foreign_key(self, foreign_key: ForeignKey) -> None:
        child = self.schema(foreign_key.child_table)
        parent = self.schema(foreign_key.parent_table)
        for column in foreign_key.child_columns:
            if not child.has_column(column):
                raise SchemaError(
                    f"foreign key column {column!r} not in {child.name!r}"
                )
        for column in foreign_key.parent_columns:
            if not parent.has_column(column):
                raise SchemaError(
                    f"foreign key column {column!r} not in {parent.name!r}"
                )
        if not parent.is_key(foreign_key.parent_columns):
            raise SchemaError(
                f"foreign key target {foreign_key.parent_columns} is not "
                f"the unique key of {parent.name!r}"
            )
        self._foreign_keys.append(foreign_key)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def schema(self, table_name: str) -> TableSchema:
        try:
            return self._schemas[table_name]
        except KeyError:
            raise SchemaError(f"unknown table {table_name!r}") from None

    def has_table(self, table_name: str) -> bool:
        return table_name in self._schemas

    @property
    def table_names(self) -> list[str]:
        return sorted(self._schemas)

    @property
    def foreign_keys(self) -> tuple[ForeignKey, ...]:
        return tuple(self._foreign_keys)

    # ------------------------------------------------------------------
    # Join classification
    # ------------------------------------------------------------------

    def is_key_join(self, target_table: str, target_columns: tuple[str, ...]) -> bool:
        """True when joining on ``target_columns`` hits a unique key of
        ``target_table`` (the paper's ``R -> target`` relationship)."""
        return self.schema(target_table).is_key(target_columns)

    def has_foreign_key(
        self,
        child_table: str,
        child_columns: tuple[str, ...],
        parent_table: str,
        parent_columns: tuple[str, ...],
    ) -> bool:
        """True when a declared FK backs the join (full PKFK join)."""
        want_child = tuple(child_columns)
        want_parent = tuple(parent_columns)
        for fk in self._foreign_keys:
            if fk.child_table != child_table or fk.parent_table != parent_table:
                continue
            pairs = set(zip(fk.child_columns, fk.parent_columns))
            if pairs == set(zip(want_child, want_parent)):
                return True
        return False
