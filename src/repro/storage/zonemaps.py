"""Zone maps: per-morsel min/max synopses for morsel-level data skipping.

A *zone map* is the classic small-materialized-aggregate synopsis
(Moerkotte, VLDB 1998): for every morsel of a stored column it records
the minimum, maximum, null count, and whether the morsel is constant.
The executor consults zone maps before dispatching morsel work — a
morsel whose ``[min, max]`` provably cannot satisfy a scan predicate,
pass an applied bitvector filter, or match any build-side join key is
skipped without reading a single row.  This is the partition-level
analogue of the paper's row-level bitvector filtering: the filter
eliminates non-qualifying *rows* inside a morsel, the zone map
eliminates non-qualifying *morsels* before the filter even runs.

Zone maps are purely derived state: built lazily from the immutable
column arrays (one vectorized pass per column), cached on
:class:`repro.storage.database.Database` keyed by ``(table, column,
morsel shape)`` with the same single-flight construction discipline as
the dictionary indexes, and invalidated alongside them.

Pruning is *conservative by construction*: every helper in this module
answers "is this predicate/filter provably false for **every** row of
the morsel?", and anything it cannot reason about (``NOT``, ``LIKE``,
column-vs-column comparisons, mismatched value types) answers "no".
Skipped morsels therefore contribute exactly the rows the full
evaluation would have contributed — none — and pruned execution stays
byte-identical to unpruned execution.

NaN discipline: bounds are computed over non-NaN values (NaN compares
false under every ordered predicate, so it can never rescue a morsel
from pruning), and an all-NaN morsel reports ``min is None`` — which
ordered comparisons, equality, ``BETWEEN``, and ``IN`` prune outright
(``<>`` does not: numpy's ``!=`` is *true* for NaN).
"""

from __future__ import annotations

import numpy as np

from repro.expr.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Literal,
    Not,
    Or,
)

__all__ = [
    "ColumnZoneMap",
    "MorselBounds",
    "predicate_prunes_morsel",
    "predicate_accepts_morsel",
    "filter_prunes_morsel",
    "predicate_band",
    "predicate_prune_flags",
    "predicate_accept_flags",
    "scan_morsel_decisions",
    "filter_prune_flags",
    "pruned_row_fraction",
]


class MorselBounds:
    """Bounds of one column over one morsel: ``(min, max, null_count)``.

    ``low``/``high`` are ``None`` when the morsel holds no comparable
    values (all-NaN float runs, or an empty range) — a state every
    comparison-style predicate treats as unsatisfiable.
    """

    __slots__ = ("low", "high", "null_count")

    def __init__(self, low, high, null_count: int) -> None:
        self.low = low
        self.high = high
        self.null_count = null_count

    @property
    def all_null(self) -> bool:
        return self.low is None

    @property
    def is_constant(self) -> bool:
        """Whether every described row holds one identical value."""
        return (
            self.low is not None
            and self.low == self.high
            and self.null_count == 0
        )

    def __repr__(self) -> str:
        return (
            f"MorselBounds({self.low!r}, {self.high!r}, "
            f"nulls={self.null_count})"
        )


class ColumnZoneMap:
    """Per-morsel min/max/null-count/constant synopses of one column.

    Construction is one pass over the column — ``O(rows)`` ufunc
    reductions per morsel slice, no sorting, no allocation proportional
    to the data — and the result is a few machine words per morsel.
    Like every storage-side artifact, the zone map describes *base
    table* row ranges; views that still map rows contiguously onto the
    base (identity scans) can therefore be pruned morsel-by-morsel.
    """

    __slots__ = (
        "ranges", "mins", "maxs", "null_counts", "known", "sorted_ascending"
    )

    def __init__(
        self,
        ranges: tuple[tuple[int, int], ...],
        mins: tuple,
        maxs: tuple,
        null_counts: tuple[int, ...],
        known: tuple[bool, ...] | None = None,
        sorted_ascending: bool = False,
    ) -> None:
        self.ranges = ranges
        self.mins = mins
        self.maxs = maxs
        self.null_counts = null_counts
        # ``known[i]`` False means the morsel yielded no usable synopsis
        # (unorderable mixed-type object values): "no information", which
        # must never prune — distinct from the all-NaN state, which is
        # definite knowledge that no comparable value exists.
        self.known = known if known is not None else (True,) * len(ranges)
        # Whether the whole column is ascending with no NaN: the
        # clustered-band precondition.  A sorted column turns any
        # single-column value band into one contiguous row range —
        # binary search replaces per-morsel interval checks entirely
        # (see the executor's scan band search).  NaN must disqualify:
        # NaN compares false under every ordered predicate yet sorts
        # *last* under ``searchsorted``, so a "sorted" column with NaN
        # would band-include rows the evaluator rejects.
        self.sorted_ascending = sorted_ascending

    @classmethod
    def build(
        cls, column: np.ndarray, ranges: list[tuple[int, int]]
    ) -> "ColumnZoneMap":
        """Compute the synopsis of ``column`` over the given row ranges.

        >>> import numpy as np
        >>> zm = ColumnZoneMap.build(np.array([3, 1, 2, 9, 9, 9]),
        ...                          [(0, 3), (3, 6)])
        >>> zm.bounds(0).low, zm.bounds(0).high
        (1, 3)
        >>> zm.is_constant(1)
        True
        """
        column = np.asarray(column)
        is_float = column.dtype.kind == "f"
        mins: list = []
        maxs: list = []
        nulls: list[int] = []
        known: list[bool] = []
        for start, stop in ranges:
            values = column[start:stop]
            if len(values) == 0:
                mins.append(None)
                maxs.append(None)
                nulls.append(0)
                known.append(True)
                continue
            if is_float:
                nan_count = int(np.count_nonzero(np.isnan(values)))
                nulls.append(nan_count)
                known.append(True)
                if nan_count == len(values):
                    mins.append(None)
                    maxs.append(None)
                    continue
                mins.append(float(np.nanmin(values)))
                maxs.append(float(np.nanmax(values)))
            else:
                nulls.append(0)
                try:
                    low, high = values.min(), values.max()
                except TypeError:
                    # Mixed-type object column: no total order, hence no
                    # information — bounds() reports None so nothing is
                    # ever pruned off this morsel.
                    mins.append(None)
                    maxs.append(None)
                    known.append(False)
                    continue
                known.append(True)
                if column.dtype.kind in "iub":
                    mins.append(int(low))
                    maxs.append(int(high))
                else:
                    mins.append(low)
                    maxs.append(high)
        if sum(nulls) or not all(known):
            sorted_ascending = False
        else:
            try:
                sorted_ascending = bool(np.all(column[1:] >= column[:-1]))
            except TypeError:  # unorderable object values
                sorted_ascending = False
        return cls(
            tuple((int(a), int(b)) for a, b in ranges),
            tuple(mins),
            tuple(maxs),
            tuple(nulls),
            tuple(known),
            sorted_ascending,
        )

    @property
    def num_morsels(self) -> int:
        return len(self.ranges)

    def bounds(self, index: int) -> MorselBounds | None:
        """The morsel's bounds, or ``None`` when nothing is known."""
        if not self.known[index]:
            return None
        return MorselBounds(
            self.mins[index], self.maxs[index], self.null_counts[index]
        )

    def is_constant(self, index: int) -> bool:
        """Whether every row of the morsel holds one identical value."""
        bounds = self.bounds(index)
        return bounds is not None and bounds.is_constant

    def __repr__(self) -> str:
        return f"ColumnZoneMap(morsels={self.num_morsels})"


# ----------------------------------------------------------------------
# Interval reasoning
# ----------------------------------------------------------------------


def _definitely_outside(low, high, value) -> bool:
    """``value`` provably outside ``[low, high]`` (False when types
    are not comparable — conservative, never prunes on a guess)."""
    try:
        return bool(value < low) or bool(value > high)
    except TypeError:
        return False


def _literal(expression: Expression) -> object | None:
    if isinstance(expression, Literal):
        return expression.value
    return None


def predicate_prunes_morsel(predicate: Expression, bounds_of) -> bool:
    """True iff ``predicate`` is provably false for every morsel row.

    ``bounds_of(alias, column)`` returns the :class:`MorselBounds` of
    one column over the morsel under test, or ``None`` when no zone map
    is available for it.  The reasoning mirrors the vectorized
    evaluator (:mod:`repro.expr.eval`) exactly:

    * ``AND`` prunes when any conjunct prunes; ``OR`` when all branches
      do;
    * ordered comparisons, equality, ``BETWEEN``, and ``IN`` prune when
      the morsel's value interval is disjoint from the predicate's —
      and an all-NaN morsel always prunes them, because NaN compares
      false under those operators;
    * ``NOT``, ``LIKE``, ``<>`` over all-NaN morsels, column-vs-column
      comparisons, and anything else never prune (numpy's ``~`` and
      ``!=`` are *true* for NaN rows, so guessing would be unsound).
    """
    if isinstance(predicate, And):
        return any(
            predicate_prunes_morsel(operand, bounds_of)
            for operand in predicate.operands
        )
    if isinstance(predicate, Or):
        return bool(predicate.operands) and all(
            predicate_prunes_morsel(operand, bounds_of)
            for operand in predicate.operands
        )
    if isinstance(predicate, Comparison):
        return _comparison_prunes(predicate, bounds_of)
    if isinstance(predicate, Between):
        if not isinstance(predicate.operand, ColumnRef):
            return False
        bounds = bounds_of(predicate.operand.alias, predicate.operand.column)
        if bounds is None:
            return False
        if bounds.all_null:
            return True
        low = _literal(predicate.low)
        high = _literal(predicate.high)
        if low is None or high is None:
            return False
        try:
            return bool(bounds.high < low) or bool(bounds.low > high)
        except TypeError:
            return False
    if isinstance(predicate, InList):
        if not isinstance(predicate.operand, ColumnRef):
            return False
        bounds = bounds_of(predicate.operand.alias, predicate.operand.column)
        if bounds is None:
            return False
        if bounds.all_null or not predicate.values:
            return True
        return all(
            _definitely_outside(bounds.low, bounds.high, value)
            for value in predicate.values
        )
    if isinstance(predicate, Not):
        # NOT flips false to true, and NaN rows satisfy e.g. NOT(x = 5);
        # never prune through a negation.
        return False
    return False


def _comparison_prunes(predicate: Comparison, bounds_of) -> bool:
    column, literal, flipped = _split_comparison(predicate)
    if column is None:
        return False
    bounds = bounds_of(column.alias, column.column)
    if bounds is None:
        return False
    op = predicate.op
    if flipped:
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
              "=": "=", "<>": "<>"}[op]
    if bounds.all_null:
        # NaN compares false under the ordered operators and equality,
        # but the evaluator's numpy ``!=`` yields *True* for NaN — an
        # all-NaN morsel satisfies <> everywhere and must never prune it.
        return op != "<>"
    value = literal.value
    try:
        if op == "=":
            return bool(value < bounds.low) or bool(value > bounds.high)
        if op == "<>":
            # All-false only when every row equals the literal.
            return bounds.is_constant and bool(bounds.low == value)
        if op == "<":
            return bool(bounds.low >= value)
        if op == "<=":
            return bool(bounds.low > value)
        if op == ">":
            return bool(bounds.high <= value)
        if op == ">=":
            return bool(bounds.high < value)
    except TypeError:
        return False
    return False


def predicate_accepts_morsel(predicate: Expression, bounds_of) -> bool:
    """True iff ``predicate`` is provably *true* for every morsel row.

    The dual of :func:`predicate_prunes_morsel`, powering the
    constant-morsel short-circuit: a morsel whose synopsis proves the
    predicate everywhere (the ``is_constant`` case is the archetype —
    one comparison against the constant answers for every row) is kept
    whole without evaluating a single row.  Same conservatism contract:
    anything the interval logic cannot decide answers "no", so
    accepting is always byte-identical to evaluating.

    NaN discipline mirrors the evaluator: a row holding NaN fails every
    ordered comparison, equality, ``BETWEEN``, and ``IN``, so those
    operators only accept morsels with ``null_count == 0``; numpy's
    ``!=`` is *true* for NaN, so ``<>`` tolerates (and an all-NaN
    morsel satisfies) it.  ``NOT p`` accepts exactly when ``p`` prunes
    — "provably false everywhere" negates to "provably true
    everywhere", NaN rows included (their ``p`` is false too).
    """
    if isinstance(predicate, And):
        return bool(predicate.operands) and all(
            predicate_accepts_morsel(operand, bounds_of)
            for operand in predicate.operands
        )
    if isinstance(predicate, Or):
        return any(
            predicate_accepts_morsel(operand, bounds_of)
            for operand in predicate.operands
        )
    if isinstance(predicate, Not):
        return predicate_prunes_morsel(predicate.operand, bounds_of)
    if isinstance(predicate, Comparison):
        return _comparison_accepts(predicate, bounds_of)
    if isinstance(predicate, Between):
        if not isinstance(predicate.operand, ColumnRef):
            return False
        bounds = bounds_of(predicate.operand.alias, predicate.operand.column)
        if bounds is None or bounds.all_null or bounds.null_count:
            return False
        low = _literal(predicate.low)
        high = _literal(predicate.high)
        if low is None or high is None:
            return False
        try:
            return bool(low <= bounds.low) and bool(bounds.high <= high)
        except TypeError:
            return False
    if isinstance(predicate, InList):
        if not isinstance(predicate.operand, ColumnRef):
            return False
        bounds = bounds_of(predicate.operand.alias, predicate.operand.column)
        if bounds is None or not bounds.is_constant:
            return False
        # A constant morsel passes IN iff its one value is listed;
        # non-constant intervals prove nothing about membership.
        try:
            return any(bool(bounds.low == value) for value in predicate.values)
        except TypeError:
            return False
    return False


def _comparison_accepts(predicate: Comparison, bounds_of) -> bool:
    column, literal, flipped = _split_comparison(predicate)
    if column is None:
        return False
    bounds = bounds_of(column.alias, column.column)
    if bounds is None:
        return False
    op = predicate.op
    if flipped:
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
              "=": "=", "<>": "<>"}[op]
    value = literal.value
    if bounds.all_null:
        # numpy's != is True for NaN rows; every other operator is
        # False there.
        return op == "<>"
    try:
        if op == "=":
            return bounds.is_constant and bool(bounds.low == value)
        if op == "<>":
            # NaN rows already satisfy <>; the ordered rows do iff the
            # whole interval misses the literal.
            return bool(value < bounds.low) or bool(value > bounds.high)
        if bounds.null_count:
            return False  # a NaN row fails every ordered comparison
        if op == "<":
            return bool(bounds.high < value)
        if op == "<=":
            return bool(bounds.high <= value)
        if op == ">":
            return bool(bounds.low > value)
        if op == ">=":
            return bool(bounds.low >= value)
    except TypeError:
        return False
    return False


def _split_comparison(
    predicate: Comparison,
) -> tuple[ColumnRef | None, Literal | None, bool]:
    if isinstance(predicate.left, ColumnRef) and isinstance(
        predicate.right, Literal
    ):
        return predicate.left, predicate.right, False
    if isinstance(predicate.right, ColumnRef) and isinstance(
        predicate.left, Literal
    ):
        return predicate.right, predicate.left, True
    return None, None, False


def predicate_band(
    predicate: Expression, alias: str
) -> tuple[str, object | None, bool, object | None, bool] | None:
    """The predicate as one value band on one column, or ``None``.

    Returns ``(column, low, low_inclusive, high, high_inclusive)`` when
    the predicate is *exactly* a conjunction of ordered comparisons /
    ``BETWEEN`` against literals on a single column of ``alias`` — the
    shape a sorted (clustered) column can answer with two binary
    searches instead of any row-wise evaluation.  Either bound may be
    ``None`` (unbounded on that side).  Anything the band cannot
    represent losslessly (``<>``, ``IN``, ``OR``, ``NOT``, multiple
    columns, column-vs-column, non-literal bounds, NULL literals)
    returns ``None`` — the caller falls back to normal evaluation, so
    banding is always byte-identical to evaluating.
    """
    if isinstance(predicate, And):
        merged = None
        for operand in predicate.operands:
            band = predicate_band(operand, alias)
            if band is None:
                return None
            merged = band if merged is None else _merge_bands(merged, band)
            if merged is None:
                return None
        return merged
    if isinstance(predicate, Between):
        operand = predicate.operand
        if not isinstance(operand, ColumnRef) or operand.alias != alias:
            return None
        low = _literal(predicate.low)
        high = _literal(predicate.high)
        if low is None or high is None:
            return None
        return (operand.column, low, True, high, True)
    if isinstance(predicate, Comparison):
        column, literal, flipped = _split_comparison(predicate)
        if column is None or column.alias != alias:
            return None
        op = predicate.op
        if flipped:
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                  "=": "=", "<>": "<>"}[op]
        value = literal.value
        if value is None:
            return None
        name = column.column
        if op == "=":
            return (name, value, True, value, True)
        if op == "<":
            return (name, None, False, value, False)
        if op == "<=":
            return (name, None, False, value, True)
        if op == ">":
            return (name, value, False, None, False)
        if op == ">=":
            return (name, value, True, None, False)
        return None  # <> is two rays, not a band
    return None


def _merge_bands(left, right):
    """Intersection of two bands on the same column (``None`` when the
    columns differ or the bound values are not comparable)."""
    if left[0] != right[0]:
        return None
    try:
        low, low_inclusive = _tighter_bound(
            left[1], left[2], right[1], right[2], prefer_high=True
        )
        high, high_inclusive = _tighter_bound(
            left[3], left[4], right[3], right[4], prefer_high=False
        )
    except TypeError:
        return None
    return (left[0], low, low_inclusive, high, high_inclusive)


def _tighter_bound(a, a_inclusive, b, b_inclusive, prefer_high: bool):
    """The tighter of two band bounds (higher low / lower high); on a
    tie, inclusive only when both sides are."""
    if a is None:
        return b, b_inclusive
    if b is None:
        return a, a_inclusive
    if bool(a == b):
        return a, a_inclusive and b_inclusive
    if bool(b > a) == prefer_high:
        return b, b_inclusive
    return a, a_inclusive


def predicate_prune_flags(
    predicate: Expression,
    alias: str,
    zone_of,
    num_morsels: int,
) -> list[bool]:
    """Per-morsel prune flags of ``predicate`` over one relation alias.

    ``zone_of(column)`` supplies the :class:`ColumnZoneMap` of one
    column (or ``None`` when unavailable) and is called lazily — at
    most once per column, and never for columns only referenced by
    constructs the interval logic cannot use (``NOT``, ``LIKE``).
    This is the one sweep both the executor's pruning sites and the
    estimator's skip-fraction peek share, so their notions of "provably
    empty" can never diverge.
    """
    zones: dict[str, ColumnZoneMap | None] = {}

    def zone(column: str) -> ColumnZoneMap | None:
        if column not in zones:
            zones[column] = zone_of(column)
        return zones[column]

    flags = []
    for index in range(num_morsels):
        def bounds_of(bounds_alias: str, column: str, index=index):
            if bounds_alias != alias:
                return None
            column_zone = zone(column)
            if column_zone is None:
                return None
            return column_zone.bounds(index)

        flags.append(predicate_prunes_morsel(predicate, bounds_of))
    return flags


def predicate_accept_flags(
    predicate: Expression,
    alias: str,
    zone_of,
    num_morsels: int,
) -> list[bool]:
    """Per-morsel accept flags of ``predicate`` over one relation alias.

    The accept-side counterpart of :func:`predicate_prune_flags` (same
    lazy per-column zone lookup); ``flags[i]`` True means every row of
    morsel ``i`` provably satisfies the predicate, so the scan can keep
    the morsel whole without evaluating it (the constant-morsel
    short-circuit).  A morsel can never be both pruned and accepted —
    the two sweeps decide "provably false everywhere" and "provably
    true everywhere" from the same bounds.
    """
    zones: dict[str, ColumnZoneMap | None] = {}

    def zone(column: str) -> ColumnZoneMap | None:
        if column not in zones:
            zones[column] = zone_of(column)
        return zones[column]

    flags = []
    for index in range(num_morsels):
        def bounds_of(bounds_alias: str, column: str, index=index):
            if bounds_alias != alias:
                return None
            column_zone = zone(column)
            if column_zone is None:
                return None
            return column_zone.bounds(index)

        flags.append(predicate_accepts_morsel(predicate, bounds_of))
    return flags


def scan_morsel_decisions(
    predicate: Expression,
    alias: str,
    zone_of,
    num_morsels: int,
) -> tuple[list[bool], list[bool]]:
    """One fused sweep: per-morsel ``(pruned, accepted)`` flags.

    The executor's scan site needs both directions; fusing them shares
    the per-morsel bounds closure and the lazy zone lookups, and the
    accept test is skipped outright for morsels already proven empty
    (prune is authoritative — the degenerate empty morsel trivially
    satisfies both definitions).
    """
    zones: dict[str, ColumnZoneMap | None] = {}

    def zone(column: str) -> ColumnZoneMap | None:
        if column not in zones:
            zones[column] = zone_of(column)
        return zones[column]

    pruned: list[bool] = []
    accepted: list[bool] = []
    for index in range(num_morsels):
        def bounds_of(bounds_alias: str, column: str, index=index):
            if bounds_alias != alias:
                return None
            column_zone = zone(column)
            if column_zone is None:
                return None
            return column_zone.bounds(index)

        is_pruned = predicate_prunes_morsel(predicate, bounds_of)
        pruned.append(is_pruned)
        accepted.append(
            not is_pruned and predicate_accepts_morsel(predicate, bounds_of)
        )
    return pruned, accepted


def filter_prune_flags(
    key_bounds: list[tuple | None] | None,
    column_zones: list["ColumnZoneMap"],
    num_morsels: int,
) -> list[bool]:
    """Per-morsel prune flags against a filter's (or join's) key bounds."""
    return [
        filter_prunes_morsel(
            key_bounds, [zone.bounds(index) for zone in column_zones]
        )
        for index in range(num_morsels)
    ]


def pruned_row_fraction(
    ranges, flags: list[bool], total_rows: int
) -> float:
    """Fraction of ``total_rows`` living in flagged (pruned) morsels."""
    if total_rows <= 0:
        return 0.0
    skipped = sum(
        stop - start
        for (start, stop), pruned in zip(ranges, flags)
        if pruned
    )
    return min(1.0, skipped / total_rows)


def filter_prunes_morsel(
    key_bounds: list[tuple | None] | None,
    morsel_bounds: list[MorselBounds | None],
) -> bool:
    """True iff no morsel row can pass a bitvector filter's key bounds.

    ``key_bounds[i]`` is the ``(min, max)`` of the filter's i-th
    inserted key column (``None`` when unavailable — float keys with
    NaN, or a filter kind that kept no bounds); ``morsel_bounds[i]`` is
    the probe column's synopsis over the morsel.  One provably disjoint
    key column is enough: the key *tuple* cannot match.

    Soundness relies on the bounds contract of
    :meth:`repro.filters.base.BitvectorFilter.key_bounds`: bounds are
    only reported for columns with no NaN build keys, so a NaN probe
    row — which falls outside every interval — can never match an
    inserted key anyway.
    """
    if key_bounds is None:
        return False
    for column_key_bounds, bounds in zip(key_bounds, morsel_bounds):
        if column_key_bounds is None or bounds is None:
            continue
        if bounds.all_null:
            # Every probe key in this morsel is NaN; the build side has
            # none (else its bounds would be None).
            return True
        low, high = column_key_bounds
        try:
            if bool(bounds.high < low) or bool(bounds.low > high):
                return True
        except TypeError:
            continue
    return False
