"""Unit graph: the working representation for Algorithms 2 and 3.

Algorithm 3 repeatedly extracts a snowflake subgraph, optimizes it, and
*collapses it into a single new relation* in the join graph.  A
:class:`Unit` is either a base relation (one alias, scan leaf) or such a
collapsed composite (several aliases, an already-constructed subplan).
The :class:`UnitGraph` exposes the topology questions both algorithms
ask — adjacency, key-join direction, fact detection, branch components
— lifted from aliases to units.

A composite keeps a ``key_member``: the alias of the fact table of the
snowflake it came from.  Joins landing on that member's key columns are
still key joins into the composite, because a PKFK snowflake join
preserves the fact table's multiplicity (at most one dimension row per
fact row).
"""

from __future__ import annotations

import dataclasses
from collections import deque

from repro.errors import OptimizerError
from repro.plan.nodes import PlanNode
from repro.plan.builder import scan_for
from repro.query.joingraph import JoinGraph
from repro.stats.estimator import CardinalityEstimator


@dataclasses.dataclass
class Unit:
    """One node of the unit graph."""

    unit_id: str
    members: frozenset[str]
    rows: float
    key_member: str | None
    optimized: bool = False
    plan: PlanNode | None = None


class UnitGraph:
    """Join graph lifted to units (base relations + collapsed subplans)."""

    def __init__(self, graph: JoinGraph, estimator: CardinalityEstimator) -> None:
        self.graph = graph
        self.estimator = estimator
        self._units: dict[str, Unit] = {}
        for alias in graph.aliases:
            rows = estimator.base_cardinality(
                alias, graph.spec.local_predicate(alias)
            )
            self._units[alias] = Unit(
                unit_id=alias,
                members=frozenset({alias}),
                rows=rows,
                key_member=alias,
            )

    # ------------------------------------------------------------------
    # Unit access
    # ------------------------------------------------------------------

    @property
    def unit_ids(self) -> list[str]:
        return sorted(self._units)

    def unit(self, unit_id: str) -> Unit:
        try:
            return self._units[unit_id]
        except KeyError:
            raise OptimizerError(f"unknown unit {unit_id!r}") from None

    def __len__(self) -> int:
        return len(self._units)

    def unit_plan(self, unit_id: str) -> PlanNode:
        """The subplan a unit contributes as a join leaf."""
        unit = self.unit(unit_id)
        if unit.plan is not None:
            return unit.plan
        return scan_for(self.graph.spec, unit.unit_id)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def neighbors(self, unit_id: str, within: set[str] | None = None) -> set[str]:
        unit = self.unit(unit_id)
        found: set[str] = set()
        for candidate_id, candidate in self._units.items():
            if candidate_id == unit_id:
                continue
            if within is not None and candidate_id not in within:
                continue
            if self._units_adjacent(unit, candidate):
                found.add(candidate_id)
        return found

    def _units_adjacent(self, a: Unit, b: Unit) -> bool:
        for alias in a.members:
            if self.graph.neighbors(alias) & b.members:
                return True
        return False

    def join_column_pairs(
        self, from_id: str, to_id: str
    ) -> list[tuple[tuple[str, str], tuple[str, str]]]:
        """All join column pairs ((from_alias, col), (to_alias, col))."""
        from_unit = self.unit(from_id)
        to_unit = self.unit(to_id)
        pairs: list[tuple[tuple[str, str], tuple[str, str]]] = []
        for alias in sorted(from_unit.members):
            for neighbor in sorted(self.graph.neighbors(alias)):
                if neighbor not in to_unit.members:
                    continue
                edge = self.graph.edge_between(alias, neighbor)
                assert edge is not None
                for from_col, to_col in zip(
                    edge.columns_of(alias), edge.columns_of(neighbor)
                ):
                    pairs.append(((alias, from_col), (neighbor, to_col)))
        return pairs

    def is_key_join_into(self, from_id: str, to_id: str) -> bool:
        """Do the joins from ``from_id`` land on ``to_id``'s key?

        For base units this is the catalog's key test; for composites
        the columns must all belong to the composite's ``key_member``
        and cover that member's unique key.
        """
        to_unit = self.unit(to_id)
        if to_unit.key_member is None:
            return False
        pairs = self.join_column_pairs(from_id, to_id)
        if not pairs:
            return False
        target_columns = []
        for _, (to_alias, to_col) in pairs:
            if to_alias != to_unit.key_member:
                return False
            target_columns.append(to_col)
        table = self.graph.table_of(to_unit.key_member)
        return self.graph.catalog.is_key_join(table, tuple(target_columns))

    def is_fact_unit(self, unit_id: str, within: set[str] | None = None) -> bool:
        """Section 6.2: no neighbor joins this unit on its key."""
        for neighbor in self.neighbors(unit_id, within):
            if self.is_key_join_into(neighbor, unit_id):
                return False
        return True

    def connected_components(self, subset: set[str]) -> list[set[str]]:
        remaining = set(subset)
        components: list[set[str]] = []
        while remaining:
            start = min(remaining)
            component = {start}
            frontier = deque([start])
            while frontier:
                current = frontier.popleft()
                for neighbor in self.neighbors(current, remaining):
                    if neighbor not in component:
                        component.add(neighbor)
                        frontier.append(neighbor)
            remaining -= component
            components.append(component)
        return components

    # ------------------------------------------------------------------
    # Snowflake expansion (Algorithm 3's ExpandSnowflake)
    # ------------------------------------------------------------------

    def expand_snowflake(self, fact_id: str, within: set[str] | None = None) -> set[str]:
        """Fact unit plus every unit reachable through key joins *into*
        the next unit (dimensions, dimensions of dimensions, ...)."""
        scope = set(self.unit_ids) if within is None else set(within)
        included = {fact_id}
        frontier = deque([fact_id])
        while frontier:
            current = frontier.popleft()
            for neighbor in self.neighbors(current, scope):
                if neighbor in included:
                    continue
                if self.is_key_join_into(current, neighbor):
                    included.add(neighbor)
                    frontier.append(neighbor)
        return included

    # ------------------------------------------------------------------
    # Collapse (Algorithm 3's UpdateJoinGraph)
    # ------------------------------------------------------------------

    def collapse(
        self,
        unit_ids: set[str],
        plan: PlanNode,
        rows: float,
        fact_id: str,
    ) -> str:
        """Replace ``unit_ids`` with one optimized composite unit."""
        if fact_id not in unit_ids:
            raise OptimizerError("fact must be part of the collapsed set")
        members: set[str] = set()
        for unit_id in unit_ids:
            members |= self.unit(unit_id).members
        key_member = self.unit(fact_id).key_member
        for unit_id in unit_ids:
            del self._units[unit_id]
        composite = Unit(
            unit_id=fact_id,
            members=frozenset(members),
            rows=rows,
            key_member=key_member,
            optimized=True,
            plan=plan,
        )
        self._units[fact_id] = composite
        return fact_id
