"""Exhaustive enumeration of right-deep trees without cross products.

A right-deep order ``[X0, X1, ..., Xn]`` is valid when every prefix
``{X0, ..., Xk}`` induces a connected subgraph — otherwise some join
would be a cross product.  The count of such orders is the "original
complexity" column of the paper's Table 2: exponential in n for stars
and snowflakes.  Theorem validation compares the minimum true ``Cout``
over *all* of these orders with the minimum over the linear candidate
sets of :mod:`repro.optimizer.candidates`.
"""

from __future__ import annotations

from typing import Iterator

from repro.query.joingraph import JoinGraph


def right_deep_orders(
    graph: JoinGraph, limit: int | None = None
) -> Iterator[list[str]]:
    """Yield every cross-product-free right-deep order of the graph.

    ``limit`` caps the number of yielded orders (safety for tests on
    larger graphs).
    """
    aliases = list(graph.aliases)
    yielded = 0

    def extend(prefix: list[str], used: set[str]) -> Iterator[list[str]]:
        nonlocal yielded
        if limit is not None and yielded >= limit:
            return
        if len(prefix) == len(aliases):
            yielded += 1
            yield list(prefix)
            return
        for alias in aliases:
            if alias in used:
                continue
            if prefix and not (graph.neighbors(alias) & used):
                continue  # would be a cross product
            prefix.append(alias)
            used.add(alias)
            yield from extend(prefix, used)
            prefix.pop()
            used.remove(alias)

    yield from extend([], set())


def count_right_deep_orders(graph: JoinGraph) -> int:
    """Number of cross-product-free right-deep orders (Table 2's
    "original complexity")."""
    total = 0
    for _ in right_deep_orders(graph):
        total += 1
    return total
