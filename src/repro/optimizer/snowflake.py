"""Algorithm 2: join-order construction for a single-fact snowflake.

Branches (connected components of the graph minus the fact table) are
assigned priorities following Section 6.1:

* **P3** (joined earliest): branches larger than the fact table — they
  should be probed, not built, and joining them early lets the fact
  table's bitvector prune them.
* **P2**: sets of branches that join each other — kept consecutive so
  their mutual bitvector filters can push down; bigger sets first.
* **P1**: ordinary dimension branches smaller than the fact table.
* **P0** (joined last): branches whose join with the fact is not a key
  join (e.g. other collapsed fact tables) — their filters cannot
  semi-join-reduce the fact, so they go on top.

Within a priority group, branches go most-fact-reducing first ("by
descending selectivity on the fact table").

Two candidate families are then costed with bitvector-aware estimated
``Cout`` (paper Section 5's linear candidate result): the fact-first
plan, and for each single-root branch, one plan per starting relation
in which that branch leads (Theorem 5.3 orders).  The cheapest wins.
"""

from __future__ import annotations

import dataclasses

from repro.cost.cout import EstimatedCardModel
from repro.cost.physical import estimated_cpu
from repro.errors import OptimizerError
from repro.optimizer.candidates import leading_order
from repro.optimizer.units import UnitGraph
from repro.plan.builder import join_nodes
from repro.plan.clone import clone_plan
from repro.plan.nodes import PlanNode
from repro.plan.pushdown import push_down_bitvectors


@dataclasses.dataclass
class _Branch:
    """One branch: a root unit adjacent to the fact plus its subtree."""

    root: str
    units: list[str]          # root-first, prefix-connected order
    survival: float           # est. fraction of fact rows surviving
    group_size: int           # #branches in its connected component
    priority: float = 0.0

    @property
    def unit_set(self) -> set[str]:
        return set(self.units)


def optimize_snowflake(
    ugraph: UnitGraph,
    fact_id: str,
    scope: set[str] | None = None,
    bitvector_aware: bool = True,
    context=None,
) -> PlanNode:
    """Construct the join order for a single-fact (general) snowflake.

    ``scope`` restricts the optimization to a subset of units
    (Algorithm 3 passes extracted subgraphs); default is every unit.
    Returns a plan *without* bitvector push-down applied — the caller
    runs filter selection and push-down on the final assembled plan.

    With ``bitvector_aware=False`` the same plan space is searched with
    a *blind* cost model and raw-cardinality build/probe decisions —
    this reproduces the paper's baseline: the host optimizer's
    snowflake heuristics, which "neglect the impact of bitvector
    filters" (Section 7.2).
    """
    scope = set(ugraph.unit_ids) if scope is None else set(scope)
    if fact_id not in scope:
        raise OptimizerError(f"fact {fact_id!r} not in scope")
    if len(scope) == 1:
        return ugraph.unit_plan(fact_id)

    branches = _sorted_branches(ugraph, fact_id, scope)
    if bitvector_aware:
        spine_rows = _reduced_spine_estimate(ugraph, fact_id, branches)
    else:
        # A blind optimizer sees the raw (predicate-filtered) fact size.
        spine_rows = ugraph.unit(fact_id).rows

    candidates: list[PlanNode] = [
        _join_branches(ugraph, fact_id, branches, prefix=None,
                       spine_rows=spine_rows)
    ]
    for index, branch in enumerate(branches):
        if branch.group_size != 1:
            continue  # interconnected branches cannot cleanly lead
        rest = branches[:index] + branches[index + 1:]
        for start in branch.units:
            if context is not None:
                # Candidate enumeration is the optimizer's only
                # superlinear loop; checking per candidate keeps plan
                # search abortable under a deadline.
                context.check()
            order = leading_order(
                branch.unit_set,
                start,
                roots=[branch.root],
                neighbors=lambda uid: ugraph.neighbors(uid, scope - {fact_id}),
            )
            prefix = ugraph.unit_plan(order[0])
            for unit_id in order[1:]:
                prefix = join_nodes(
                    ugraph.graph, build=ugraph.unit_plan(unit_id), probe=prefix
                )
            prefix = join_nodes(
                ugraph.graph, build=ugraph.unit_plan(fact_id), probe=prefix
            )
            candidates.append(
                _join_branches(ugraph, fact_id, rest, prefix=prefix,
                               spine_rows=spine_rows)
            )

    return _cheapest(candidates, ugraph, bitvector_aware)


# ----------------------------------------------------------------------
# Branch discovery, classification, ordering (SortBranches)
# ----------------------------------------------------------------------


def _sorted_branches(
    ugraph: UnitGraph, fact_id: str, scope: set[str]
) -> list[_Branch]:
    others = scope - {fact_id}
    fact_rows = ugraph.unit(fact_id).rows
    total_units = len(scope)

    groups: list[list[_Branch]] = []
    for component in ugraph.connected_components(others):
        roots = sorted(
            uid for uid in component if fact_id in ugraph.neighbors(uid, scope)
        )
        if not roots:
            raise OptimizerError(
                f"units {sorted(component)} do not join the fact table "
                "(cross product)"
            )
        members = _assign_members(ugraph, component, roots)
        group = []
        for root in roots:
            units = _bfs_order(ugraph, members[root], root)
            group.append(
                _Branch(
                    root=root,
                    units=units,
                    survival=_branch_survival(ugraph, fact_id, root, members[root]),
                    group_size=len(roots),
                )
            )
        groups.append(group)

    # Priorities (Algorithm 2, SortBranches lines 20-27).
    for group in groups:
        for branch in group:
            if branch.group_size > 1:
                branch.priority = float(branch.group_size)          # P2
            elif not ugraph.is_key_join_into(fact_id, branch.root):
                branch.priority = 0.0                               # P0
            elif ugraph.unit(branch.root).rows < fact_rows:
                branch.priority = 1.0                               # P1
            else:
                branch.priority = float(total_units + 1)            # P3

    # Sort groups by (priority desc, most-reducing first); flatten with
    # branches inside a group ordered most-reducing first.
    def group_key(group: list[_Branch]) -> tuple:
        best_priority = max(branch.priority for branch in group)
        best_survival = min(branch.survival for branch in group)
        return (-best_priority, best_survival, group[0].root)

    ordered: list[_Branch] = []
    for group in sorted(groups, key=group_key):
        ordered.extend(
            sorted(group, key=lambda b: (b.survival, b.root))
        )
    return ordered


def _assign_members(
    ugraph: UnitGraph, component: set[str], roots: list[str]
) -> dict[str, set[str]]:
    """Partition a (possibly multi-root) component among its roots via
    simultaneous BFS; ties go to the lexicographically first root."""
    owner: dict[str, str] = {root: root for root in roots}
    frontier = list(roots)
    while frontier:
        next_frontier: list[str] = []
        for node in sorted(frontier):
            for neighbor in sorted(ugraph.neighbors(node, component)):
                if neighbor not in owner:
                    owner[neighbor] = owner[node]
                    next_frontier.append(neighbor)
        frontier = next_frontier
    members: dict[str, set[str]] = {root: set() for root in roots}
    for node, root in owner.items():
        members[root].add(node)
    return members


def _bfs_order(ugraph: UnitGraph, members: set[str], root: str) -> list[str]:
    """Prefix-connected order of a branch, root first."""
    order = [root]
    seen = {root}
    frontier = [root]
    while frontier:
        next_frontier: list[str] = []
        for node in frontier:
            for neighbor in sorted(ugraph.neighbors(node, members)):
                if neighbor not in seen:
                    seen.add(neighbor)
                    order.append(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    if len(order) != len(members):
        # members assigned to another root connect through it; append in
        # any adjacency-respecting order
        for node in sorted(members - seen):
            order.append(node)
    return order


def _branch_survival(
    ugraph: UnitGraph, fact_id: str, root: str, members: set[str]
) -> float:
    """Estimated fraction of fact rows surviving this branch's filters.

    The branch is reduced bottom-up: each unit keeps the fraction of
    its rows implied by its own predicates and its children's key
    containment, then the root's remaining distinct keys bound the fact
    survival ("selectivity on the fact table").
    """
    def effective_rows(unit_id: str, parent: str | None) -> float:
        unit = ugraph.unit(unit_id)
        rows = unit.rows
        for child in sorted(ugraph.neighbors(unit_id, members)):
            if child == parent:
                continue
            child_rows = effective_rows(child, unit_id)
            rows *= _containment(ugraph, unit_id, child, child_rows)
        return max(1.0, rows)

    root_rows = effective_rows(root, None)
    return _containment(ugraph, fact_id, root, root_rows)


def _containment(
    ugraph: UnitGraph, probe_id: str, build_id: str, build_rows: float
) -> float:
    """Survival fraction of ``probe`` rows against ``build``'s keys."""
    estimator = ugraph.estimator
    survival = 1.0
    for (probe_alias, probe_col), (build_alias, build_col) in ugraph.join_column_pairs(
        probe_id, build_id
    ):
        ndv_build = min(
            estimator.column_distinct(build_alias, build_col), max(build_rows, 1.0)
        )
        ndv_probe = estimator.column_distinct(probe_alias, probe_col)
        survival *= min(1.0, ndv_build / max(ndv_probe, 1.0))
    return max(1e-9, survival)


# ----------------------------------------------------------------------
# Plan assembly (JoinBranches)
# ----------------------------------------------------------------------


_REDUCER_SURVIVAL = 0.5


def _reduced_spine_estimate(
    ugraph: UnitGraph, fact_id: str, branches: list[_Branch]
) -> float:
    """Estimated fact-spine cardinality after bitvector reduction.

    With Algorithm 1, every *build-side* key-join branch's filter lands
    on the fact scan, so at execution time the spine carries the
    reduced fact cardinality from the very first join.  Only branches
    that stay builds contribute (a probed branch creates no fact-side
    filter); we count the branches whose estimated semi-join survival
    is below :data:`_REDUCER_SURVIVAL` — those are kept as builds by
    :func:`_join_branches` precisely because their reduction pays for
    the hash table.
    """
    rows = ugraph.unit(fact_id).rows
    for branch in branches:
        if (
            branch.survival < _REDUCER_SURVIVAL
            and ugraph.is_key_join_into(fact_id, branch.root)
        ):
            rows *= branch.survival
    return max(1.0, rows)


def _join_branches(
    ugraph: UnitGraph,
    fact_id: str,
    branches: list[_Branch],
    prefix: PlanNode | None,
    spine_rows: float,
) -> PlanNode:
    """Algorithm 2's JoinBranches: stack branches onto the spine.

    ``prefix`` is the already-built right-most subplan (fact scan for
    the fact-first family; branch+fact spine for branch-led plans).

    The build/probe decision is the paper's group-P3 rule ("branches
    larger than the fact table ... reorder the build and probe sides")
    evaluated against the bitvector-reduced spine estimate:

    * branches that meaningfully semi-join-reduce the fact
      (survival < 0.5) always build — their filter shrinks every
      operator above;
    * any other unit larger than the reduced spine is probed instead:
      the spine becomes the build and its bitvector prunes the unit's
      scan, which is how a 600-row unfiltered dimension avoids a full
      hash-table build against a 30-row spine.
    """
    plan = prefix if prefix is not None else ugraph.unit_plan(fact_id)
    for branch in branches:
        branch_reduces = branch.survival < _REDUCER_SURVIVAL and (
            ugraph.is_key_join_into(fact_id, branch.root)
        )
        for unit_id in branch.units:
            unit_plan = ugraph.unit_plan(unit_id)
            if not branch_reduces and ugraph.unit(unit_id).rows > spine_rows:
                plan = join_nodes(ugraph.graph, build=plan, probe=unit_plan)
            else:
                plan = join_nodes(ugraph.graph, build=unit_plan, probe=plan)
    return plan


# ----------------------------------------------------------------------
# Candidate costing
# ----------------------------------------------------------------------


def _cheapest(
    candidates: list[PlanNode], ugraph: UnitGraph, bitvector_aware: bool
) -> PlanNode:
    """Pick the candidate with the cheapest estimated physical cost.

    Candidates are scored with the physical CPU model rather than raw
    ``Cout`` — matching the paper's implementation, which plugs its
    candidates into the host optimizer's "original cost modeling"
    (Section 7.1).  ``Cout`` ignores hash-table build costs, which is
    exactly what distinguishes the candidate families once bitvector
    filters have equalized their intermediate sizes.

    In blind mode the filters' cardinality effects are ignored during
    scoring (the paper's Figure 2: the blind optimizer prefers P1, the
    aware one P2).
    """
    best_plan: PlanNode | None = None
    best_cost = float("inf")
    for candidate in candidates:
        copy, _ = clone_plan(candidate)
        pushed = push_down_bitvectors(copy)
        model = EstimatedCardModel(ugraph.estimator, bitvector_aware)
        cost = estimated_cpu(pushed, model, ugraph.estimator)
        if cost < best_cost:
            best_cost = cost
            best_plan = candidate
    assert best_plan is not None
    return best_plan
