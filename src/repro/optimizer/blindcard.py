"""Bitvector-blind cardinality estimation for baseline join ordering.

Classic System-R style: the cardinality of a join over a set of
relations is the product of filtered base cardinalities times the
selectivity of every join edge inside the set — independent of join
order, which is what gives DP its substructure optimality.  This is
exactly the model a bitvector-unaware optimizer plans with, and exactly
what the paper shows goes wrong once filters enter the picture.
"""

from __future__ import annotations

from repro.query.joingraph import JoinGraph
from repro.stats.estimator import CardinalityEstimator


class BlindCardModel:
    """Order-independent subset cardinalities (no bitvector effects)."""

    def __init__(self, graph: JoinGraph, estimator: CardinalityEstimator) -> None:
        self._graph = graph
        self._estimator = estimator
        self._base_rows: dict[str, float] = {}
        self._cache: dict[frozenset[str], float] = {}

    def base_rows(self, alias: str) -> float:
        rows = self._base_rows.get(alias)
        if rows is None:
            rows = self._estimator.base_cardinality(
                alias, self._graph.spec.local_predicate(alias)
            )
            self._base_rows[alias] = rows
        return rows

    def edge_selectivity(self, a: str, b: str) -> float:
        edge = self._graph.edge_between(a, b)
        if edge is None:
            return 1.0
        return self._estimator.join_selectivity(
            edge.left_alias,
            edge.left_columns,
            edge.right_alias,
            edge.right_columns,
        )

    def subset_rows(self, subset: frozenset[str]) -> float:
        """Estimated join cardinality of all relations in ``subset``."""
        cached = self._cache.get(subset)
        if cached is not None:
            return cached
        rows = 1.0
        members = sorted(subset)
        for alias in members:
            rows *= self.base_rows(alias)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                rows *= self.edge_selectivity(a, b)
        rows = max(1.0, rows)
        self._cache[subset] = rows
        return rows

    def cross_selectivity(self, left: frozenset[str], right: frozenset[str]) -> float:
        """Combined selectivity of all edges crossing the two sets."""
        selectivity = 1.0
        for a in left:
            for b in self._graph.neighbors(a):
                if b in right:
                    selectivity *= self.edge_selectivity(a, b)
        return selectivity

    def joined_rows(self, left: frozenset[str], right: frozenset[str]) -> float:
        return max(
            1.0,
            self.subset_rows(left)
            * self.subset_rows(right)
            * self.cross_selectivity(left, right),
        )
