"""Join-order optimization.

Baselines (what a bitvector-blind cost-based optimizer does):

* :mod:`repro.optimizer.baseline` — exact dynamic programming over
  connected subgraphs for small queries, greedy operator ordering for
  large ones; both ignore bitvector filters during search, like the
  paper's host optimizer before the new rule.
* :mod:`repro.optimizer.enumerate` — exhaustive right-deep enumeration
  (used to validate the paper's theorems).

The paper's contribution:

* :mod:`repro.optimizer.candidates` — the linear candidate plan sets of
  Theorems 4.1 / 5.1 / 5.3.
* :mod:`repro.optimizer.snowflake` — Algorithm 2 (single fact table,
  priority groups P0-P3).
* :mod:`repro.optimizer.multifact` — Algorithm 3 (iterative snowflake
  extraction for arbitrary join graphs).
* :mod:`repro.optimizer.filter_selection` — Section 6.3 cost-based
  bitvector filter selection.
* :mod:`repro.optimizer.pipelines` — end-to-end named pipelines
  (original / BQO / no-bitvector) used by experiments.
"""

from repro.optimizer.baseline import optimize_baseline
from repro.optimizer.enumerate import (
    right_deep_orders,
    count_right_deep_orders,
)
from repro.optimizer.candidates import (
    star_candidate_orders,
    branch_candidate_orders,
    snowflake_candidate_orders,
)
from repro.optimizer.snowflake import optimize_snowflake
from repro.optimizer.multifact import optimize_join_graph
from repro.optimizer.filter_selection import apply_cost_based_filters
from repro.optimizer.pipelines import (
    OptimizedPlan,
    optimize_query,
    PIPELINES,
)

__all__ = [
    "optimize_baseline",
    "right_deep_orders",
    "count_right_deep_orders",
    "star_candidate_orders",
    "branch_candidate_orders",
    "snowflake_candidate_orders",
    "optimize_snowflake",
    "optimize_join_graph",
    "apply_cost_based_filters",
    "OptimizedPlan",
    "optimize_query",
    "PIPELINES",
]
