"""Baseline (bitvector-blind) join ordering.

This is the stand-in for the paper's host optimizer *before* the new
transformation rule: a cost-based search over bushy trees without cross
products, minimizing bitvector-blind ``Cout``.

* Queries with up to ``dp_relation_limit`` relations use exact dynamic
  programming over connected subsets (DPsub).
* Larger queries fall back to Greedy Operator Ordering (GOO): repeatedly
  join the connected pair with the smallest estimated result.

Build sides are chosen by estimated cardinality (smaller side builds),
the conventional physical heuristic.
"""

from __future__ import annotations

from repro.errors import OptimizerError
from repro.optimizer.blindcard import BlindCardModel
from repro.plan.builder import join_nodes, scan_for
from repro.plan.nodes import PlanNode
from repro.query.joingraph import JoinGraph
from repro.stats.estimator import CardinalityEstimator

DEFAULT_DP_RELATION_LIMIT = 10


def optimize_baseline(
    graph: JoinGraph,
    estimator: CardinalityEstimator,
    dp_relation_limit: int = DEFAULT_DP_RELATION_LIMIT,
) -> PlanNode:
    """Bitvector-blind cost-based join ordering."""
    if not graph.aliases:
        raise OptimizerError("query has no relations")
    if not graph.is_connected():
        raise OptimizerError("join graph is disconnected (cross product)")
    model = BlindCardModel(graph, estimator)
    if len(graph.aliases) <= dp_relation_limit:
        return _dp_optimize(graph, model)
    return _goo_optimize(graph, model)


# ----------------------------------------------------------------------
# Exact DP over connected subsets (DPsub)
# ----------------------------------------------------------------------


def _dp_optimize(graph: JoinGraph, model: BlindCardModel) -> PlanNode:
    aliases = list(graph.aliases)
    index_of = {alias: i for i, alias in enumerate(aliases)}
    n = len(aliases)
    neighbor_bits = [0] * n
    for alias in aliases:
        bits = 0
        for neighbor in graph.neighbors(alias):
            bits |= 1 << index_of[neighbor]
        neighbor_bits[index_of[alias]] = bits

    def members(mask: int) -> frozenset[str]:
        return frozenset(aliases[i] for i in range(n) if mask & (1 << i))

    # best[mask] = (cost, plan, rows)
    best: dict[int, tuple[float, PlanNode, float]] = {}
    for i, alias in enumerate(aliases):
        rows = model.base_rows(alias)
        best[1 << i] = (rows, scan_for(graph.spec, alias), rows)

    def mask_neighbors(mask: int) -> int:
        bits = 0
        remaining = mask
        while remaining:
            low = remaining & -remaining
            bits |= neighbor_bits[low.bit_length() - 1]
            remaining ^= low
        return bits & ~mask

    for mask in range(1, 1 << n):
        if mask in best or mask & (mask - 1) == 0:
            continue
        rows = None
        best_entry: tuple[float, PlanNode, float] | None = None
        # Enumerate proper subsets containing the lowest set bit.
        lowest = mask & -mask
        sub = (mask - 1) & mask
        while sub:
            if sub & lowest:
                other = mask ^ sub
                left = best.get(sub)
                right = best.get(other)
                if left is not None and right is not None:
                    # connectivity across the cut
                    if mask_neighbors(sub) & other:
                        if rows is None:
                            rows = model.subset_rows(members(mask))
                        cost = left[0] + right[0] + rows
                        if best_entry is None or cost < best_entry[0]:
                            build, probe = left, right
                            if build[2] > probe[2]:
                                build, probe = probe, build
                            plan = join_nodes(
                                graph, build=build[1], probe=probe[1]
                            )
                            best_entry = (cost, plan, rows)
            sub = (sub - 1) & mask
        if best_entry is not None:
            best[mask] = best_entry

    full = (1 << n) - 1
    if full not in best:
        raise OptimizerError("DP found no cross-product-free plan")
    return best[full][1]


# ----------------------------------------------------------------------
# Greedy Operator Ordering (GOO) for large queries
# ----------------------------------------------------------------------


def _goo_optimize(graph: JoinGraph, model: BlindCardModel) -> PlanNode:
    units: dict[int, tuple[frozenset[str], PlanNode, float]] = {}
    for i, alias in enumerate(graph.aliases):
        units[i] = (
            frozenset({alias}),
            scan_for(graph.spec, alias),
            model.base_rows(alias),
        )

    def connected(a: frozenset[str], b: frozenset[str]) -> bool:
        return any(graph.neighbors(x) & b for x in a)

    while len(units) > 1:
        best_pair: tuple[int, int] | None = None
        best_rows = float("inf")
        ids = sorted(units)
        for i_pos, i in enumerate(ids):
            set_i = units[i][0]
            for j in ids[i_pos + 1:]:
                set_j = units[j][0]
                if not connected(set_i, set_j):
                    continue
                rows = model.joined_rows(set_i, set_j)
                if rows < best_rows:
                    best_rows = rows
                    best_pair = (i, j)
        if best_pair is None:
            raise OptimizerError("join graph is disconnected (cross product)")
        i, j = best_pair
        set_i, plan_i, rows_i = units.pop(i)
        set_j, plan_j, rows_j = units.pop(j)
        build, probe = (plan_i, plan_j) if rows_i <= rows_j else (plan_j, plan_i)
        plan = join_nodes(graph, build=build, probe=probe)
        units[i] = (set_i | set_j, plan, best_rows)
    (_, plan, _), = units.values()
    return plan
