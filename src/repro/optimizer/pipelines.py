"""End-to-end optimization pipelines.

Every experiment compares named pipelines:

* ``original`` — the paper's baseline: the host optimizer's snowflake
  transformation heuristics with *bitvector-blind* costing (the paper,
  Section 7.2: "the heuristics used in its snowflake transformation
  rules neglect the impact of bitvector filters"), with bitvector
  filters added as a post-processing step (Algorithm 1) under the same
  cost-based creation threshold the engine deploys.
* ``original_nobv`` — the ``original`` join order executed with
  bitvector filtering disabled (the Table 4 comparison).
* ``bqo`` — the paper's contribution: bitvector-aware Algorithm 3 join
  ordering with cost-based filter selection and push-down.
* ``bqo_allfilters`` — ablation: BQO ordering with every join creating
  a filter (no Section 6.3 selection).
* ``original_allfilters`` — ablation: baseline ordering, every join
  filtering.
* ``dp`` / ``dp_nobv`` — an *extra* reference point beyond the paper:
  exact bushy dynamic programming (greedy beyond 10 relations) with
  blind costing and post-hoc filters.  This is a stronger baseline
  than the paper's host optimizer; EXPERIMENTS.md reports how close it
  gets to BQO.

Each pipeline returns an :class:`OptimizedPlan` carrying the executable
plan (aggregates attached, push-down applied where relevant) plus
planning metadata.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable

from repro.cost.constants import DEFAULT_LAMBDA_THRESH
from repro.cost.cout import EstimatedCardModel, cout
from repro.errors import OptimizerError
from repro.optimizer.baseline import optimize_baseline
from repro.optimizer.filter_selection import apply_cost_based_filters
from repro.optimizer.multifact import optimize_join_graph
from repro.plan.builder import attach_aggregate
from repro.plan.nodes import HashJoinNode, PlanNode
from repro.plan.properties import plan_signature
from repro.plan.pushdown import push_down_bitvectors
from repro.query.joingraph import JoinGraph
from repro.query.spec import QuerySpec
from repro.stats.estimator import CardinalityEstimator
from repro.storage.database import Database


@dataclasses.dataclass
class OptimizedPlan:
    """Result of one optimization pipeline for one query."""

    pipeline: str
    spec: QuerySpec
    plan: PlanNode
    estimated_cout: float
    signature: str
    # Wall-clock planning time; what a plan-cache hit saves
    # (see repro.service).
    optimize_seconds: float = 0.0

    @property
    def name(self) -> str:
        return f"{self.spec.name}/{self.pipeline}"


def _finalize(
    pipeline: str,
    spec: QuerySpec,
    plan: PlanNode,
    estimator: CardinalityEstimator,
    use_bitvectors: bool,
    cost_based: bool,
    lambda_thresh: float,
    build_parallelism: int = 1,
) -> OptimizedPlan:
    if use_bitvectors:
        if cost_based:
            plan = apply_cost_based_filters(
                plan, estimator, lambda_thresh,
                build_parallelism=build_parallelism,
            )
        plan = push_down_bitvectors(plan)
    else:
        for node in plan.walk():
            if isinstance(node, HashJoinNode):
                node.creates_bitvector = False
        plan = push_down_bitvectors(plan)  # no-op creation, resets state
    estimated = cout(plan, EstimatedCardModel(estimator))
    plan = attach_aggregate(plan, spec)
    return OptimizedPlan(
        pipeline=pipeline,
        spec=spec,
        plan=plan,
        estimated_cout=estimated,
        signature=plan_signature(plan),
    )


def _run_pipeline(
    pipeline: str,
    database: Database,
    spec: QuerySpec,
    lambda_thresh: float,
    build_parallelism: int = 1,
    context=None,
) -> OptimizedPlan:
    if context is not None:
        context.check()
    spec.validate_against(database)
    graph = JoinGraph(spec, database.catalog)
    estimator = CardinalityEstimator(database, spec.alias_tables)

    if pipeline in ("original", "original_nobv", "original_allfilters"):
        plan = optimize_join_graph(
            graph, estimator, bitvector_aware=False, context=context
        )
    elif pipeline in ("bqo", "bqo_allfilters"):
        plan = optimize_join_graph(
            graph, estimator, bitvector_aware=True, context=context
        )
    elif pipeline in ("dp", "dp_nobv"):
        plan = optimize_baseline(graph, estimator)
    else:
        raise OptimizerError(f"unknown pipeline {pipeline!r}")

    use_bitvectors = pipeline not in ("original_nobv", "dp_nobv")
    cost_based = pipeline in ("original", "bqo", "dp")
    return _finalize(
        pipeline, spec, plan, estimator, use_bitvectors, cost_based,
        lambda_thresh, build_parallelism=build_parallelism,
    )


PIPELINES: dict[str, Callable[[Database, QuerySpec, float], OptimizedPlan]] = {
    name: (
        lambda db, spec, lt, _n=name, **kwargs: _run_pipeline(
            _n, db, spec, lt, **kwargs
        )
    )
    for name in (
        "original",
        "original_nobv",
        "original_allfilters",
        "bqo",
        "bqo_allfilters",
        "dp",
        "dp_nobv",
    )
}


def optimize_query(
    database: Database,
    spec: QuerySpec,
    pipeline: str = "bqo",
    lambda_thresh: float = DEFAULT_LAMBDA_THRESH,
    build_parallelism: int = 1,
    context=None,
    tracer=None,
) -> OptimizedPlan:
    """Optimize ``spec`` with a named pipeline.

    ``build_parallelism`` tells cost-based filter selection what
    executor parallelism the plan will run at, so it can discount
    filter build cost by the partitioned build pipeline's speedup (see
    :func:`repro.optimizer.filter_selection.apply_cost_based_filters`);
    the default 1 reproduces the paper's serial-build threshold.

    ``context`` (an :class:`~repro.engine.context.ExecutionContext`)
    makes planning itself abortable: the snowflake-extraction loop and
    each enumerated leading-order candidate check the deadline/cancel
    token, so a query whose *plan search* blows its budget raises
    :class:`~repro.errors.QueryTimeout` instead of burning the deadline
    before execution even starts.

    ``tracer`` (a :class:`repro.obs.Tracer`) wraps the pipeline run in
    an ``optimize`` span carrying the pipeline name and the resulting
    plan's estimated cout; ``None`` is the zero-overhead default.

    >>> # doctest-style sketch; see examples/quickstart.py for a runnable one
    """
    try:
        runner = PIPELINES[pipeline]
    except KeyError:
        raise OptimizerError(
            f"unknown pipeline {pipeline!r}; expected one of {sorted(PIPELINES)}"
        ) from None
    started = time.perf_counter()
    if tracer is None:
        optimized = runner(
            database, spec, lambda_thresh,
            build_parallelism=build_parallelism, context=context,
        )
    else:
        with tracer.span(
            "optimize", pipeline=pipeline, query=spec.name
        ) as span:
            optimized = runner(
                database, spec, lambda_thresh,
                build_parallelism=build_parallelism, context=context,
            )
            span.set(estimated_cout=optimized.estimated_cout)
    optimized.optimize_seconds = time.perf_counter() - started
    return optimized
