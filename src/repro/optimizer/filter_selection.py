"""Cost-based bitvector filter selection (paper Section 6.3).

Creating and checking bitvector filters is not free: a filter that
eliminates almost nothing costs ``Cf`` per probe tuple and saves almost
no probe work.  The paper derives a profile-calibrated elimination
threshold and deploys ``lambda_thresh = 5%``: a hash join only creates
its bitvector when the filter is estimated to eliminate at least that
fraction of probe-side tuples (estimated "the same way as the existing
semi-join operator").

``apply_cost_based_filters`` sets the ``creates_bitvector`` flag on
every join of a plan; the caller then runs push-down once.
"""

from __future__ import annotations

from repro.cost.constants import DEFAULT_COSTS, DEFAULT_LAMBDA_THRESH
from repro.cost.cout import EstimatedCardModel
from repro.plan.clone import clone_plan
from repro.plan.nodes import HashJoinNode, PlanNode
from repro.plan.pushdown import push_down_bitvectors
from repro.stats.estimator import CardinalityEstimator

# The creation threshold never drops below this fraction of the
# deployed lambda: partitioned builds only cheapen the *build* pass,
# while the per-probe check cost — the other component lambda absorbs —
# is paid serially per tuple regardless of parallelism.
_MIN_THRESH_FRACTION = 0.5


def apply_cost_based_filters(
    plan: PlanNode,
    estimator: CardinalityEstimator,
    lambda_thresh: float = DEFAULT_LAMBDA_THRESH,
    zone_aware: bool = True,
    build_parallelism: int = 1,
) -> PlanNode:
    """Disable bitvector creation for joins below the threshold.

    The elimination fraction of a join's filter is estimated with
    distinct-value containment between the build side's (reduced) keys
    and the probe side's raw keys — the anti-semi-join selectivity.
    Returns the same plan object with flags updated (no push-down yet).

    With ``zone_aware=True`` (the default since the parallel-build PR —
    it was opt-in for one release while the paper workloads were
    re-measured; pass ``zone_aware=False`` for the paper's unadjusted
    Section 6.3 rule) the estimate additionally accounts for
    morsel-level data skipping: probe rows living in morsels whose zone
    maps are disjoint from the build key range are eliminated *for
    free* (skipped, never checked), so the filter is only credited with
    the elimination it adds **on top of** skipping — its residual
    elimination among the rows that actually get probed.  A filter
    whose work zone maps already do falls below ``lambda_thresh`` and
    is not created.  The adjustment consults only synopses the executor
    has already built (see
    :meth:`~repro.stats.estimator.CardinalityEstimator.bitvector_zone_skip_fraction`),
    so cold optimizations are unchanged.

    ``build_parallelism`` is the executor parallelism the plan will run
    at.  Above 1, each join's creation threshold is discounted by the
    build cost the partitioned build pipeline saves (see
    :func:`_parallel_build_threshold`): the paper's threshold polices a
    *serial* pass over the build side, so once that pass is split
    across workers the optimizer can afford filters on large dimensions
    it previously rejected.
    """
    copy, mapping = clone_plan(plan)
    push_down_bitvectors(copy)
    model = EstimatedCardModel(estimator)

    clone_by_original: dict[int, HashJoinNode] = {}
    for original in plan.walk():
        if isinstance(original, HashJoinNode):
            clone = mapping[original.node_id]
            assert isinstance(clone, HashJoinNode)
            clone_by_original[original.node_id] = clone

    for original in plan.walk():
        if not isinstance(original, HashJoinNode):
            continue
        clone = clone_by_original[original.node_id]
        elimination = _estimated_elimination(clone, model, estimator)
        if zone_aware:
            elimination = _residual_elimination(clone, estimator, elimination)
        threshold = _parallel_build_threshold(
            clone, model, estimator, lambda_thresh, build_parallelism
        )
        original.creates_bitvector = elimination >= threshold
    return plan


def _parallel_build_threshold(
    join: HashJoinNode,
    model: EstimatedCardModel,
    estimator: CardinalityEstimator,
    lambda_thresh: float,
    build_parallelism: int,
) -> float:
    """Creation threshold net of the build cost parallelism saves.

    The deployed flat threshold absorbs two costs: the per-probe-tuple
    check ``Cf`` and the amortized build pass ``Ci * |build| / (Cp *
    |probe|)``.  A partitioned build divides the build term by the
    effective parallelism (``CardinalityEstimator.filter_build_discount``
    mirrors the executor's dispatch rules), so the threshold drops by
    the share saved — ``share * (1 - 1/p_eff)`` — floored at
    :data:`_MIN_THRESH_FRACTION` of the deployed lambda because the
    check cost is untouched by build parallelism.  At
    ``build_parallelism=1`` this is exactly ``lambda_thresh``.
    """
    if build_parallelism <= 1:
        return lambda_thresh
    build_rows = model.rows_out(join.build)
    probe_rows = model.rows_out(join.probe)
    discount = estimator.filter_build_discount(build_rows, build_parallelism)
    if discount <= 1.0:
        return lambda_thresh
    share = (DEFAULT_COSTS.filter_insert * build_rows) / max(
        DEFAULT_COSTS.probe * probe_rows, 1.0
    )
    saved = share * (1.0 - 1.0 / discount)
    return max(lambda_thresh * _MIN_THRESH_FRACTION, lambda_thresh - saved)


def _residual_elimination(
    join: HashJoinNode,
    estimator: CardinalityEstimator,
    elimination: float,
) -> float:
    """Elimination net of zone-map skipping, renormalized to probed rows.

    If zone maps skip fraction ``z`` of the probe side and the filter
    would eliminate fraction ``e`` overall (``e >= z`` — every skipped
    row is also a filter-eliminated row), the filter's own contribution
    among the ``1 - z`` rows it actually checks is ``(e - z)/(1 - z)``.
    """
    probe_aliases = {alias for alias, _ in join.probe_keys}
    build_aliases = {alias for alias, _ in join.build_keys}
    if len(probe_aliases) != 1 or len(build_aliases) != 1:
        return elimination
    skip = estimator.bitvector_zone_skip_fraction(
        next(iter(probe_aliases)),
        tuple(column for _, column in join.probe_keys),
        next(iter(build_aliases)),
        tuple(column for _, column in join.build_keys),
    )
    if skip >= 1.0:
        return 0.0
    return max(0.0, (elimination - skip) / (1.0 - skip))


def _estimated_elimination(
    join: HashJoinNode,
    model: EstimatedCardModel,
    estimator: CardinalityEstimator,
) -> float:
    """Estimated fraction of probe tuples the join's filter eliminates."""
    build_rows = model.rows_out(join.build)
    survival = 1.0
    for (build_alias, build_col), (probe_alias, probe_col) in zip(
        join.build_keys, join.probe_keys
    ):
        ndv_build = min(
            estimator.column_distinct(build_alias, build_col),
            max(build_rows, 1.0),
        )
        ndv_probe = estimator.column_distinct(probe_alias, probe_col)
        survival *= min(1.0, ndv_build / max(ndv_probe, 1.0))
    return 1.0 - survival
